//! Deterministic observability plane for the OFFRAMPS reproduction.
//!
//! Every campaign artifact in this workspace is pinned byte-identical
//! across thread counts, batch sizes, and execution engines. An
//! observability layer that leaked wall-clock time or thread
//! interleaving into its output would break that invariant the moment
//! anyone turned it on — so this crate is built around one rule:
//! **observable state is a pure function of the simulated work**.
//!
//! Three pieces enforce that rule:
//!
//! * [`MetricsRegistry`] — counters and histograms keyed by canonical
//!   dotted names (`kernel.events_committed`,
//!   `verdict.acoustic.margin_micros`). All values are integers
//!   (micro-units for fractions), so merging per-worker snapshots is
//!   commutative and associative: any thread-completion order folds to
//!   the same registry. Rendering walks a `BTreeMap`, so the JSON is
//!   canonical. Metrics carry a [`MetricClass`]: `Deterministic`
//!   metrics land in the metrics document and must be byte-identical
//!   for any `--threads`/`--batch`; `Execution` metrics (lockstep lane
//!   rotations) describe *how* the run executed and are only ever
//!   reported next to wall-clock timings.
//! * [`TraceEvent`] / [`Span`] — structured trace records stamped with
//!   **sim-step time** (microsecond ticks of the simulated print),
//!   never wall-clock, plus the component and scenario that produced
//!   them.
//! * [`FlightRecorder`] — a bounded ring buffer holding the last N
//!   per-window evidence snapshots of a scenario, so the moment a
//!   fused alarm fires the recent history can be replayed as a
//!   narrated timeline instead of a bare boolean.
//!
//! The whole plane hangs off an [`Obs`] handle: a cloneable
//! `Option<Arc<..>>` that is `None` by default. Disabled, every method
//! is a branch on `None` — hot paths keep their own plain counters and
//! publish them through `Obs` a handful of times per scenario, so the
//! disabled path stays pinned zero-overhead.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Which output a metric is allowed to reach.
///
/// `Deterministic` metrics depend only on the simulated scenarios and
/// must merge to byte-identical JSON for any thread count or engine.
/// `Execution` metrics (quantum rotations, batch shapes) depend on how
/// the run was scheduled; they are only reported beside wall-clock
/// timings, never in deterministic artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    Deterministic,
    Execution,
}

/// One named metric: a monotonic counter or an integer histogram.
///
/// Histogram values are integers by design — fractional quantities
/// enter in micro-units (`margin_micros`) — so sums are exact and the
/// merge of two snapshots is independent of merge order. The rolled-up
/// form (count/sum/min/max) is all the narration and calibration
/// consumers need, and unlike a bucketed histogram it merges without
/// any bucket-boundary coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Counter {
        value: u64,
        class: MetricClass,
    },
    Histogram {
        count: u64,
        sum: i128,
        min: i64,
        max: i64,
        class: MetricClass,
    },
}

impl Metric {
    /// The metric's output class.
    pub fn class(&self) -> MetricClass {
        match *self {
            Metric::Counter { class, .. } | Metric::Histogram { class, .. } => class,
        }
    }
}

/// A registry of named metrics with commutative merge and canonical
/// (sorted-name) rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero first.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists as a histogram or with a
    /// different class — canonical names must mean one thing.
    pub fn add(&mut self, name: &str, class: MetricClass, n: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Counter { value: 0, class })
        {
            Metric::Counter {
                value,
                class: existing,
            } => {
                assert!(
                    *existing == class,
                    "metric {name} re-registered as {class:?}"
                );
                *value += n;
            }
            Metric::Histogram { .. } => panic!("metric {name} is a histogram, not a counter"),
        }
    }

    /// Records one observation `v` into the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already exists as a counter or with a
    /// different class.
    pub fn observe(&mut self, name: &str, class: MetricClass, v: i64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(Metric::Histogram {
                count: 0,
                sum: 0,
                min: v,
                max: v,
                class,
            }) {
            Metric::Histogram {
                count,
                sum,
                min,
                max,
                class: existing,
            } => {
                assert!(
                    *existing == class,
                    "metric {name} re-registered as {class:?}"
                );
                *count += 1;
                *sum += i128::from(v);
                *min = (*min).min(v);
                *max = (*max).max(v);
            }
            Metric::Counter { .. } => panic!("metric {name} is a counter, not a histogram"),
        }
    }

    /// Folds another snapshot into this one. Counters add; histograms
    /// combine count/sum/min/max. Commutative and associative, so the
    /// order worker threads complete in cannot change the result.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.metrics {
            match *metric {
                Metric::Counter { value, class } => self.add(name, class, value),
                Metric::Histogram {
                    count,
                    sum,
                    min,
                    max,
                    class,
                } => match self
                    .metrics
                    .entry(name.clone())
                    .or_insert(Metric::Histogram {
                        count: 0,
                        sum: 0,
                        min,
                        max,
                        class,
                    }) {
                    Metric::Histogram {
                        count: c,
                        sum: s,
                        min: lo,
                        max: hi,
                        class: existing,
                    } => {
                        assert!(*existing == class, "metric {name} merged across classes");
                        *c += count;
                        *s += sum;
                        *lo = (*lo).min(min);
                        *hi = (*hi).max(max);
                    }
                    Metric::Counter { .. } => {
                        panic!("metric {name} is a counter, not a histogram")
                    }
                },
            }
        }
    }

    /// The value of counter `name`, if present (and a counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(&Metric::Counter { value, .. }) => Some(value),
            _ => None,
        }
    }

    /// All metrics, in canonical (sorted-name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Counters of one class, in canonical order — for embedding into
    /// a host document (the timing sidecar embeds `Execution`
    /// counters this way).
    pub fn counters_of(&self, class: MetricClass) -> Vec<(&str, u64)> {
        self.metrics
            .iter()
            .filter_map(|(name, m)| match *m {
                Metric::Counter { value, class: c } if c == class => Some((name.as_str(), value)),
                _ => None,
            })
            .collect()
    }

    /// True when no metric of `class` has been recorded.
    pub fn is_empty_for(&self, class: MetricClass) -> bool {
        !self.metrics.values().any(|m| m.class() == class)
    }

    /// Renders the metrics of one class as a canonical JSON document:
    ///
    /// ```json
    /// {
    ///   "metrics": {
    ///     "kernel.events_committed": 123,
    ///     "verdict.acoustic.margin_micros": { "count": 2, "sum": -80, "min": -60, "max": -20 }
    ///   }
    /// }
    /// ```
    ///
    /// Names are sorted, values are integers, keys of the histogram
    /// object are in fixed order — byte-identical for equal
    /// registries, which the determinism tests pin across thread
    /// counts and engines.
    pub fn render_json(&self, class: MetricClass) -> String {
        let mut out = String::from("{\n  \"metrics\": {");
        let mut first = true;
        for (name, metric) in &self.metrics {
            if metric.class() != class {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": ", escape(name));
            match *metric {
                Metric::Counter { value, .. } => {
                    let _ = write!(out, "{value}");
                }
                Metric::Histogram {
                    count,
                    sum,
                    min,
                    max,
                    ..
                } => {
                    let _ = write!(
                        out,
                        "{{ \"count\": {count}, \"sum\": {sum}, \"min\": {min}, \"max\": {max} }}"
                    );
                }
            }
        }
        if first {
            out.push_str("}\n}\n");
        } else {
            out.push_str("\n  }\n}\n");
        }
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One structured trace record: what happened, where, and at which
/// point of *simulated* time. Rendering never involves wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Subsystem that emitted the event (`verdict`, `campaign`, ...).
    pub component: &'static str,
    /// Campaign scenario (matrix index) the event belongs to, if any.
    pub scenario: Option<usize>,
    /// Sim-step timestamp in microseconds of simulated print time.
    pub tick_micros: u64,
    /// Human-readable payload.
    pub message: String,
}

impl TraceEvent {
    /// Renders the event as one deterministic line:
    /// `component t=12.3s s=4 | message`.
    pub fn render(&self) -> String {
        let secs = self.tick_micros / 1_000_000;
        let tenths = (self.tick_micros % 1_000_000) / 100_000;
        match self.scenario {
            Some(s) => format!(
                "{} t={}.{}s s={} | {}",
                self.component, secs, tenths, s, self.message
            ),
            None => format!(
                "{} t={}.{}s | {}",
                self.component, secs, tenths, self.message
            ),
        }
    }
}

/// A named interval within one component — the span form of
/// [`TraceEvent`], for work that has an extent (a detector judging a
/// print, a campaign decoding a store) rather than an instant.
///
/// Deterministic traces stamp spans with **sim-step time**. The
/// campaign's *phase* spans (`simulate`, `golden`, `decode`, `judge`)
/// are execution-class instead: they measure host time against the
/// [`Obs`] handle's clock and are reported only in the
/// `--timing-json` sidecar, never in a deterministic artifact — the
/// same split [`MetricClass`] draws for counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub component: &'static str,
    pub scenario: Option<usize>,
    pub label: String,
    pub start_micros: u64,
    pub end_micros: u64,
}

impl Span {
    /// Renders the span as one deterministic line.
    pub fn render(&self) -> String {
        let ms = |t: u64| t / 1_000;
        match self.scenario {
            Some(s) => format!(
                "{} s={} | {} [{}ms..{}ms]",
                self.component,
                s,
                self.label,
                ms(self.start_micros),
                ms(self.end_micros)
            ),
            None => format!(
                "{} | {} [{}ms..{}ms]",
                self.component,
                self.label,
                ms(self.start_micros),
                ms(self.end_micros)
            ),
        }
    }
}

/// Bounded ring buffer of the last `capacity` snapshots pushed. The
/// campaign keeps one per online scenario, filled with per-window
/// evidence; when the fused vote alarms, its contents are the
/// narrated run-up to the alarm.
#[derive(Debug, Clone)]
pub struct FlightRecorder<T> {
    capacity: usize,
    buf: VecDeque<T>,
}

impl<T> FlightRecorder<T> {
    /// A recorder holding the most recent `capacity` snapshots
    /// (minimum one).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            buf: VecDeque::with_capacity(capacity.max(1)),
        }
    }

    /// Pushes a snapshot, evicting the oldest when full.
    pub fn push(&mut self, snapshot: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(snapshot);
    }

    /// Retained snapshots, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Shared collection point behind an enabled [`Obs`] handle.
///
/// The mutexes are coarse on purpose: producers publish per-scenario
/// rollups (one registry merge, at most one trace block), not
/// per-event increments, so contention is a few locks per scenario.
#[derive(Debug)]
pub struct ObsSink {
    registry: Mutex<MetricsRegistry>,
    /// Alarm narratives keyed by scenario matrix index — a `BTreeMap`
    /// so draining yields matrix order no matter which worker finished
    /// first.
    traces: Mutex<BTreeMap<usize, Vec<String>>>,
    /// Execution-class phase spans, measured against `epoch`.
    spans: Mutex<Vec<Span>>,
    /// Host-clock origin of [`Obs::clock_micros`] — stamped when the
    /// handle is enabled, so span offsets are comparable within one
    /// run.
    // detlint: allow(D2) -- the span clock is execution-class, reported only via the timing sidecar
    epoch: std::time::Instant,
}

impl Default for ObsSink {
    fn default() -> Self {
        ObsSink {
            registry: Mutex::default(),
            traces: Mutex::default(),
            spans: Mutex::default(),
            // detlint: allow(D2) -- the span clock is execution-class, reported only via the timing sidecar
            epoch: std::time::Instant::now(),
        }
    }
}

/// The zero-cost observability handle threaded through the layers.
/// Disabled (the default), every operation is a branch on `None`;
/// enabled, it shares one [`ObsSink`] across clones.
#[derive(Debug, Clone, Default)]
pub struct Obs(Option<Arc<ObsSink>>);

impl Obs {
    /// The no-op handle: records nothing, costs a `None` check.
    pub const fn disabled() -> Self {
        Obs(None)
    }

    /// A live handle with a fresh, empty sink.
    pub fn enabled() -> Self {
        Obs(Some(Arc::new(ObsSink::default())))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to a deterministic counter.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(sink) = &self.0 {
            sink.registry.lock().expect("obs registry lock").add(
                name,
                MetricClass::Deterministic,
                n,
            );
        }
    }

    /// Adds `n` to an execution-class counter (timing-sidecar only).
    pub fn count_exec(&self, name: &str, n: u64) {
        if let Some(sink) = &self.0 {
            sink.registry
                .lock()
                .expect("obs registry lock")
                .add(name, MetricClass::Execution, n);
        }
    }

    /// Records one observation into a deterministic histogram.
    pub fn observe(&self, name: &str, v: i64) {
        if let Some(sink) = &self.0 {
            sink.registry.lock().expect("obs registry lock").observe(
                name,
                MetricClass::Deterministic,
                v,
            );
        }
    }

    /// Folds a locally-accumulated snapshot into the shared registry —
    /// the once-per-scenario publish point for hot-path counters.
    pub fn merge(&self, snapshot: &MetricsRegistry) {
        if let Some(sink) = &self.0 {
            sink.registry
                .lock()
                .expect("obs registry lock")
                .merge(snapshot);
        }
    }

    /// Stores a scenario's rendered alarm narrative. Keyed by matrix
    /// index, so replaying the traces is deterministic regardless of
    /// worker completion order.
    pub fn record_trace(&self, scenario: usize, lines: Vec<String>) {
        if let Some(sink) = &self.0 {
            sink.traces
                .lock()
                .expect("obs traces lock")
                .insert(scenario, lines);
        }
    }

    /// Microseconds of host time since the handle was enabled (always
    /// 0 when disabled). Execution-class by construction: use it only
    /// to stamp spans destined for the timing sidecar.
    pub fn clock_micros(&self) -> u64 {
        match &self.0 {
            // detlint: allow(D2) -- the span clock is execution-class, reported only via the timing sidecar
            Some(sink) => sink.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Records one execution-class phase span (no-op when disabled).
    /// `start_micros`/`end_micros` come from [`Obs::clock_micros`].
    pub fn record_span(
        &self,
        component: &'static str,
        scenario: Option<usize>,
        label: &str,
        start_micros: u64,
        end_micros: u64,
    ) {
        if let Some(sink) = &self.0 {
            sink.spans.lock().expect("obs spans lock").push(Span {
                component,
                scenario,
                label: label.to_string(),
                start_micros,
                end_micros,
            });
        }
    }

    /// All recorded phase spans, sorted by start offset (then end,
    /// label, scenario) so the sidecar's span order does not depend on
    /// worker completion order. Empty when disabled.
    pub fn spans(&self) -> Vec<Span> {
        match &self.0 {
            Some(sink) => {
                let mut spans = sink.spans.lock().expect("obs spans lock").clone();
                spans.sort_by(|a, b| {
                    (a.start_micros, a.end_micros, &a.label, a.scenario).cmp(&(
                        b.start_micros,
                        b.end_micros,
                        &b.label,
                        b.scenario,
                    ))
                });
                spans
            }
            None => Vec::new(),
        }
    }

    /// A snapshot of the merged registry (empty when disabled).
    pub fn registry(&self) -> MetricsRegistry {
        match &self.0 {
            Some(sink) => sink.registry.lock().expect("obs registry lock").clone(),
            None => MetricsRegistry::new(),
        }
    }

    /// All recorded narratives in scenario-matrix order (empty when
    /// disabled).
    pub fn traces(&self) -> BTreeMap<usize, Vec<String>> {
        match &self.0 {
            Some(sink) => sink.traces.lock().expect("obs traces lock").clone(),
            None => BTreeMap::new(),
        }
    }

    /// The deterministic metrics document, or `None` when disabled.
    pub fn metrics_json(&self) -> Option<String> {
        self.0.as_ref().map(|sink| {
            sink.registry
                .lock()
                .expect("obs registry lock")
                .render_json(MetricClass::Deterministic)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut reg = MetricsRegistry::new();
        reg.add("kernel.events_committed", MetricClass::Deterministic, 5);
        reg.add("kernel.events_committed", MetricClass::Deterministic, 7);
        assert_eq!(reg.counter("kernel.events_committed"), Some(12));
        assert_eq!(reg.counter("missing"), None);
    }

    #[test]
    fn histogram_rollup_tracks_count_sum_min_max() {
        let mut reg = MetricsRegistry::new();
        for v in [-40, 10, 30] {
            reg.observe("verdict.margin_micros", MetricClass::Deterministic, v);
        }
        let metric = *reg.iter().next().unwrap().1;
        match metric {
            Metric::Histogram {
                count,
                sum,
                min,
                max,
                ..
            } => {
                assert_eq!((count, sum, min, max), (3, 0, -40, 30));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsRegistry::new();
        a.add("c", MetricClass::Deterministic, 3);
        a.observe("h", MetricClass::Deterministic, -5);
        a.observe("h", MetricClass::Deterministic, 9);
        let mut b = MetricsRegistry::new();
        b.add("c", MetricClass::Deterministic, 4);
        b.add("only_b", MetricClass::Execution, 1);
        b.observe("h", MetricClass::Deterministic, 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(
            ab.render_json(MetricClass::Deterministic),
            ba.render_json(MetricClass::Deterministic)
        );
        assert_eq!(ab.counter("c"), Some(7));
    }

    #[test]
    fn render_is_canonical_and_class_filtered() {
        let mut reg = MetricsRegistry::new();
        reg.add("z.later", MetricClass::Deterministic, 2);
        reg.add("a.first", MetricClass::Deterministic, 1);
        reg.add("kernel.lane_rotations", MetricClass::Execution, 9);
        reg.observe("m.margin", MetricClass::Deterministic, -7);
        let json = reg.render_json(MetricClass::Deterministic);
        assert_eq!(
            json,
            "{\n  \"metrics\": {\n    \"a.first\": 1,\n    \"m.margin\": { \"count\": 1, \"sum\": -7, \"min\": -7, \"max\": -7 },\n    \"z.later\": 2\n  }\n}\n"
        );
        assert!(!json.contains("lane_rotations"), "execution class leaked");
        assert_eq!(
            reg.counters_of(MetricClass::Execution),
            vec![("kernel.lane_rotations", 9)]
        );
    }

    #[test]
    fn empty_class_renders_empty_object() {
        let reg = MetricsRegistry::new();
        assert_eq!(
            reg.render_json(MetricClass::Deterministic),
            "{\n  \"metrics\": {}\n}\n"
        );
    }

    #[test]
    fn flight_recorder_keeps_the_last_n() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.push(i);
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(rec.capacity(), 3);
    }

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        obs.count("never", 1);
        obs.observe("never_h", 2);
        obs.record_trace(0, vec!["line".into()]);
        assert!(!obs.is_enabled());
        assert!(obs.metrics_json().is_none());
        assert!(obs.traces().is_empty());
        assert_eq!(obs.registry(), MetricsRegistry::new());
    }

    #[test]
    fn enabled_obs_shares_one_sink_across_clones() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        obs.count("campaign.scenarios_simulated", 1);
        clone.count("campaign.scenarios_simulated", 2);
        clone.record_trace(4, vec!["b".into()]);
        obs.record_trace(1, vec!["a".into()]);
        assert_eq!(
            obs.registry().counter("campaign.scenarios_simulated"),
            Some(3)
        );
        let traces = obs.traces();
        assert_eq!(
            traces.keys().copied().collect::<Vec<_>>(),
            vec![1, 4],
            "matrix order, not insertion order"
        );
    }

    #[test]
    fn spans_record_only_when_enabled_and_sort_by_start() {
        let off = Obs::disabled();
        off.record_span("campaign", None, "simulate", 0, 10);
        assert_eq!(off.clock_micros(), 0);
        assert!(off.spans().is_empty());

        let obs = Obs::enabled();
        obs.record_span("campaign", None, "simulate", 500, 900);
        obs.record_span("campaign", Some(3), "judge", 120, 480);
        obs.record_span("campaign", None, "slice", 0, 100);
        let spans = obs.spans();
        assert_eq!(
            spans.iter().map(|s| s.label.as_str()).collect::<Vec<_>>(),
            vec!["slice", "judge", "simulate"],
            "sorted by start offset, not insertion order"
        );
        assert_eq!(spans[1].scenario, Some(3));
    }

    #[test]
    fn trace_event_and_span_render_sim_time() {
        let ev = TraceEvent {
            component: "verdict",
            scenario: Some(3),
            tick_micros: 29_000_000,
            message: "fused 0.25/0.25 -> ALARM".into(),
        };
        assert_eq!(
            ev.render(),
            "verdict t=29.0s s=3 | fused 0.25/0.25 -> ALARM"
        );
        let span = Span {
            component: "campaign",
            scenario: None,
            label: "judge".into(),
            start_micros: 1_000,
            end_micros: 2_500,
        };
        assert_eq!(span.render(), "campaign | judge [1ms..2ms]");
    }
}

//! Shared positioning-mode interpreter for G-code transformers.
//!
//! Attack transformers must understand absolute vs relative extrusion
//! and `G92` re-zeroing to rewrite E values correctly; this tiny state
//! machine tracks exactly that.

use offramps_gcode::GCommand;

/// Tracks positioning modes and the logical E coordinate through a
/// program, exposing per-move extrusion deltas.
#[derive(Debug, Clone)]
pub(crate) struct ExecState {
    pub absolute: bool,
    pub e_absolute: bool,
    pub e: f64,
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Default for ExecState {
    fn default() -> Self {
        ExecState {
            absolute: true,
            e_absolute: true,
            e: 0.0,
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
    }
}

impl ExecState {
    /// Applies a non-move command's effect on the interpreter state.
    pub(crate) fn apply_non_move(&mut self, cmd: &GCommand) {
        match cmd {
            GCommand::AbsolutePositioning => {
                self.absolute = true;
                self.e_absolute = true;
            }
            GCommand::RelativePositioning => {
                self.absolute = false;
                self.e_absolute = false;
            }
            GCommand::AbsoluteExtrusion => self.e_absolute = true,
            GCommand::RelativeExtrusion => self.e_absolute = false,
            GCommand::SetPosition { x, y, z, e } => {
                if let Some(v) = x {
                    self.x = *v;
                }
                if let Some(v) = y {
                    self.y = *v;
                }
                if let Some(v) = z {
                    self.z = *v;
                }
                if let Some(v) = e {
                    self.e = *v;
                }
            }
            GCommand::Home { x, y, z } => {
                if *x {
                    self.x = 0.0;
                }
                if *y {
                    self.y = 0.0;
                }
                if *z {
                    self.z = 0.0;
                }
            }
            _ => {}
        }
    }

    /// The E delta a move would produce, without applying it.
    pub(crate) fn move_e_delta(&self, e: Option<f64>) -> f64 {
        match e {
            None => 0.0,
            Some(v) if self.e_absolute => v - self.e,
            Some(v) => v,
        }
    }

    /// Applies a move's targets to the state. Returns the XY path length.
    pub(crate) fn apply_move(
        &mut self,
        x: Option<f64>,
        y: Option<f64>,
        z: Option<f64>,
        e: Option<f64>,
    ) -> f64 {
        let (ox, oy) = (self.x, self.y);
        if let Some(v) = x {
            self.x = if self.absolute { v } else { self.x + v };
        }
        if let Some(v) = y {
            self.y = if self.absolute { v } else { self.y + v };
        }
        if let Some(v) = z {
            self.z = if self.absolute { v } else { self.z + v };
        }
        if let Some(v) = e {
            self.e = if self.e_absolute { v } else { self.e + v };
        }
        ((self.x - ox).powi(2) + (self.y - oy).powi(2)).sqrt()
    }

    /// Rewrites a move's E word so it produces `new_delta` instead of
    /// its original delta, respecting the current mode. Call **before**
    /// `apply_move` on the original values.
    #[cfg(test)]
    pub(crate) fn rewrite_e(&self, new_delta: f64) -> f64 {
        if self.e_absolute {
            self.e + new_delta
        } else {
            new_delta
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_delta_math() {
        let mut s = ExecState {
            e: 5.0,
            ..ExecState::default()
        };
        assert_eq!(s.move_e_delta(Some(7.0)), 2.0);
        assert_eq!(s.rewrite_e(1.0), 6.0);
        s.apply_move(None, None, None, Some(7.0));
        assert_eq!(s.e, 7.0);
    }

    #[test]
    fn relative_delta_math() {
        let mut s = ExecState {
            e_absolute: false,
            e: 5.0,
            ..ExecState::default()
        };
        assert_eq!(s.move_e_delta(Some(2.0)), 2.0);
        assert_eq!(s.rewrite_e(1.0), 1.0);
        s.apply_move(None, None, None, Some(2.0));
        assert_eq!(s.e, 7.0);
    }

    #[test]
    fn g92_and_home() {
        let mut s = ExecState::default();
        s.apply_move(Some(3.0), Some(4.0), None, Some(2.0));
        s.apply_non_move(&GCommand::SetPosition {
            x: None,
            y: None,
            z: None,
            e: Some(0.0),
        });
        assert_eq!(s.e, 0.0);
        s.apply_non_move(&GCommand::Home {
            x: true,
            y: true,
            z: true,
        });
        assert_eq!((s.x, s.y), (0.0, 0.0));
    }

    #[test]
    fn xy_path_length() {
        let mut s = ExecState::default();
        let d = s.apply_move(Some(3.0), Some(4.0), None, None);
        assert_eq!(d, 5.0);
    }
}

//! Pre-firmware attack emulation.
//!
//! The paper's detection evaluation (§V-D, Table II) re-creates the
//! Flaw3D \[14\] bootloader Trojans "using a Python script which modifies
//! given g-code in the same way the malicious bootloader does". This
//! crate is that script — plus two more attack families from the paper's
//! related-work discussion, useful for exercising the detector beyond
//! Table II:
//!
//! * [`flaw3d`] — extrusion **reduction** (factor 0.5 / 0.85 / 0.9 /
//!   0.98) and filament **relocation** (every 5 / 10 / 20 / 100 moves),
//! * [`void`] — dr0wned-style internal void insertion \[11\],
//! * [`firmware_mod`] — Moore-et-al-style malicious firmware command
//!   scaling \[12\].
//!
//! All transformers are pure `Program → Program` functions: apply them
//! to sliced G-code and print the result through a bypass-configured
//! OFFRAMPS to emulate an upstream (pre-firmware) compromise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod firmware_mod;
pub mod flaw3d;
pub mod void;

mod exec_state;

pub use flaw3d::{Flaw3dTrojan, TABLE_II_CASES};

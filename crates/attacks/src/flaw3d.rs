//! Flaw3D Trojan emulation (Table II).
//!
//! "In the original work a modified bootloader was used to change g-code
//! on the fly to implement one of two types of Trojan: reduction of
//! extruded filament or occasional relocation of filament during the
//! print. We recreate these Trojans using a Python script which modifies
//! given g-code in the same way the malicious bootloader does. This
//! yielded eight Trojans from two categories" — reduction factors
//! 0.5/0.85/0.9/0.98 and relocation every 5/10/20/100 movements.

use offramps_gcode::{GCommand, Program};

use crate::exec_state::ExecState;

/// One Flaw3D-style G-code Trojan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Flaw3dTrojan {
    /// Scale every extrusion delta by `factor` (< 1 under-extrudes).
    /// "Modification value for reduction is a factor by which extrusion
    /// amount is reduced."
    Reduction {
        /// Extrusion multiplier (e.g. 0.5 halves the material).
        factor: f64,
    },
    /// Every `every_n` extruding movements, strip that move's filament
    /// and re-extrude it on the next extruding move. "For relocation it
    /// is the number of movements before filament is relocated."
    Relocation {
        /// Number of extruding movements between relocations.
        every_n: u32,
    },
}

/// The eight Table II test cases, in order.
pub const TABLE_II_CASES: [(u32, Flaw3dTrojan); 8] = [
    (1, Flaw3dTrojan::Reduction { factor: 0.5 }),
    (2, Flaw3dTrojan::Reduction { factor: 0.85 }),
    (3, Flaw3dTrojan::Reduction { factor: 0.9 }),
    (4, Flaw3dTrojan::Reduction { factor: 0.98 }),
    (5, Flaw3dTrojan::Relocation { every_n: 5 }),
    (6, Flaw3dTrojan::Relocation { every_n: 10 }),
    (7, Flaw3dTrojan::Relocation { every_n: 20 }),
    (8, Flaw3dTrojan::Relocation { every_n: 100 }),
];

impl Flaw3dTrojan {
    /// The Table II "Type" column.
    pub fn type_name(&self) -> &'static str {
        match self {
            Flaw3dTrojan::Reduction { .. } => "Reduction",
            Flaw3dTrojan::Relocation { .. } => "Relocation",
        }
    }

    /// The Table II "Modification Value" column.
    pub fn modification_value(&self) -> f64 {
        match self {
            Flaw3dTrojan::Reduction { factor } => *factor,
            Flaw3dTrojan::Relocation { every_n } => f64::from(*every_n),
        }
    }

    /// Applies the Trojan to a program, returning the compromised
    /// G-code (the input is untouched).
    ///
    /// # Panics
    ///
    /// Panics if a reduction factor is not in `(0, 1]` or a relocation
    /// stride is zero.
    pub fn apply(&self, program: &Program) -> Program {
        match self {
            Flaw3dTrojan::Reduction { factor } => {
                assert!(*factor > 0.0 && *factor <= 1.0, "factor must be in (0, 1]");
                reduce(program, *factor)
            }
            Flaw3dTrojan::Relocation { every_n } => {
                assert!(*every_n > 0, "relocation stride must be positive");
                relocate(program, *every_n)
            }
        }
    }
}

impl std::fmt::Display for Flaw3dTrojan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Flaw3dTrojan::Reduction { factor } => write!(f, "Reduction x{factor}"),
            Flaw3dTrojan::Relocation { every_n } => write!(f, "Relocation every {every_n}"),
        }
    }
}

/// Scales forward extrusion deltas by `factor`; retracts/un-retracts are
/// preserved so the nozzle still primes correctly (matching Flaw3D,
/// which undermined "the quantity of extruded material").
fn reduce(program: &Program, factor: f64) -> Program {
    let mut state = ExecState::default();
    let mut out_e = 0.0; // logical E of the *output* program
    let mut out = Program::new();
    for cmd in program.commands() {
        match cmd {
            GCommand::Move {
                rapid,
                x,
                y,
                z,
                e,
                feedrate,
            } => {
                let delta = state.move_e_delta(*e);
                let is_print_move = delta > 0.0 && (x.is_some() || y.is_some() || z.is_some());
                let new_delta = if is_print_move { delta * factor } else { delta };
                let new_e = e.map(|_| {
                    if state.e_absolute {
                        out_e + new_delta
                    } else {
                        new_delta
                    }
                });
                if e.is_some() {
                    out_e += new_delta;
                }
                state.apply_move(*x, *y, *z, *e);
                out.push(GCommand::Move {
                    rapid: *rapid,
                    x: *x,
                    y: *y,
                    z: *z,
                    e: new_e.map(round5),
                    feedrate: *feedrate,
                });
            }
            GCommand::SetPosition { e, .. } => {
                state.apply_non_move(cmd);
                if let Some(v) = e {
                    out_e = *v;
                }
                out.push(cmd.clone());
            }
            other => {
                state.apply_non_move(other);
                out.push(other.clone());
            }
        }
    }
    out
}

/// Every `every_n`-th extruding movement loses its filament; the stolen
/// amount is re-extruded as a slow stationary blob (an inserted E-only
/// move) right before the following extruding movement — material lands
/// in the wrong place, and the print's timing shifts, which is exactly
/// the signature Figure 4 shows on the X axis. The last extruding
/// movement is never robbed: its material would have nowhere to go, and
/// the real Flaw3D bootloader always re-deposits what it withholds —
/// which is why relocation defeats totals-only checks.
fn relocate(program: &Program, every_n: u32) -> Program {
    // First pass: count extruding print moves so the final one is exempt.
    let total_print_moves = {
        let mut state = ExecState::default();
        let mut n = 0u32;
        for cmd in program.commands() {
            if let GCommand::Move { x, y, z, e, .. } = cmd {
                let delta = state.move_e_delta(*e);
                if delta > 0.0 && (x.is_some() || y.is_some() || z.is_some()) {
                    n += 1;
                }
                state.apply_move(*x, *y, *z, *e);
            } else {
                state.apply_non_move(cmd);
            }
        }
        n
    };
    let mut state = ExecState::default();
    let mut out_e = 0.0;
    let mut stolen = 0.0;
    let mut counter = 0u32;
    let mut out = Program::new();
    for cmd in program.commands() {
        match cmd {
            GCommand::Move {
                rapid,
                x,
                y,
                z,
                e,
                feedrate,
            } => {
                let delta = state.move_e_delta(*e);
                let is_print_move = delta > 0.0 && (x.is_some() || y.is_some() || z.is_some());
                let mut new_delta = delta;
                if is_print_move {
                    counter += 1;
                    if counter.is_multiple_of(every_n) && counter < total_print_moves {
                        stolen += delta;
                        new_delta = 0.0;
                    } else if stolen > 0.0 {
                        // Re-deposit the withheld filament as a slow
                        // stationary blob before this move.
                        let blob_e = if state.e_absolute {
                            out_e + stolen
                        } else {
                            stolen
                        };
                        out.push(GCommand::Move {
                            rapid: false,
                            x: None,
                            y: None,
                            z: None,
                            e: Some(round5(blob_e)),
                            feedrate: Some(900.0), // 15 mm/s ooze
                        });
                        out_e += stolen;
                        stolen = 0.0;
                    }
                }
                let new_e = e.map(|_| {
                    if state.e_absolute {
                        out_e + new_delta
                    } else {
                        new_delta
                    }
                });
                if e.is_some() {
                    out_e += new_delta;
                }
                state.apply_move(*x, *y, *z, *e);
                out.push(GCommand::Move {
                    rapid: *rapid,
                    x: *x,
                    y: *y,
                    z: *z,
                    e: new_e.map(round5),
                    feedrate: *feedrate,
                });
            }
            GCommand::SetPosition { e, .. } => {
                state.apply_non_move(cmd);
                if let Some(v) = e {
                    out_e = *v;
                }
                out.push(cmd.clone());
            }
            other => {
                state.apply_non_move(other);
                out.push(other.clone());
            }
        }
    }
    out
}

use offramps_gcode::snap5 as round5;

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_gcode::{parse, ProgramStats};

    fn relative_square() -> Program {
        parse(
            "G90\nM83\nG28\nG1 Z0.2 F600\n\
             G1 X10 E0.5 F1200\nG1 Y10 E0.5\nG1 X0 E0.5\nG1 Y0 E0.5\n\
             G1 X10 E0.5\nG1 Y10 E0.5\nG1 X0 E0.5\nG1 Y0 E0.5\nM84\n",
        )
        .unwrap()
    }

    fn absolute_square() -> Program {
        parse(
            "G90\nM82\nG28\nG92 E0\nG1 Z0.2 F600\n\
             G1 X10 E0.5 F1200\nG1 Y10 E1\nG1 X0 E1.5\nG1 Y0 E2\nM84\n",
        )
        .unwrap()
    }

    #[test]
    fn reduction_scales_total_extrusion_relative() {
        let original = relative_square();
        let attacked = Flaw3dTrojan::Reduction { factor: 0.5 }.apply(&original);
        let s0 = ProgramStats::analyze(&original);
        let s1 = ProgramStats::analyze(&attacked);
        assert!((s1.total_extruded_mm / s0.total_extruded_mm - 0.5).abs() < 1e-9);
        // Geometry untouched.
        assert_eq!(s0.extrusion_path_mm, s1.extrusion_path_mm);
    }

    #[test]
    fn reduction_scales_total_extrusion_absolute() {
        let original = absolute_square();
        let attacked = Flaw3dTrojan::Reduction { factor: 0.9 }.apply(&original);
        let s0 = ProgramStats::analyze(&original);
        let s1 = ProgramStats::analyze(&attacked);
        assert!(
            (s1.total_extruded_mm / s0.total_extruded_mm - 0.9).abs() < 1e-6,
            "{} vs {}",
            s1.total_extruded_mm,
            s0.total_extruded_mm
        );
    }

    #[test]
    fn reduction_preserves_retractions() {
        let p = parse("G90\nM83\nG1 X5 E0.5 F1200\nG1 E-0.8 F2100\nG1 E0.8 F2100\nG1 X10 E0.5\n")
            .unwrap();
        let attacked = Flaw3dTrojan::Reduction { factor: 0.5 }.apply(&p);
        let s = ProgramStats::analyze(&attacked);
        assert!((s.retracted_mm - 0.8).abs() < 1e-9, "retract untouched");
    }

    #[test]
    fn relocation_preserves_total_but_moves_material() {
        let original = relative_square();
        let attacked = Flaw3dTrojan::Relocation { every_n: 4 }.apply(&original);
        let s0 = ProgramStats::analyze(&original);
        let s1 = ProgramStats::analyze(&attacked);
        // Net material preserved (the stealth property that defeats
        // total-count-only checks).
        assert!((s1.total_extruded_mm - s0.total_extruded_mm).abs() < 1e-9);
        // But the programs differ.
        assert_ne!(original.to_gcode(), attacked.to_gcode());
    }

    #[test]
    fn relocation_strips_every_nth_move_and_inserts_blobs() {
        let original = relative_square();
        let attacked = Flaw3dTrojan::Relocation { every_n: 2 }.apply(&original);
        // Moves 2,4,6 are robbed; a stationary E-only blob precedes
        // moves 3,5,7.
        let mut xy_deltas = Vec::new();
        let mut blobs = Vec::new();
        for cmd in attacked.commands() {
            if let GCommand::Move {
                e: Some(e), x, y, ..
            } = cmd
            {
                if x.is_some() || y.is_some() {
                    xy_deltas.push(*e);
                } else if *e > 0.0 {
                    blobs.push(*e);
                }
            }
        }
        assert_eq!(xy_deltas.len(), 8);
        assert_eq!(xy_deltas[1], 0.0, "second move robbed");
        assert_eq!(xy_deltas[2], 0.5, "third move keeps its own material");
        assert_eq!(
            blobs,
            vec![0.5, 0.5, 0.5],
            "three blobs re-deposit the theft"
        );
    }

    #[test]
    fn table_ii_has_eight_cases() {
        assert_eq!(TABLE_II_CASES.len(), 8);
        assert_eq!(TABLE_II_CASES[3].1.modification_value(), 0.98);
        assert_eq!(TABLE_II_CASES[7].1.modification_value(), 100.0);
        assert_eq!(TABLE_II_CASES[0].1.type_name(), "Reduction");
        assert_eq!(TABLE_II_CASES[4].1.type_name(), "Relocation");
        assert_eq!(TABLE_II_CASES[6].1.to_string(), "Relocation every 20");
    }

    #[test]
    fn identity_cases() {
        let original = relative_square();
        let identity = Flaw3dTrojan::Reduction { factor: 1.0 }.apply(&original);
        let s0 = ProgramStats::analyze(&original);
        let s1 = ProgramStats::analyze(&identity);
        assert!((s0.total_extruded_mm - s1.total_extruded_mm).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn rejects_bad_factor() {
        let _ = Flaw3dTrojan::Reduction { factor: 0.0 }.apply(&Program::new());
    }
}

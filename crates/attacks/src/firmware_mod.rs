//! Malicious-firmware command tampering (Moore, Glisson, Yampolskiy).
//!
//! The paper cites \[12\], where "the authors have modified the Marlin
//! firmware to introduce changes ranging from minor modifications of the
//! executing g-code to the execution of alternative g-code". Because a
//! compromised firmware sits *upstream* of the signals OFFRAMPS
//! observes, emulating it as a `Program → Program` transform (applied
//! before the clean firmware executes it) produces exactly the same
//! signal stream — and exactly the same detection problem.

use offramps_gcode::{GCommand, Program};

/// Scales every commanded feedrate by `factor` (e.g. 1.5 over-speeds
/// the machine; 0.5 doubles print time — both sabotage quality or
/// throughput while "executing the same geometry").
///
/// # Panics
///
/// Panics if `factor` is not strictly positive.
pub fn scale_feedrates(program: &Program, factor: f64) -> Program {
    assert!(factor > 0.0, "factor must be positive");
    program
        .iter()
        .map(|cmd| match cmd {
            GCommand::Move {
                rapid,
                x,
                y,
                z,
                e,
                feedrate,
            } => GCommand::Move {
                rapid: *rapid,
                x: *x,
                y: *y,
                z: *z,
                e: *e,
                feedrate: feedrate.map(|f| f * factor),
            },
            other => other.clone(),
        })
        .collect()
}

/// Offsets every temperature command by `delta_c` degrees (clamped at
/// zero). A −30 °C offset causes chronic under-temperature extrusion and
/// poor layer bonding; +30 °C cooks the material.
pub fn offset_temperatures(program: &Program, delta_c: f64) -> Program {
    program
        .iter()
        .map(|cmd| match cmd {
            GCommand::SetHotendTemp { celsius, wait } if *celsius > 0.0 => {
                GCommand::SetHotendTemp {
                    celsius: (celsius + delta_c).max(0.0),
                    wait: *wait,
                }
            }
            GCommand::SetBedTemp { celsius, wait } if *celsius > 0.0 => GCommand::SetBedTemp {
                celsius: (celsius + delta_c).max(0.0),
                wait: *wait,
            },
            other => other.clone(),
        })
        .collect()
}

/// Substitutes the whole job with an alternative program after the
/// first `keep_prefix` commands — the most blatant variant in \[12\]
/// ("execution of alternative g-code", printing a totally incorrect
/// object).
pub fn substitute_program(program: &Program, keep_prefix: usize, replacement: &Program) -> Program {
    program
        .iter()
        .take(keep_prefix)
        .cloned()
        .chain(replacement.iter().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_gcode::parse;

    #[test]
    fn feedrate_scaling() {
        let p = parse("G1 X5 F1200\nG1 Y5\nG28\n").unwrap();
        let out = scale_feedrates(&p, 0.5);
        assert!(out.to_gcode().contains("F600"));
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn temperature_offsets_clamp_at_zero() {
        let p = parse("M104 S210\nM140 S60\nM104 S0\n").unwrap();
        let out = offset_temperatures(&p, -100.0);
        let text = out.to_gcode();
        assert!(text.contains("M104 S110"));
        assert!(text.contains("M140 S0"));
        // The explicit off command stays off (not bumped to -100→0 twice).
        assert_eq!(text.matches("M104").count(), 2);
    }

    #[test]
    fn substitution_splices() {
        let p = parse("G28\nG1 X5 F600\nG1 Y5\n").unwrap();
        let alt = parse("G1 X50 F9000\n").unwrap();
        let out = substitute_program(&p, 1, &alt);
        assert_eq!(out.len(), 2);
        assert!(out.to_gcode().starts_with("G28\nG1 X50"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_factor() {
        let _ = scale_feedrates(&Program::new(), 0.0);
    }
}

//! dr0wned-style void insertion.
//!
//! The dr0wned attack \[11\] "finds design files in the system, identifies
//! spots that are vulnerable to stress, and inserts sub-millimeter holes
//! in them" — compromising a propeller that later failed mid-flight.
//! Operating on G-code rather than STL, the equivalent is removing the
//! extrusion from every print move that passes through a target region:
//! the toolpath still travels there (the part *looks* the same from
//! outside) but no material is deposited — an internal void.

use offramps_gcode::{GCommand, Program};

use crate::exec_state::ExecState;

/// An axis-aligned box inside the part where material is removed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoidRegion {
    /// Box minimum corner (x, y, z), mm.
    pub min: (f64, f64, f64),
    /// Box maximum corner (x, y, z), mm.
    pub max: (f64, f64, f64),
}

impl VoidRegion {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if any max coordinate is below its min.
    pub fn new(min: (f64, f64, f64), max: (f64, f64, f64)) -> Self {
        assert!(
            min.0 <= max.0 && min.1 <= max.1 && min.2 <= max.2,
            "region min must not exceed max"
        );
        VoidRegion { min, max }
    }

    fn contains(&self, x: f64, y: f64, z: f64) -> bool {
        (self.min.0..=self.max.0).contains(&x)
            && (self.min.1..=self.max.1).contains(&y)
            && (self.min.2..=self.max.2).contains(&z)
    }
}

/// Strips extrusion from every print move whose midpoint lies inside
/// `region`, creating an internal void. Returns the compromised program
/// and the number of moves voided.
pub fn insert_void(program: &Program, region: &VoidRegion) -> (Program, usize) {
    let mut state = ExecState::default();
    let mut out_e = 0.0;
    let mut voided = 0;
    let mut out = Program::new();
    for cmd in program.commands() {
        match cmd {
            GCommand::Move {
                rapid,
                x,
                y,
                z,
                e,
                feedrate,
            } => {
                let delta = state.move_e_delta(*e);
                let (ox, oy, oz) = (state.x, state.y, state.z);
                state.apply_move(*x, *y, *z, *e);
                let mid = (
                    (ox + state.x) / 2.0,
                    (oy + state.y) / 2.0,
                    (oz + state.z) / 2.0,
                );
                let in_region = region.contains(mid.0, mid.1, mid.2);
                let is_print_move = delta > 0.0 && (x.is_some() || y.is_some());
                let new_delta = if is_print_move && in_region {
                    voided += 1;
                    0.0
                } else {
                    delta
                };
                let new_e = e.map(|_| {
                    if state.e_absolute {
                        out_e + new_delta
                    } else {
                        new_delta
                    }
                });
                if e.is_some() {
                    out_e += new_delta;
                }
                out.push(GCommand::Move {
                    rapid: *rapid,
                    x: *x,
                    y: *y,
                    z: *z,
                    e: new_e,
                    feedrate: *feedrate,
                });
            }
            GCommand::SetPosition { e, .. } => {
                state.apply_non_move(cmd);
                if let Some(v) = e {
                    out_e = *v;
                }
                out.push(cmd.clone());
            }
            other => {
                state.apply_non_move(other);
                out.push(other.clone());
            }
        }
    }
    (out, voided)
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_gcode::{parse, ProgramStats};

    fn two_layer_lines() -> Program {
        parse(
            "G90\nM83\nG1 Z0.2 F600\nG1 X20 E1 F1200\n\
             G1 Z0.4\nG0 X0\nG1 X20 E1\n",
        )
        .unwrap()
    }

    #[test]
    fn voids_only_the_targeted_region() {
        let p = two_layer_lines();
        // Void covers the first layer only.
        let region = VoidRegion::new((0.0, -1.0, 0.0), (25.0, 1.0, 0.3));
        let (attacked, voided) = insert_void(&p, &region);
        assert_eq!(voided, 1);
        let s0 = ProgramStats::analyze(&p);
        let s1 = ProgramStats::analyze(&attacked);
        assert!((s0.total_extruded_mm - 2.0).abs() < 1e-9);
        assert!((s1.total_extruded_mm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_region_is_identity() {
        let p = two_layer_lines();
        let region = VoidRegion::new((100.0, 100.0, 100.0), (101.0, 101.0, 101.0));
        let (attacked, voided) = insert_void(&p, &region);
        assert_eq!(voided, 0);
        assert_eq!(
            ProgramStats::analyze(&p).total_extruded_mm,
            ProgramStats::analyze(&attacked).total_extruded_mm
        );
    }

    #[test]
    fn travel_moves_unaffected() {
        let p = two_layer_lines();
        let region = VoidRegion::new((-10.0, -10.0, 0.0), (30.0, 10.0, 10.0));
        let (attacked, _) = insert_void(&p, &region);
        // Same number of commands; geometry words unchanged.
        assert_eq!(p.len(), attacked.len());
    }

    #[test]
    #[should_panic(expected = "min must not exceed")]
    fn rejects_inverted_region() {
        let _ = VoidRegion::new((1.0, 0.0, 0.0), (0.0, 1.0, 1.0));
    }
}

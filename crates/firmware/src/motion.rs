//! Trapezoidal motion planning and multi-axis step generation.
//!
//! Marlin plans each G-code segment as a trapezoidal velocity profile and
//! its stepper ISR emits STEP pulses with Bresenham interleaving across
//! axes. [`MoveExec`] reproduces both: it yields, one at a time, the
//! `(time, which-axes-step)` schedule of a segment, with per-axis speed
//! caps and a deterministic per-move duration jitter modelling the "time
//! noise" of real prints.

use offramps_des::{SimDuration, Tick};

/// The velocity profile of one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trapezoid {
    /// Total path length, mm.
    pub dist_mm: f64,
    /// Cruise velocity actually attainable, mm/s.
    pub v_cruise: f64,
    /// Path acceleration, mm/s².
    pub accel: f64,
    /// Total duration, s.
    pub t_total: f64,
    accel_dist: f64,
}

impl Trapezoid {
    /// Plans a profile over `dist_mm` with requested speed `v_req` and
    /// acceleration `accel`, starting and ending at rest.
    ///
    /// # Panics
    ///
    /// Panics if `dist_mm`, `v_req` or `accel` are not strictly positive.
    pub fn plan(dist_mm: f64, v_req: f64, accel: f64) -> Self {
        assert!(
            dist_mm > 0.0 && v_req > 0.0 && accel > 0.0,
            "invalid profile inputs"
        );
        // Distance needed to reach v_req from rest.
        let d_acc = v_req * v_req / (2.0 * accel);
        if 2.0 * d_acc <= dist_mm {
            // Trapezoid: accel, cruise, decel.
            let t_ramp = v_req / accel;
            let t_cruise = (dist_mm - 2.0 * d_acc) / v_req;
            Trapezoid {
                dist_mm,
                v_cruise: v_req,
                accel,
                t_total: 2.0 * t_ramp + t_cruise,
                accel_dist: d_acc,
            }
        } else {
            // Triangle: never reaches v_req.
            let v_peak = (accel * dist_mm).sqrt();
            Trapezoid {
                dist_mm,
                v_cruise: v_peak,
                accel,
                t_total: 2.0 * v_peak / accel,
                accel_dist: dist_mm / 2.0,
            }
        }
    }

    /// Time (s from segment start) at which path distance `s` is reached.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `s` is outside `[0, dist_mm]`.
    pub fn time_at(&self, s: f64) -> f64 {
        debug_assert!((-1e-9..=self.dist_mm + 1e-9).contains(&s));
        let s = s.clamp(0.0, self.dist_mm);
        if s <= self.accel_dist {
            (2.0 * s / self.accel).sqrt()
        } else if s <= self.dist_mm - self.accel_dist {
            let t_ramp = self.v_cruise / self.accel;
            t_ramp + (s - self.accel_dist) / self.v_cruise
        } else {
            self.t_total - (2.0 * (self.dist_mm - s) / self.accel).sqrt()
        }
    }
}

/// Iterator over the step schedule of one planned segment.
///
/// Yields `(tick, mask)` pairs: at `tick`, every axis with `mask[i]` set
/// emits one STEP pulse. The dominant axis steps every iteration; the
/// others interleave by Bresenham, exactly like Marlin's ISR.
///
/// # Example
///
/// ```
/// use offramps_firmware::motion::MoveExec;
/// use offramps_des::Tick;
///
/// // 1 mm of X at 100 steps/mm, 50 E steps alongside.
/// let mut exec = MoveExec::new([100, 0, 0, 50], 1.0, 40.0, 1000.0,
///                              Tick::ZERO, 1.0);
/// let mut x = 0;
/// let mut e = 0;
/// while let Some((_, mask)) = exec.next_step() {
///     if mask[0] { x += 1; }
///     if mask[3] { e += 1; }
/// }
/// assert_eq!((x, e), (100, 50));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MoveExec {
    steps_abs: [u64; 4],
    /// Signed direction of each axis (+1, 0, −1).
    pub directions: [i8; 4],
    dominant: usize,
    n: u64,
    k: u64,
    bres_err: [i64; 4],
    profile: Trapezoid,
    start: Tick,
    jitter: f64,
}

impl MoveExec {
    /// Creates the executor for a segment of signed step deltas.
    ///
    /// * `dist_mm` — geometric path length of the segment,
    /// * `v_mm_s` — planned cruise speed (already capped by the caller),
    /// * `accel` — path acceleration (mm/s²),
    /// * `start` — absolute time of the segment start,
    /// * `jitter` — duration multiplier (1.0 = nominal).
    ///
    /// Returns a no-op executor if every delta is zero.
    ///
    /// # Panics
    ///
    /// Panics if `dist_mm`, `v_mm_s`, `accel` or `jitter` are not
    /// strictly positive while steps are non-zero.
    pub fn new(
        steps: [i64; 4],
        dist_mm: f64,
        v_mm_s: f64,
        accel: f64,
        start: Tick,
        jitter: f64,
    ) -> Self {
        let steps_abs: [u64; 4] = std::array::from_fn(|i| steps[i].unsigned_abs());
        let n = *steps_abs.iter().max().expect("4 axes");
        let dominant = (0..4).max_by_key(|i| steps_abs[*i]).expect("4 axes");
        let profile = if n > 0 {
            assert!(jitter > 0.0, "jitter factor must be positive");
            Trapezoid::plan(dist_mm.max(1e-9), v_mm_s, accel)
        } else {
            // Unused placeholder for the empty move.
            Trapezoid::plan(1.0, 1.0, 1.0)
        };
        MoveExec {
            steps_abs,
            directions: std::array::from_fn(|i| steps[i].signum() as i8),
            dominant,
            n,
            k: 0,
            bres_err: [0; 4],
            profile,
            start,
            jitter,
        }
    }

    /// The absolute time of the upcoming step, without consuming it.
    pub fn peek_tick(&self) -> Option<Tick> {
        if self.k >= self.n {
            return None;
        }
        let s = self.profile.dist_mm * (self.k + 1) as f64 / self.n as f64;
        let t = self.profile.time_at(s) * self.jitter;
        Some(self.start + SimDuration::from_secs_f64(t))
    }

    /// The next `(tick, mask)` step event, or `None` when the segment is
    /// complete.
    pub fn next_step(&mut self) -> Option<(Tick, [bool; 4])> {
        if self.k >= self.n {
            return None;
        }
        self.k += 1;
        let s = self.profile.dist_mm * self.k as f64 / self.n as f64;
        let t = self.profile.time_at(s) * self.jitter;
        let tick = self.start + SimDuration::from_secs_f64(t);
        let mut mask = [false; 4];
        mask[self.dominant] = true;
        for (i, m) in mask.iter_mut().enumerate() {
            if i == self.dominant || self.steps_abs[i] == 0 {
                continue;
            }
            self.bres_err[i] += self.steps_abs[i] as i64;
            if self.bres_err[i] >= self.n as i64 {
                self.bres_err[i] -= self.n as i64;
                *m = true;
            }
        }
        Some((tick, mask))
    }

    /// Absolute end time of the segment.
    pub fn end_tick(&self) -> Tick {
        if self.n == 0 {
            self.start
        } else {
            self.start + SimDuration::from_secs_f64(self.profile.t_total * self.jitter)
        }
    }

    /// True if the segment has no steps at all.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Remaining dominant-axis steps.
    pub fn remaining(&self) -> u64 {
        self.n - self.k
    }

    /// The planned profile.
    pub fn profile(&self) -> &Trapezoid {
        &self.profile
    }
}

/// Caps a requested feedrate by per-axis speed limits for a move with
/// the given axis distances (mm). Returns the attainable path speed.
pub fn cap_feedrate(path_mm: f64, axis_mm: [f64; 4], v_req: f64, max_axis: [f64; 4]) -> f64 {
    let mut v = v_req;
    if path_mm <= 0.0 {
        return v;
    }
    for i in 0..4 {
        let frac = axis_mm[i].abs() / path_mm;
        if frac > 1e-12 {
            v = v.min(max_axis[i] / frac);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_des::DetRng;

    #[test]
    fn trapezoid_phases() {
        // 10 mm at 40 mm/s, 1000 mm/s²: d_acc = 0.8 mm, trapezoid.
        let p = Trapezoid::plan(10.0, 40.0, 1000.0);
        assert!((p.v_cruise - 40.0).abs() < 1e-12);
        let t_expect = 2.0 * 0.04 + (10.0 - 1.6) / 40.0;
        assert!((p.t_total - t_expect).abs() < 1e-12);
        assert_eq!(p.time_at(0.0), 0.0);
        assert!((p.time_at(10.0) - p.t_total).abs() < 1e-12);
    }

    #[test]
    fn triangle_profile_for_short_moves() {
        // 0.5 mm at 40 mm/s can't reach cruise: triangle.
        let p = Trapezoid::plan(0.5, 40.0, 1000.0);
        assert!(p.v_cruise < 40.0);
        assert!((p.v_cruise - (1000.0_f64 * 0.5).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn time_at_is_monotone() {
        let p = Trapezoid::plan(25.0, 60.0, 1500.0);
        let mut last = -1.0;
        for i in 0..=1000 {
            let s = 25.0 * i as f64 / 1000.0;
            let t = p.time_at(s);
            assert!(t > last, "time_at must be strictly increasing");
            last = t;
        }
    }

    #[test]
    fn exec_emits_exact_step_counts() {
        let mut exec = MoveExec::new([100, -37, 0, 12], 1.0, 40.0, 1000.0, Tick::ZERO, 1.0);
        let mut counts = [0i64; 4];
        let mut last_tick = Tick::ZERO;
        while let Some((tick, mask)) = exec.next_step() {
            assert!(tick >= last_tick, "schedule must be monotone");
            last_tick = tick;
            for i in 0..4 {
                if mask[i] {
                    counts[i] += i64::from(exec.directions[i]);
                }
            }
        }
        assert_eq!(counts, [100, -37, 0, 12]);
        assert!(last_tick <= exec.end_tick());
    }

    #[test]
    fn jitter_scales_duration() {
        let nominal = MoveExec::new([1000, 0, 0, 0], 10.0, 40.0, 1000.0, Tick::ZERO, 1.0);
        let slow = MoveExec::new([1000, 0, 0, 0], 10.0, 40.0, 1000.0, Tick::ZERO, 1.01);
        let d0 = nominal.end_tick().ticks() as f64;
        let d1 = slow.end_tick().ticks() as f64;
        assert!((d1 / d0 - 1.01).abs() < 1e-6);
    }

    #[test]
    fn empty_move() {
        let mut exec = MoveExec::new([0, 0, 0, 0], 0.0, 40.0, 1000.0, Tick::ZERO, 1.0);
        assert!(exec.is_empty());
        assert_eq!(exec.next_step(), None);
        assert_eq!(exec.end_tick(), Tick::ZERO);
    }

    #[test]
    fn cap_feedrate_respects_slowest_axis() {
        // Pure Z move at 12 mm/s cap.
        let v = cap_feedrate(
            5.0,
            [0.0, 0.0, 5.0, 0.0],
            100.0,
            [200.0, 200.0, 12.0, 120.0],
        );
        assert!((v - 12.0).abs() < 1e-12);
        // Diagonal XY: no cap below 200/frac.
        let v = cap_feedrate(
            10.0,
            [7.07, 7.07, 0.0, 0.0],
            40.0,
            [200.0, 200.0, 12.0, 120.0],
        );
        assert!((v - 40.0).abs() < 1e-12);
    }

    #[test]
    fn step_rate_matches_cruise_speed() {
        // During cruise, X steps at v * steps_per_mm. 20 mm at 40 mm/s,
        // 100 steps/mm → 4 kHz → 250 us between steps mid-move.
        let mut exec = MoveExec::new([2000, 0, 0, 0], 20.0, 40.0, 1000.0, Tick::ZERO, 1.0);
        let mut times = Vec::new();
        while let Some((t, _)) = exec.next_step() {
            times.push(t.ticks());
        }
        let mid = times.len() / 2;
        let dt_ticks = times[mid + 1] - times[mid];
        let dt_us = dt_ticks as f64 / 100.0;
        assert!((dt_us - 250.0).abs() < 5.0, "got {dt_us} us");
    }

    /// Bresenham delivers exactly |delta| steps per axis, for any mix.
    #[test]
    fn step_conservation_over_random_moves() {
        for seed in 0u64..128 {
            let mut rng = DetRng::from_seed(seed);
            let dx = rng.uniform_u64(0, 1000) as i64 - 500;
            let dy = rng.uniform_u64(0, 1000) as i64 - 500;
            let dz = rng.uniform_u64(0, 200) as i64 - 100;
            let de = rng.uniform_u64(0, 600) as i64 - 300;
            if dx == 0 && dy == 0 && dz == 0 && de == 0 {
                continue;
            }
            let dist = ((dx * dx + dy * dy) as f64).sqrt().max(0.1);
            let mut exec = MoveExec::new([dx, dy, dz, de], dist, 40.0, 1000.0, Tick::ZERO, 1.0);
            let mut counts = [0i64; 4];
            while let Some((_, mask)) = exec.next_step() {
                for i in 0..4 {
                    if mask[i] {
                        counts[i] += i64::from(exec.directions[i]);
                    }
                }
            }
            assert_eq!(counts, [dx, dy, dz, de], "seed {seed}");
        }
    }

    /// The schedule never exceeds the requested cruise speed on the
    /// dominant axis (interval between dominant steps >= 1/(v*spm)).
    #[test]
    fn speed_limit_over_random_moves() {
        for seed in 0u64..32 {
            let mut rng = DetRng::from_seed(seed ^ 0x5151);
            let n = rng.uniform_u64(100, 2000);
            let v = rng.uniform_f64(5.0, 100.0);
            let dist = n as f64 / 100.0; // 100 steps/mm
            let mut exec = MoveExec::new([n as i64, 0, 0, 0], dist, v, 1000.0, Tick::ZERO, 1.0);
            let min_interval_s = (1.0 / (v * 100.0)) * 0.999; // tolerance
            let mut last: Option<Tick> = None;
            while let Some((t, _)) = exec.next_step() {
                if let Some(l) = last {
                    let dt = t.saturating_since(l).as_secs_f64();
                    assert!(
                        dt >= min_interval_s - 1e-7,
                        "step interval {dt} below cruise minimum {min_interval_s} (seed {seed})"
                    );
                }
                last = Some(t);
            }
        }
    }
}

//! Firmware fault conditions.

use std::fmt;

use offramps_signals::Axis;

/// Which heating element a thermal fault concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeaterId {
    /// The hotend (RAMPS D10).
    Hotend,
    /// The heated bed (RAMPS D8).
    Bed,
}

impl fmt::Display for HeaterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HeaterId::Hotend => "hotend",
            HeaterId::Bed => "bed",
        })
    }
}

/// Fatal conditions that halt the firmware (Marlin "killed" states).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FirmwareError {
    /// Heating watchdog expired: the element never warmed up
    /// (Marlin: "Heating failed").
    HeatingFailed(HeaterId),
    /// Temperature fell away from target while regulating
    /// (Marlin: "Thermal Runaway").
    ThermalRunaway(HeaterId),
    /// Temperature exceeded the MAXTEMP cutoff.
    MaxTemp(HeaterId),
    /// Temperature below MINTEMP (broken/shorted thermistor).
    MinTemp(HeaterId),
    /// Homing travelled the whole axis without seeing the endstop.
    EndstopNotFound(Axis),
}

impl fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmwareError::HeatingFailed(h) => write!(f, "heating failed on {h}"),
            FirmwareError::ThermalRunaway(h) => write!(f, "thermal runaway on {h}"),
            FirmwareError::MaxTemp(h) => write!(f, "maxtemp triggered on {h}"),
            FirmwareError::MinTemp(h) => write!(f, "mintemp triggered on {h}"),
            FirmwareError::EndstopNotFound(a) => {
                write!(f, "endstop not found while homing {a}")
            }
        }
    }
}

impl std::error::Error for FirmwareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            FirmwareError::ThermalRunaway(HeaterId::Hotend).to_string(),
            "thermal runaway on hotend"
        );
        assert_eq!(
            FirmwareError::EndstopNotFound(Axis::Y).to_string(),
            "endstop not found while homing Y"
        );
    }
}

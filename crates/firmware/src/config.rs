//! Firmware configuration (the analogue of Marlin's `Configuration.h`).

/// Tunables of the simulated firmware. Defaults approximate a Prusa-like
/// RAMPS machine.
#[derive(Debug, Clone, PartialEq)]
pub struct FirmwareConfig {
    /// Microsteps per mm for X, Y, Z, E (must match the plant).
    pub steps_per_mm: [f64; 4],
    /// Per-axis speed caps, mm/s.
    pub max_speed_mm_s: [f64; 4],
    /// Path acceleration, mm/s².
    pub acceleration_mm_s2: f64,
    /// Default feedrate when a program never sets `F`, mm/s.
    pub default_feedrate_mm_s: f64,
    /// Homing fast-approach speed, mm/s.
    pub homing_speed_mm_s: f64,
    /// Homing slow re-bump speed, mm/s.
    pub homing_bump_speed_mm_s: f64,
    /// Back-off distance between the two homing touches, mm.
    pub homing_backoff_mm: f64,
    /// STEP pulse high time, µs (Marlin uses 1–2 µs; the paper measured
    /// ≥ 1 µs minimum pulse widths).
    pub step_pulse_us: u64,
    /// Delay between a DIR change and the first STEP edge, µs.
    pub dir_setup_us: u64,
    /// Temperature control loop period, ms.
    pub temp_loop_ms: u64,
    /// Soft PWM period for heaters and fan, ms.
    pub pwm_period_ms: u64,
    /// Hotend PID gains (Kp, Ki, Kd) on duty fraction per °C.
    pub hotend_pid: (f64, f64, f64),
    /// Bed hysteresis half-width for bang-bang control, °C.
    pub bed_hysteresis_c: f64,
    /// `M109`/`M190` completion tolerance, °C.
    pub wait_tolerance_c: f64,
    /// Heating-failed watchdog: must gain this many °C …
    pub watch_increase_c: f64,
    /// … within this many seconds while heating, else halt.
    pub watch_period_s: f64,
    /// Thermal runaway: once at target, temperature more than this far
    /// below target …
    pub runaway_hysteresis_c: f64,
    /// … for this many seconds halts the machine.
    pub runaway_period_s: f64,
    /// Hotend MAXTEMP cutoff, °C.
    pub hotend_maxtemp_c: f64,
    /// Bed MAXTEMP cutoff, °C.
    pub bed_maxtemp_c: f64,
    /// MINTEMP cutoff (thermistor fault detection), °C.
    pub mintemp_c: f64,
    /// Standard deviation of the per-move duration jitter ("time
    /// noise"), as a fraction of the move duration. Two prints of the
    /// same G-code with different seeds drift by a few tenths of a
    /// percent — the asynchrony the paper's 5 % margin absorbs.
    pub jitter_sigma: f64,
    /// Display status report period, ms (0 disables).
    pub status_period_ms: u64,
    /// Maximum homing travel before declaring the endstop missing, mm.
    pub homing_max_travel_mm: f64,
}

impl Default for FirmwareConfig {
    fn default() -> Self {
        FirmwareConfig {
            steps_per_mm: [100.0, 100.0, 400.0, 280.0],
            max_speed_mm_s: [200.0, 200.0, 12.0, 120.0],
            acceleration_mm_s2: 1_000.0,
            default_feedrate_mm_s: 40.0,
            homing_speed_mm_s: 40.0,
            homing_bump_speed_mm_s: 4.0,
            homing_backoff_mm: 2.0,
            step_pulse_us: 2,
            dir_setup_us: 1,
            temp_loop_ms: 100,
            pwm_period_ms: 20,
            hotend_pid: (0.1, 0.005, 0.05),
            bed_hysteresis_c: 1.0,
            wait_tolerance_c: 2.0,
            watch_increase_c: 2.0,
            watch_period_s: 20.0,
            runaway_hysteresis_c: 4.0,
            runaway_period_s: 10.0,
            hotend_maxtemp_c: 275.0,
            bed_maxtemp_c: 120.0,
            mintemp_c: 5.0,
            jitter_sigma: 0.0005,
            status_period_ms: 1_000,
            homing_max_travel_mm: 300.0,
        }
    }
}

impl FirmwareConfig {
    /// A config with jitter disabled (bit-identical repeated prints).
    pub fn deterministic() -> Self {
        FirmwareConfig {
            jitter_sigma: 0.0,
            ..FirmwareConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_plant_defaults() {
        let c = FirmwareConfig::default();
        assert_eq!(c.steps_per_mm, [100.0, 100.0, 400.0, 280.0]);
        assert!(c.jitter_sigma > 0.0);
        assert_eq!(FirmwareConfig::deterministic().jitter_sigma, 0.0);
    }

    #[test]
    fn step_rates_stay_under_20khz() {
        // The paper measured all signals below 20 kHz; check the config
        // cannot exceed that on X/Y: 200 mm/s * 100 steps/mm = 20 kHz.
        let c = FirmwareConfig::default();
        for i in 0..2 {
            assert!(c.max_speed_mm_s[i] * c.steps_per_mm[i] <= 20_000.0);
        }
    }
}

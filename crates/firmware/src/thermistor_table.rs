//! Firmware-side thermistor conversion table.
//!
//! Marlin converts ADC counts to temperature with a per-thermistor lookup
//! table compiled into the firmware. We build the equivalent table from
//! the same Beta-model constants the plant's physics uses; the firmware
//! then interpolates counts → °C exactly as Marlin does, including the
//! quantization error a real table has.

/// Piecewise-linear counts → temperature table.
///
/// # Example
///
/// ```
/// use offramps_firmware::ThermistorTable;
/// let t = ThermistorTable::semitec_104gt2();
/// let temp = t.counts_to_celsius(512);
/// assert!(temp > 20.0 && temp < 120.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermistorTable {
    /// `(adc_counts, celsius)` pairs, counts ascending.
    entries: Vec<(u16, f64)>,
}

impl ThermistorTable {
    /// Builds a table from Beta-model NTC parameters by sampling the
    /// divider at fixed temperatures (the same procedure Marlin's
    /// `createTemperatureLookupMarlin.py` uses).
    pub fn from_beta(beta: f64, r25: f64, pullup: f64) -> Self {
        let mut entries: Vec<(u16, f64)> = Vec::new();
        let mut temp = -10.0;
        while temp <= 340.0 {
            let t_k = temp + 273.15;
            let r = r25 * (beta * (1.0 / t_k - 1.0 / 298.15)).exp();
            let counts = (r / (r + pullup) * 1023.0).round().clamp(0.0, 1023.0) as u16;
            entries.push((counts, temp));
            temp += 5.0;
        }
        entries.sort_by_key(|(c, _)| *c);
        entries.dedup_by_key(|(c, _)| *c);
        ThermistorTable { entries }
    }

    /// The Semitec 104GT-2-like hotend thermistor (Beta 4267).
    pub fn semitec_104gt2() -> Self {
        Self::from_beta(4267.0, 100_000.0, 4_700.0)
    }

    /// A generic EPCOS-100k-like bed thermistor (Beta 3950).
    pub fn epcos_100k() -> Self {
        Self::from_beta(3950.0, 100_000.0, 4_700.0)
    }

    /// Converts raw ADC counts to °C with linear interpolation. Counts
    /// outside the table saturate to implausible extremes so MINTEMP /
    /// MAXTEMP protection fires, exactly as in Marlin.
    pub fn counts_to_celsius(&self, counts: u16) -> f64 {
        let first = self.entries.first().expect("table is never empty");
        let last = self.entries.last().expect("table is never empty");
        if counts <= first.0 {
            // Hotter than the hottest table entry (low resistance).
            return first.1 + 50.0;
        }
        if counts >= last.0 {
            // Colder than the coldest entry (open thermistor).
            return last.1 - 50.0;
        }
        match self.entries.binary_search_by_key(&counts, |(c, _)| *c) {
            Ok(i) => self.entries[i].1,
            Err(i) => {
                let (c0, t0) = self.entries[i - 1];
                let (c1, t1) = self.entries[i];
                let frac = f64::from(counts - c0) / f64::from(c1 - c0);
                t0 + (t1 - t0) * frac
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_plant_physics() {
        // The plant computes counts from the same Beta model; the table
        // must invert it within interpolation error.
        let table = ThermistorTable::semitec_104gt2();
        for temp in [25.0_f64, 60.0, 120.0, 200.0, 215.0, 260.0] {
            let t_k = temp + 273.15;
            let r = 100_000.0 * (4267.0 * (1.0 / t_k - 1.0 / 298.15)).exp();
            let counts = (r / (r + 4_700.0) * 1023.0).round() as u16;
            let back = table.counts_to_celsius(counts);
            assert!(
                (back - temp).abs() < 3.0,
                "{temp}C -> {counts} counts -> {back}C"
            );
        }
    }

    #[test]
    fn extremes_saturate_to_implausible() {
        let t = ThermistorTable::semitec_104gt2();
        assert!(t.counts_to_celsius(0) > 300.0, "short = implausibly hot");
        assert!(t.counts_to_celsius(1023) < 0.0, "open = implausibly cold");
    }

    #[test]
    fn monotone_decreasing_in_counts() {
        let t = ThermistorTable::semitec_104gt2();
        let mut last = f64::INFINITY;
        for c in (0..=1023).step_by(8) {
            let v = t.counts_to_celsius(c);
            assert!(v <= last + 1e-9, "temperature must fall as counts rise");
            last = v;
        }
    }

    #[test]
    fn bed_table_differs() {
        let hot = ThermistorTable::semitec_104gt2();
        let bed = ThermistorTable::epcos_100k();
        assert_ne!(hot, bed);
    }
}

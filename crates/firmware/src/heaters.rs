//! Heater regulation and Marlin's thermal protection suite.
//!
//! Trojans T6 and T7 interact directly with this logic: T6 cuts heater
//! power so the *heating-failed* watchdog (or a runaway check mid-print)
//! fires and "the Marlin firmware enters an error state and ends the
//! print prematurely"; T7 forces the MOSFETs on, which the firmware
//! counters with MAXTEMP — but since the Trojan owns the gate downstream,
//! the element keeps heating, demonstrating why firmware-level fail-safes
//! cannot contain hardware Trojans.

use offramps_des::Tick;

use crate::config::FirmwareConfig;
use crate::error::{FirmwareError, HeaterId};

/// Watchdog phase for one heater.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HeaterProtection {
    /// Heater off, nothing monitored.
    Idle,
    /// Ramping to target: must gain `watch_increase_c` before the
    /// deadline.
    Heating {
        /// Temperature when the watch window was (re-)armed.
        watch_temp_c: f64,
        /// Watch window deadline.
        deadline: Tick,
    },
    /// At target: temperature must stay within the runaway hysteresis.
    Regulating {
        /// When the temperature first dropped out of the hysteresis
        /// band, if it currently is out.
        below_since: Option<Tick>,
    },
}

/// Closed-loop control + protection for one heating element.
///
/// # Example
///
/// ```
/// use offramps_firmware::{HeaterControl, HeaterId, FirmwareConfig};
/// use offramps_des::Tick;
///
/// let cfg = FirmwareConfig::default();
/// let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &cfg);
/// h.set_target(Tick::ZERO, 210.0, 25.0);
/// let duty = h.update(Tick::from_millis(100), 25.0).unwrap();
/// assert_eq!(duty, 255, "full power when far below target");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeaterControl {
    id: HeaterId,
    target_c: f64,
    // PID state (hotend) — bed uses hysteresis control with gains zeroed.
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    last_temp: Option<f64>,
    last_update: Option<Tick>,
    bang_bang: bool,
    hysteresis_c: f64,
    maxtemp_c: f64,
    mintemp_c: f64,
    watch_increase_c: f64,
    watch_period_s: f64,
    runaway_hysteresis_c: f64,
    runaway_period_s: f64,
    protection: HeaterProtection,
    reached: bool,
}

impl HeaterControl {
    /// Creates the PID-controlled hotend loop.
    pub fn new_hotend(id: HeaterId, cfg: &FirmwareConfig) -> Self {
        HeaterControl {
            id,
            target_c: 0.0,
            kp: cfg.hotend_pid.0,
            ki: cfg.hotend_pid.1,
            kd: cfg.hotend_pid.2,
            integral: 0.0,
            last_temp: None,
            last_update: None,
            bang_bang: false,
            hysteresis_c: 0.0,
            maxtemp_c: cfg.hotend_maxtemp_c,
            mintemp_c: cfg.mintemp_c,
            watch_increase_c: cfg.watch_increase_c,
            watch_period_s: cfg.watch_period_s,
            runaway_hysteresis_c: cfg.runaway_hysteresis_c,
            runaway_period_s: cfg.runaway_period_s,
            protection: HeaterProtection::Idle,
            reached: false,
        }
    }

    /// Creates the bang-bang bed loop.
    pub fn new_bed(id: HeaterId, cfg: &FirmwareConfig) -> Self {
        HeaterControl {
            bang_bang: true,
            hysteresis_c: cfg.bed_hysteresis_c,
            maxtemp_c: cfg.bed_maxtemp_c,
            // Beds get a longer watch window in Marlin; keep the same
            // period here but a gentler increase requirement.
            watch_increase_c: cfg.watch_increase_c / 2.0,
            ..HeaterControl::new_hotend(id, cfg)
        }
    }

    /// Sets a new target. `current_c` arms the heating watchdog.
    pub fn set_target(&mut self, now: Tick, target_c: f64, current_c: f64) {
        self.target_c = target_c;
        self.integral = 0.0;
        self.reached = false;
        if target_c <= 0.0 {
            self.protection = HeaterProtection::Idle;
        } else if current_c < target_c - self.runaway_hysteresis_c {
            self.protection = HeaterProtection::Heating {
                watch_temp_c: current_c,
                deadline: now + offramps_des::SimDuration::from_secs_f64(self.watch_period_s),
            };
        } else {
            self.reached = true;
            self.protection = HeaterProtection::Regulating { below_since: None };
        }
    }

    /// Current target, °C.
    pub fn target_c(&self) -> f64 {
        self.target_c
    }

    /// True once the temperature has reached the target since the last
    /// `set_target` (used by `M109`/`M190` waits).
    pub fn reached(&self) -> bool {
        self.reached
    }

    /// Current protection phase.
    pub fn protection(&self) -> HeaterProtection {
        self.protection
    }

    /// One control-loop iteration: returns the PWM duty (0–255) to apply,
    /// or the fatal fault.
    ///
    /// # Errors
    ///
    /// Returns the [`FirmwareError`] when a protection trips; the caller
    /// must kill the machine (heaters off, steppers disabled).
    pub fn update(&mut self, now: Tick, temp_c: f64) -> Result<u8, FirmwareError> {
        // --- hard cutoffs first ---
        if temp_c > self.maxtemp_c {
            return Err(FirmwareError::MaxTemp(self.id));
        }
        if self.target_c > 0.0 && temp_c < self.mintemp_c {
            return Err(FirmwareError::MinTemp(self.id));
        }

        // --- watchdog / runaway ---
        match self.protection {
            HeaterProtection::Idle => {}
            HeaterProtection::Heating {
                watch_temp_c,
                deadline,
            } => {
                if temp_c >= self.target_c - self.runaway_hysteresis_c {
                    self.reached = true;
                    self.protection = HeaterProtection::Regulating { below_since: None };
                } else if temp_c >= watch_temp_c + self.watch_increase_c {
                    // Progress: re-arm the watch window.
                    self.protection = HeaterProtection::Heating {
                        watch_temp_c: temp_c,
                        deadline: now
                            + offramps_des::SimDuration::from_secs_f64(self.watch_period_s),
                    };
                } else if now >= deadline {
                    return Err(FirmwareError::HeatingFailed(self.id));
                }
            }
            HeaterProtection::Regulating { below_since } => {
                if temp_c < self.target_c - self.runaway_hysteresis_c {
                    match below_since {
                        None => {
                            self.protection = HeaterProtection::Regulating {
                                below_since: Some(now),
                            };
                        }
                        Some(since) => {
                            if now.saturating_since(since).as_secs_f64() >= self.runaway_period_s {
                                return Err(FirmwareError::ThermalRunaway(self.id));
                            }
                        }
                    }
                } else {
                    self.reached = true;
                    self.protection = HeaterProtection::Regulating { below_since: None };
                }
            }
        }

        // --- output ---
        if self.target_c <= 0.0 {
            self.last_temp = Some(temp_c);
            self.last_update = Some(now);
            return Ok(0);
        }
        let duty = if self.bang_bang {
            if temp_c < self.target_c - self.hysteresis_c {
                255
            } else if temp_c > self.target_c + self.hysteresis_c {
                0
            } else {
                // Inside the band: hold last action by temperature slope
                // (simple deadband: stay on below target, off above).
                if temp_c < self.target_c {
                    255
                } else {
                    0
                }
            }
        } else {
            let error = self.target_c - temp_c;
            let dt = match (self.last_update, self.last_temp) {
                (Some(last), Some(_)) => now.saturating_since(last).as_secs_f64(),
                _ => 0.0,
            };
            if dt > 0.0 {
                self.integral = (self.integral + error * dt).clamp(-200.0, 200.0);
            }
            let derivative = match (self.last_temp, dt > 0.0) {
                (Some(prev), true) => (temp_c - prev) / dt,
                _ => 0.0,
            };
            let out = self.kp * error + self.ki * self.integral - self.kd * derivative;
            (out.clamp(0.0, 1.0) * 255.0).round() as u8
        };
        self.last_temp = Some(temp_c);
        self.last_update = Some(now);
        Ok(duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_des::SimDuration;

    fn cfg() -> FirmwareConfig {
        FirmwareConfig::default()
    }

    #[test]
    fn pid_full_power_when_cold_zero_when_hot() {
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &cfg());
        h.set_target(Tick::ZERO, 210.0, 25.0);
        assert_eq!(h.update(Tick::from_millis(100), 25.0).unwrap(), 255);
        assert_eq!(h.update(Tick::from_millis(200), 260.0).unwrap(), 0);
    }

    #[test]
    fn heating_failed_when_no_progress() {
        let c = cfg();
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &c);
        h.set_target(Tick::ZERO, 210.0, 25.0);
        // Temperature never rises; advance past the watch period.
        let mut t = Tick::ZERO;
        let step = SimDuration::from_millis(c.temp_loop_ms);
        let mut tripped = None;
        for _ in 0..((c.watch_period_s * 1000.0 / c.temp_loop_ms as f64) as usize + 5) {
            t += step;
            if let Err(e) = h.update(t, 25.0) {
                tripped = Some(e);
                break;
            }
        }
        assert_eq!(
            tripped,
            Some(FirmwareError::HeatingFailed(HeaterId::Hotend))
        );
    }

    #[test]
    fn watchdog_rearms_on_progress() {
        let c = cfg();
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &c);
        h.set_target(Tick::ZERO, 210.0, 25.0);
        // Gain 3 degrees every watch period: always re-arms, never trips.
        let mut temp = 25.0;
        let mut t = Tick::ZERO;
        for _ in 0..20 {
            t += SimDuration::from_secs_f64(c.watch_period_s / 2.0);
            temp += 3.0;
            assert!(h.update(t, temp).is_ok(), "at {temp}C");
        }
    }

    #[test]
    fn runaway_trips_after_sustained_drop() {
        let c = cfg();
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &c);
        h.set_target(Tick::ZERO, 210.0, 209.0); // already at target
        assert!(h.reached());
        // Sudden drop (heater cartridge unplugged / T6 gate forced off).
        let mut t = Tick::ZERO;
        let mut tripped = None;
        for _ in 0..200 {
            t += SimDuration::from_millis(c.temp_loop_ms);
            if let Err(e) = h.update(t, 150.0) {
                tripped = Some(e);
                break;
            }
        }
        assert_eq!(
            tripped,
            Some(FirmwareError::ThermalRunaway(HeaterId::Hotend))
        );
        // It must take at least runaway_period_s to trip.
        assert!(t.as_secs_f64() >= c.runaway_period_s);
    }

    #[test]
    fn maxtemp_trips_immediately() {
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &cfg());
        h.set_target(Tick::ZERO, 210.0, 25.0);
        assert_eq!(
            h.update(Tick::from_millis(100), 280.0),
            Err(FirmwareError::MaxTemp(HeaterId::Hotend))
        );
    }

    #[test]
    fn mintemp_trips_when_heating_with_dead_sensor() {
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &cfg());
        h.set_target(Tick::ZERO, 210.0, 25.0);
        assert_eq!(
            h.update(Tick::from_millis(100), -30.0),
            Err(FirmwareError::MinTemp(HeaterId::Hotend))
        );
        // But an idle heater does not MINTEMP (cold room is fine).
        let mut idle = HeaterControl::new_hotend(HeaterId::Hotend, &cfg());
        assert_eq!(idle.update(Tick::from_millis(100), -30.0), Ok(0));
    }

    #[test]
    fn bed_bang_bang() {
        let mut b = HeaterControl::new_bed(HeaterId::Bed, &cfg());
        b.set_target(Tick::ZERO, 60.0, 25.0);
        assert_eq!(b.update(Tick::from_millis(100), 40.0).unwrap(), 255);
        assert_eq!(b.update(Tick::from_millis(200), 62.0).unwrap(), 0);
        assert_eq!(b.update(Tick::from_millis(300), 59.5).unwrap(), 255);
        assert_eq!(b.update(Tick::from_millis(400), 60.5).unwrap(), 0);
    }

    #[test]
    fn target_zero_outputs_zero_and_idles() {
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &cfg());
        h.set_target(Tick::ZERO, 210.0, 25.0);
        h.set_target(Tick::from_secs(1), 0.0, 180.0);
        assert_eq!(h.protection(), HeaterProtection::Idle);
        assert_eq!(h.update(Tick::from_secs(2), 180.0).unwrap(), 0);
    }

    #[test]
    fn reached_flag_for_m109() {
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &cfg());
        h.set_target(Tick::ZERO, 210.0, 25.0);
        assert!(!h.reached());
        let _ = h.update(Tick::from_millis(100), 150.0);
        assert!(!h.reached());
        let _ = h.update(Tick::from_millis(200), 207.0);
        assert!(h.reached());
    }

    #[test]
    fn pid_converges_against_simple_plant() {
        // Close the loop against a first-order plant and verify the
        // steady-state error is small.
        let c = cfg();
        let mut h = HeaterControl::new_hotend(HeaterId::Hotend, &c);
        let (power, cap, loss, amb) = (40.0, 6.0, 0.15, 25.0);
        let mut temp = amb;
        h.set_target(Tick::ZERO, 210.0, temp);
        let dt = c.temp_loop_ms as f64 / 1000.0;
        let mut t = Tick::ZERO;
        for _ in 0..4000 {
            t += SimDuration::from_millis(c.temp_loop_ms);
            let duty = f64::from(h.update(t, temp).unwrap()) / 255.0;
            // Forward Euler on the heater ODE.
            temp += (power * duty - loss * (temp - amb)) / cap * dt;
        }
        assert!(
            (temp - 210.0).abs() < 5.0,
            "PID must settle near 210C, got {temp}"
        );
    }
}

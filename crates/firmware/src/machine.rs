//! The firmware state machine: G-code in, signals out.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use offramps_des::{
    ActionSink, DetRng, InPort, OutPort, SeedSplitter, SimComponent, SimDuration, Tick,
};
use offramps_gcode::{GCommand, Program};
use offramps_signals::{AnalogChannel, Axis, Level, Pin, SignalEvent, UartDirection};

use crate::config::FirmwareConfig;
use crate::error::{FirmwareError, HeaterId};
use crate::heaters::HeaterControl;
use crate::motion::{cap_feedrate, MoveExec};
use crate::thermistor_table::ThermistorTable;

/// The firmware's single output port: control-direction signals that
/// flow through the interceptor to the plant.
pub const PORT_CTRL: OutPort = OutPort(0);

/// The firmware's single input port: feedback-direction signals
/// (endstops, thermistor ADC samples).
pub const PORT_FEEDBACK: InPort = InPort(0);

/// Lifecycle state of the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FwState {
    /// Executing the program.
    Running,
    /// Program completed normally.
    Finished,
    /// Killed by a protection fault (heaters off, steppers disabled).
    Halted(FirmwareError),
}

/// PWM-driven output devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Device {
    Hotend,
    Bed,
    Fan,
}

impl Device {
    const ALL: [Device; 3] = [Device::Hotend, Device::Bed, Device::Fan];

    fn pin(self) -> Pin {
        match self {
            Device::Hotend => Pin::HotendHeat,
            Device::Bed => Pin::BedHeat,
            Device::Fan => Pin::FanPwm,
        }
    }

    fn index(self) -> usize {
        match self {
            Device::Hotend => 0,
            Device::Bed => 1,
            Device::Fan => 2,
        }
    }
}

/// Internal scheduler tasks.
#[derive(Debug, Clone, PartialEq)]
enum Task {
    /// Execute program commands until blocked.
    Advance,
    /// Emit the next step pulse of the current move.
    Step { gen: u64 },
    /// Drive the STEP pins of `mask` low.
    StepLow { mask: [bool; 4] },
    /// The current move's schedule is exhausted.
    MoveDone { gen: u64 },
    /// Temperature control-loop iteration.
    TempLoop,
    /// Start of a soft-PWM period for a device.
    PwmPeriod(Device),
    /// Mid-period gate-off for a device.
    PwmOff { device: Device, gen: u64 },
    /// Periodic display-UART status report.
    Status,
}

#[derive(Debug)]
struct AgendaEntry {
    tick: Tick,
    seq: u64,
    task: Task,
}

impl PartialEq for AgendaEntry {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}
impl Eq for AgendaEntry {}
impl PartialOrd for AgendaEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AgendaEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap behaviour through reversal.
        other
            .tick
            .cmp(&self.tick)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Homing sub-state.
#[derive(Debug, Clone, PartialEq)]
enum HomingPhase {
    FastApproach,
    Backoff,
    SlowApproach,
}

#[derive(Debug, Clone, PartialEq)]
struct HomingState {
    queue: VecDeque<Axis>,
    current: Axis,
    phase: HomingPhase,
}

/// What move completion continues into.
#[derive(Debug, Clone, PartialEq)]
enum ExecContext {
    Program,
    Homing(HomingState),
}

/// Why the program is not advancing right now.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Block {
    None,
    Move,
    WaitTemp(HeaterId),
}

/// The Marlin-like firmware simulator. See the crate docs for an
/// overview; drive it with [`Firmware::start`], [`Firmware::on_tick`] and
/// [`Firmware::on_feedback`] — or let a [`Scheduler`] do it through the
/// [`SimComponent`] impl.
///
/// [`Scheduler`]: offramps_des::Scheduler
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use offramps_firmware::{Firmware, FirmwareConfig};
/// use offramps_des::{ActionSink, SinkAction, Tick};
/// use offramps_gcode::parse;
///
/// let program = Arc::new(parse("G90\nM83\nG1 X1 F600\n")?);
/// let mut fw = Firmware::new(FirmwareConfig::default(), program, 1);
/// let mut sink = ActionSink::new();
/// sink.begin(Tick::ZERO);
/// fw.start(Tick::ZERO, &mut sink);
/// assert!(sink.actions().iter().any(|a| matches!(a, SinkAction::WakeAt(_))));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Firmware {
    config: FirmwareConfig,
    program: Arc<Program>,
    pc: usize,
    state: FwState,
    agenda: BinaryHeap<AgendaEntry>,
    agenda_seq: u64,

    // Positioning.
    absolute: bool,
    e_absolute: bool,
    feedrate_mm_s: f64,
    /// Physical microsteps since the last home, per axis.
    pos_steps: [i64; 4],
    /// Physical steps corresponding to logical zero, per axis.
    origin_steps: [f64; 4],
    /// Current logical coordinate, per axis.
    logical_mm: [f64; 4],
    /// Last DIR level emitted per axis (None = never emitted).
    dir_emitted: [Option<Level>; 4],
    /// Last EN level emitted per axis.
    en_emitted: [Option<Level>; 4],
    current_move: Option<MoveExec>,
    move_gen: u64,
    context: ExecContext,
    block: Block,
    homed: bool,

    // Heaters / fan.
    hotend: HeaterControl,
    bed: HeaterControl,
    hotend_table: ThermistorTable,
    bed_table: ThermistorTable,
    adc_counts: [Option<u16>; 2],
    pwm_duty: [u8; 3],
    pwm_gen: [u64; 3],
    gate_emitted: [Option<Level>; 3],

    // Feedback.
    endstop_high: [bool; 3],

    // Time noise.
    jitter_rng: DetRng,

    /// Count of commands executed (diagnostics).
    pub commands_executed: u64,
}

impl Firmware {
    /// Creates the firmware with a parsed program. The program is shared
    /// by reference — a campaign fanning one job across many scenarios
    /// never copies the command list. `seed` drives the per-move time
    /// noise.
    pub fn new(config: FirmwareConfig, program: Arc<Program>, seed: u64) -> Self {
        let split = SeedSplitter::new(seed);
        Firmware {
            hotend: HeaterControl::new_hotend(HeaterId::Hotend, &config),
            bed: HeaterControl::new_bed(HeaterId::Bed, &config),
            hotend_table: ThermistorTable::semitec_104gt2(),
            bed_table: ThermistorTable::epcos_100k(),
            config,
            program,
            pc: 0,
            state: FwState::Running,
            agenda: BinaryHeap::new(),
            agenda_seq: 0,
            absolute: true,
            e_absolute: true,
            feedrate_mm_s: 0.0,
            pos_steps: [0; 4],
            origin_steps: [0.0; 4],
            logical_mm: [0.0; 4],
            dir_emitted: [None; 4],
            en_emitted: [None; 4],
            current_move: None,
            move_gen: 0,
            context: ExecContext::Program,
            block: Block::None,
            homed: false,
            adc_counts: [None; 2],
            pwm_duty: [0; 3],
            pwm_gen: [0; 3],
            gate_emitted: [None; 3],
            endstop_high: [false; 3],
            jitter_rng: split.stream("firmware-jitter"),
            commands_executed: 0,
        }
    }

    /// Boot: arms the periodic loops and begins executing the program.
    /// Call once; initial signals and the first wake-up land in `sink`.
    pub fn start(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        self.schedule(
            now + SimDuration::from_millis(self.config.temp_loop_ms),
            Task::TempLoop,
        );
        for (i, d) in Device::ALL.into_iter().enumerate() {
            self.schedule(
                now + SimDuration::from_millis(self.config.pwm_period_ms + i as u64),
                Task::PwmPeriod(d),
            );
        }
        if self.config.status_period_ms > 0 {
            self.schedule(
                now + SimDuration::from_millis(self.config.status_period_ms),
                Task::Status,
            );
        }
        // Small boot delay before the first command, like a real reset.
        self.schedule(now + SimDuration::from_millis(10), Task::Advance);
        self.arm_wake(sink);
    }

    /// The current lifecycle state.
    pub fn state(&self) -> FwState {
        self.state
    }

    /// Physical step counters (microsteps since home), [`Axis::ALL`]
    /// order.
    pub fn step_counts(&self) -> [i64; 4] {
        self.pos_steps
    }

    /// Logical position, mm, [`Axis::ALL`] order.
    pub fn logical_position(&self) -> [f64; 4] {
        self.logical_mm
    }

    /// True once G28 has completed at least once.
    pub fn is_homed(&self) -> bool {
        self.homed
    }

    fn schedule(&mut self, tick: Tick, task: Task) {
        let seq = self.agenda_seq;
        self.agenda_seq += 1;
        self.agenda.push(AgendaEntry { tick, seq, task });
    }

    fn arm_wake(&self, sink: &mut ActionSink<SignalEvent>) {
        if let Some(e) = self.agenda.peek() {
            sink.wake_at(e.tick);
        }
    }

    /// Handles a scheduler wake-up: runs everything due at or before
    /// `now`.
    pub fn on_tick(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        while let Some(head) = self.agenda.peek() {
            if head.tick > now {
                break;
            }
            let entry = self.agenda.pop().expect("peeked entry exists");
            if matches!(self.state, FwState::Halted(_)) {
                continue; // drain without acting
            }
            self.run_task(entry.tick, entry.task, sink);
        }
        self.arm_wake(sink);
    }

    /// Handles a feedback-direction event (endstops, thermistor ADC).
    pub fn on_feedback(
        &mut self,
        now: Tick,
        event: SignalEvent,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        match event {
            SignalEvent::Adc { channel, counts } => {
                self.adc_counts[adc_index(channel)] = Some(counts);
            }
            SignalEvent::Logic(ev) => {
                if let Some(axis) = ev.pin.axis() {
                    if ev.pin == axis.min_endstop_pin().unwrap_or(ev.pin)
                        && matches!(ev.pin, Pin::XMin | Pin::YMin | Pin::ZMin)
                    {
                        let rising = ev.level.is_high() && !self.endstop_high[axis.index()];
                        self.endstop_high[axis.index()] = ev.level.is_high();
                        if rising {
                            self.on_endstop_hit(now, axis, sink);
                        }
                    }
                }
            }
            SignalEvent::Uart { .. } => {}
        }
        self.arm_wake(sink);
    }

    // ------------------------------------------------------------------
    // Task dispatch
    // ------------------------------------------------------------------

    fn run_task(&mut self, now: Tick, task: Task, sink: &mut ActionSink<SignalEvent>) {
        match task {
            Task::Advance => self.advance_program(now, sink),
            Task::Step { gen } => self.step_pulse(now, gen, sink),
            Task::StepLow { mask } => {
                for axis in Axis::ALL {
                    if mask[axis.index()] {
                        sink.send(PORT_CTRL, SignalEvent::logic(axis.step_pin(), Level::Low));
                    }
                }
            }
            Task::MoveDone { gen } => {
                if gen == self.move_gen && self.current_move.is_some() {
                    self.current_move = None;
                    self.move_completed(now, sink);
                }
            }
            Task::TempLoop => self.temp_loop(now, sink),
            Task::PwmPeriod(device) => self.pwm_period(now, device, sink),
            Task::PwmOff { device, gen } => {
                if gen == self.pwm_gen[device.index()] {
                    self.set_gate(device, Level::Low, sink);
                }
            }
            Task::Status => {
                self.emit_status(sink);
                if !matches!(self.state, FwState::Finished) {
                    self.schedule(
                        now + SimDuration::from_millis(self.config.status_period_ms),
                        Task::Status,
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Program execution
    // ------------------------------------------------------------------

    fn advance_program(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        if self.block != Block::None || !matches!(self.state, FwState::Running) {
            return;
        }
        loop {
            let Some(cmd) = self.program.commands().get(self.pc).cloned() else {
                self.state = FwState::Finished;
                return;
            };
            self.pc += 1;
            self.commands_executed += 1;
            match cmd {
                GCommand::Move {
                    rapid: _,
                    x,
                    y,
                    z,
                    e,
                    feedrate,
                } => {
                    if let Some(f) = feedrate {
                        self.feedrate_mm_s = f / 60.0;
                    }
                    if self.begin_move(now, [x, y, z], e, sink) {
                        self.block = Block::Move;
                        return;
                    }
                    // Zero-length move: keep going.
                }
                GCommand::Dwell { milliseconds } => {
                    self.block = Block::Move;
                    let gen = self.bump_move_gen();
                    self.schedule(
                        now + SimDuration::from_secs_f64(milliseconds.max(0.0) / 1000.0),
                        Task::MoveDone { gen },
                    );
                    // Dwell uses the move-completion path with no executor.
                    self.current_move = Some(MoveExec::new([0; 4], 0.0, 1.0, 1.0, now, 1.0));
                    return;
                }
                GCommand::Home { x, y, z } => {
                    let mut queue = VecDeque::new();
                    if x {
                        queue.push_back(Axis::X);
                    }
                    if y {
                        queue.push_back(Axis::Y);
                    }
                    if z {
                        queue.push_back(Axis::Z);
                    }
                    if queue.is_empty() {
                        continue;
                    }
                    self.block = Block::Move;
                    self.start_homing(now, queue, sink);
                    return;
                }
                GCommand::AbsolutePositioning => {
                    self.absolute = true;
                    self.e_absolute = true;
                }
                GCommand::RelativePositioning => {
                    self.absolute = false;
                    self.e_absolute = false;
                }
                GCommand::AbsoluteExtrusion => self.e_absolute = true,
                GCommand::RelativeExtrusion => self.e_absolute = false,
                GCommand::SetPosition { x, y, z, e } => {
                    for (axis, v) in [(Axis::X, x), (Axis::Y, y), (Axis::Z, z), (Axis::E, e)] {
                        if let Some(v) = v {
                            let i = axis.index();
                            self.origin_steps[i] =
                                self.pos_steps[i] as f64 - v * self.config.steps_per_mm[i];
                            self.logical_mm[i] = v;
                        }
                    }
                }
                GCommand::SetHotendTemp { celsius, wait } => {
                    let current = self.read_temp(HeaterId::Hotend);
                    self.hotend.set_target(now, celsius, current);
                    if wait && celsius > 0.0 {
                        self.block = Block::WaitTemp(HeaterId::Hotend);
                        return;
                    }
                }
                GCommand::SetBedTemp { celsius, wait } => {
                    let current = self.read_temp(HeaterId::Bed);
                    self.bed.set_target(now, celsius, current);
                    if wait && celsius > 0.0 {
                        self.block = Block::WaitTemp(HeaterId::Bed);
                        return;
                    }
                }
                GCommand::FanOn { duty } => self.pwm_duty[Device::Fan.index()] = duty,
                GCommand::FanOff => self.pwm_duty[Device::Fan.index()] = 0,
                GCommand::EnableSteppers => {
                    for axis in Axis::ALL {
                        self.set_enable(axis, true, sink);
                    }
                }
                GCommand::DisableSteppers => {
                    for axis in Axis::ALL {
                        self.set_enable(axis, false, sink);
                    }
                }
                GCommand::Raw { .. } => {}
            }
        }
    }

    /// Computes and starts a motion segment. Returns `false` when the
    /// segment has no steps.
    fn begin_move(
        &mut self,
        now: Tick,
        xyz: [Option<f64>; 3],
        e: Option<f64>,
        sink: &mut ActionSink<SignalEvent>,
    ) -> bool {
        let mut target = self.logical_mm;
        for (i, t) in xyz.into_iter().enumerate() {
            if let Some(t) = t {
                target[i] = if self.absolute {
                    t
                } else {
                    self.logical_mm[i] + t
                };
            }
        }
        if let Some(t) = e {
            target[3] = if self.e_absolute {
                t
            } else {
                self.logical_mm[3] + t
            };
        }
        let axis_mm: [f64; 4] = std::array::from_fn(|i| target[i] - self.logical_mm[i]);
        let dist_xyz = (axis_mm[0].powi(2) + axis_mm[1].powi(2) + axis_mm[2].powi(2)).sqrt();
        let dist = if dist_xyz > 1e-9 {
            dist_xyz
        } else {
            axis_mm[3].abs()
        };

        let mut steps = [0i64; 4];
        for i in 0..4 {
            let target_steps =
                (self.origin_steps[i] + target[i] * self.config.steps_per_mm[i]).round() as i64;
            steps[i] = target_steps - self.pos_steps[i];
        }
        if steps.iter().all(|s| *s == 0) {
            self.logical_mm = target;
            return false;
        }

        let v_req = if self.feedrate_mm_s > 0.0 {
            self.feedrate_mm_s
        } else {
            self.config.default_feedrate_mm_s
        };
        let v = cap_feedrate(dist, axis_mm, v_req, self.config.max_speed_mm_s).max(0.1);

        self.launch_move(now, steps, dist.max(1e-6), v, sink);
        self.logical_mm = target;
        true
    }

    /// Low-level move launch shared by program moves and homing.
    fn launch_move(
        &mut self,
        now: Tick,
        steps: [i64; 4],
        dist_mm: f64,
        v_mm_s: f64,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        // Auto-enable drivers for moving axes (Marlin behaviour).
        for axis in Axis::ALL {
            if steps[axis.index()] != 0 {
                self.set_enable(axis, true, sink);
            }
        }
        // DIR setup.
        let mut dir_changed = false;
        for axis in Axis::ALL {
            let i = axis.index();
            if steps[i] == 0 {
                continue;
            }
            let level = Level::from(steps[i] > 0);
            if self.dir_emitted[i] != Some(level) {
                self.dir_emitted[i] = Some(level);
                sink.send(PORT_CTRL, SignalEvent::logic(axis.dir_pin(), level));
                dir_changed = true;
            }
        }
        let start = now
            + SimDuration::from_micros(if dir_changed {
                self.config.dir_setup_us
            } else {
                0
            });
        let jitter = self.next_jitter();
        let exec = MoveExec::new(
            steps,
            dist_mm,
            v_mm_s,
            self.config.acceleration_mm_s2,
            start,
            jitter,
        );
        let gen = self.bump_move_gen();
        let first = exec.peek_tick();
        let end = exec.end_tick();
        self.current_move = Some(exec);
        match first {
            Some(t) => self.schedule(t, Task::Step { gen }),
            None => self.schedule(end, Task::MoveDone { gen }),
        }
    }

    fn next_jitter(&mut self) -> f64 {
        let sigma = self.config.jitter_sigma;
        if sigma <= 0.0 {
            return 1.0;
        }
        let g = self
            .jitter_rng
            .gaussian(sigma)
            .clamp(-3.0 * sigma, 3.0 * sigma);
        (1.0 + g).max(0.5)
    }

    fn bump_move_gen(&mut self) -> u64 {
        self.move_gen += 1;
        self.move_gen
    }

    fn step_pulse(&mut self, now: Tick, gen: u64, sink: &mut ActionSink<SignalEvent>) {
        if gen != self.move_gen {
            return; // stale task from an aborted move
        }
        let Some(exec) = self.current_move.as_mut() else {
            return;
        };
        let Some((tick, mask)) = exec.next_step() else {
            let end = exec.end_tick();
            self.schedule(end.max(now), Task::MoveDone { gen });
            return;
        };
        // This task was scheduled for exactly this step's tick.
        debug_assert!(tick <= now, "step task fired before its schedule");
        let directions = exec.directions;
        let next = exec.peek_tick();
        let end = exec.end_tick();
        for axis in Axis::ALL {
            let i = axis.index();
            if mask[i] {
                sink.send(PORT_CTRL, SignalEvent::logic(axis.step_pin(), Level::High));
                self.pos_steps[i] += i64::from(directions[i]);
            }
        }
        self.schedule(
            now + SimDuration::from_micros(self.config.step_pulse_us),
            Task::StepLow { mask },
        );
        match next {
            Some(t) => self.schedule(t, Task::Step { gen }),
            None => self.schedule(end.max(now), Task::MoveDone { gen }),
        }
    }

    fn move_completed(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        match std::mem::replace(&mut self.context, ExecContext::Program) {
            ExecContext::Program => {
                self.block = Block::None;
                self.schedule(now, Task::Advance);
            }
            ExecContext::Homing(h) => self.homing_move_done(now, h, sink),
        }
    }

    // ------------------------------------------------------------------
    // Homing
    // ------------------------------------------------------------------

    fn start_homing(
        &mut self,
        now: Tick,
        mut queue: VecDeque<Axis>,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        let Some(axis) = queue.pop_front() else {
            // All axes done.
            self.homed = true;
            self.block = Block::None;
            self.context = ExecContext::Program;
            self.schedule(now, Task::Advance);
            return;
        };
        let state = HomingState {
            queue,
            current: axis,
            phase: HomingPhase::FastApproach,
        };
        if self.endstop_high[axis.index()] {
            // Already pressed: skip straight to back-off.
            self.context = ExecContext::Homing(state);
            self.homing_begin_backoff(now, axis, sink);
        } else {
            self.context = ExecContext::Homing(state);
            self.homing_begin_approach(now, axis, self.config.homing_speed_mm_s, sink);
        }
    }

    fn homing_begin_approach(
        &mut self,
        now: Tick,
        axis: Axis,
        speed: f64,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        let i = axis.index();
        let travel = self.config.homing_max_travel_mm;
        let steps_count = (travel * self.config.steps_per_mm[i]).round() as i64;
        let mut steps = [0i64; 4];
        steps[i] = -steps_count;
        self.launch_move(now, steps, travel, speed, sink);
    }

    fn homing_begin_backoff(&mut self, now: Tick, axis: Axis, sink: &mut ActionSink<SignalEvent>) {
        if let ExecContext::Homing(h) = &mut self.context {
            h.phase = HomingPhase::Backoff;
        }
        let i = axis.index();
        let d = self.config.homing_backoff_mm;
        let mut steps = [0i64; 4];
        steps[i] = (d * self.config.steps_per_mm[i]).round() as i64;
        let speed = self.config.homing_speed_mm_s / 2.0;
        self.launch_move(now, steps, d, speed, sink);
    }

    fn homing_begin_rebump(&mut self, now: Tick, axis: Axis, sink: &mut ActionSink<SignalEvent>) {
        if let ExecContext::Homing(h) = &mut self.context {
            h.phase = HomingPhase::SlowApproach;
        }
        let i = axis.index();
        let d = self.config.homing_backoff_mm * 2.0;
        let mut steps = [0i64; 4];
        steps[i] = -((d * self.config.steps_per_mm[i]).round() as i64);
        self.launch_move(now, steps, d, self.config.homing_bump_speed_mm_s, sink);
    }

    /// Endstop rising edge observed.
    fn on_endstop_hit(&mut self, now: Tick, axis: Axis, sink: &mut ActionSink<SignalEvent>) {
        let ExecContext::Homing(h) = &self.context else {
            return; // endstop chatter outside homing is ignored
        };
        if h.current != axis {
            return;
        }
        match h.phase {
            HomingPhase::FastApproach => {
                self.abort_move();
                self.homing_begin_backoff(now, axis, sink);
            }
            HomingPhase::SlowApproach => {
                self.abort_move();
                self.zero_axis(axis);
                let h = match std::mem::replace(&mut self.context, ExecContext::Program) {
                    ExecContext::Homing(h) => h,
                    ExecContext::Program => unreachable!("checked above"),
                };
                self.start_homing(now, h.queue, sink);
            }
            HomingPhase::Backoff => {}
        }
    }

    fn homing_move_done(&mut self, now: Tick, h: HomingState, sink: &mut ActionSink<SignalEvent>) {
        match h.phase {
            HomingPhase::Backoff => {
                let axis = h.current;
                self.context = ExecContext::Homing(h);
                self.homing_begin_rebump(now, axis, sink);
            }
            HomingPhase::FastApproach | HomingPhase::SlowApproach => {
                // Ran the whole travel without touching the switch.
                self.kill(FirmwareError::EndstopNotFound(h.current), sink);
            }
        }
    }

    fn abort_move(&mut self) {
        self.current_move = None;
        self.move_gen += 1; // invalidates pending Step / MoveDone tasks
    }

    fn zero_axis(&mut self, axis: Axis) {
        let i = axis.index();
        self.pos_steps[i] = 0;
        self.origin_steps[i] = 0.0;
        self.logical_mm[i] = 0.0;
    }

    // ------------------------------------------------------------------
    // Heaters, fan, PWM
    // ------------------------------------------------------------------

    fn read_temp(&self, heater: HeaterId) -> f64 {
        match heater {
            HeaterId::Hotend => self.adc_counts[0]
                .map(|c| self.hotend_table.counts_to_celsius(c))
                .unwrap_or(25.0),
            HeaterId::Bed => self.adc_counts[1]
                .map(|c| self.bed_table.counts_to_celsius(c))
                .unwrap_or(25.0),
        }
    }

    fn temp_loop(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        // Run the two control loops if we have ADC data.
        let mut fault = None;
        if self.adc_counts[0].is_some() {
            let t = self.read_temp(HeaterId::Hotend);
            match self.hotend.update(now, t) {
                Ok(duty) => self.pwm_duty[Device::Hotend.index()] = duty,
                Err(e) => fault = Some(e),
            }
        }
        if fault.is_none() && self.adc_counts[1].is_some() {
            let t = self.read_temp(HeaterId::Bed);
            match self.bed.update(now, t) {
                Ok(duty) => self.pwm_duty[Device::Bed.index()] = duty,
                Err(e) => fault = Some(e),
            }
        }
        if let Some(e) = fault {
            self.kill(e, sink);
            return;
        }
        // Release M109/M190 waits.
        if let Block::WaitTemp(h) = self.block {
            let reached = match h {
                HeaterId::Hotend => self.hotend.reached(),
                HeaterId::Bed => self.bed.reached(),
            };
            if reached {
                self.block = Block::None;
                self.schedule(now, Task::Advance);
            }
        }
        // Marlin keeps regulating and protecting after the print ends
        // (until a kill); the harness's drain window bounds the run.
        self.schedule(
            now + SimDuration::from_millis(self.config.temp_loop_ms),
            Task::TempLoop,
        );
    }

    fn pwm_period(&mut self, now: Tick, device: Device, sink: &mut ActionSink<SignalEvent>) {
        let duty = self.pwm_duty[device.index()];
        let period = SimDuration::from_millis(self.config.pwm_period_ms);
        self.pwm_gen[device.index()] += 1;
        let gen = self.pwm_gen[device.index()];
        match duty {
            0 => self.set_gate(device, Level::Low, sink),
            255 => self.set_gate(device, Level::High, sink),
            d => {
                self.set_gate(device, Level::High, sink);
                let high = period.mul_f64(f64::from(d) / 255.0);
                self.schedule(now + high, Task::PwmOff { device, gen });
            }
        }
        self.schedule(now + period, Task::PwmPeriod(device));
    }

    fn set_gate(&mut self, device: Device, level: Level, sink: &mut ActionSink<SignalEvent>) {
        if self.gate_emitted[device.index()] != Some(level) {
            self.gate_emitted[device.index()] = Some(level);
            sink.send(PORT_CTRL, SignalEvent::logic(device.pin(), level));
        }
    }

    fn set_enable(&mut self, axis: Axis, enabled: bool, sink: &mut ActionSink<SignalEvent>) {
        let level = if enabled { Level::Low } else { Level::High };
        let i = axis.index();
        if self.en_emitted[i] != Some(level) {
            self.en_emitted[i] = Some(level);
            sink.send(PORT_CTRL, SignalEvent::logic(axis.enable_pin(), level));
        }
    }

    fn emit_status(&mut self, sink: &mut ActionSink<SignalEvent>) {
        let line = format!(
            "T:{:.1} B:{:.1} X:{:.2} Y:{:.2} Z:{:.2}\n",
            self.read_temp(HeaterId::Hotend),
            self.read_temp(HeaterId::Bed),
            self.logical_mm[0],
            self.logical_mm[1],
            self.logical_mm[2],
        );
        for byte in line.bytes() {
            sink.send(
                PORT_CTRL,
                SignalEvent::Uart {
                    direction: UartDirection::ControllerToDisplay,
                    byte,
                },
            );
        }
    }

    /// Marlin `kill()`: heaters off, steppers disabled, machine halted.
    fn kill(&mut self, error: FirmwareError, sink: &mut ActionSink<SignalEvent>) {
        for d in Device::ALL {
            self.pwm_duty[d.index()] = 0;
            self.set_gate(d, Level::Low, sink);
        }
        for axis in Axis::ALL {
            self.set_enable(axis, false, sink);
        }
        self.abort_move();
        self.agenda.clear();
        self.state = FwState::Halted(error);
    }
}

impl SimComponent for Firmware {
    type Payload = SignalEvent;

    fn start(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        Firmware::start(self, now, sink);
    }

    fn on_event(
        &mut self,
        now: Tick,
        _port: InPort,
        payload: SignalEvent,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        self.on_feedback(now, payload, sink);
    }

    fn on_tick(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        Firmware::on_tick(self, now, sink);
    }
}

/// Maps an analog channel to its slot in `adc_counts`.
fn adc_index(channel: AnalogChannel) -> usize {
    match channel {
        AnalogChannel::HotendTherm => 0,
        AnalogChannel::BedTherm => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_des::SinkAction;
    use offramps_gcode::parse;

    fn fw(src: &str) -> Firmware {
        Firmware::new(
            FirmwareConfig::deterministic(),
            Arc::new(parse(src).unwrap()),
            42,
        )
    }

    /// Drains `sink`, appending emitted events to `events` and returning
    /// the earliest requested wake time, if any.
    fn drain(
        sink: &mut ActionSink<SignalEvent>,
        events: &mut Vec<(Tick, SignalEvent)>,
    ) -> Option<Tick> {
        let mut next_wake: Option<Tick> = None;
        for a in sink.drain() {
            match a {
                SinkAction::Send { at, payload, .. } => events.push((at, payload)),
                SinkAction::WakeAt(t) => next_wake = Some(next_wake.map_or(t, |w: Tick| w.min(t))),
            }
        }
        next_wake
    }

    /// Runs the firmware open-loop (no plant): feeds wake-ups until it
    /// finishes, collecting all emitted events. Panics after too many
    /// iterations (a stuck machine).
    pub(crate) fn run_open_loop(fw: &mut Firmware) -> Vec<(Tick, SignalEvent)> {
        let mut events = Vec::new();
        let mut sink = ActionSink::new();
        sink.begin(Tick::ZERO);
        fw.start(Tick::ZERO, &mut sink);
        let mut guard = 0u64;
        loop {
            let next_wake = drain(&mut sink, &mut events);
            match fw.state() {
                FwState::Running => {}
                _ => break,
            }
            let Some(t) = next_wake else { break };
            sink.begin(t);
            fw.on_tick(t, &mut sink);
            guard += 1;
            assert!(guard < 10_000_000, "firmware stuck");
        }
        events
    }

    fn count_rising(events: &[(Tick, SignalEvent)], pin: Pin) -> usize {
        let mut last = Level::Low;
        let mut n = 0;
        for (_, ev) in events {
            if let SignalEvent::Logic(l) = ev {
                if l.pin == pin {
                    if l.level == Level::High && last == Level::Low {
                        n += 1;
                    }
                    last = l.level;
                }
            }
        }
        n
    }

    #[test]
    fn simple_move_emits_exact_steps() {
        let mut f = fw("G90\nM83\nG1 X5 F600\n");
        let events = run_open_loop(&mut f);
        assert!(matches!(f.state(), FwState::Finished));
        // 5mm * 100 steps/mm = 500 rising edges on X_STEP.
        assert_eq!(count_rising(&events, Pin::XStep), 500);
        assert_eq!(f.step_counts()[0], 500);
    }

    #[test]
    fn relative_and_absolute_mix() {
        let mut f = fw("G90\nG1 X5 F600\nG91\nG1 X-2\nG90\nG1 X10\n");
        let _ = run_open_loop(&mut f);
        assert_eq!(f.step_counts()[0], 1000, "final logical X=10 -> 1000 steps");
        assert_eq!(f.logical_position()[0], 10.0);
    }

    #[test]
    fn diagonal_move_steps_both_axes() {
        let mut f = fw("G90\nG1 X3 Y4 F1200\n");
        let events = run_open_loop(&mut f);
        assert_eq!(count_rising(&events, Pin::XStep), 300);
        assert_eq!(count_rising(&events, Pin::YStep), 400);
    }

    #[test]
    fn g92_rebases_extrusion() {
        let mut f = fw("G90\nM82\nG1 E2 F300\nG92 E0\nG1 E2 F300\n");
        let _ = run_open_loop(&mut f);
        // 2mm then re-zeroed then 2mm more: 4mm total * 280 = 1120 steps.
        assert_eq!(f.step_counts()[3], 1120);
    }

    #[test]
    fn dir_pin_reflects_sign() {
        let mut f = fw("G90\nG1 X5 F600\nG1 X2 F600\n");
        let events = run_open_loop(&mut f);
        let dirs: Vec<Level> = events
            .iter()
            .filter_map(|(_, e)| e.as_logic())
            .filter(|l| l.pin == Pin::XDir)
            .map(|l| l.level)
            .collect();
        assert_eq!(dirs, vec![Level::High, Level::Low]);
    }

    #[test]
    fn steppers_enabled_on_move_disabled_on_m84() {
        let mut f = fw("G90\nG1 X1 F600\nM84\n");
        let events = run_open_loop(&mut f);
        let en: Vec<Level> = events
            .iter()
            .filter_map(|(_, e)| e.as_logic())
            .filter(|l| l.pin == Pin::XEnable)
            .map(|l| l.level)
            .collect();
        assert_eq!(en, vec![Level::Low, Level::High]);
    }

    #[test]
    fn fan_pwm_duty() {
        let mut f = fw("M106 S128\nG4 P100\nM107\nG4 P50\n");
        let events = run_open_loop(&mut f);
        assert!(
            count_rising(&events, Pin::FanPwm) >= 3,
            "several PWM periods"
        );
    }

    #[test]
    fn dwell_blocks_then_finishes() {
        let mut f = fw("G4 P250\n");
        let _ = run_open_loop(&mut f);
        assert!(matches!(f.state(), FwState::Finished));
    }

    #[test]
    fn status_reports_on_uart() {
        let mut f = fw("G4 P2500\n");
        let events = run_open_loop(&mut f);
        let uart_bytes = events
            .iter()
            .filter(|(_, e)| matches!(e, SignalEvent::Uart { .. }))
            .count();
        assert!(
            uart_bytes > 30,
            "two status lines expected, got {uart_bytes}"
        );
    }

    #[test]
    fn m109_waits_for_adc_driven_temperature() {
        let mut f = fw("M109 S210\n");
        let mut sink = ActionSink::new();
        sink.begin(Tick::ZERO);
        f.start(Tick::ZERO, &mut sink);
        // Loop: respond to every wake; feed hot ADC counts after 1s.
        let hot_counts = {
            // ~210C on the Semitec table.
            let t_k = 210.0 + 273.15;
            let r = 100_000.0 * (4267.0_f64 * (1.0 / t_k - 1.0 / 298.15)).exp();
            (r / (r + 4_700.0) * 1023.0).round() as u16
        };
        let cold_counts = 1000u16;
        let mut now = Tick::ZERO;
        let mut guard = 0;
        let mut scratch = Vec::new();
        while matches!(f.state(), FwState::Running) && guard < 100_000 {
            guard += 1;
            let wake = drain(&mut sink, &mut scratch);
            let Some(t) = wake else { break };
            now = t;
            // Feed ADC before each tick.
            let counts = if now < Tick::from_secs(1) {
                cold_counts
            } else {
                hot_counts
            };
            sink.begin(now);
            f.on_feedback(
                now,
                SignalEvent::Adc {
                    channel: AnalogChannel::HotendTherm,
                    counts,
                },
                &mut sink,
            );
            f.on_feedback(
                now,
                SignalEvent::Adc {
                    channel: AnalogChannel::BedTherm,
                    counts: 1000,
                },
                &mut sink,
            );
            f.on_tick(now, &mut sink);
        }
        assert!(
            matches!(f.state(), FwState::Finished),
            "M109 must complete once hot: {:?}",
            f.state()
        );
        assert!(now >= Tick::from_secs(1), "must not finish while cold");
    }

    #[test]
    fn heating_failure_kills_machine() {
        // M109 but the ADC always reads ambient: watchdog must kill.
        let mut f = fw("M109 S210\nG1 X5 F600\n");
        let mut sink = ActionSink::new();
        sink.begin(Tick::ZERO);
        f.start(Tick::ZERO, &mut sink);
        let mut guard = 0;
        let mut scratch = Vec::new();
        while matches!(f.state(), FwState::Running) && guard < 100_000 {
            guard += 1;
            let wake = drain(&mut sink, &mut scratch);
            let Some(t) = wake else { break };
            sink.begin(t);
            f.on_feedback(
                t,
                SignalEvent::Adc {
                    channel: AnalogChannel::HotendTherm,
                    counts: 1000,
                },
                &mut sink,
            );
            f.on_feedback(
                t,
                SignalEvent::Adc {
                    channel: AnalogChannel::BedTherm,
                    counts: 1000,
                },
                &mut sink,
            );
            f.on_tick(t, &mut sink);
        }
        assert!(
            matches!(
                f.state(),
                FwState::Halted(FirmwareError::HeatingFailed(HeaterId::Hotend))
            ),
            "got {:?}",
            f.state()
        );
        // No motion should have happened after the kill.
        assert_eq!(f.step_counts()[0], 0);
    }

    #[test]
    fn feedrate_is_sticky() {
        let mut f = fw("G90\nG1 X1 F600\nG1 X2\n");
        let _ = run_open_loop(&mut f);
        assert!(matches!(f.state(), FwState::Finished));
    }

    #[test]
    fn unknown_commands_skipped() {
        let mut f = fw("M115\nM73 P10\nG1 X1 F600\n");
        let _ = run_open_loop(&mut f);
        assert!(matches!(f.state(), FwState::Finished));
        assert_eq!(f.step_counts()[0], 100);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use offramps_des::DetRng;
    use offramps_gcode::parse;

    /// For any sequence of absolute in-range moves, the firmware's
    /// final step counters equal the last target times steps/mm —
    /// no steps are ever lost or duplicated in open loop.
    #[test]
    fn step_count_equals_target_over_random_programs() {
        for seed in 0u64..24 {
            let mut rng = DetRng::from_seed(seed);
            let n = rng.uniform_u64(1, 6) as usize;
            let targets: Vec<(u32, u32)> = (0..n)
                .map(|_| {
                    (
                        rng.uniform_u64(0, 200) as u32,
                        rng.uniform_u64(0, 200) as u32,
                    )
                })
                .collect();
            let mut src = String::from("G90\nM83\n");
            for (x, y) in &targets {
                src.push_str(&format!(
                    "G1 X{} Y{} F6000\n",
                    *x as f64 / 10.0,
                    *y as f64 / 10.0
                ));
            }
            let mut fw = Firmware::new(
                crate::FirmwareConfig::deterministic(),
                std::sync::Arc::new(parse(&src).unwrap()),
                1,
            );
            let events = super::tests::run_open_loop(&mut fw);
            drop(events);
            let (lx, ly) = *targets.last().unwrap();
            assert_eq!(
                fw.step_counts()[0],
                (lx as f64 / 10.0 * 100.0).round() as i64,
                "seed {seed}"
            );
            assert_eq!(
                fw.step_counts()[1],
                (ly as f64 / 10.0 * 100.0).round() as i64,
                "seed {seed}"
            );
        }
    }
}

//! `offramps-store` — a dependency-free, content-addressed, sharded
//! on-disk record store.
//!
//! Campaign-scale evaluation reruns the same scenario matrix over and
//! over with small deltas: one more corpus part, one new attack spec,
//! one detector tweak. The store turns those reruns incremental. Every
//! record is addressed by a [`Fingerprint`] of its *canonical key* — a
//! string spelling out every input that influenced the value — and
//! appended to a shard log chosen by the fingerprint's top byte. An
//! in-memory index (rebuilt by scanning the shard logs at
//! [`Store::open`]) makes lookups O(1); a rerun only recomputes the
//! scenarios whose keys are not yet present.
//!
//! Design points:
//!
//! * **Content addressing, verified.** The full key is stored with each
//!   record and compared on [`Store::get`]; a hash collision degrades
//!   to a cache miss, never to a wrong value.
//! * **Append-only shard logs.** Records are single escaped lines in
//!   `shards/<xx>.log` (256 shards by fingerprint prefix). Rewritten
//!   keys append a new line; the last line wins on reload. A torn or
//!   malformed line is skipped (and counted), never fatal.
//! * **Deterministic iteration.** The index is a `BTreeMap` keyed by
//!   fingerprint, so [`Store::iter`] walks records in a stable order
//!   regardless of insertion history — analytics built on it are
//!   byte-reproducible.
//! * **No invalidation logic.** Values never expire; changing any
//!   fingerprinted input changes the key, so stale records simply stop
//!   being addressed. Bump a key-side format salt to retire a whole
//!   generation at once.
//!
//! # Example
//!
//! ```
//! use offramps_store::Store;
//!
//! let dir = std::env::temp_dir().join("offramps-store-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut store = Store::open(&dir).unwrap();
//! assert!(store.get("scenario A").is_none());
//! store.put("scenario A", "result payload").unwrap();
//! assert_eq!(store.get("scenario A"), Some("result payload"));
//!
//! // Reopening rebuilds the index from the shard logs.
//! let store = Store::open(&dir).unwrap();
//! assert_eq!(store.len(), 1);
//! assert_eq!(store.get("scenario A"), Some("result payload"));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fingerprint;

pub use fingerprint::Fingerprint;

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Number of shard logs a store fans its records over (fingerprint top
/// byte).
pub const SHARD_COUNT: usize = 256;

/// On-disk record format tag; bump when the line layout changes.
/// Records with an unknown tag are ignored on load (forward
/// compatibility), so a downgrade sees misses, not corruption.
const RECORD_TAG: &str = "v1";

#[derive(Debug, Clone)]
struct Record {
    key: String,
    value: String,
}

/// Rollup of the shard-log scan [`Store::open`] performed: how many
/// lines it walked and what became of each. `records` counts lines that
/// parsed; `superseded` counts parsed lines that an earlier line's
/// fingerprint already occupied (rewrite history, last wins); `torn`
/// and `foreign` partition the skipped lines into damage (bad UTF-8,
/// framing, fingerprint/key disagreement) versus other format
/// generations (unknown record tag). Purely a function of the bytes on
/// disk, so it is deterministic for a given store state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Non-empty lines walked across all shard logs.
    pub lines: usize,
    /// Lines that parsed into a record (including superseded ones).
    pub records: usize,
    /// Parsed lines overwritten by a later line for the same key.
    pub superseded: usize,
    /// Damaged lines skipped: torn writes, bad escapes or UTF-8,
    /// fingerprint/key mismatches.
    pub torn: usize,
    /// Well-framed lines in a foreign format generation (unknown tag).
    pub foreign: usize,
}

/// A content-addressed record store rooted at a directory.
///
/// See the [crate docs](crate) for layout and guarantees. All methods
/// take the whole store; writers serialize through `&mut self` —
/// callers running producers in parallel collect results first and
/// append them in a deterministic order.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    index: BTreeMap<Fingerprint, Record>,
    scan: ScanStats,
}

impl Store {
    /// Opens (creating if needed) the store rooted at `root`, scanning
    /// every shard log into the in-memory index.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the directory tree or
    /// reading shard logs. Malformed *lines* are skipped and counted
    /// ([`Store::malformed_lines`]), not errors.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(root.join("shards"))?;
        let mut store = Store {
            root,
            index: BTreeMap::new(),
            scan: ScanStats::default(),
        };
        for shard in 0..SHARD_COUNT {
            let path = store.shard_path(shard as u8);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e),
            };
            // Split on raw newlines and validate UTF-8 per *line*: one
            // corrupted record must degrade to one skipped line, never
            // poison the whole store.
            for raw in bytes.split(|&b| b == b'\n') {
                if raw.is_empty() {
                    continue;
                }
                store.scan.lines += 1;
                match std::str::from_utf8(raw).ok().map(parse_line) {
                    Some(ParsedLine::Record(fp, record)) => {
                        store.scan.records += 1;
                        if store.index.insert(fp, record).is_some() {
                            store.scan.superseded += 1;
                        }
                    }
                    Some(ParsedLine::Foreign) => store.scan.foreign += 1,
                    Some(ParsedLine::Torn) | None => store.scan.torn += 1,
                }
            }
        }
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of distinct records indexed.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Lines skipped while loading (torn writes, foreign format tags).
    pub fn malformed_lines(&self) -> usize {
        self.scan.torn + self.scan.foreign
    }

    /// The rollup of the open-time shard-log scan. Frozen at
    /// [`Store::open`]: later [`Store::put`]s do not move it.
    pub fn scan_stats(&self) -> ScanStats {
        self.scan
    }

    /// Looks up the value stored under `key`, verifying the full key —
    /// a fingerprint collision reads as a miss.
    pub fn get(&self, key: &str) -> Option<&str> {
        let record = self.index.get(&Fingerprint::of(key))?;
        (record.key == key).then_some(record.value.as_str())
    }

    /// Whether a record for `key` exists.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Stores `value` under `key`, appending to the key's shard log.
    /// Re-putting an identical record is a no-op; a different value for
    /// an existing key appends a superseding line (last wins on
    /// reload).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors opening or appending the shard log.
    pub fn put(&mut self, key: &str, value: &str) -> io::Result<()> {
        let fp = Fingerprint::of(key);
        if let Some(existing) = self.index.get(&fp) {
            if existing.key == key && existing.value == value {
                return Ok(());
            }
        }
        let line = format!(
            "{RECORD_TAG}\t{}\t{}\t{}\n",
            fp.hex(),
            escape_field(key),
            escape_field(value)
        );
        let mut file = fs::File::options()
            .append(true)
            .create(true)
            .open(self.shard_path(fp.shard()))?;
        file.write_all(line.as_bytes())?;
        self.index.insert(
            fp,
            Record {
                key: key.to_string(),
                value: value.to_string(),
            },
        );
        Ok(())
    }

    /// All records as `(key, value)` pairs, in fingerprint order —
    /// stable across insertion order and reloads.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.index
            .values()
            .map(|r| (r.key.as_str(), r.value.as_str()))
    }

    /// Shard logs currently on disk (created lazily on first write).
    pub fn shard_files(&self) -> usize {
        (0..SHARD_COUNT)
            .filter(|&s| self.shard_path(s as u8).exists())
            .count()
    }

    fn shard_path(&self, shard: u8) -> PathBuf {
        self.root.join("shards").join(format!("{shard:02x}.log"))
    }
}

/// Escapes a field for the one-line record format: backslash, tab, LF
/// and CR — everything the line/field framing uses.
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_field`]; `None` on a dangling or unknown escape.
fn unescape_field(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// What one shard-log line turned out to be.
enum ParsedLine {
    /// A well-formed record in the current format.
    Record(Fingerprint, Record),
    /// A line carrying an unknown format tag — another generation's
    /// record, skipped for forward compatibility.
    Foreign,
    /// Damage: wrong field count, bad escapes, fingerprint/key
    /// disagreement.
    Torn,
}

/// Classifies one shard-log line (see [`ParsedLine`]).
fn parse_line(line: &str) -> ParsedLine {
    let mut fields = line.split('\t');
    match fields.next() {
        Some(tag) if tag == RECORD_TAG => {}
        // An unknown tag only reads as "foreign format" when the line
        // is at least framed like a record (tag field + payload);
        // tab-less garbage is damage.
        Some(_) if line.contains('\t') => return ParsedLine::Foreign,
        _ => return ParsedLine::Torn,
    }
    let parsed = (|| {
        let fp = Fingerprint::from_hex(fields.next()?)?;
        let key = unescape_field(fields.next()?)?;
        let value = unescape_field(fields.next()?)?;
        if fields.next().is_some() || Fingerprint::of(&key) != fp {
            return None;
        }
        Some((fp, Record { key, value }))
    })();
    match parsed {
        Some((fp, record)) => ParsedLine::Record(fp, record),
        None => ParsedLine::Torn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("offramps-store-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_awkward_content() {
        let root = temp_root("roundtrip");
        let mut store = Store::open(&root).unwrap();
        let cases = [
            ("plain", "value"),
            (
                "tabs\tand\nnewlines\r",
                "payload with\ttab and \\backslash\\ and\nnewline",
            ),
            ("unicode 😀 κλειδί", "{\n  \"json\": \"läuft\"\n}"),
            ("", "empty key is a key too"),
        ];
        for (k, v) in cases {
            store.put(k, v).unwrap();
        }
        for (k, v) in cases {
            assert_eq!(store.get(k), Some(v), "key {k:?}");
        }
        // Survives a reload.
        let reloaded = Store::open(&root).unwrap();
        assert_eq!(reloaded.len(), cases.len());
        assert_eq!(reloaded.malformed_lines(), 0);
        for (k, v) in cases {
            assert_eq!(reloaded.get(k), Some(v), "reloaded key {k:?}");
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rewrite_last_wins_and_identical_put_is_noop() {
        let root = temp_root("rewrite");
        let mut store = Store::open(&root).unwrap();
        store.put("k", "first").unwrap();
        store.put("k", "first").unwrap(); // no-op
        store.put("k", "second").unwrap();
        assert_eq!(store.get("k"), Some("second"));
        assert_eq!(store.len(), 1);

        let reloaded = Store::open(&root).unwrap();
        assert_eq!(reloaded.get("k"), Some("second"), "last line wins");
        // The no-op put must not have appended: shard log has 2 lines.
        let shard = reloaded.shard_path(Fingerprint::of("k").shard());
        assert_eq!(fs::read_to_string(shard).unwrap().lines().count(), 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn records_shard_by_fingerprint_prefix() {
        let root = temp_root("shards");
        let mut store = Store::open(&root).unwrap();
        for i in 0..64 {
            store.put(&format!("key-{i}"), "v").unwrap();
        }
        assert!(
            store.shard_files() > 16,
            "{} shard files",
            store.shard_files()
        );
        for i in 0..64 {
            let key = format!("key-{i}");
            let shard = store.shard_path(Fingerprint::of(&key).shard());
            let log = fs::read_to_string(shard).unwrap();
            assert!(log.contains(&Fingerprint::of(&key).hex()));
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_foreign_and_non_utf8_lines_are_skipped() {
        let root = temp_root("torn");
        let mut store = Store::open(&root).unwrap();
        store.put("good", "value").unwrap();
        let shard = store.shard_path(Fingerprint::of("good").shard());
        let mut log = fs::read(&shard).unwrap();
        log.extend_from_slice(b"v1\tdeadbeef"); // torn mid-record, no newline
        fs::write(&shard, &log).unwrap();
        let other = store.shard_path(Fingerprint::of("good").shard().wrapping_add(1));
        // A foreign future tag, a blank line (ignored, not malformed),
        // a garbage line, and a non-UTF-8 line: each skipped on its
        // own, never poisoning the rest of the store.
        let mut junk = b"v9\tsome future format\n\nnot a record\n".to_vec();
        junk.extend_from_slice(b"v1\t\xff\xfe broken utf8\n");
        fs::write(&other, &junk).unwrap();

        let reloaded = Store::open(&root).unwrap();
        assert_eq!(reloaded.get("good"), Some("value"));
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.malformed_lines(), 4);
        // The scan rollup classifies the skips: the future-tag line is
        // foreign; the torn append, garbage line and non-UTF-8 line
        // are damage.
        assert_eq!(
            reloaded.scan_stats(),
            ScanStats {
                lines: 5,
                records: 1,
                superseded: 0,
                torn: 3,
                foreign: 1,
            }
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scan_stats_count_superseded_rewrites() {
        let root = temp_root("scan-superseded");
        let mut store = Store::open(&root).unwrap();
        store.put("k", "first").unwrap();
        store.put("k", "second").unwrap();
        store.put("k", "third").unwrap();
        store.put("other", "v").unwrap();
        assert_eq!(store.scan_stats(), ScanStats::default(), "frozen at open");

        let reloaded = Store::open(&root).unwrap();
        assert_eq!(reloaded.get("k"), Some("third"));
        assert_eq!(
            reloaded.scan_stats(),
            ScanStats {
                lines: 4,
                records: 4,
                superseded: 2,
                torn: 0,
                foreign: 0,
            }
        );
        assert_eq!(reloaded.malformed_lines(), 0);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn iteration_order_is_fingerprint_sorted() {
        let root = temp_root("order");
        let mut a = Store::open(&root).unwrap();
        for i in 0..32 {
            a.put(&format!("k{i}"), &format!("v{i}")).unwrap();
        }
        let order_a: Vec<String> = a.iter().map(|(k, _)| k.to_string()).collect();
        // Insert in reverse into a fresh store: same iteration order.
        let root_b = temp_root("order-b");
        let mut b = Store::open(&root_b).unwrap();
        for i in (0..32).rev() {
            b.put(&format!("k{i}"), &format!("v{i}")).unwrap();
        }
        let order_b: Vec<String> = b.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(order_a, order_b);
        let mut sorted = order_a.clone();
        sorted.sort_by_key(|k| Fingerprint::of(k));
        assert_eq!(order_a, sorted);
        fs::remove_dir_all(&root).unwrap();
        fs::remove_dir_all(&root_b).unwrap();
    }

    #[test]
    fn collision_degrades_to_miss() {
        // Force a fake collision by planting a record whose stored key
        // differs from the probe key but shares its (planted)
        // fingerprint slot: get() must verify the key bytes.
        let root = temp_root("collision");
        let mut store = Store::open(&root).unwrap();
        store.put("real-key", "real-value").unwrap();
        let fp = Fingerprint::of("real-key");
        store.index.insert(
            fp,
            Record {
                key: "other-key".into(),
                value: "poison".into(),
            },
        );
        assert_eq!(
            store.get("real-key"),
            None,
            "key mismatch must read as a miss"
        );
        fs::remove_dir_all(&root).unwrap();
    }
}

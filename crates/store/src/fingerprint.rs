//! Content fingerprints: a canonical key string → a stable 128-bit id.
//!
//! The store is *content-addressed*: a record's identity is a hash of
//! the canonical description of everything that influenced its value
//! (for a campaign scenario: the workload spec JSON, the attack spec,
//! both seeds, the detector policy, and the store format version).
//! Change any input and the fingerprint — and therefore the shard slot
//! — changes, so stale records are never returned; they simply stop
//! being addressed.
//!
//! The hash is two independent 64-bit FNV-1a passes (the same mix the
//! workspace's `SeedSplitter` uses) with distinct offset bases,
//! concatenated to 128 bits. FNV is not cryptographic, but the store
//! also records the full key with every record and [`crate::Store::get`]
//! verifies it on lookup, so even a collision degrades to a cache miss,
//! never to a wrong value.

use std::fmt;

const FNV_PRIME: u64 = 0x1000_0000_01b3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Second-lane offset basis: the standard one xored with an arbitrary
/// odd constant so the two lanes disagree from the first byte.
const FNV_OFFSET_B: u64 = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;

fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // FNV's multiply only carries entropy upward, leaving the top byte
    // poorly dispersed for short keys — and the top byte picks the
    // shard. Finish with splitmix64's avalanche so every output bit
    // depends on every input byte.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A 128-bit content fingerprint of a canonical key string.
///
/// # Example
///
/// ```
/// use offramps_store::Fingerprint;
///
/// let fp = Fingerprint::of("scenario key v1");
/// assert_eq!(fp, Fingerprint::of("scenario key v1"));
/// assert_ne!(fp, Fingerprint::of("scenario key v2"));
/// assert_eq!(fp.hex().len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// Fingerprints a canonical key string.
    pub fn of(key: &str) -> Fingerprint {
        let bytes = key.as_bytes();
        Fingerprint {
            hi: fnv1a(FNV_OFFSET, bytes),
            lo: fnv1a(FNV_OFFSET_B, bytes),
        }
    }

    /// The 32-character lowercase hex rendering (shard files store this
    /// form).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses the [`Fingerprint::hex`] rendering back.
    pub fn from_hex(s: &str) -> Option<Fingerprint> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint { hi, lo })
    }

    /// The shard this fingerprint lands in: the top byte, so records
    /// spread uniformly over [`crate::SHARD_COUNT`] files.
    pub fn shard(&self) -> u8 {
        (self.hi >> 56) as u8
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_input_sensitive() {
        let a = Fingerprint::of("alpha");
        assert_eq!(a, Fingerprint::of("alpha"));
        assert_ne!(a, Fingerprint::of("alphb"));
        assert_ne!(a, Fingerprint::of("alpha "));
        assert_ne!(Fingerprint::of(""), Fingerprint::of("\0"));
    }

    #[test]
    fn hex_round_trips() {
        for key in ["", "x", "a much longer canonical key | with = fields"] {
            let fp = Fingerprint::of(key);
            assert_eq!(Fingerprint::from_hex(&fp.hex()), Some(fp));
            assert_eq!(fp.hex(), fp.to_string());
        }
        assert_eq!(Fingerprint::from_hex("short"), None);
        assert_eq!(Fingerprint::from_hex(&"g".repeat(32)), None);
    }

    #[test]
    fn lanes_are_independent() {
        // A single-lane collision must not imply a full collision: the
        // two bases differ, so hi(k) == hi(k') for k != k' leaves lo to
        // disagree. Spot-check that hi != lo for ordinary keys.
        for key in ["a", "b", "scenario", ""] {
            let fp = Fingerprint::of(key);
            assert_ne!(fp.hi, fp.lo, "{key:?}");
        }
    }

    #[test]
    fn shards_spread() {
        let shards: std::collections::HashSet<u8> = (0..512)
            .map(|i| Fingerprint::of(&format!("key-{i}")).shard())
            .collect();
        assert!(shards.len() > 200, "only {} shards hit", shards.len());
    }
}

//! The streaming online monitor's contract, pinned as a matrix:
//!
//! * finalized online verdicts are **identical** to the post-hoc suite
//!   scenario for scenario, and the campaign **summary is
//!   byte-identical**, across 3 master seeds x engine {solo, lockstep}
//!   x threads {1, 4} on the four-detector plane;
//! * the online JSON equals the post-hoc JSON **byte for byte** once
//!   its online-only lines (`ttd_` fields and the `"online": true`
//!   marker) are stripped — online judging adds lines, it never
//!   rewrites one;
//! * a store warmed by a post-hoc campaign serves the online rerun
//!   with **100% hits and zero simulated scenarios** — online judging
//!   must not perturb store keys, and cached pre-online payloads
//!   decode cleanly (without time-to-detection marks).

use std::path::PathBuf;

use offramps_bench::cache::{run_campaign_cached_with, CacheStats};
use offramps_bench::campaign::{run_campaign_with, CampaignSpec, Engine};
use offramps_bench::json::ToJson;
use offramps_bench::workloads::Workload;
use offramps_store::Store;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "offramps-online-itest-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The four-detector plane over attacks that split across modalities:
/// a clean reprint, a cadence-breaking flow Trojan (acoustic), a
/// bed-thermistor spoof (thermal), an endstop spoof and a Flaw3D
/// reduction (txn) — some scenarios alarm mid-print, some never do.
fn quad_spec(master_seed: u64) -> CampaignSpec {
    CampaignSpec {
        trojans: vec![
            "none".into(),
            "t2:0.9".into(),
            "tx2:bed@8".into(),
            "tx1".into(),
            "flaw3d-r50".into(),
        ],
        workloads: vec![Workload::mini()],
        detectors: ["txn", "power", "acoustic", "thermal"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        ..CampaignSpec::default_matrix(master_seed)
    }
}

/// Drops every online-only line from a campaign JSON: the per-result
/// and per-curve `ttd_` fields plus the top-level `"online": true`
/// marker. The writers emit each on its own line *before* an
/// unconditional key, so what remains must equal the post-hoc bytes.
fn strip_online_lines(json: &str) -> String {
    json.lines()
        .filter(|l| !l.contains("\"ttd_") && !l.contains("\"online\""))
        .map(|l| format!("{l}\n"))
        .collect::<String>()
        .trim_end_matches('\n')
        .to_string()
        + if json.ends_with('\n') { "\n" } else { "" }
}

#[test]
fn online_matrix_finalizes_byte_identical_to_the_post_hoc_path() {
    for master_seed in [42u64, 7, 1187] {
        let post_hoc = quad_spec(master_seed);
        let online = CampaignSpec {
            online: true,
            ..post_hoc.clone()
        };
        let oracle = run_campaign_with(&post_hoc, 1, Engine::Solo).expect("valid spec");
        let summary = oracle.summary();
        let stripped_json = oracle.to_json();
        assert!(
            !stripped_json.contains("ttd_") && !stripped_json.contains("\"online\""),
            "post-hoc artifacts must keep the pre-online shape"
        );

        for engine in [Engine::Solo, Engine::default()] {
            for threads in [1usize, 4] {
                let report = run_campaign_with(&online, threads, engine).expect("valid spec");
                let label = format!("seed={master_seed} engine={engine:?} threads={threads}");

                // Scenario for scenario: same fused verdict, same
                // per-detector evidence — the finalize() path may never
                // drift from DetectorSuite::judge.
                for (on, off) in report.results.iter().zip(&oracle.results) {
                    assert_eq!(on.scenario.trojan, off.scenario.trojan, "{label}");
                    assert_eq!(
                        on.verdict,
                        off.verdict,
                        "online verdict drifted at {label}: {}",
                        on.summary_line()
                    );
                    // A time-to-detection mark appears only on fused
                    // mid-print alarms, which imply the final verdict.
                    if on.ttd.is_some() {
                        assert!(on.verdict.alarmed, "{label}: {}", on.summary_line());
                    }
                }
                assert!(
                    report.results.iter().any(|r| r.ttd.is_some()),
                    "{label}: at least one attack must alarm mid-print"
                );

                // The summary table is byte-identical; the JSON is
                // byte-identical once online-only lines are stripped.
                assert_eq!(report.summary(), summary, "summary differs at {label}");
                let json = report.to_json();
                assert!(json.contains("\"online\": true"), "{label}");
                assert!(json.contains("\"ttd_step\""), "{label}");
                assert_eq!(
                    strip_online_lines(&json),
                    stripped_json,
                    "stripped JSON differs at {label}"
                );
            }
        }
    }
}

#[test]
fn post_hoc_warmed_store_serves_the_online_rerun_entirely_from_cache() {
    let root = temp_store("warm");
    let post_hoc = quad_spec(42);
    let online = CampaignSpec {
        online: true,
        ..post_hoc.clone()
    };

    let mut store = Store::open(&root).unwrap();
    let (cold, stats) =
        run_campaign_cached_with(&post_hoc, 2, &mut store, Engine::default()).expect("valid spec");
    assert_eq!(stats, CacheStats { hits: 0, misses: 5 });

    // Reopen to force an index rebuild from the shard logs, then rerun
    // online: same keys, 100% hits, nothing re-simulated. The cached
    // payloads predate online judging, so the served results carry no
    // time-to-detection marks — and the summary stays byte-identical.
    drop(store);
    let mut store = Store::open(&root).unwrap();
    let (warm, stats) =
        run_campaign_cached_with(&online, 4, &mut store, Engine::default()).expect("valid spec");
    assert_eq!(
        stats,
        CacheStats { hits: 5, misses: 0 },
        "online judging must not perturb store keys"
    );
    assert_eq!(warm.summary(), cold.summary());
    assert!(warm.results.iter().all(|r| r.ttd.is_none()));
    assert_eq!(strip_online_lines(&warm.to_json()), cold.to_json());

    // The reverse direction: an online-warmed store records the marks,
    // and a later online rerun replays them payload-identically.
    let root2 = temp_store("online-first");
    let mut store2 = Store::open(&root2).unwrap();
    let (first, stats) =
        run_campaign_cached_with(&online, 1, &mut store2, Engine::default()).expect("valid spec");
    assert_eq!(stats, CacheStats { hits: 0, misses: 5 });
    assert!(first.results.iter().any(|r| r.ttd.is_some()));
    let (second, stats) =
        run_campaign_cached_with(&online, 4, &mut store2, Engine::default()).expect("valid spec");
    assert_eq!(stats, CacheStats { hits: 5, misses: 0 });
    assert_eq!(second.to_json(), first.to_json());

    // And an online-warmed store serving a *post-hoc* campaign must not
    // leak the recorded marks into the pre-online artifact shape.
    let (post_from_online, stats) =
        run_campaign_cached_with(&post_hoc, 2, &mut store2, Engine::default()).expect("valid spec");
    assert_eq!(stats, CacheStats { hits: 5, misses: 0 });
    assert!(post_from_online.results.iter().all(|r| r.ttd.is_none()));
    assert_eq!(post_from_online.to_json(), cold.to_json());
    assert_eq!(post_from_online.summary(), cold.summary());

    std::fs::remove_dir_all(&root).unwrap();
    std::fs::remove_dir_all(&root2).unwrap();
}

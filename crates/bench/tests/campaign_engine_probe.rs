//! Paired campaign-engine probe: the mini sweep timed per engine in
//! alternating rounds, so host clock drift (severe on shared boxes)
//! cancels out of the within-round comparisons. `offramps-cli bench`
//! is the pinned trajectory; this probe is for localizing engine
//! overhead — lane-count scaling separates per-event engine cost
//! (visible at 1 lane) from working-set pressure (grows with lanes).
//!
//! Host timing, so `#[ignore]`d; run with:
//! `cargo test --release -p offramps-bench --test campaign_engine_probe -- --ignored --nocapture`

use std::time::Instant;

use offramps_bench::campaign::{run_campaign_with, sweep_attacks, CampaignSpec, Engine};
use offramps_bench::workloads::Workload;

fn mini_sweep() -> CampaignSpec {
    let mut spec = CampaignSpec::default_matrix(42);
    spec.trojans = sweep_attacks();
    spec.workloads = vec![Workload::mini()];
    spec
}

#[test]
#[ignore = "host-timing probe; run explicitly with --ignored --nocapture"]
fn paired_engine_probe() {
    let spec = mini_sweep();
    let engines = [
        ("solo", Engine::Solo),
        ("lockstep1", Engine::Lockstep(1)),
        ("lockstep2", Engine::Lockstep(2)),
        ("lockstep8", Engine::Lockstep(8)),
        ("full", Engine::Lockstep(0)),
    ];
    let mut walls = vec![Vec::new(); engines.len()];
    const ROUNDS: usize = 4;
    for round in 0..ROUNDS {
        for (slot, (name, engine)) in engines.iter().enumerate() {
            let t0 = Instant::now();
            let report = run_campaign_with(&spec, 1, *engine).expect("campaign runs");
            let wall = t0.elapsed().as_secs_f64();
            walls[slot].push(wall);
            println!(
                "round{round} {name:<10} {wall:>7.3}s  events={}",
                report.total_events()
            );
        }
    }
    for (slot, (name, _)) in engines.iter().enumerate() {
        let mut w = walls[slot].clone();
        w.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!("{name:<10} min={:.3}s median={:.3}s", w[0], w[w.len() / 2]);
    }
}

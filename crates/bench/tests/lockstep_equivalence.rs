//! The batched lockstep engine's contract, pinned as a matrix:
//!
//! * campaign **summary and JSON are byte-identical** to the pre-batch
//!   solo engine for batch sizes 1, 4, and full (one batch per workload
//!   group), at 1 and 4 worker threads — the engine is an execution
//!   knob, never an artifact knob;
//! * a store warmed by the solo engine serves a batched rerun with
//!   **100% hits and zero simulated scenarios** — batching must not
//!   perturb store keys or recorded payloads.

use std::path::PathBuf;

use offramps_bench::cache::{run_campaign_cached_with, CacheStats};
use offramps_bench::campaign::{run_campaign_with, CampaignSpec, Engine};
use offramps_bench::corpus::CorpusSpec;
use offramps_bench::json::ToJson;
use offramps_bench::workloads::Workload;
use offramps_store::Store;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "offramps-lockstep-itest-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Canonical + generated workloads with uneven per-group scenario
/// counts: 4 workloads x 5 attacks leaves partial final batches at
/// batch size 4 and exercises the workload-group batching boundaries.
fn matrix_spec() -> CampaignSpec {
    let mut spec = CampaignSpec {
        trojans: vec![
            "none".into(),
            "t2:0.5".into(),
            "t5:200@2".into(),
            "tx1".into(),
            "flaw3d-r50".into(),
        ],
        workloads: vec![Workload::mini(), Workload::tall()],
        ..CampaignSpec::default_matrix(1187)
    };
    spec.workloads.extend(CorpusSpec::new(2).expand(1187));
    spec
}

/// A compact calibrated matrix: the power and thermal detectors both
/// calibrate from shared golden reruns, so every workload's golden
/// evidence needs multiple golden simulations — the shape where the
/// lockstep engine fuses the golden lanes into the workload's first
/// scenario batch instead of provisioning them up front.
fn calibrated_spec() -> CampaignSpec {
    let mut spec = CampaignSpec {
        trojans: vec!["none".into(), "t2:0.5".into(), "t9:0.5".into()],
        workloads: vec![Workload::mini()],
        detectors: vec!["txn".into(), "power".into(), "thermal".into()],
        ..CampaignSpec::default_matrix(2203)
    };
    spec.workloads.extend(CorpusSpec::new(1).expand(2203));
    spec
}

#[test]
fn batch_and_thread_matrix_is_byte_identical_to_the_solo_engine() {
    let spec = matrix_spec();
    let oracle = run_campaign_with(&spec, 1, Engine::Solo).expect("valid spec");
    let summary = oracle.summary();
    let json = oracle.to_json();
    assert_eq!(oracle.results.len(), 20, "fixture shape");

    for batch in [1usize, 4, 0] {
        for threads in [1usize, 4] {
            let report =
                run_campaign_with(&spec, threads, Engine::Lockstep(batch)).expect("valid spec");
            let label = format!("batch={batch} threads={threads}");
            assert_eq!(report.summary(), summary, "summary differs at {label}");
            assert_eq!(report.to_json(), json, "JSON differs at {label}");
            assert_eq!(report.threads, threads, "resolved thread count at {label}");
        }
    }
}

#[test]
fn solo_warmed_store_serves_the_batched_engine_entirely_from_cache() {
    let root = temp_store("warm");
    let spec = matrix_spec();

    let mut store = Store::open(&root).unwrap();
    let (cold, stats) =
        run_campaign_cached_with(&spec, 2, &mut store, Engine::Solo).expect("valid spec");
    assert_eq!(
        stats,
        CacheStats {
            hits: 0,
            misses: 20
        },
        "cold store simulates everything"
    );

    // Reopen to force an index rebuild from the shard logs, then rerun
    // on the batched engine at a different thread count.
    drop(store);
    let mut store = Store::open(&root).unwrap();
    let (warm, stats) =
        run_campaign_cached_with(&spec, 4, &mut store, Engine::Lockstep(4)).expect("valid spec");
    assert_eq!(
        stats,
        CacheStats {
            hits: 20,
            misses: 0
        },
        "solo-warmed store must fully serve the batched engine"
    );
    assert_eq!(warm.summary(), cold.summary());
    assert_eq!(warm.to_json(), cold.to_json());

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn calibrated_campaigns_fuse_golden_lanes_without_perturbing_artifacts() {
    let spec = calibrated_spec();
    let oracle = run_campaign_with(&spec, 1, Engine::Solo).expect("valid spec");
    assert_eq!(oracle.results.len(), 6, "fixture shape");

    for batch in [1usize, 4, 0] {
        for threads in [1usize, 4] {
            let report =
                run_campaign_with(&spec, threads, Engine::Lockstep(batch)).expect("valid spec");
            let label = format!("batch={batch} threads={threads}");
            assert_eq!(
                report.summary(),
                oracle.summary(),
                "summary differs at {label}"
            );
            assert_eq!(
                report.to_json(),
                oracle.to_json(),
                "JSON differs at {label}"
            );
        }
    }
}

#[test]
fn solo_warmed_store_serves_the_fused_golden_engine_from_cache() {
    let root = temp_store("warm-calibrated");
    let spec = calibrated_spec();

    let mut store = Store::open(&root).unwrap();
    let (cold, stats) =
        run_campaign_cached_with(&spec, 1, &mut store, Engine::Solo).expect("valid spec");
    assert_eq!(stats, CacheStats { hits: 0, misses: 6 });

    // The fused-golden engine on a fully warmed store: every scenario
    // is a hit, so no golden lane may run either — golden provisioning
    // only happens for workloads that still have misses.
    drop(store);
    let mut store = Store::open(&root).unwrap();
    let (warm, stats) =
        run_campaign_cached_with(&spec, 4, &mut store, Engine::Lockstep(4)).expect("valid spec");
    assert_eq!(
        stats,
        CacheStats { hits: 6, misses: 0 },
        "solo-warmed store must fully serve the fused-golden engine"
    );
    assert_eq!(warm.summary(), cold.summary());
    assert_eq!(warm.to_json(), cold.to_json());

    // And the other direction: a store warmed by the fused-golden
    // engine serves a solo rerun without simulating anything.
    drop(store);
    let mut store = Store::open(&root).unwrap();
    let (back, stats) =
        run_campaign_cached_with(&spec, 2, &mut store, Engine::Solo).expect("valid spec");
    assert_eq!(
        stats,
        CacheStats { hits: 6, misses: 0 },
        "fused-golden-warmed store must fully serve the solo engine"
    );
    assert_eq!(back.to_json(), cold.to_json());

    std::fs::remove_dir_all(&root).unwrap();
}

//! Baseline comparison: OFFRAMPS direct-signal detection vs the lossy
//! power side-channel (paper §II-B / §VI "Related platforms").
//!
//! "The OFFRAMPS, by connecting directly to control signals, is uniquely
//! able to modify or analyze prints with no loss of data." This
//! experiment quantifies the claim: the same Table II attacks, judged by
//! both detectors.

use std::sync::Arc;

use offramps::{detect, SignalPath, TestBench};
use offramps_attacks::TABLE_II_CASES;
use offramps_gcode::Program;
use offramps_sidechannel::{CalibratedPowerDetector, PowerDetectorConfig, PowerModel, PowerTrace};
use offramps_signals::SignalTrace;

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Table II case number.
    pub case: u32,
    /// Reduction or Relocation.
    pub trojan_type: String,
    /// The paper's modification value.
    pub modification_value: f64,
    /// Verdict of the OFFRAMPS step-count detector.
    pub offramps_detected: bool,
    /// Verdict of the power side-channel baseline.
    pub power_detected: bool,
    /// Largest smoothed power deviation, W.
    pub power_deviation_w: f64,
}

struct Run {
    capture: offramps::Capture,
    power: PowerTrace,
}

fn run(program: &Arc<Program>, seed: u64, model: &PowerModel) -> Run {
    let art = TestBench::new(seed)
        .signal_path(SignalPath::capture())
        .record_trace(true)
        .run(program)
        .expect("baseline run");
    let trace: SignalTrace = art.trace.expect("trace enabled");
    Run {
        capture: art.capture.expect("capture path"),
        power: model.synthesize(&trace, seed),
    }
}

/// Number of repeated golden prints used to calibrate the power
/// baseline (the published system used ~40 physical repetitions; our
/// simulated prints are cheap, but we keep the count modest).
pub const CALIBRATION_RUNS: usize = 5;

/// Runs the golden job plus a clean-reprint control (case 0) plus all
/// eight Flaw3D cases under both detectors. The power baseline gets the
/// repetition-calibration the published systems rely on; OFFRAMPS gets
/// a single golden print, as in the paper.
pub fn regenerate(program: &Arc<Program>, seed: u64) -> Vec<BaselineRow> {
    let model = PowerModel::default();
    let golden = run(program, seed, &model);
    // Calibrate the power baseline from repeated golden prints.
    let mut calib_traces: Vec<PowerTrace> = vec![golden.power.clone()];
    for i in 1..CALIBRATION_RUNS as u64 {
        calib_traces.push(run(program, seed + i, &model).power);
    }
    let power_detector = CalibratedPowerDetector::calibrate(
        &calib_traces,
        PowerDetectorConfig {
            noise_sigma_w: model.noise_sigma_w,
            smoothing: 100, // 1 s windows tame move-boundary jitter
            suspect_fraction: 0.15,
            sigma_threshold: 5.0,
        },
    );
    let dcfg = detect::DetectorConfig::default();

    let mut rows = Vec::new();
    // Case 0: a clean reprint with fresh time noise — the false-positive
    // control for both detectors.
    {
        let clean = run(program, seed + 500, &model);
        let offramps_rep = detect::compare(&golden.capture, &clean.capture, &dcfg);
        let power_rep = power_detector.compare(&clean.power);
        rows.push(BaselineRow {
            case: 0,
            trojan_type: "Clean".into(),
            modification_value: 0.0,
            offramps_detected: offramps_rep.trojan_suspected,
            power_detected: power_rep.sabotage_suspected,
            power_deviation_w: power_rep.largest_deviation_w,
        });
    }
    rows.extend(TABLE_II_CASES.iter().map(|(case, trojan)| {
        let attacked_program = Arc::new(trojan.apply(program));
        let attacked = run(&attacked_program, seed + 200 + u64::from(*case), &model);
        let offramps_rep = detect::compare(&golden.capture, &attacked.capture, &dcfg);
        let power_rep = power_detector.compare(&attacked.power);
        BaselineRow {
            case: *case,
            trojan_type: trojan.type_name().into(),
            modification_value: trojan.modification_value(),
            offramps_detected: offramps_rep.trojan_suspected,
            power_detected: power_rep.sabotage_suspected,
            power_deviation_w: power_rep.largest_deviation_w,
        }
    }));
    rows
}

impl crate::json::ToJson for BaselineRow {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = crate::json::ObjectWriter::new(out, indent);
        w.int("case", self.case as i128)
            .string("trojan_type", &self.trojan_type)
            .float("modification_value", self.modification_value)
            .bool("offramps_detected", self.offramps_detected)
            .bool("power_detected", self.power_detected)
            .float("power_deviation_w", self.power_deviation_w);
        w.finish();
    }
}

/// Formats the comparison table.
pub fn format_table(rows: &[BaselineRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<12} {:<10} {:<18} {:<22}\n",
        "Case", "Type", "ModValue", "OFFRAMPS", "Power side-channel"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:<12} {:<10} {:<18} {:<22}\n",
            r.case,
            r.trojan_type,
            r.modification_value,
            match (r.case, r.offramps_detected) {
                (0, false) => "clean",
                (0, true) => "FALSE POSITIVE",
                (_, true) => "detected",
                (_, false) => "MISSED",
            },
            format!(
                "{} (max dev {:.1} W)",
                match (r.case, r.power_detected) {
                    (0, false) => "clean",
                    (0, true) => "FALSE POSITIVE",
                    (_, true) => "detected",
                    (_, false) => "MISSED",
                },
                r.power_deviation_w
            ),
        ));
    }
    out
}

/// Convenience used by the bench and example: how many each detector
/// caught.
pub fn score(rows: &[BaselineRow]) -> (usize, usize) {
    (
        rows.iter()
            .filter(|r| r.case > 0 && r.offramps_detected)
            .count(),
        rows.iter()
            .filter(|r| r.case > 0 && r.power_detected)
            .count(),
    )
}

//! Baseline comparison: OFFRAMPS direct-signal detection vs the lossy
//! power side-channel (paper §II-B / §VI "Related platforms").
//!
//! "The OFFRAMPS, by connecting directly to control signals, is uniquely
//! able to modify or analyze prints with no loss of data." This
//! experiment quantifies the claim: the same Table II attacks, judged by
//! both detectors — expressed as a two-detector
//! [`DetectorSuite`](offramps::DetectorSuite) so the judges (and the
//! golden-evidence plumbing, via [`crate::detectors::golden_evidence`])
//! are exactly the ones campaigns use and can never drift from them.

use std::sync::Arc;

use offramps::verdict::{FusionPolicy, Verdict};
use offramps_attacks::TABLE_II_CASES;
use offramps_gcode::Program;

use crate::detectors;

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Table II case number.
    pub case: u32,
    /// Reduction or Relocation.
    pub trojan_type: String,
    /// The paper's modification value.
    pub modification_value: f64,
    /// Verdict of the OFFRAMPS step-count detector.
    pub offramps_detected: bool,
    /// Verdict of the power side-channel baseline.
    pub power_detected: bool,
    /// Largest smoothed power deviation, W.
    pub power_deviation_w: f64,
}

impl BaselineRow {
    fn from_verdict(case: u32, trojan_type: String, modification_value: f64, v: &Verdict) -> Self {
        let power = v.power().expect("power judge in the baseline suite");
        BaselineRow {
            case,
            trojan_type,
            modification_value,
            offramps_detected: v.txn().and_then(|e| e.alarmed).unwrap_or(false),
            power_detected: power.alarmed.unwrap_or(false),
            power_deviation_w: power.peak,
        }
    }
}

/// Number of repeated golden prints used to calibrate the power
/// baseline (the published system used ~40 physical repetitions; our
/// simulated prints are cheap, but we keep the count modest). This is
/// the campaign power detector's calibration count too — one judge,
/// two call sites.
pub const CALIBRATION_RUNS: usize = 5;

/// Runs the golden job plus a clean-reprint control (case 0) plus all
/// eight Flaw3D cases under both detectors of the campaign suite. The
/// power baseline gets the repetition-calibration the published systems
/// rely on; OFFRAMPS gets a single golden print, as in the paper.
pub fn regenerate(program: &Arc<Program>, seed: u64) -> Vec<BaselineRow> {
    let suite =
        detectors::suite_from_names(&["txn".to_string(), "power".to_string()], FusionPolicy::Any)
            .expect("baseline suite");
    debug_assert_eq!(suite.calibration_runs(), CALIBRATION_RUNS);

    // Golden evidence through the same path campaigns use: the primary
    // golden print plus calibration repetitions.
    let calibration_seeds: Vec<u64> = (1..CALIBRATION_RUNS as u64).map(|i| seed + i).collect();
    let golden = detectors::golden_evidence(program, seed, &calibration_seeds, &suite);

    let judge = |job: &Arc<Program>, run_seed: u64| -> Verdict {
        let art =
            detectors::capture_run(job, run_seed, suite.needs_plant_trace()).expect("baseline run");
        let observed = detectors::observed_evidence(art, run_seed, &suite);
        suite.judge(&golden, &observed)
    };

    let mut rows = Vec::new();
    // Case 0: a clean reprint with fresh time noise — the false-positive
    // control for both detectors.
    let clean = judge(program, seed + 500);
    rows.push(BaselineRow::from_verdict(0, "Clean".into(), 0.0, &clean));
    rows.extend(TABLE_II_CASES.iter().map(|(case, trojan)| {
        let attacked_program = Arc::new(trojan.apply(program));
        let verdict = judge(&attacked_program, seed + 200 + u64::from(*case));
        BaselineRow::from_verdict(
            *case,
            trojan.type_name().into(),
            trojan.modification_value(),
            &verdict,
        )
    }));
    rows
}

impl crate::json::ToJson for BaselineRow {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = crate::json::ObjectWriter::new(out, indent);
        w.int("case", self.case as i128)
            .string("trojan_type", &self.trojan_type)
            .float("modification_value", self.modification_value)
            .bool("offramps_detected", self.offramps_detected)
            .bool("power_detected", self.power_detected)
            .float("power_deviation_w", self.power_deviation_w);
        w.finish();
    }
}

/// Formats the comparison table.
pub fn format_table(rows: &[BaselineRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<12} {:<10} {:<18} {:<22}\n",
        "Case", "Type", "ModValue", "OFFRAMPS", "Power side-channel"
    ));
    out.push_str(&"-".repeat(70));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:<12} {:<10} {:<18} {:<22}\n",
            r.case,
            r.trojan_type,
            r.modification_value,
            match (r.case, r.offramps_detected) {
                (0, false) => "clean",
                (0, true) => "FALSE POSITIVE",
                (_, true) => "detected",
                (_, false) => "MISSED",
            },
            format!(
                "{} (max dev {:.1} W)",
                match (r.case, r.power_detected) {
                    (0, false) => "clean",
                    (0, true) => "FALSE POSITIVE",
                    (_, true) => "detected",
                    (_, false) => "MISSED",
                },
                r.power_deviation_w
            ),
        ));
    }
    out
}

/// Convenience used by the bench and example: how many each detector
/// caught.
pub fn score(rows: &[BaselineRow]) -> (usize, usize) {
    (
        rows.iter()
            .filter(|r| r.case > 0 && r.offramps_detected)
            .count(),
        rows.iter()
            .filter(|r| r.case > 0 && r.power_detected)
            .count(),
    )
}

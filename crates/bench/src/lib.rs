//! Shared experiment runners for the OFFRAMPS reproduction.
//!
//! Every table and figure of the paper has a runner here; the Criterion
//! benches in `benches/` and the runnable examples in the workspace root
//! both call into this crate so the numbers in `EXPERIMENTS.md`, the
//! bench output and the examples can never drift apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod baseline;
pub mod benchreport;
pub mod cache;
pub mod campaign;
pub mod corpus;
pub mod detectors;
pub mod fig4;
pub mod json;
pub mod overhead;
pub mod table1;
pub mod table2;
pub mod workloads;

//! Table I regeneration: the nine Trojans and their measured effects.
//!
//! The paper demonstrates each Trojan with a photographed part or an
//! observed machine behaviour. Here every Trojan runs against the same
//! co-simulated printer and the "Printed Part" column becomes measured
//! geometry/plant evidence.

use offramps::trojans::{
    AxisShiftTrojan, FanUnderspeedTrojan, FlowReductionTrojan, HeaterDosTrojan, RetractionMode,
    RetractionTrojan, StepperDosTrojan, ThermalRunawayTrojan, Trojan, ZShiftTrojan, ZWobbleTrojan,
};
use offramps::{RunArtifacts, SignalPath, TestBench};
use offramps_des::SimDuration;
use offramps_firmware::{FirmwareError, FwState};
use offramps_printer::quality::{PartReport, QualityConfig};

use crate::workloads::{standard_part, tall_part, FAST_LAYER_Z_STEPS};

/// One regenerated Table I row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Trojan id (T0–T9).
    pub id: String,
    /// Type column (PM / DoS / D / None).
    pub kind: String,
    /// Scenario column.
    pub scenario: String,
    /// The paper's effect description.
    pub paper_effect: String,
    /// Our measured evidence.
    pub measured: String,
    /// Whether the measured effect matches the paper's claim.
    pub matches_paper: bool,
}

fn trojan_for(id: usize) -> Option<Box<dyn Trojan>> {
    match id {
        1 => Some(Box::new(AxisShiftTrojan::with_params(
            SimDuration::from_secs(10),
            40,
            80,
        ))),
        2 => Some(Box::new(FlowReductionTrojan::half())),
        3 => Some(Box::new(RetractionTrojan::new(RetractionMode::Over))),
        4 => Some(Box::new(ZWobbleTrojan::with_params(
            FAST_LAYER_Z_STEPS,
            30,
            60,
            1,
            3,
        ))),
        5 => Some(Box::new(ZShiftTrojan::with_params(
            FAST_LAYER_Z_STEPS,
            200,
            2,
            None,
        ))),
        6 => Some(Box::new(HeaterDosTrojan::new())),
        7 => Some(Box::new(ThermalRunawayTrojan::hotend())),
        8 => Some(Box::new(StepperDosTrojan::new())),
        9 => Some(Box::new(FanUnderspeedTrojan::quarter())),
        _ => None,
    }
}

fn run(id: usize, seed: u64) -> RunArtifacts {
    let program = if matches!(id, 4 | 5) {
        tall_part()
    } else {
        standard_part()
    };
    let mut bench = TestBench::new(seed).signal_path(SignalPath::bypass());
    if let Some(trojan) = trojan_for(id) {
        bench = bench.with_trojan(trojan);
    }
    if id == 7 {
        // Watch the plant keep heating after the firmware kills itself.
        bench = bench.drain_time(SimDuration::from_secs(180));
    }
    bench.run(&program).expect("table 1 run")
}

/// Runs T0 (golden) plus T1–T9 and derives the measured-effect column.
pub fn regenerate(seed: u64) -> Vec<Table1Row> {
    let qcfg = QualityConfig::default();
    let golden_standard = run(0, seed);
    // A separate golden for the tall workload used by T4/T5.
    let golden_tall = {
        let program = tall_part();
        TestBench::new(seed).run(&program).expect("golden tall run")
    };

    let mut rows = Vec::new();
    rows.push(Table1Row {
        id: "T0".into(),
        kind: "None".into(),
        scenario: "None".into(),
        paper_effect: "Golden print".into(),
        measured: {
            let rep = PartReport::compare(&golden_standard.part, &golden_standard.part, &qcfg);
            format!(
                "clean print: {} layers, flow ratio {:.3}, finished={}",
                rep.golden_layers,
                rep.flow_ratio,
                matches!(golden_standard.fw_state, FwState::Finished)
            )
        },
        matches_paper: matches!(golden_standard.fw_state, FwState::Finished),
    });

    for id in 1..=9 {
        let art = run(id, seed + id as u64);
        let golden = if matches!(id, 4 | 5) {
            &golden_tall
        } else {
            &golden_standard
        };
        let rep = PartReport::compare(&golden.part, &art.part, &qcfg);
        let trojan = trojan_for(id).expect("ids 1..=9 exist");
        let (measured, ok) = measure(id, &art, golden, &rep);
        rows.push(Table1Row {
            id: trojan.id().into(),
            kind: trojan.kind().into(),
            scenario: trojan.scenario().into(),
            paper_effect: trojan.effect().into(),
            measured,
            matches_paper: ok,
        });
    }
    rows
}

fn measure(
    id: usize,
    art: &RunArtifacts,
    golden: &RunArtifacts,
    rep: &PartReport,
) -> (String, bool) {
    match id {
        1 => (
            format!(
                "max layer centroid offset {:.2} mm, {} layers shifted (golden: 0)",
                rep.max_centroid_offset_mm, rep.shifted_layers
            ),
            rep.shifted_layers > 0 || rep.max_centroid_offset_mm > 0.2,
        ),
        2 => (
            format!("flow ratio {:.3} (paper: 50% reduction)", rep.flow_ratio),
            (rep.flow_ratio - 0.5).abs() < 0.1,
        ),
        3 => (
            format!(
                "flow ratio {:.3} (over-extrusion during Y moves)",
                rep.flow_ratio
            ),
            rep.flow_ratio > 1.05,
        ),
        4 => (
            format!(
                "{} of {} layers shifted, max offset {:.2} mm",
                rep.shifted_layers, rep.test_layers, rep.max_centroid_offset_mm
            ),
            rep.shifted_layers > 0,
        ),
        5 => (
            format!(
                "max Z deviation {:.2} mm, max layer gap {:.2} mm (layer height 0.3)",
                rep.max_z_deviation_mm, rep.max_layer_gap_mm
            ),
            rep.max_layer_gap_mm > 0.45 || rep.max_z_deviation_mm > 0.3,
        ),
        6 => {
            let halted = matches!(
                art.fw_state,
                FwState::Halted(FirmwareError::HeatingFailed(_))
                    | FwState::Halted(FirmwareError::ThermalRunaway(_))
            );
            (
                format!(
                    "firmware error state: {:?}; print aborted at {} (golden finished in {})",
                    art.fw_state, art.sim_time, golden.sim_time
                ),
                halted,
            )
        }
        7 => {
            let peak = art.plant.hotend_peak_c;
            let over = art.plant.hotend_seconds_over_damage;
            let maxtemp_fired = matches!(art.fw_state, FwState::Halted(FirmwareError::MaxTemp(_)));
            (
                format!(
                    "hotend ran away: peak {peak:.1} C, {over:.0}s above the 290 C damage \
                     point; firmware MAXTEMP kill {} — and was ignored by the Trojan",
                    if maxtemp_fired {
                        "fired"
                    } else {
                        "did not fire in time"
                    }
                ),
                peak > 275.0,
            )
        }
        8 => {
            let missed: u64 = art.plant.steps_while_disabled.iter().sum();
            (
                format!(
                    "{missed} STEP pulses hit disabled drivers; part flow ratio {:.3}, \
                     {} layers shifted",
                    rep.flow_ratio, rep.shifted_layers
                ),
                missed > 0,
            )
        }
        9 => {
            let ratio = if golden.plant.fan_duty > 0.0 {
                art.plant.fan_duty / golden.plant.fan_duty
            } else {
                1.0
            };
            (
                format!(
                    "effective fan duty {:.2} vs golden {:.2} (ratio {:.2}, commanded scale 0.25)",
                    art.plant.fan_duty, golden.plant.fan_duty, ratio
                ),
                ratio < 0.5,
            )
        }
        _ => ("golden".into(), true),
    }
}

impl crate::json::ToJson for Table1Row {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = crate::json::ObjectWriter::new(out, indent);
        w.string("id", &self.id)
            .string("kind", &self.kind)
            .string("scenario", &self.scenario)
            .string("paper_effect", &self.paper_effect)
            .string("measured", &self.measured)
            .bool("matches_paper", self.matches_paper);
        w.finish();
    }
}

/// Formats rows as an aligned text table.
pub fn format_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<5} {:<18} {:<7} {}\n",
        "ID", "Type", "Scenario", "Match", "Measured effect"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:<5} {:<18} {:<7} {}\n",
            r.id,
            r.kind,
            r.scenario,
            if r.matches_paper { "yes" } else { "NO" },
            r.measured
        ));
    }
    out
}

//! Standard print jobs used across the experiments, returned as
//! `Arc<Program>` so one sliced program can be shared across runs and
//! threads without copying (each call still slices; cache the `Arc` to
//! reuse it).
//!
//! The paper prints on a Prusa i3 MK3S+; its Table I parts sit on graph
//! paper with ¼-inch ruling, i.e. centimetre-scale test prints. Full
//! 20 mm calibration cubes simulate fine but take tens of millions of
//! events; the standard experiment part is a smaller prism that still
//! has everything the Trojans need (multiple layers, perimeters, infill,
//! travels, retractions, heat-up, fan activation).

use std::sync::Arc;

use offramps_gcode::slicer::{slice, SlicerConfig, Solid};
use offramps_gcode::Program;

/// The standard multi-layer experiment part: 10×10×1.5 mm prism,
/// 0.3 mm layers (5 layers), one perimeter plus infill, heated, fan on
/// from layer 2.
pub fn standard_part() -> Arc<Program> {
    Arc::new(slice(
        &Solid::rect_prism(10.0, 10.0, 1.5),
        &SlicerConfig::fast(),
    ))
}

/// A minimal but complete job for smoke tests: 5×5×0.6 mm, 2 layers.
pub fn mini_part() -> Arc<Program> {
    Arc::new(slice(
        &Solid::rect_prism(5.0, 5.0, 0.6),
        &SlicerConfig::fast(),
    ))
}

/// A taller part for Z-axis Trojans (T4/T5): 8×8×3 mm, 10 layers.
pub fn tall_part() -> Arc<Program> {
    Arc::new(slice(
        &Solid::rect_prism(8.0, 8.0, 3.0),
        &SlicerConfig::fast(),
    ))
}

/// The Table II / Figure 4 detection workload: a longer job
/// (12×12×6 mm, 20 layers, denser infill → several hundred extruding
/// movements) so even the stealthiest relocation stride (every 100
/// movements) fires several times, as in the paper's full-size prints.
pub fn detection_part() -> Arc<Program> {
    let cfg = SlicerConfig {
        infill_spacing: 1.2,
        ..SlicerConfig::fast()
    };
    Arc::new(slice(&Solid::rect_prism(12.0, 12.0, 6.0), &cfg))
}

/// The paper's 20 mm calibration cube with default (0.2 mm) slicing —
/// the heavyweight workload for final validation runs.
pub fn calibration_cube() -> Arc<Program> {
    Arc::new(slice(&Solid::calibration_cube(), &SlicerConfig::default()))
}

/// Z microsteps per layer for the fast profile (0.3 mm × 400 steps/mm),
/// needed by the layer-triggered Trojans.
pub const FAST_LAYER_Z_STEPS: u64 = 120;

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_gcode::ProgramStats;

    #[test]
    fn standard_part_shape() {
        let s = ProgramStats::analyze(&standard_part());
        assert_eq!(s.layer_count(), 5);
        assert!(s.total_extruded_mm > 5.0);
        assert!(s.max_hotend_target > 200.0);
    }

    #[test]
    fn tall_part_layers() {
        let s = ProgramStats::analyze(&tall_part());
        assert_eq!(s.layer_count(), 10);
    }

    #[test]
    fn layer_steps_constant_is_consistent() {
        use offramps_gcode::slicer::SlicerConfig;
        let cfg = SlicerConfig::fast();
        assert_eq!(
            (cfg.layer_height * 400.0).round() as u64,
            FAST_LAYER_Z_STEPS
        );
    }
}

//! The open workload registry: canonical paper prints plus any number
//! of procedurally generated corpus parts.
//!
//! The paper prints on a Prusa i3 MK3S+; its Table I parts sit on graph
//! paper with ¼-inch ruling, i.e. centimetre-scale test prints. Full
//! 20 mm calibration cubes simulate fine but take tens of millions of
//! events; the standard experiment part is a smaller prism that still
//! has everything the Trojans need (multiple layers, perimeters, infill,
//! travels, retractions, heat-up, fan activation).
//!
//! A [`Workload`] pairs a stable string **label** with a
//! [`WorkloadSpec`]; labels key scenario seeds, golden captures and
//! summaries, so the registry can grow (see [`crate::corpus`]) without
//! perturbing any existing workload's results. The four canonical paper
//! workloads keep their PR-1 labels (`mini`, `standard`, `tall`,
//! `detection`) and slice byte-identically.

use std::sync::Arc;

use offramps_gcode::slicer::{slice, SlicerConfig, Solid};
use offramps_gcode::spec::WorkloadSpec;
use offramps_gcode::Program;

/// A labelled print job: the unit the campaign matrix fans over.
///
/// # Example
///
/// ```
/// use offramps_bench::workloads::Workload;
///
/// let mini = Workload::from_name("mini").unwrap();
/// assert_eq!(mini.label(), "mini");
/// assert!(Workload::from_name("nope").is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    label: String,
    spec: WorkloadSpec,
}

impl Workload {
    /// Registers a workload under `label`. Labels must be non-empty and
    /// contain only lowercase alphanumerics and `-` (they appear in seed
    /// derivation strings, summaries, CLI flags and JSON).
    ///
    /// # Errors
    ///
    /// Rejects an empty or ill-formed label.
    pub fn new(label: impl Into<String>, spec: WorkloadSpec) -> Result<Self, String> {
        let label = label.into();
        let ok = !label.is_empty()
            && label
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if !ok {
            return Err(format!(
                "workload label {label:?} must be lowercase alphanumerics/dashes"
            ));
        }
        Ok(Workload { label, spec })
    }

    /// The stable name used in seed labels, summaries and the CLI.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The parametric spec behind this workload.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Slices the workload's program. Each call re-slices — hold on to
    /// the returned `Arc` when running many scenarios (the campaign
    /// runner caches one per label).
    pub fn program(&self) -> Arc<Program> {
        Arc::new(self.spec.slice())
    }

    /// The 5×5×0.6 mm smoke-test part (2 layers).
    pub fn mini() -> Workload {
        Workload {
            label: "mini".into(),
            spec: WorkloadSpec::single(Solid::rect_prism(5.0, 5.0, 0.6), SlicerConfig::fast()),
        }
    }

    /// The standard 10×10×1.5 mm experiment part (5 layers).
    pub fn standard() -> Workload {
        Workload {
            label: "standard".into(),
            spec: WorkloadSpec::single(Solid::rect_prism(10.0, 10.0, 1.5), SlicerConfig::fast()),
        }
    }

    /// The taller 8×8×3 mm part used by Z-axis Trojans (10 layers).
    pub fn tall() -> Workload {
        Workload {
            label: "tall".into(),
            spec: WorkloadSpec::single(Solid::rect_prism(8.0, 8.0, 3.0), SlicerConfig::fast()),
        }
    }

    /// The Table II / Figure 4 detection workload: a longer job
    /// (12×12×6 mm, 20 layers, denser infill → several hundred extruding
    /// movements) so even the stealthiest relocation stride (every 100
    /// movements) fires several times, as in the paper's full-size
    /// prints.
    pub fn detection() -> Workload {
        Workload {
            label: "detection".into(),
            spec: WorkloadSpec::single(
                Solid::rect_prism(12.0, 12.0, 6.0),
                SlicerConfig {
                    infill_spacing: 1.2,
                    ..SlicerConfig::fast()
                },
            ),
        }
    }

    /// The four canonical paper workloads, in canonical order.
    pub fn canonical() -> Vec<Workload> {
        vec![
            Workload::mini(),
            Workload::standard(),
            Workload::tall(),
            Workload::detection(),
        ]
    }

    /// Resolves a canonical workload by its CLI name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name back (corpus workloads are minted by
    /// [`crate::corpus::CorpusSpec::expand`], not looked up by name).
    pub fn from_name(name: &str) -> Result<Workload, String> {
        match name.to_ascii_lowercase().as_str() {
            "mini" => Ok(Workload::mini()),
            "standard" => Ok(Workload::standard()),
            "tall" => Ok(Workload::tall()),
            "detection" => Ok(Workload::detection()),
            other => Err(format!(
                "unknown workload {other:?} (canonical: mini, standard, tall, detection)"
            )),
        }
    }
}

/// Slices the standard multi-layer experiment part — see
/// [`Workload::standard`].
pub fn standard_part() -> Arc<Program> {
    Workload::standard().program()
}

/// Slices the minimal smoke-test part — see [`Workload::mini`].
pub fn mini_part() -> Arc<Program> {
    Workload::mini().program()
}

/// Slices the taller Z-axis part — see [`Workload::tall`].
pub fn tall_part() -> Arc<Program> {
    Workload::tall().program()
}

/// Slices the Table II / Figure 4 detection workload — see
/// [`Workload::detection`].
pub fn detection_part() -> Arc<Program> {
    Workload::detection().program()
}

/// The paper's 20 mm calibration cube with default (0.2 mm) slicing —
/// the heavyweight workload for final validation runs.
pub fn calibration_cube() -> Arc<Program> {
    Arc::new(slice(&Solid::calibration_cube(), &SlicerConfig::default()))
}

/// Z microsteps per layer for the fast profile (0.3 mm × 400 steps/mm),
/// needed by the layer-triggered Trojans.
pub const FAST_LAYER_Z_STEPS: u64 = 120;

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_gcode::ProgramStats;

    #[test]
    fn standard_part_shape() {
        let s = ProgramStats::analyze(&standard_part());
        assert_eq!(s.layer_count(), 5);
        assert!(s.total_extruded_mm > 5.0);
        assert!(s.max_hotend_target > 200.0);
    }

    #[test]
    fn tall_part_layers() {
        let s = ProgramStats::analyze(&tall_part());
        assert_eq!(s.layer_count(), 10);
    }

    #[test]
    fn layer_steps_constant_is_consistent() {
        use offramps_gcode::slicer::SlicerConfig;
        let cfg = SlicerConfig::fast();
        assert_eq!(
            (cfg.layer_height * 400.0).round() as u64,
            FAST_LAYER_Z_STEPS
        );
    }

    #[test]
    fn canonical_names_round_trip() {
        for w in Workload::canonical() {
            let resolved = Workload::from_name(w.label()).unwrap();
            assert_eq!(resolved, w);
        }
        assert!(Workload::from_name("nope").is_err());
    }

    #[test]
    fn canonical_programs_match_part_functions() {
        assert_eq!(
            Workload::mini().program().to_gcode(),
            mini_part().to_gcode()
        );
        assert_eq!(
            Workload::detection().program().to_gcode(),
            detection_part().to_gcode()
        );
    }

    #[test]
    fn labels_are_validated() {
        let spec = Workload::mini().spec().clone();
        assert!(Workload::new("gen-007", spec.clone()).is_ok());
        assert!(Workload::new("", spec.clone()).is_err());
        assert!(Workload::new("Bad Label", spec.clone()).is_err());
        assert!(Workload::new("under_score", spec).is_err());
    }
}

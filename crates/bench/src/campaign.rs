//! Parallel scenario campaigns: trojan × workload × seed, fanned across
//! worker threads with deterministic results.
//!
//! The paper's evaluation is a matrix — nine Table I Trojans, the
//! Flaw3D variants of Table II, the Figure 4 sweep — and scaling the
//! reproduction means running whole matrices at once. A
//! [`CampaignSpec`] names the matrix; [`run_campaign`] executes every
//! scenario on a `std::thread` worker pool. Each scenario's seed is
//! derived from the campaign's master seed and the scenario's *label*
//! via [`SeedSplitter`], never from scheduling order, so the campaign
//! produces **byte-identical summaries for any thread count** — the
//! property the `campaign_determinism` integration test pins down.
//!
//! Every scenario prints through the capture path and is judged against
//! a golden capture of the same workload (also derived from the master
//! seed), giving the summary its detection column. Two attack families
//! can populate the matrix:
//!
//! * **hardware Trojans** (`t1`–`t9`, `tx1`, `tx2`) armed inside the
//!   interceptor — the monitor taps the *controller's* stream upstream
//!   of the Trojan mux, so their signal tampering is invisible to the
//!   step-count detector (the paper never co-locates its attack and
//!   defense). Trojans whose physical damage feeds back into motion —
//!   shifted axes re-homing, lost steps, spoofed endstops — still
//!   surface indirectly; pure flow/fan/heater tampering stays unseen,
//!   the paper's §VI limitation;
//! * **Flaw3D G-code attacks** (`flaw3d-r<percent>` reductions,
//!   `flaw3d-rel<n>` relocations) applied *upstream* of the firmware —
//!   exactly the attacks the paper's detection program catches, and the
//!   rows where the detection column earns its keep.
//!
//! Short prints export few transactions, so a single sampling-boundary
//! wobble would trip the paper's 1 % suspect fraction; the campaign
//! therefore additionally requires at least two mismatching
//! transactions before flagging a run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use offramps::{detect, trojans, Capture, SignalPath, TestBench, Trojan};
use offramps_attacks::Flaw3dTrojan;
use offramps_des::SeedSplitter;
use offramps_gcode::Program;

use crate::json::{ObjectWriter, ToJson};
use crate::workloads;

/// The standard print jobs a campaign can fan over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// 5×5×0.6 mm smoke-test part (2 layers).
    Mini,
    /// The standard 10×10×1.5 mm experiment part (5 layers).
    Standard,
    /// The taller 8×8×3 mm part used by Z-axis Trojans (10 layers).
    Tall,
    /// The Table II / Figure 4 detection workload (20 layers).
    Detection,
}

impl WorkloadId {
    /// Every workload, in canonical order.
    pub const ALL: [WorkloadId; 4] = [
        WorkloadId::Mini,
        WorkloadId::Standard,
        WorkloadId::Tall,
        WorkloadId::Detection,
    ];

    /// The stable name used in labels, summaries and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Mini => "mini",
            WorkloadId::Standard => "standard",
            WorkloadId::Tall => "tall",
            WorkloadId::Detection => "detection",
        }
    }

    /// Parses a CLI name.
    ///
    /// # Errors
    ///
    /// Returns the unknown name back.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name.to_ascii_lowercase().as_str() {
            "mini" => Ok(WorkloadId::Mini),
            "standard" => Ok(WorkloadId::Standard),
            "tall" => Ok(WorkloadId::Tall),
            "detection" => Ok(WorkloadId::Detection),
            other => Err(format!("unknown workload {other:?}")),
        }
    }

    /// Slices the workload's program. Each call re-slices — hold on to
    /// the returned `Arc` when running many scenarios ([`run_campaign`]
    /// caches one per workload).
    pub fn program(self) -> Arc<Program> {
        match self {
            WorkloadId::Mini => workloads::mini_part(),
            WorkloadId::Standard => workloads::standard_part(),
            WorkloadId::Tall => workloads::tall_part(),
            WorkloadId::Detection => workloads::detection_part(),
        }
    }
}

/// What a scenario arms or applies.
#[derive(Debug)]
pub enum Attack {
    /// A clean reprint.
    None,
    /// A hardware Trojan armed in the interceptor.
    Trojan(Box<dyn Trojan>),
    /// A Flaw3D G-code transform applied upstream of the firmware.
    Flaw3d(Flaw3dTrojan),
}

/// Parses an attack name: `"none"`, a roster Trojan id, a
/// `flaw3d-r<percent>` reduction, or a `flaw3d-rel<n>` relocation.
///
/// # Errors
///
/// Returns the unknown name back.
///
/// # Example
///
/// ```
/// use offramps_bench::campaign::{parse_attack, Attack};
///
/// assert!(matches!(parse_attack("none").unwrap(), Attack::None));
/// assert!(matches!(parse_attack("t2").unwrap(), Attack::Trojan(_)));
/// assert!(matches!(parse_attack("flaw3d-r90").unwrap(), Attack::Flaw3d(_)));
/// assert!(parse_attack("bogus").is_err());
/// ```
pub fn parse_attack(name: &str) -> Result<Attack, String> {
    let name = name.to_ascii_lowercase();
    if name == "none" {
        return Ok(Attack::None);
    }
    // Check the longer prefix first: "flaw3d-rel…" also starts with
    // "flaw3d-r".
    if let Some(n) = name.strip_prefix("flaw3d-rel") {
        let every_n: u32 = n
            .parse()
            .map_err(|_| format!("bad relocation stride in {name:?}"))?;
        if every_n == 0 {
            return Err(format!("relocation stride must be positive in {name:?}"));
        }
        return Ok(Attack::Flaw3d(Flaw3dTrojan::Relocation { every_n }));
    }
    if let Some(pct) = name.strip_prefix("flaw3d-r") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| format!("bad reduction percent in {name:?}"))?;
        if !(0.0..=100.0).contains(&pct) {
            return Err(format!("reduction percent out of range in {name:?}"));
        }
        return Ok(Attack::Flaw3d(Flaw3dTrojan::Reduction {
            factor: pct / 100.0,
        }));
    }
    trojans::by_name(&name).map(Attack::Trojan)
}

/// A campaign matrix: every listed attack (plus `"none"` for clean
/// reprints) against every workload, `runs_per_cell` times.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Master seed; every scenario seed is derived from it by label.
    pub master_seed: u64,
    /// Attack names accepted by [`parse_attack`]: `"none"`, Trojan
    /// roster ids, or Flaw3D transforms.
    pub trojans: Vec<String>,
    /// Workloads to print.
    pub workloads: Vec<WorkloadId>,
    /// Independent seeds per (trojan, workload) cell.
    pub runs_per_cell: u32,
}

impl CampaignSpec {
    /// The default matrix: a clean reprint, all eleven roster Trojans,
    /// and three Flaw3D attacks on the mini workload, one run each.
    pub fn default_matrix(master_seed: u64) -> Self {
        let mut trojans = vec!["none".to_string()];
        trojans.extend(trojans::TROJAN_NAMES.iter().map(|s| s.to_string()));
        trojans.extend(["flaw3d-r50", "flaw3d-r90", "flaw3d-rel20"].map(String::from));
        CampaignSpec {
            master_seed,
            trojans,
            workloads: vec![WorkloadId::Mini],
            runs_per_cell: 1,
        }
    }

    /// Validates attack names and expands the matrix into scenarios,
    /// in deterministic (attack-major) order.
    ///
    /// # Errors
    ///
    /// Reports the first unknown attack name.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, String> {
        let split = SeedSplitter::new(self.master_seed);
        let mut out = Vec::new();
        for trojan in &self.trojans {
            parse_attack(trojan)?;
            for workload in &self.workloads {
                for run in 0..self.runs_per_cell.max(1) {
                    let label = format!("campaign/{}/{}/{}", workload.name(), trojan, run);
                    out.push(Scenario {
                        index: out.len(),
                        trojan: trojan.clone(),
                        workload: *workload,
                        run,
                        seed: split.derive(&label),
                    });
                }
            }
        }
        Ok(out)
    }

    /// The seed a workload's golden capture runs under.
    pub fn golden_seed(&self, workload: WorkloadId) -> u64 {
        SeedSplitter::new(self.master_seed).derive(&format!("campaign/golden/{}", workload.name()))
    }
}

/// One cell × run of the campaign matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the expanded matrix (summary order).
    pub index: usize,
    /// Attack name (see [`parse_attack`]), or `"none"`.
    pub trojan: String,
    /// The workload printed.
    pub workload: WorkloadId,
    /// Run number within the cell.
    pub run: u32,
    /// The derived seed.
    pub seed: u64,
}

/// Outcome of one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Final firmware state (or the bench error), rendered.
    pub fw_state: String,
    /// Events processed by the scheduler.
    pub events: u64,
    /// Simulated nanoseconds of the job.
    pub sim_ns: u64,
    /// Firmware step counters at the end.
    pub fw_steps: [i64; 4],
    /// Whether the step-count detector flagged the print against the
    /// workload's golden capture.
    pub detected: bool,
    /// Out-of-margin transaction values against the golden capture.
    pub mismatches: usize,
    /// Host milliseconds the run took (excluded from the deterministic
    /// summary).
    pub wall_ms: u64,
}

impl ScenarioResult {
    /// The deterministic summary line for this result — everything
    /// except host timing.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<4} {:<10} {:<12} {:<4} {:<18} {:>9} {:>12} {:<9} {:>6}  [{} {} {} {}]",
            self.scenario.index,
            self.scenario.workload.name(),
            self.scenario.trojan,
            self.scenario.run,
            self.fw_state,
            self.events,
            self.sim_ns,
            if self.detected { "DETECTED" } else { "clean" },
            self.mismatches,
            self.fw_steps[0],
            self.fw_steps[1],
            self.fw_steps[2],
            self.fw_steps[3],
        )
    }
}

impl ToJson for ScenarioResult {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.int("index", self.scenario.index as i128)
            .string("workload", self.scenario.workload.name())
            .string("trojan", &self.scenario.trojan)
            .int("run", self.scenario.run as i128)
            .int("seed", self.scenario.seed as i128)
            .string("fw_state", &self.fw_state)
            .int("events", self.events as i128)
            .int("sim_ns", self.sim_ns as i128)
            .bool("detected", self.detected)
            .int("mismatches", self.mismatches as i128);
        w.finish();
    }
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-scenario results, in matrix order regardless of which worker
    /// ran what.
    pub results: Vec<ScenarioResult>,
    /// Worker threads used (informational; does not affect results).
    pub threads: usize,
    /// Host seconds for the whole campaign.
    pub wall_s: f64,
}

impl CampaignReport {
    /// Total simulation events across all scenarios.
    pub fn total_events(&self) -> u64 {
        self.results.iter().map(|r| r.events).sum()
    }

    /// Scenarios the detector flagged.
    pub fn detections(&self) -> usize {
        self.results.iter().filter(|r| r.detected).count()
    }

    /// Aggregate throughput over host time (non-deterministic).
    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 / self.wall_s.max(1e-9)
    }

    /// The deterministic summary table: identical for every thread
    /// count, byte for byte.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<4} {:<10} {:<12} {:<4} {:<18} {:>9} {:>12} {:<9} {:>6}  fw_steps\n",
            "#", "workload", "trojan", "run", "fw_state", "events", "sim_ns", "verdict", "mism"
        ));
        out.push_str(&"-".repeat(100));
        out.push('\n');
        for r in &self.results {
            out.push_str(&r.summary_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "runs: {}   events: {}   detections: {}\n",
            self.results.len(),
            self.total_events(),
            self.detections(),
        ));
        out
    }
}

impl ToJson for CampaignReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.int("runs", self.results.len() as i128)
            .int("events", self.total_events() as i128)
            .int("detections", self.detections() as i128)
            .value("results", &self.results);
        w.finish();
    }
}

/// Maps `f` over `items` on a pool of `threads` workers, preserving
/// input order in the output. Work is claimed from a shared atomic
/// index, so stragglers never idle the pool.
fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("poisoned slot")
                .expect("worker filled slot")
        })
        .collect()
}

/// The detector configuration a campaign judges with: the paper's
/// defaults, except that at least two mismatching transactions are
/// required — on short captures a single sampling-boundary wobble would
/// otherwise exceed the 1 % suspect fraction.
fn campaign_detector(golden: &Capture, observed: &Capture) -> detect::DetectorConfig {
    let n = golden.len().min(observed.len()).max(1);
    detect::DetectorConfig {
        suspect_fraction: f64::max(0.01, 1.8 / n as f64),
        ..detect::DetectorConfig::default()
    }
}

/// Runs one scenario against its workload's golden capture.
fn run_scenario(scenario: &Scenario, program: &Arc<Program>, golden: &Capture) -> ScenarioResult {
    let mut bench = TestBench::new(scenario.seed).signal_path(SignalPath::capture());
    let mut job = Arc::clone(program);
    match parse_attack(&scenario.trojan).expect("names validated by CampaignSpec") {
        Attack::None => {}
        Attack::Trojan(trojan) => bench = bench.with_trojan(trojan),
        Attack::Flaw3d(attack) => job = Arc::new(attack.apply(program)),
    }
    let t0 = Instant::now();
    match bench.run(&job) {
        Ok(art) => {
            let report = art
                .capture
                .as_ref()
                .map(|cap| detect::compare(golden, cap, &campaign_detector(golden, cap)));
            ScenarioResult {
                scenario: scenario.clone(),
                fw_state: format!("{:?}", art.fw_state),
                events: art.events,
                sim_ns: art.sim_time.as_duration().as_nanos(),
                fw_steps: art.fw_steps,
                detected: report.as_ref().is_some_and(|r| r.trojan_suspected),
                mismatches: report.map_or(0, |r| r.mismatches.len()),
                wall_ms: t0.elapsed().as_millis() as u64,
            }
        }
        Err(e) => ScenarioResult {
            scenario: scenario.clone(),
            fw_state: format!("error: {e}"),
            events: 0,
            sim_ns: 0,
            fw_steps: [0; 4],
            detected: false,
            mismatches: 0,
            wall_ms: t0.elapsed().as_millis() as u64,
        },
    }
}

/// Executes the campaign on `threads` workers.
///
/// Programs are sliced once per workload and shared as `Arc<Program>`;
/// golden captures are produced first (also in parallel), then the full
/// scenario matrix fans out. Results are assembled in matrix order.
///
/// # Errors
///
/// Reports an invalid trojan name in the spec.
///
/// # Example
///
/// ```
/// use offramps_bench::campaign::{run_campaign, CampaignSpec, WorkloadId};
///
/// let spec = CampaignSpec {
///     master_seed: 7,
///     trojans: vec!["none".into(), "t2".into()],
///     workloads: vec![WorkloadId::Mini],
///     runs_per_cell: 1,
/// };
/// let one = run_campaign(&spec, 1).unwrap();
/// let four = run_campaign(&spec, 4).unwrap();
/// assert_eq!(one.summary(), four.summary()); // thread count is invisible
/// ```
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignReport, String> {
    let scenarios = spec.scenarios()?;
    let t0 = Instant::now();

    // Slice each workload once (order-preserving dedup: Vec::dedup only
    // removes *consecutive* duplicates).
    let mut workload_set: Vec<WorkloadId> = Vec::new();
    for w in &spec.workloads {
        if !workload_set.contains(w) {
            workload_set.push(*w);
        }
    }
    let programs: HashMap<WorkloadId, Arc<Program>> =
        workload_set.iter().map(|w| (*w, w.program())).collect();

    // Golden captures, one per workload, fanned over the pool.
    let goldens: HashMap<WorkloadId, Capture> = workload_set
        .iter()
        .zip(parallel_map(&workload_set, threads, |w| {
            TestBench::new(spec.golden_seed(*w))
                .signal_path(SignalPath::capture())
                .run(&programs[w])
                .expect("golden campaign run")
                .capture
                .expect("capture path active")
        }))
        .map(|(w, cap)| (*w, cap))
        .collect();

    // The scenario matrix.
    let results = parallel_map(&scenarios, threads, |sc| {
        run_scenario(sc, &programs[&sc.workload], &goldens[&sc.workload])
    });

    Ok(CampaignReport {
        results,
        threads,
        wall_s: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expands_trojan_major() {
        let spec = CampaignSpec {
            master_seed: 1,
            trojans: vec!["none".into(), "t2".into()],
            workloads: vec![WorkloadId::Mini, WorkloadId::Tall],
            runs_per_cell: 2,
        };
        let scenarios = spec.scenarios().unwrap();
        assert_eq!(scenarios.len(), 8);
        assert_eq!(scenarios[0].trojan, "none");
        assert_eq!(scenarios[0].workload, WorkloadId::Mini);
        assert_eq!(scenarios[3].workload, WorkloadId::Tall);
        assert_eq!(scenarios[4].trojan, "t2");
        assert!(scenarios.iter().enumerate().all(|(i, s)| s.index == i));
    }

    #[test]
    fn seeds_depend_on_labels_not_positions() {
        let wide = CampaignSpec {
            master_seed: 9,
            trojans: vec!["none".into(), "t1".into(), "t2".into()],
            workloads: vec![WorkloadId::Mini],
            runs_per_cell: 1,
        };
        let narrow = CampaignSpec {
            master_seed: 9,
            trojans: vec!["t2".into()],
            workloads: vec![WorkloadId::Mini],
            runs_per_cell: 1,
        };
        let wide_t2 = wide
            .scenarios()
            .unwrap()
            .into_iter()
            .find(|s| s.trojan == "t2")
            .unwrap();
        let narrow_t2 = narrow.scenarios().unwrap()[0].clone();
        assert_eq!(
            wide_t2.seed, narrow_t2.seed,
            "seed must not depend on matrix shape"
        );
    }

    #[test]
    fn unknown_trojan_rejected() {
        let spec = CampaignSpec {
            master_seed: 1,
            trojans: vec!["t99".into()],
            workloads: vec![WorkloadId::Mini],
            runs_per_cell: 1,
        };
        assert!(spec.scenarios().is_err());
    }

    #[test]
    fn workload_names_round_trip() {
        for w in WorkloadId::ALL {
            assert_eq!(WorkloadId::from_name(w.name()).unwrap(), w);
        }
        assert!(WorkloadId::from_name("nope").is_err());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..57).collect();
        for threads in [1, 3, 8] {
            let out = parallel_map(&items, threads, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }
}

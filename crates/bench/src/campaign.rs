//! Parallel scenario campaigns: attack × workload × seed, fanned across
//! worker threads with deterministic results.
//!
//! The paper's evaluation is a matrix — nine Table I Trojans, the
//! Flaw3D variants of Table II, the Figure 4 sweep — and scaling the
//! reproduction means running whole matrices at once. A
//! [`CampaignSpec`] names the matrix; [`run_campaign`] executes every
//! scenario on a `std::thread` worker pool. Each scenario's seed is
//! derived from the campaign's master seed and the scenario's *label*
//! via [`SeedSplitter`], never from scheduling order, so the campaign
//! produces **byte-identical summaries for any thread count** — the
//! property the `campaign_determinism` integration test pins down.
//!
//! The matrix composes three open-ended axes:
//!
//! * **workloads** — any [`Workload`] from the open registry: the four
//!   canonical paper prints and/or a procedurally generated corpus
//!   ([`crate::corpus::CorpusSpec`]), keyed everywhere by label;
//! * **attacks** — `"none"`, hardware Trojans by roster id or
//!   parameterized spec (`t2:0.25`, `t5:200@2`, … — see
//!   [`offramps::trojans::by_spec`]), and upstream Flaw3D transforms
//!   (`flaw3d-r<pct>`, `flaw3d-rel<n>`); [`sweep_attacks`] expands the
//!   default intensity/trigger grids;
//! * **seeds** — `runs_per_cell` independent reprints per cell.
//!
//! Every scenario prints through the capture path and is judged against
//! a golden capture of the same workload (also derived from the master
//! seed), giving the summary its detection column. Hardware Trojans
//! (`t1`–`t9`, `tx1`, `tx2`) are armed inside the interceptor — the
//! monitor taps the *controller's* stream upstream of the Trojan mux,
//! so their signal tampering is invisible to the step-count detector
//! (the paper never co-locates its attack and defense); Trojans whose
//! physical damage feeds back into motion still surface indirectly.
//! Flaw3D G-code attacks apply *upstream* of the firmware — exactly the
//! attacks the paper's detection program catches.
//!
//! Short prints export few transactions, so a couple of
//! sampling-boundary wobbles would trip the paper's 1 % suspect
//! fraction; the campaign therefore additionally requires at least
//! three mismatching transactions before flagging a run. Each
//! scenario's
//! `transactions_compared`, `mismatches` and the suspect-fraction
//! threshold it was judged with are part of the report, so the verdict
//! is auditable from the JSON artifact alone.
//!
//! Judging itself is pluggable: the spec names a
//! [`offramps::verdict::DetectorSuite`] (`detectors`/`fusion` fields —
//! the transaction judge alone by default, `txn,power` for
//! multi-modality fusion with the driver-rail power side-channel), and
//! every scenario's [`ScenarioResult`] carries the suite's fused
//! [`Verdict`] with per-detector [`offramps::verdict::Evidence`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use offramps::verdict::{
    DetectorSuite, EvidenceBundle, FusionPolicy, OnlineMonitor, OnlineOutcome, OnlineStep,
    StreamingSuite, TimeToDetection, Verdict,
};
use offramps::{
    trojans, BenchError, RunArtifacts, SignalPath, TestBench, TransactionDetector, Trojan,
};
use offramps_attacks::Flaw3dTrojan;
use offramps_des::SeedSplitter;
use offramps_gcode::Program;
use offramps_obs::{FlightRecorder, MetricClass, Obs};

use crate::detectors;
use crate::json::{ObjectWriter, ToJson};
use crate::workloads::Workload;

/// What a scenario arms or applies.
#[derive(Debug)]
pub enum Attack {
    /// A clean reprint.
    None,
    /// A hardware Trojan armed in the interceptor.
    Trojan(Box<dyn Trojan>),
    /// A Flaw3D G-code transform applied upstream of the firmware.
    Flaw3d(Flaw3dTrojan),
}

/// Parses an attack name: `"none"`, a roster Trojan id or parameterized
/// spec (see [`trojans::by_spec`]), a `flaw3d-r<percent>` reduction, or
/// a `flaw3d-rel<n>` relocation.
///
/// # Errors
///
/// Returns the unknown name back.
///
/// # Example
///
/// ```
/// use offramps_bench::campaign::{parse_attack, Attack};
///
/// assert!(matches!(parse_attack("none").unwrap(), Attack::None));
/// assert!(matches!(parse_attack("t2").unwrap(), Attack::Trojan(_)));
/// assert!(matches!(parse_attack("t2:0.25").unwrap(), Attack::Trojan(_)));
/// assert!(matches!(parse_attack("flaw3d-r90").unwrap(), Attack::Flaw3d(_)));
/// assert!(parse_attack("bogus").is_err());
/// ```
pub fn parse_attack(name: &str) -> Result<Attack, String> {
    let name = name.to_ascii_lowercase();
    if name == "none" {
        return Ok(Attack::None);
    }
    // Check the longer prefix first: "flaw3d-rel…" also starts with
    // "flaw3d-r".
    if let Some(n) = name.strip_prefix("flaw3d-rel") {
        let every_n: u32 = n
            .parse()
            .map_err(|_| format!("bad relocation stride in {name:?}"))?;
        if every_n == 0 {
            return Err(format!("relocation stride must be positive in {name:?}"));
        }
        return Ok(Attack::Flaw3d(Flaw3dTrojan::Relocation { every_n }));
    }
    if let Some(pct) = name.strip_prefix("flaw3d-r") {
        let pct: f64 = pct
            .parse()
            .map_err(|_| format!("bad reduction percent in {name:?}"))?;
        if !(0.0..=100.0).contains(&pct) {
            return Err(format!("reduction percent out of range in {name:?}"));
        }
        return Ok(Attack::Flaw3d(Flaw3dTrojan::Reduction {
            factor: pct / 100.0,
        }));
    }
    trojans::by_spec(&name).map(Attack::Trojan)
}

/// The default attack-parameter sweep: Flaw3D reduction/relocation
/// grids plus Trojan intensity and trigger-layer grids — 33 attacks
/// including the clean reprint. Composed with a corpus it turns a
/// campaign into a thousands-of-cells stress matrix
/// (`offramps-cli campaign --corpus N --sweep`).
pub fn sweep_attacks() -> Vec<String> {
    let mut out = vec!["none".to_string()];
    // Flaw3D reduction-percent grid (Table II's four values plus two
    // midpoints).
    for pct in [50, 75, 85, 90, 95, 98] {
        out.push(format!("flaw3d-r{pct}"));
    }
    // Flaw3D relocation-stride grid.
    for n in [5, 10, 20, 50, 100] {
        out.push(format!("flaw3d-rel{n}"));
    }
    // Trojan intensity grids (see `trojans::by_spec` for the grammar).
    for keep in ["0.25", "0.5", "0.75"] {
        out.push(format!("t2:{keep}"));
    }
    for scale in ["0.25", "0.5", "0.75"] {
        out.push(format!("t9:{scale}"));
    }
    // Trigger-layer grid for the Z-shift Trojan.
    for (steps, layer) in [(100, 1), (200, 2), (200, 5)] {
        out.push(format!("t5:{steps}@{layer}"));
    }
    for (lo, hi) in [(10, 40), (30, 80)] {
        out.push(format!("t4:{lo}-{hi}"));
    }
    for off in [15, 30] {
        out.push(format!("tx2:{off}"));
    }
    // Fast-interval variant of T1 next to the paper's 10 s default, the
    // remaining roster Trojans at their defaults, and a late endstop
    // spoof.
    out.extend(
        ["t1", "t1:2", "t3", "t6", "t7", "t8", "tx1", "tx1:5000"]
            .iter()
            .map(|s| s.to_string()),
    );
    out
}

/// A campaign matrix: every listed attack (plus `"none"` for clean
/// reprints) against every workload, `runs_per_cell` times, judged by
/// the named detector suite.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Master seed; every scenario seed is derived from it by label.
    pub master_seed: u64,
    /// Attack names accepted by [`parse_attack`]: `"none"`, Trojan
    /// roster ids / parameterized specs, or Flaw3D transforms.
    pub trojans: Vec<String>,
    /// Workloads to print (canonical and/or corpus-generated).
    pub workloads: Vec<Workload>,
    /// Independent seeds per (trojan, workload) cell.
    pub runs_per_cell: u32,
    /// Detector names accepted by [`crate::detectors::by_name`]
    /// (`"txn"`, `"power"`, `"acoustic"`, `"thermal"`); the suite
    /// judging every scenario.
    pub detectors: Vec<String>,
    /// How the suite fuses per-detector alarms.
    pub fusion: FusionPolicy,
    /// Judge each scenario *online*: replay its evidence through the
    /// suite's streaming facets ([`StreamingSuite`]) and record
    /// time-to-detection. Finalized streaming verdicts are
    /// byte-identical to the post-hoc path, so this adds TTD columns to
    /// fresh results without perturbing any verdict, summary line, or
    /// cache key.
    pub online: bool,
}

impl CampaignSpec {
    /// The default matrix: a clean reprint, all eleven roster Trojans,
    /// and three Flaw3D attacks on the mini workload, one run each,
    /// judged by the transaction detector alone.
    pub fn default_matrix(master_seed: u64) -> Self {
        let mut trojans = vec!["none".to_string()];
        trojans.extend(trojans::TROJAN_NAMES.iter().map(|s| s.to_string()));
        trojans.extend(["flaw3d-r50", "flaw3d-r90", "flaw3d-rel20"].map(String::from));
        CampaignSpec {
            master_seed,
            trojans,
            workloads: vec![Workload::mini()],
            runs_per_cell: 1,
            detectors: vec![TransactionDetector::NAME.to_string()],
            fusion: FusionPolicy::Any,
            online: false,
        }
    }

    /// Whether this spec judges with the default transaction-only
    /// suite (report metadata stays in its pre-suite shape then).
    /// Compares case-insensitively, like
    /// [`crate::detectors::by_name`]'s resolution, so two specs that
    /// build the identical suite produce identical artifacts.
    pub fn default_detectors(&self) -> bool {
        matches!(self.detectors.as_slice(),
            [only] if only.trim().eq_ignore_ascii_case(TransactionDetector::NAME))
            && self.fusion == FusionPolicy::Any
    }

    /// Builds the detector suite this campaign judges with.
    ///
    /// # Errors
    ///
    /// Reports an unknown detector name, duplicates, or an empty list.
    pub fn suite(&self) -> Result<DetectorSuite, String> {
        detectors::suite_from_names(&self.detectors, self.fusion.clone())
    }

    /// Validates attack names and workload labels, then expands the
    /// matrix into scenarios in deterministic (attack-major) order.
    ///
    /// # Errors
    ///
    /// Reports the first unknown attack name or duplicate workload
    /// label.
    pub fn scenarios(&self) -> Result<Vec<Scenario>, String> {
        let mut seen = std::collections::BTreeSet::new();
        for w in &self.workloads {
            if !seen.insert(w.label()) {
                return Err(format!("duplicate workload label {:?}", w.label()));
            }
        }
        let split = SeedSplitter::new(self.master_seed);
        let mut out = Vec::new();
        for trojan in &self.trojans {
            parse_attack(trojan)?;
            for workload in &self.workloads {
                for run in 0..self.runs_per_cell.max(1) {
                    let label = format!("campaign/{}/{}/{}", workload.label(), trojan, run);
                    out.push(Scenario {
                        index: out.len(),
                        trojan: trojan.clone(),
                        workload: workload.label().to_string(),
                        run,
                        seed: split.derive(&label),
                    });
                }
            }
        }
        Ok(out)
    }

    /// The seed a workload's golden capture runs under, derived from
    /// the workload *label* so corpus growth never perturbs it.
    pub fn golden_seed(&self, workload_label: &str) -> u64 {
        SeedSplitter::new(self.master_seed).derive(&format!("campaign/golden/{workload_label}"))
    }

    /// The seeds a workload's extra golden calibration repetitions run
    /// under (label-derived, like every other campaign seed). Empty for
    /// suites that calibrate from nothing beyond the primary run; the
    /// runs these seeds drive are shared by every repeat-calibrated
    /// detector in the suite.
    pub fn calibration_seeds(&self, workload_label: &str, calibration_runs: usize) -> Vec<u64> {
        let split = SeedSplitter::new(self.master_seed);
        (1..calibration_runs)
            .map(|i| split.derive(&format!("campaign/golden/{workload_label}/calib/{i}")))
            .collect()
    }
}

/// One cell × run of the campaign matrix.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Position in the expanded matrix (summary order).
    pub index: usize,
    /// Attack name (see [`parse_attack`]), or `"none"`.
    pub trojan: String,
    /// Label of the workload printed.
    pub workload: String,
    /// Run number within the cell.
    pub run: u32,
    /// The derived seed.
    pub seed: u64,
}

/// Outcome of one scenario: run artifacts plus the suite's fused
/// [`Verdict`] with per-detector [`Evidence`] (sufficient statistics,
/// so any threshold can be re-judged offline).
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Final firmware state (or the bench error), rendered.
    pub fw_state: String,
    /// Events processed by the scheduler.
    pub events: u64,
    /// Simulated nanoseconds of the job.
    pub sim_ns: u64,
    /// Firmware step counters at the end.
    pub fw_steps: [i64; 4],
    /// The detector suite's fused verdict and per-detector evidence.
    pub verdict: Verdict,
    /// Time-to-detection under online judging: `Some` iff the campaign
    /// ran with [`CampaignSpec::online`] and the fused monitor alarmed
    /// mid-print. Post-hoc campaigns always carry `None`, keeping their
    /// artifacts byte-identical to the pre-online format.
    pub ttd: Option<TimeToDetection>,
    /// Host milliseconds the run took (excluded from the deterministic
    /// summary and JSON; see [`CampaignReport::timing_json`]).
    pub wall_ms: u64,
}

impl ScenarioResult {
    /// Whether the suite's fused verdict flagged the print.
    pub fn detected(&self) -> bool {
        self.verdict.alarmed
    }

    /// Out-of-margin transaction *values* against the golden capture
    /// (a transaction with two bad axes counts twice).
    pub fn mismatches(&self) -> usize {
        self.verdict.txn().map_or(0, |e| e.flagged_values)
    }

    /// Transactions with at least one out-of-margin axis — the
    /// numerator the transaction judge's suspect fraction uses.
    pub fn mismatched_transactions(&self) -> usize {
        self.verdict.txn().map_or(0, |e| e.flagged)
    }

    /// Transactions the step-count judge compared.
    pub fn transactions_compared(&self) -> usize {
        self.verdict.txn().map_or(0, |e| e.compared)
    }

    /// The end-of-print 0 %-margin totals check (`None` when the
    /// scenario was never judged).
    pub fn final_totals_match(&self) -> Option<bool> {
        self.verdict.txn().and_then(|e| e.final_totals_match)
    }

    /// The suspect-fraction threshold the transaction judge used
    /// (`None` — and absent from the JSON — for scenarios that were
    /// never judged: an unjudged run is not a run judged at
    /// threshold 0).
    pub fn suspect_fraction(&self) -> Option<f64> {
        self.verdict.txn().and_then(|e| e.threshold)
    }

    /// The deterministic summary line for this result — everything
    /// except host timing. The verdict column is the suite's *fused*
    /// alarm.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<4} {:<10} {:<12} {:<4} {:<18} {:>9} {:>12} {:<9} {:>6}  [{} {} {} {}]",
            self.scenario.index,
            self.scenario.workload,
            self.scenario.trojan,
            self.scenario.run,
            self.fw_state,
            self.events,
            self.sim_ns,
            if self.detected() { "DETECTED" } else { "clean" },
            self.mismatches(),
            self.fw_steps[0],
            self.fw_steps[1],
            self.fw_steps[2],
            self.fw_steps[3],
        )
    }

    /// Emits the detection-verdict fields shared by the report JSON and
    /// the scenario-store payload — one writer, so the two formats can
    /// never drift apart field by field. The transaction judge's
    /// statistics keep their pre-suite field names (and a
    /// transaction-only verdict emits nothing else, so default
    /// campaigns stay byte-identical); any further detectors ride in an
    /// `evidence` array of per-detector sufficient statistics.
    pub(crate) fn write_verdict_fields(&self, w: &mut ObjectWriter<'_>) {
        // Online-only fields: absent entirely on post-hoc campaigns and
        // on online scenarios that never alarmed, so default artifacts
        // keep their pre-online shape byte for byte. They lead the
        // block — the writer attaches the separating comma to the line
        // *before* each new key, so an online-only field must always be
        // followed by an unconditional one ("detected") for the
        // artifact minus its `ttd_` lines to equal the post-hoc bytes.
        if let Some(ttd) = self.ttd {
            w.int("ttd_step", ttd.alarm_step as i128)
                .float("ttd_print_fraction", ttd.print_fraction)
                .float("ttd_material_saved", ttd.material_saved);
        }
        w.bool("detected", self.detected())
            .int("mismatches", self.mismatches() as i128)
            .int(
                "mismatched_transactions",
                self.mismatched_transactions() as i128,
            )
            .int(
                "transactions_compared",
                self.transactions_compared() as i128,
            );
        match self.final_totals_match() {
            Some(v) => w.bool("final_totals_match", v),
            None => w.raw("final_totals_match", "null"),
        };
        if let Some(fraction) = self.suspect_fraction() {
            w.float("suspect_fraction", fraction);
        }
        if self
            .verdict
            .evidence
            .iter()
            .any(|e| e.detector != offramps::TransactionDetector::NAME)
        {
            w.value("evidence", &self.verdict.evidence);
        }
    }
}

impl ToJson for ScenarioResult {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.int("index", self.scenario.index as i128)
            .string("workload", &self.scenario.workload)
            .string("trojan", &self.scenario.trojan)
            .int("run", self.scenario.run as i128)
            .int("seed", self.scenario.seed as i128)
            .string("fw_state", &self.fw_state)
            .int("events", self.events as i128)
            .int("sim_ns", self.sim_ns as i128);
        self.write_verdict_fields(&mut w);
        w.finish();
    }
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// The spec that ran (workload labels and attack names feed the
    /// JSON metadata block).
    pub spec: CampaignSpec,
    /// Per-scenario results, in matrix order regardless of which worker
    /// ran what.
    pub results: Vec<ScenarioResult>,
    /// Worker threads used (informational; does not affect results).
    pub threads: usize,
    /// Host seconds for the whole campaign.
    pub wall_s: f64,
}

impl CampaignReport {
    /// Total simulation events across all scenarios.
    pub fn total_events(&self) -> u64 {
        self.results.iter().map(|r| r.events).sum()
    }

    /// Scenarios the suite's fused verdict flagged.
    pub fn detections(&self) -> usize {
        self.results.iter().filter(|r| r.detected()).count()
    }

    /// Aggregate throughput over host time (non-deterministic).
    pub fn events_per_sec(&self) -> f64 {
        self.total_events() as f64 / self.wall_s.max(1e-9)
    }

    /// The deterministic summary table: identical for every thread
    /// count, byte for byte.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<4} {:<10} {:<12} {:<4} {:<18} {:>9} {:>12} {:<9} {:>6}  fw_steps\n",
            "#", "workload", "trojan", "run", "fw_state", "events", "sim_ns", "verdict", "mism"
        ));
        out.push_str(&"-".repeat(100));
        out.push('\n');
        for r in &self.results {
            out.push_str(&r.summary_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "runs: {}   events: {}   detections: {}\n",
            self.results.len(),
            self.total_events(),
            self.detections(),
        ));
        out
    }

    /// Host-timing sidecar: per-scenario wall milliseconds plus the
    /// pool shape, as JSON. Kept out of [`ToJson::to_json`] (and out of
    /// [`CampaignReport::summary`]) because wall time varies run to run
    /// — the main artifacts stay byte-identical for any thread count.
    pub fn timing_json(&self) -> String {
        self.timing_json_observed(&Obs::disabled())
    }

    /// [`CampaignReport::timing_json`] with the observability plane's
    /// *execution-class* counters embedded (lockstep lane rotations and
    /// friends — numbers that legitimately vary with the engine and
    /// batch size, so they belong in this non-deterministic sidecar,
    /// never in the metrics document). A disabled handle, or one with
    /// no execution counters, produces the plain sidecar byte for byte.
    pub fn timing_json_observed(&self, obs: &Obs) -> String {
        let mut out = String::new();
        let mut w = ObjectWriter::new(&mut out, 0);
        w.int("threads", self.threads as i128)
            .float("wall_s", self.wall_s)
            .float("events_per_sec", self.events_per_sec());
        if let Some(registry) = obs.is_enabled().then(|| obs.registry()) {
            let exec = registry.counters_of(MetricClass::Execution);
            if !exec.is_empty() {
                let mut body = String::from("{");
                for (i, (name, value)) in exec.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!("\n    {}: {}", crate::json::escape(name), value));
                }
                body.push_str("\n  }");
                w.raw("exec_metrics", &body);
            }
            let spans = obs.spans();
            if !spans.is_empty() {
                let mut body = String::from("[");
                for (i, span) in spans.iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&format!(
                        "\n    {{\"label\": {}, \"component\": {}",
                        crate::json::escape(&span.label),
                        crate::json::escape(span.component),
                    ));
                    if let Some(scenario) = span.scenario {
                        body.push_str(&format!(", \"scenario\": {scenario}"));
                    }
                    body.push_str(&format!(
                        ", \"start_us\": {}, \"end_us\": {}}}",
                        span.start_micros, span.end_micros
                    ));
                }
                body.push_str("\n  ]");
                w.raw("spans", &body);
            }
        }
        let mut scenarios = String::from("[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                scenarios.push(',');
            }
            scenarios.push_str(&format!(
                "\n    {{\"index\": {}, \"wall_ms\": {}}}",
                r.scenario.index, r.wall_ms
            ));
        }
        scenarios.push_str("\n  ]");
        w.raw("scenarios", &scenarios);
        w.finish();
        out
    }
}

impl ToJson for CampaignReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let workloads: Vec<String> = self
            .spec
            .workloads
            .iter()
            .map(|w| crate::json::escape(w.label()))
            .collect();
        let attacks: Vec<String> = self
            .spec
            .trojans
            .iter()
            .map(|t| crate::json::escape(t))
            .collect();
        let mut w = ObjectWriter::new(out, indent);
        w.int("master_seed", self.spec.master_seed as i128)
            .int("runs_per_cell", self.spec.runs_per_cell.max(1) as i128);
        // Online judging is part of the artifact's metadata; post-hoc
        // campaigns keep the pre-online shape byte for byte.
        if self.spec.online {
            w.bool("online", true);
        }
        // Non-default suites are part of the artifact's metadata; the
        // default transaction-only suite keeps the pre-suite shape so
        // existing reports stay byte-identical.
        if !self.spec.default_detectors() {
            let detectors: Vec<String> = self
                .spec
                .detectors
                .iter()
                .map(|d| crate::json::escape(d))
                .collect();
            w.raw("detectors", &format!("[{}]", detectors.join(", ")))
                .string("fusion", &self.spec.fusion.to_string());
        }
        w.raw("workloads", &format!("[{}]", workloads.join(", ")))
            .raw("attacks", &format!("[{}]", attacks.join(", ")))
            .int("runs", self.results.len() as i128)
            .int("events", self.total_events() as i128)
            .int("detections", self.detections() as i128)
            .value(
                "analytics",
                &crate::analytics::AnalyticsReport::from_results(&self.results),
            )
            .value("results", &self.results);
        w.finish();
    }
}

/// Maps `f` over `items` on a pool of `threads` workers.
///
/// **Order-preservation invariant:** `output[i]` is `f(&items[i])`, for
/// every `i`, regardless of which worker computed it or in what order
/// workers finished — callers reassemble matrix-order results (and
/// matrix-order store appends) on the strength of this, so the
/// claiming strategy below may change but the invariant may not.
///
/// Work is claimed from a shared atomic index in contiguous chunks of a
/// few items per `fetch_add` — less cache-line traffic on the counter
/// than claiming one item at a time, while chunks stay small enough
/// that a straggling chunk never idles the rest of the pool.
pub(crate) fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    // Aim for several claims per worker so finish times even out.
    let chunk = (items.len() / (workers * 8)).clamp(1, 16);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                for (i, item) in items.iter().enumerate().skip(start).take(chunk) {
                    let result = f(item);
                    *slots[i].lock().expect("result slot") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("poisoned slot")
                .expect("worker filled slot")
        })
        .collect()
}

/// The canonical rendering of the *default* (transaction-only) judging
/// policy — kept for store compatibility checks; campaigns key their
/// records by [`DetectorSuite::policy`] of whatever suite they judge
/// with, which renders exactly this string for the default suite.
pub fn campaign_detector_policy() -> String {
    DetectorSuite::transaction_default().policy()
}

/// Produces the golden evidence bundle for one workload under the
/// campaign's label-derived golden seed (plus shared calibration
/// repetitions when any detector in the suite calibrates from
/// repeated golden prints).
pub(crate) fn golden_evidence(
    spec: &CampaignSpec,
    w: &Workload,
    program: &Arc<Program>,
    suite: &DetectorSuite,
) -> EvidenceBundle {
    detectors::golden_evidence(
        program,
        spec.golden_seed(w.label()),
        &spec.calibration_seeds(w.label(), suite.calibration_runs()),
        suite,
    )
}

/// Default lanes per lockstep batch. Big enough to amortize queue and
/// program-image overhead across siblings, small enough that the
/// per-lane working sets still fit in cache together.
pub const DEFAULT_LOCKSTEP_BATCH: usize = 8;

/// How scenario simulations are executed. This is an execution knob
/// only — results, summaries and JSON artifacts are byte-identical for
/// every engine (and every batch size), a property
/// `tests/lockstep_equivalence.rs` pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// One solo scheduler per scenario — the pre-batch engine, kept as
    /// the equivalence oracle.
    Solo,
    /// Lockstep batches of at most this many sibling lanes per
    /// workload group (`0` means one batch per whole group).
    Lockstep(usize),
}

impl Default for Engine {
    fn default() -> Self {
        Engine::Lockstep(DEFAULT_LOCKSTEP_BATCH)
    }
}

/// Builds the bench and job for one scenario: capture path, plant
/// trace when the suite consumes it, and the scenario's attack either
/// armed in the interceptor or applied to the G-code upstream.
fn scenario_bench(
    scenario: &Scenario,
    program: &Arc<Program>,
    suite: &DetectorSuite,
) -> (TestBench, Arc<Program>) {
    let mut bench = TestBench::new(scenario.seed)
        .signal_path(SignalPath::capture())
        .record_plant_trace(suite.needs_plant_trace());
    let mut job = Arc::clone(program);
    match parse_attack(&scenario.trojan).expect("names validated by CampaignSpec") {
        Attack::None => {}
        Attack::Trojan(trojan) => bench = bench.with_trojan(trojan),
        Attack::Flaw3d(attack) => job = Arc::new(attack.apply(program)),
    }
    (bench, job)
}

/// One campaign's judging configuration, threaded as a unit to every
/// worker: the suite each scenario is judged with, and whether the
/// evidence is replayed through its streaming facets (online) or
/// judged post-hoc.
#[derive(Clone, Copy)]
pub(crate) struct Judging<'a> {
    /// The detector suite judging every scenario.
    pub suite: &'a DetectorSuite,
    /// Replay online and record time-to-detection.
    pub online: bool,
    /// The observability plane (disabled on the default path, where it
    /// costs nothing and records nothing).
    pub obs: &'a Obs,
    /// Keep a flight recorder per online scenario and narrate the
    /// first fused alarm as a trace. Traces only — the metrics are
    /// identical with or without narration.
    pub trace_alarms: bool,
}

/// Judges one scenario's run outcome against its golden evidence.
/// `sim_ms` is the host time attributed to the simulation itself;
/// judging time is added on top. Online judging replays the evidence
/// through the suite's streaming facets instead — the finalized verdict
/// is byte-identical to the post-hoc judge, and the fused monitor's
/// time-to-detection rides along.
fn judge_outcome(
    scenario: &Scenario,
    outcome: Result<RunArtifacts, BenchError>,
    golden: &EvidenceBundle,
    judging: Judging<'_>,
    sim_ms: u64,
) -> ScenarioResult {
    let Judging {
        suite,
        online,
        obs,
        trace_alarms,
    } = judging;
    if obs.is_enabled() {
        obs.count("campaign.scenarios_simulated", 1);
    }
    let judge_start = obs.clock_micros();
    // detlint: allow(D2) -- verdict wall-clock is execution-class, emitted only via the timing sidecar
    let t0 = Instant::now();
    let result = match outcome {
        Ok(art) => {
            if obs.is_enabled() {
                obs.count("kernel.events_committed", art.kernel.events);
                obs.count("kernel.wake_dedups", art.kernel.wake_dedups);
                obs.count("kernel.spill_heap_hits", art.kernel.spills);
                obs.count_exec("kernel.lane_rotations", art.kernel.rotations);
            }
            let fw_state = format!("{:?}", art.fw_state);
            let events = art.events;
            let sim_ns = art.sim_time.as_duration().as_nanos();
            let fw_steps = art.fw_steps;
            let observed = detectors::observed_evidence(art, scenario.seed, suite);
            let (verdict, ttd) = if online {
                let streaming = StreamingSuite::new(suite);
                let outcome = if obs.is_enabled() {
                    observe_online(
                        scenario,
                        suite,
                        streaming.monitor(golden, &observed),
                        obs,
                        trace_alarms,
                    )
                } else {
                    streaming.run(golden, &observed)
                };
                (outcome.verdict, outcome.ttd)
            } else if obs.is_enabled() {
                (suite.judge_observed(golden, &observed, obs), None)
            } else {
                (suite.judge(golden, &observed), None)
            };
            ScenarioResult {
                scenario: scenario.clone(),
                fw_state,
                events,
                sim_ns,
                fw_steps,
                verdict,
                ttd,
                wall_ms: sim_ms + t0.elapsed().as_millis() as u64,
            }
        }
        Err(e) => ScenarioResult {
            scenario: scenario.clone(),
            fw_state: format!("error: {e}"),
            events: 0,
            sim_ns: 0,
            fw_steps: [0; 4],
            verdict: suite.unjudged(),
            ttd: None,
            wall_ms: sim_ms,
        },
    };
    obs.record_span(
        "campaign",
        Some(scenario.index),
        "judge",
        judge_start,
        obs.clock_micros(),
    );
    result
}

/// Evidence windows the per-scenario flight recorder keeps: the
/// alarming slice plus the two before it — enough context to see the
/// margin close without narrating the whole print.
pub const FLIGHT_RECORDER_WINDOWS: usize = 3;

/// Drives one online replay slice by slice with the observability
/// plane on: the monitor's window rollup and final verdict metrics are
/// always published (via [`OnlineMonitor::finish_observed`]); with
/// `trace_alarms`, a [`FlightRecorder`] keeps the last
/// [`FLIGHT_RECORDER_WINDOWS`] slices and the first fused alarm is
/// rendered as a narrated timeline under the scenario's matrix index.
/// The outcome — and every metric — is byte-identical with tracing on
/// or off.
fn observe_online(
    scenario: &Scenario,
    suite: &DetectorSuite,
    mut monitor: OnlineMonitor<'_>,
    obs: &Obs,
    trace_alarms: bool,
) -> OnlineOutcome {
    let mut recorder = FlightRecorder::new(FLIGHT_RECORDER_WINDOWS);
    let mut narrative: Option<(u64, f64, Vec<String>)> = None;
    while let Some(step) = monitor.step() {
        if !trace_alarms {
            continue;
        }
        let (alarmed, window, secs) = (
            step.alarmed,
            step.step,
            step.elapsed.as_nanos() as f64 / 1e9,
        );
        recorder.push(step);
        if alarmed && narrative.is_none() {
            let lines = recorder
                .iter()
                .map(|s| narrate_step(suite, s))
                .collect::<Vec<_>>();
            narrative = Some((window, secs, lines));
        }
    }
    let outcome = monitor.finish_observed(obs);
    if let Some((window, secs, body)) = narrative {
        let mut lines = vec![format!(
            "#{} {}/{} run {}: ALARM at window {} (t={secs:.1}s)",
            scenario.index, scenario.workload, scenario.trojan, scenario.run, window
        )];
        lines.extend(body);
        if let Some(ttd) = outcome.ttd {
            lines.push(format!(
                "  halt: print {:.1}% done, material saved {:.1}%",
                ttd.print_fraction * 100.0,
                ttd.material_saved * 100.0
            ));
        }
        obs.record_trace(scenario.index, lines);
    }
    outcome
}

/// One flight-recorder slice as a narrative line: every judged
/// detector's provisional count and threshold margin (`-> VOTE` when
/// it alarmed), then the fused tally against the policy's effective
/// threshold (`-> ALARM` when the fusion fired).
fn narrate_step(suite: &DetectorSuite, step: &OnlineStep) -> String {
    let mut parts: Vec<String> = Vec::new();
    for w in &step.windows {
        let Some(alarmed) = w.alarmed else { continue };
        let mut part = format!("{} {}/{}", w.detector, w.flagged, w.compared);
        if let Some(margin) = w.margin() {
            part.push_str(&format!(" {margin:+.4}"));
        }
        if alarmed {
            part.push_str(" -> VOTE");
        }
        parts.push(part);
    }
    let tally = suite.fusion().tally_votes(
        step.windows
            .iter()
            .filter_map(|w| w.alarmed.map(|a| (w.detector, a))),
    );
    let mut line = format!("  window {}: ", step.step);
    if !parts.is_empty() {
        line.push_str(&parts.join(", "));
        line.push_str("; ");
    }
    line.push_str(&format!(
        "fused {:.2}/{:.2}",
        tally.alarmed_fraction(),
        tally.threshold
    ));
    if step.alarmed {
        line.push_str(" -> ALARM");
    }
    line
}

/// Runs one scenario on the solo engine and judges it with the suite
/// against its workload's golden evidence.
pub(crate) fn run_scenario(
    scenario: &Scenario,
    program: &Arc<Program>,
    golden: &EvidenceBundle,
    judging: Judging<'_>,
) -> ScenarioResult {
    let (bench, job) = scenario_bench(scenario, program, judging.suite);
    // detlint: allow(D2) -- per-scenario sim_ms is execution-class, reported only in the timing sidecar
    let t0 = Instant::now();
    let outcome = bench.run(&job);
    let sim_ms = t0.elapsed().as_millis() as u64;
    judge_outcome(scenario, outcome, golden, judging, sim_ms)
}

/// Runs a batch of sibling scenarios of one workload in lockstep —
/// one shared event queue, the workload's program image hot in cache —
/// then judges each lane. Per-lane results are exactly what
/// [`run_scenario`] produces; batch `wall_ms` is split evenly across
/// lanes (host timing lives only in the non-deterministic sidecar).
pub(crate) fn run_scenario_batch(
    batch: &[&Scenario],
    program: &Arc<Program>,
    golden: &EvidenceBundle,
    judging: Judging<'_>,
) -> Vec<ScenarioResult> {
    let (benches, jobs): (Vec<_>, Vec<_>) = batch
        .iter()
        .map(|sc| scenario_bench(sc, program, judging.suite))
        .unzip();
    // detlint: allow(D2) -- batched sim_ms is execution-class, reported only in the timing sidecar
    let t0 = Instant::now();
    let outcomes = TestBench::run_batch(benches, &jobs);
    let sim_ms = t0.elapsed().as_millis() as u64 / batch.len() as u64;
    batch
        .iter()
        .zip(outcomes)
        .map(|(sc, outcome)| judge_outcome(sc, outcome, golden, judging, sim_ms))
        .collect()
}

/// Runs one workload's golden lanes (the primary capture plus every
/// shared calibration repetition the suite consumes) and its first
/// scenario chunk as sibling lanes of **one** lockstep batch, then
/// judges the scenario lanes against the bundle assembled from the
/// golden lanes — golden-run fusion. The golden artifacts, and thus
/// the bundle, are byte-identical to a standalone
/// [`golden_evidence`] call: every lane's event stream is seq-from-0
/// identical to its solo run whatever batch it rides in, a property
/// `tests/lockstep_equivalence.rs` pins.
pub(crate) fn run_fused_batch(
    spec: &CampaignSpec,
    batch: &[&Scenario],
    program: &Arc<Program>,
    judging: Judging<'_>,
) -> (EvidenceBundle, Vec<ScenarioResult>) {
    let suite = judging.suite;
    let label = batch[0].workload.as_str();
    let seeds = detectors::golden_seed_plan(
        spec.golden_seed(label),
        &spec.calibration_seeds(label, suite.calibration_runs()),
        suite,
    );
    let needs_plant_trace = suite.needs_plant_trace();
    let mut benches: Vec<TestBench> = seeds
        .iter()
        .map(|&seed| detectors::golden_bench(seed, needs_plant_trace))
        .collect();
    let mut jobs: Vec<Arc<Program>> = seeds.iter().map(|_| Arc::clone(program)).collect();
    for sc in batch {
        let (bench, job) = scenario_bench(sc, program, suite);
        benches.push(bench);
        jobs.push(job);
    }
    // detlint: allow(D2) -- fused-batch sim_ms is execution-class, reported only in the timing sidecar
    let t0 = Instant::now();
    let mut outcomes = TestBench::run_batch(benches, &jobs).into_iter();
    let golden_runs: Vec<(u64, RunArtifacts)> = seeds
        .iter()
        .map(|&seed| {
            let run = outcomes.next().expect("golden lane").expect("golden run");
            (seed, run)
        })
        .collect();
    let sim_ms = t0.elapsed().as_millis() as u64 / (seeds.len() + batch.len()) as u64;
    let golden = detectors::golden_bundle_from_runs(golden_runs, suite);
    let results = batch
        .iter()
        .zip(outcomes)
        .map(|(sc, outcome)| judge_outcome(sc, outcome, &golden, judging, sim_ms))
        .collect();
    (golden, results)
}

/// Plans the lockstep batches for a scenario matrix: scenarios are
/// grouped by workload (groups ordered like `workload_order`, members
/// in matrix order) and chunked to at most `batch` lanes. A function
/// of the spec alone — never of threads or scheduling — so the plan is
/// deterministic; and since every batch is judged lane by lane, the
/// plan does not shape the artifacts either.
pub(crate) fn lockstep_batches<'a>(
    scenarios: impl IntoIterator<Item = &'a Scenario>,
    workload_order: &[&str],
    batch: usize,
) -> Vec<Vec<&'a Scenario>> {
    let mut groups: BTreeMap<&str, Vec<&Scenario>> = BTreeMap::new();
    for sc in scenarios {
        groups.entry(sc.workload.as_str()).or_default().push(sc);
    }
    let mut out = Vec::new();
    for label in workload_order {
        let Some(group) = groups.remove(label) else {
            continue;
        };
        let lanes = if batch == 0 {
            group.len()
        } else {
            batch.max(1)
        };
        for chunk in group.chunks(lanes) {
            out.push(chunk.to_vec());
        }
    }
    debug_assert!(groups.is_empty(), "every scenario workload is listed");
    out
}

/// Executes a planned scenario list — the whole matrix, or a cached
/// campaign's misses — on `threads` workers with the chosen engine.
/// Results come back in input order either way (the lockstep plan is
/// reassembled through each scenario's matrix index, so callers index
/// the output by position in `scenarios`).
pub(crate) fn execute_scenarios(
    scenarios: &[&Scenario],
    workload_order: &[&str],
    programs: &BTreeMap<&str, Arc<Program>>,
    goldens: &BTreeMap<&str, EvidenceBundle>,
    judging: Judging<'_>,
    threads: usize,
    engine: Engine,
) -> Vec<ScenarioResult> {
    match engine {
        Engine::Solo => parallel_map(scenarios, threads, |sc| {
            run_scenario(
                sc,
                &programs[sc.workload.as_str()],
                &goldens[sc.workload.as_str()],
                judging,
            )
        }),
        Engine::Lockstep(batch) => {
            let batches = lockstep_batches(scenarios.iter().copied(), workload_order, batch);
            let ran = parallel_map(&batches, threads, |batch| {
                let label = batch[0].workload.as_str();
                run_scenario_batch(batch, &programs[label], &goldens[label], judging)
            });
            // Batches group by workload, but the caller expects input
            // order — reassemble through each scenario's matrix index.
            let index_of: BTreeMap<usize, usize> = scenarios
                .iter()
                .enumerate()
                .map(|(pos, sc)| (sc.index, pos))
                .collect();
            let mut slots: Vec<Option<ScenarioResult>> = scenarios.iter().map(|_| None).collect();
            for result in ran.into_iter().flatten() {
                let pos = index_of[&result.scenario.index];
                slots[pos] = Some(result);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every scenario ran in exactly one batch"))
                .collect()
        }
    }
}

/// Provisions golden evidence and executes a planned scenario list in
/// one engine-shaped pass. The solo engine keeps the two-phase shape —
/// golden bundles fanned over the pool, then the scenario matrix. The
/// lockstep engine **fuses**: wave 1 runs each workload's golden lanes
/// inside its first scenario batch ([`run_fused_batch`]), so golden
/// calibration shares the batch's cache residency and the
/// [`parallel_map`] slot accounting; wave 2 runs the remaining batches
/// against the fresh bundles. Wave 2's chunking lines up with the
/// original plan (removing a group's first chunk leaves the remaining
/// chunk boundaries unchanged), and every artifact is byte-identical
/// across engines, batch sizes and thread counts either way.
pub(crate) fn execute_campaign(
    spec: &CampaignSpec,
    workloads: &[&Workload],
    scenarios: &[&Scenario],
    programs: &BTreeMap<&str, Arc<Program>>,
    judging: Judging<'_>,
    threads: usize,
    engine: Engine,
) -> Vec<ScenarioResult> {
    let workload_order: Vec<&str> = workloads.iter().map(|w| w.label()).collect();
    match engine {
        Engine::Solo => {
            let golden_start = judging.obs.clock_micros();
            let goldens: BTreeMap<&str, EvidenceBundle> = workloads
                .iter()
                .zip(parallel_map(workloads, threads, |w| {
                    golden_evidence(spec, w, &programs[w.label()], judging.suite)
                }))
                .map(|(w, bundle)| (w.label(), bundle))
                .collect();
            let simulate_start = judging.obs.clock_micros();
            judging
                .obs
                .record_span("campaign", None, "golden", golden_start, simulate_start);
            let results = execute_scenarios(
                scenarios,
                &workload_order,
                programs,
                &goldens,
                judging,
                threads,
                engine,
            );
            judging.obs.record_span(
                "campaign",
                None,
                "simulate",
                simulate_start,
                judging.obs.clock_micros(),
            );
            results
        }
        Engine::Lockstep(batch) => {
            let batches = lockstep_batches(scenarios.iter().copied(), &workload_order, batch);
            // Wave 1: each workload's first batch, fused with its
            // golden lanes. Later batches of the same workload wait for
            // the bundle.
            let mut fused: Vec<Vec<&Scenario>> = Vec::new();
            let mut rest: Vec<&Scenario> = Vec::new();
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for b in batches {
                if seen.insert(b[0].workload.as_str()) {
                    fused.push(b);
                } else {
                    rest.extend(b);
                }
            }
            let wave1_start = judging.obs.clock_micros();
            let wave1 = parallel_map(&fused, threads, |batch| {
                run_fused_batch(spec, batch, &programs[batch[0].workload.as_str()], judging)
            });
            // Golden fusion makes the golden phase part of wave 1's
            // simulation — the span label says so instead of
            // pretending a separate golden phase ran.
            judging.obs.record_span(
                "campaign",
                None,
                "golden+simulate",
                wave1_start,
                judging.obs.clock_micros(),
            );
            let index_of: BTreeMap<usize, usize> = scenarios
                .iter()
                .enumerate()
                .map(|(pos, sc)| (sc.index, pos))
                .collect();
            let mut slots: Vec<Option<ScenarioResult>> = scenarios.iter().map(|_| None).collect();
            let mut goldens: BTreeMap<&str, EvidenceBundle> = BTreeMap::new();
            for (batch, (golden, results)) in fused.iter().zip(wave1) {
                goldens.insert(batch[0].workload.as_str(), golden);
                for r in results {
                    let pos = index_of[&r.scenario.index];
                    slots[pos] = Some(r);
                }
            }
            // Wave 2: the remaining batches, judged against the fresh
            // bundles.
            if !rest.is_empty() {
                let wave2_start = judging.obs.clock_micros();
                let wave2 = execute_scenarios(
                    &rest,
                    &workload_order,
                    programs,
                    &goldens,
                    judging,
                    threads,
                    engine,
                );
                judging.obs.record_span(
                    "campaign",
                    None,
                    "simulate",
                    wave2_start,
                    judging.obs.clock_micros(),
                );
                for r in wave2 {
                    let pos = index_of[&r.scenario.index];
                    slots[pos] = Some(r);
                }
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("every scenario ran in exactly one wave"))
                .collect()
        }
    }
}

/// Executes the campaign on `threads` workers with the default
/// (lockstep-batched) engine.
///
/// Programs are sliced once per workload label and shared as
/// `Arc<Program>`; golden evidence bundles are produced first (also in
/// parallel, with shared calibration repetitions when the suite
/// consumes them), then the scenario matrix runs in lockstep batches
/// grouped by workload. Results are assembled in matrix order.
///
/// # Errors
///
/// Reports an invalid trojan or detector name or a duplicate workload
/// label in the spec.
///
/// # Example
///
/// ```
/// use offramps_bench::campaign::{run_campaign, CampaignSpec};
/// use offramps_bench::workloads::Workload;
///
/// let spec = CampaignSpec {
///     trojans: vec!["none".into(), "t2".into()],
///     workloads: vec![Workload::mini()],
///     ..CampaignSpec::default_matrix(7)
/// };
/// let one = run_campaign(&spec, 1).unwrap();
/// let four = run_campaign(&spec, 4).unwrap();
/// assert_eq!(one.summary(), four.summary()); // thread count is invisible
/// ```
pub fn run_campaign(spec: &CampaignSpec, threads: usize) -> Result<CampaignReport, String> {
    run_campaign_with(spec, threads, Engine::default())
}

/// [`run_campaign`] with an explicit execution engine. Artifacts are
/// byte-identical for every engine and batch size; the engine only
/// changes how fast they are produced.
///
/// # Errors
///
/// Reports an invalid trojan or detector name or a duplicate workload
/// label in the spec.
pub fn run_campaign_with(
    spec: &CampaignSpec,
    threads: usize,
    engine: Engine,
) -> Result<CampaignReport, String> {
    run_campaign_observed(spec, threads, engine, &Obs::disabled(), false)
}

/// [`run_campaign_with`] with the observability plane attached. With a
/// disabled handle this *is* the default path; with an enabled one,
/// deterministic-class metrics (kernel counters, verdict rollups,
/// campaign totals) accumulate into `obs` — commutatively, so the
/// rendered metrics document is byte-identical for every thread count,
/// engine and batch size — and `trace_alarms` additionally narrates
/// each online scenario's first fused alarm from its flight recorder.
/// The report itself is byte-identical to [`run_campaign_with`] in
/// every case.
///
/// # Errors
///
/// Same conditions as [`run_campaign_with`].
pub fn run_campaign_observed(
    spec: &CampaignSpec,
    threads: usize,
    engine: Engine,
    obs: &Obs,
    trace_alarms: bool,
) -> Result<CampaignReport, String> {
    let suite = spec.suite()?;
    let scenarios = spec.scenarios()?;
    // detlint: allow(D2) -- campaign wall-clock feeds only the --timing-json sidecar, never deterministic artifacts
    let t0 = Instant::now();

    // Slice each workload once (labels validated unique by
    // `scenarios()` above).
    let slice_start = obs.clock_micros();
    let programs: BTreeMap<&str, Arc<Program>> = spec
        .workloads
        .iter()
        .zip(parallel_map(&spec.workloads, threads, Workload::program))
        .map(|(w, program)| (w.label(), program))
        .collect();
    obs.record_span("campaign", None, "slice", slice_start, obs.clock_micros());

    // Golden evidence and the scenario matrix, engine shaped: the solo
    // engine provisions golden bundles first and then runs scenarios;
    // the lockstep engine fuses each workload's golden lanes into its
    // first scenario batch.
    let workload_refs: Vec<&Workload> = spec.workloads.iter().collect();
    let scenario_refs: Vec<&Scenario> = scenarios.iter().collect();
    let results = execute_campaign(
        spec,
        &workload_refs,
        &scenario_refs,
        &programs,
        Judging {
            suite: &suite,
            online: spec.online,
            obs,
            trace_alarms,
        },
        threads,
        engine,
    );

    Ok(CampaignReport {
        spec: spec.clone(),
        results,
        threads,
        wall_s: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_expands_trojan_major() {
        let spec = CampaignSpec {
            trojans: vec!["none".into(), "t2".into()],
            workloads: vec![Workload::mini(), Workload::tall()],
            runs_per_cell: 2,
            ..CampaignSpec::default_matrix(1)
        };
        let scenarios = spec.scenarios().unwrap();
        assert_eq!(scenarios.len(), 8);
        assert_eq!(scenarios[0].trojan, "none");
        assert_eq!(scenarios[0].workload, "mini");
        assert_eq!(scenarios[3].workload, "tall");
        assert_eq!(scenarios[4].trojan, "t2");
        assert!(scenarios.iter().enumerate().all(|(i, s)| s.index == i));
    }

    #[test]
    fn seeds_depend_on_labels_not_positions() {
        let wide = CampaignSpec {
            trojans: vec!["none".into(), "t1".into(), "t2".into()],
            ..CampaignSpec::default_matrix(9)
        };
        let narrow = CampaignSpec {
            trojans: vec!["t2".into()],
            ..CampaignSpec::default_matrix(9)
        };
        let wide_t2 = wide
            .scenarios()
            .unwrap()
            .into_iter()
            .find(|s| s.trojan == "t2")
            .unwrap();
        let narrow_t2 = narrow.scenarios().unwrap()[0].clone();
        assert_eq!(
            wide_t2.seed, narrow_t2.seed,
            "seed must not depend on matrix shape"
        );
    }

    #[test]
    fn default_detectors_is_case_insensitive() {
        let mut spec = CampaignSpec::default_matrix(1);
        assert!(spec.default_detectors());
        spec.detectors = vec!["TXN".into()];
        assert!(spec.default_detectors(), "same suite, same artifact shape");
        assert!(spec.suite().is_ok());
        spec.detectors = vec![" txn ".into()];
        assert!(spec.default_detectors());
        assert!(spec.suite().is_ok(), "by_name trims like the CLI");
        spec.detectors = vec!["txn".into(), "power".into()];
        assert!(!spec.default_detectors());
        spec.detectors = vec!["txn".into()];
        spec.fusion = FusionPolicy::All;
        assert!(!spec.default_detectors(), "fusion is part of the default");
    }

    #[test]
    fn unknown_trojan_rejected() {
        let spec = CampaignSpec {
            trojans: vec!["t99".into()],
            ..CampaignSpec::default_matrix(1)
        };
        assert!(spec.scenarios().is_err());
    }

    #[test]
    fn duplicate_workload_labels_rejected() {
        let spec = CampaignSpec {
            trojans: vec!["none".into()],
            workloads: vec![Workload::mini(), Workload::mini()],
            ..CampaignSpec::default_matrix(1)
        };
        let err = spec.scenarios().unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn sweep_grid_is_valid_and_sized() {
        let sweep = sweep_attacks();
        assert!(sweep.len() >= 30, "grid has {} attacks", sweep.len());
        assert_eq!(sweep[0], "none");
        for attack in &sweep {
            parse_attack(attack).unwrap_or_else(|e| panic!("{attack}: {e}"));
        }
        let unique: std::collections::HashSet<&String> = sweep.iter().collect();
        assert_eq!(unique.len(), sweep.len(), "grid entries must be unique");
    }

    #[test]
    fn parameterized_attacks_parse() {
        assert!(matches!(
            parse_attack("t5:200@2").unwrap(),
            Attack::Trojan(_)
        ));
        assert!(parse_attack("t5:200").is_err());
        assert!(parse_attack("t2:0").is_err());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..57).collect();
        for threads in [1, 3, 8] {
            let out = parallel_map(&items, threads, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }
}

//! Procedural workload corpus: a master seed → N deterministic print
//! jobs.
//!
//! The paper's evaluation fixes four prints; the campaign's "as many
//! scenarios as you can imagine" axis wants thousands. A [`CorpusSpec`]
//! expands a master seed into `count` workloads through
//! [`SeedSplitter`]: each part's parameters are drawn from the stream
//! keyed by its label (`corpus/gen-007`), never from its position, so
//! growing the corpus from 8 to 800 parts leaves the first eight
//! byte-identical — the same stability property the campaign's scenario
//! seeds rely on.
//!
//! Every continuous parameter is snapped to a coarse decimal grid, which
//! keeps the generated G-code on the writer's 5-decimal canonical grid:
//! corpus programs round-trip through `to_gcode` → `parse` exactly (the
//! `gcode_roundtrip` integration test pins this).
//!
//! # Example
//!
//! ```
//! use offramps_bench::corpus::CorpusSpec;
//!
//! let a = CorpusSpec::new(4).expand(42);
//! let b = CorpusSpec::new(8).expand(42);
//! assert_eq!(a.len(), 4);
//! // Prefix stability: a bigger corpus starts with the same workloads.
//! assert_eq!(a[2].spec(), b[2].spec());
//! ```

use offramps_des::{DetRng, SeedSplitter};
use offramps_gcode::slicer::{InfillPattern, SlicerConfig, Solid};
use offramps_gcode::snap5;
use offramps_gcode::spec::WorkloadSpec;

use crate::workloads::Workload;

/// How many generated workloads to mint, and under which label prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Number of workloads to generate.
    pub count: u32,
}

impl CorpusSpec {
    /// A corpus of `count` generated workloads.
    pub fn new(count: u32) -> Self {
        CorpusSpec { count }
    }

    /// The label of the `i`-th generated workload (`gen-007`-style; the
    /// width grows past 999 parts without disturbing earlier labels).
    pub fn label(i: u32) -> String {
        format!("gen-{i:03}")
    }

    /// Expands the corpus deterministically: workload `i` depends only
    /// on `master_seed` and its own label.
    pub fn expand(&self, master_seed: u64) -> Vec<Workload> {
        let split = SeedSplitter::new(master_seed);
        (0..self.count)
            .map(|i| {
                let label = Self::label(i);
                let mut rng = split.stream(&format!("corpus/{label}"));
                Workload::new(label, sample_spec(&mut rng)).expect("generated labels are valid")
            })
            .collect()
    }
}

/// Draws `lo + step * k` with `k` uniform in `[0, steps)` — every
/// continuous knob goes through [`snap5`] so values stay on the
/// writer's exact 5-decimal grid (round-trip-safe, and summaries print
/// clean: `0.3`, not `0.30000000000000004`).
fn gridded(rng: &mut DetRng, lo: f64, step: f64, steps: u64) -> f64 {
    snap5(lo + step * rng.uniform_u64(0, steps) as f64)
}

/// Samples one parametric workload. Parts stay centimetre-scale
/// (campaigns run hundreds of these), but vary every axis the slicer
/// exposes: geometry, layer count, perimeters, infill density and
/// pattern, speed/temperature profile, retraction, flow, and
/// travel-heavy multi-island plates.
pub fn sample_spec(rng: &mut DetRng) -> WorkloadSpec {
    let layer_height = gridded(rng, 0.2, 0.05, 3); // 0.2 / 0.25 / 0.3
    let layers = rng.uniform_u64(2, 5); // 2–4 layers
    let height = snap5(layer_height * layers as f64);
    let solid = if rng.chance(0.25) {
        Solid::cylinder(
            gridded(rng, 2.0, 0.5, 5), // r 2.0–4.0
            height,
            rng.uniform_u64(6, 17) as u32, // 6–16 segments
        )
    } else {
        Solid::rect_prism(
            gridded(rng, 4.0, 0.5, 9), // 4.0–8.0
            gridded(rng, 4.0, 0.5, 9),
            height,
        )
    };
    let infill_spacing = if rng.chance(0.2) {
        0.0 // perimeter-only: travel-light, extrusion-light
    } else {
        gridded(rng, 1.5, 0.5, 6) // 1.5–4.0
    };
    let config = SlicerConfig {
        layer_height,
        perimeters: rng.uniform_u64(1, 3) as u32,
        infill_spacing,
        infill_pattern: if rng.chance(0.5) {
            InfillPattern::Crosshatch
        } else {
            InfillPattern::Aligned
        },
        print_speed: rng.uniform_u64(30, 61) as f64,
        first_layer_speed: rng.uniform_u64(15, 26) as f64,
        travel_speed: gridded(rng, 80.0, 10.0, 8), // 80–150
        retract_len: if rng.chance(0.25) {
            0.0
        } else {
            gridded(rng, 0.4, 0.2, 5) // 0.4–1.2
        },
        hotend_temp: gridded(rng, 195.0, 5.0, 9), // 195–235
        bed_temp: gridded(rng, 50.0, 5.0, 5),     // 50–70
        fan_duty: [0u8, 128, 255][rng.uniform_u64(0, 3) as usize],
        fan_from_layer: rng.uniform_u64(1, 3) as usize,
        flow: gridded(rng, 0.9, 0.05, 5), // 0.9–1.1
        center: (30.0, 30.0),
        ..SlicerConfig::fast()
    };
    if rng.chance(0.3) {
        // Travel-heavy plate: two islands, pitch past the part extent.
        let extent = match &solid {
            Solid::RectPrism { width, .. } => *width,
            Solid::Prism { radius, .. } => 2.0 * radius,
        };
        WorkloadSpec::plate(solid, 2, extent + 6.0, config)
    } else {
        WorkloadSpec::single(solid, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_gcode::ProgramStats;

    #[test]
    fn expansion_is_deterministic_and_position_independent() {
        let a = CorpusSpec::new(6).expand(7);
        let b = CorpusSpec::new(6).expand(7);
        assert_eq!(a, b, "same seed, same corpus");
        let wider = CorpusSpec::new(12).expand(7);
        assert_eq!(&wider[..6], &a[..], "prefix stability");
        let other = CorpusSpec::new(6).expand(8);
        assert_ne!(a, other, "different master seed, different corpus");
    }

    #[test]
    fn labels_are_stable_and_ordered() {
        let corpus = CorpusSpec::new(3).expand(1);
        let labels: Vec<&str> = corpus.iter().map(Workload::label).collect();
        assert_eq!(labels, vec!["gen-000", "gen-001", "gen-002"]);
    }

    #[test]
    fn generated_workloads_slice_and_vary() {
        let corpus = CorpusSpec::new(12).expand(2024);
        let mut layer_counts = std::collections::BTreeSet::new();
        let mut travel_heavy = 0;
        for w in &corpus {
            let stats = ProgramStats::analyze(&w.program());
            assert!(stats.layer_count() >= 2, "{}", w.label());
            assert!(stats.total_extruded_mm > 0.1, "{}", w.label());
            layer_counts.insert(stats.layer_count());
            if w.spec().copies > 1 {
                travel_heavy += 1;
            }
        }
        assert!(layer_counts.len() > 1, "corpus must vary layer counts");
        assert!(travel_heavy > 0, "corpus must include multi-island plates");
    }
}

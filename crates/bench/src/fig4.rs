//! Figure 4 regeneration: capture excerpts and the detection report.
//!
//! Figure 4 shows (a) transactions from the golden reference, (b) the
//! same indices from a Flaw3D relocation print, and (c) the detection
//! tool's output identifying out-of-margin transactions.

use std::sync::Arc;

use offramps::{detect, Capture, DetectionReport};
use offramps_attacks::Flaw3dTrojan;
use offramps_gcode::Program;

use crate::table2::golden_capture;
use offramps::{SignalPath, TestBench};

/// The complete Figure 4 artifact.
#[derive(Debug)]
pub struct Fig4 {
    /// The golden capture (4a source).
    pub golden: Capture,
    /// The Trojaned capture (4b source).
    pub trojaned: Capture,
    /// The detection report (4c).
    pub report: DetectionReport,
}

/// Regenerates Figure 4 with the paper's Trojan (relocation every 20
/// moves).
pub fn regenerate(program: &Arc<Program>, seed: u64) -> Fig4 {
    let golden = golden_capture(program, seed);
    let attacked = Arc::new(Flaw3dTrojan::Relocation { every_n: 20 }.apply(program));
    let art = TestBench::new(seed + 1)
        .signal_path(SignalPath::capture())
        .run(&attacked)
        .expect("fig4 trojan run");
    let trojaned = art.capture.expect("capture path active");
    let report = detect::compare(&golden, &trojaned, &detect::DetectorConfig::default());
    Fig4 {
        golden,
        trojaned,
        report,
    }
}

impl Fig4 {
    /// A window of transactions around the first mismatch, rendered in
    /// the paper's `Index, X, Y, Z, E` format, from both captures.
    pub fn excerpt(&self, rows: usize) -> (String, String) {
        let center = self
            .report
            .mismatches
            .first()
            .map(|m| m.index as usize)
            .unwrap_or(0);
        let start = center.saturating_sub(rows / 2);
        let fmt = |cap: &Capture| {
            let mut s = String::from("Index, X, Y, Z, E\n");
            for t in cap.transactions().iter().skip(start).take(rows) {
                s.push_str(&t.to_string());
                s.push('\n');
            }
            s
        };
        (fmt(&self.golden), fmt(&self.trojaned))
    }
}

//! Incremental campaigns: wire the scenario matrix through the
//! content-addressed [`offramps_store::Store`].
//!
//! Every scenario's outcome is a pure function of its inputs — the
//! workload spec, the attack spec, the golden and run seeds, and the
//! detector policy. [`scenario_key`] spells those inputs out as a
//! canonical string (with a format-version salt), and
//! [`run_campaign_cached`] consults the store before simulating: hits
//! are decoded back into [`ScenarioResult`]s, only misses fan out to
//! the worker pool, and fresh results are appended to the store in
//! matrix order. A 10k-scenario rerun after a one-line corpus change
//! recomputes exactly the delta.
//!
//! Two invariants the integration tests pin:
//!
//! * **Byte identity.** The summary and JSON report are identical
//!   whether results come from cache or fresh runs, for any thread
//!   count (host timing is already excluded from both artifacts).
//! * **Content addressing is the only invalidation.** Nothing expires;
//!   changing any fingerprinted input (or bumping
//!   [`SCENARIO_KEY_VERSION`]) changes the key, so stale records are
//!   simply never addressed again.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use offramps_gcode::slicer::Solid;
use offramps_gcode::spec::WorkloadSpec;
use offramps_gcode::Program;
use offramps_obs::Obs;
use offramps_store::Store;

use offramps::verdict::{Evidence, TimeToDetection, Verdict};

use crate::campaign::{CampaignReport, CampaignSpec, Engine, Scenario, ScenarioResult};
use crate::json::{self, ObjectWriter, Value};
use crate::workloads::Workload;

/// Version salt baked into every scenario key. Bump it whenever the
/// meaning of a stored result changes (new payload fields, a detector
/// semantics change that the policy string cannot express, a capture
/// format change): the whole previous generation of records stops
/// being addressed at once.
pub const SCENARIO_KEY_VERSION: u32 = 1;

/// The literal key prefix for the current generation (kept in lockstep
/// with [`SCENARIO_KEY_VERSION`] by a unit test) so per-record checks
/// never allocate.
const SCENARIO_KEY_PREFIX: &str = "offramps-scenario/v1|";

/// Whether a store key is a current-generation scenario record (the
/// `analytics` CLI skips foreign or previous-generation records).
pub fn is_scenario_key(key: &str) -> bool {
    key.starts_with(SCENARIO_KEY_PREFIX)
}

/// The key prefix of campaign-provenance records (`campaign@1`): one
/// record per campaign run, describing which campaign populated the
/// store — the first rung of cross-campaign analytics slices.
pub const CAMPAIGN_KEY_PREFIX: &str = "offramps-campaign/v1|";

/// Whether a store key is a campaign-provenance record.
pub fn is_campaign_key(key: &str) -> bool {
    key.starts_with(CAMPAIGN_KEY_PREFIX)
}

/// Decodes every current-generation scenario record in a store into
/// analytics observations, in the store's deterministic (fingerprint)
/// order. Returns the observations and the number of skipped records
/// (foreign keys, previous generations, undecodable payloads).
/// Campaign-provenance records are this store's own metadata, not
/// foreign junk — they are passed over without counting as skipped
/// (read them with [`store_campaigns`]).
pub fn store_observations(store: &Store) -> (Vec<crate::analytics::Observation>, usize) {
    let mut observations = Vec::new();
    let mut skipped = 0usize;
    for (key, value) in store.iter() {
        if is_campaign_key(key) {
            continue;
        }
        if !is_scenario_key(key) {
            skipped += 1;
            continue;
        }
        match json::parse(value).and_then(|v| crate::analytics::Observation::from_payload(&v)) {
            Ok(obs) => observations.push(obs),
            Err(_) => skipped += 1,
        }
    }
    (observations, skipped)
}

/// One campaign-provenance record: which campaign run populated (part
/// of) the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignProvenance {
    /// The campaign's master seed.
    pub master_seed: u64,
    /// Workloads in the matrix (the corpus size, canonical included).
    pub workloads: usize,
    /// Attacks in the matrix.
    pub attacks: usize,
    /// Independent runs per (attack, workload) cell.
    pub runs_per_cell: u32,
    /// Whether the attack list was the standard sweep grid
    /// ([`crate::campaign::sweep_attacks`]).
    pub sweep: bool,
    /// The suite policy the campaign judged with.
    pub policy: String,
    /// Scenarios the matrix expanded to.
    pub scenarios: usize,
}

/// The content-addressed key of one campaign's provenance record: the
/// same campaign spec rerun (e.g. a warm rerun) rewrites its single
/// record instead of accumulating duplicates.
fn campaign_key(spec: &CampaignSpec, policy: &str, workload_labels: &str) -> String {
    format!(
        "{CAMPAIGN_KEY_PREFIX}master_seed={}|runs_per_cell={}|workloads={workload_labels}|attacks={}|policy={policy}",
        spec.master_seed,
        spec.runs_per_cell.max(1),
        spec.trojans.join(","),
    )
}

fn encode_campaign(spec: &CampaignSpec, policy: &str, scenarios: usize) -> String {
    let sweep = spec.trojans == crate::campaign::sweep_attacks();
    let mut out = String::new();
    let mut w = ObjectWriter::new(&mut out, 0);
    w.int("master_seed", spec.master_seed as i128)
        .int("workloads", spec.workloads.len() as i128)
        .int("attacks", spec.trojans.len() as i128)
        .int("runs_per_cell", spec.runs_per_cell.max(1) as i128)
        .bool("sweep", sweep)
        .string("policy", policy)
        .int("scenarios", scenarios as i128);
    w.finish();
    out
}

fn decode_campaign(payload: &str) -> Result<CampaignProvenance, String> {
    let v = json::parse(payload)?;
    Ok(CampaignProvenance {
        master_seed: int_field(&v, "master_seed")?,
        workloads: int_field(&v, "workloads")? as usize,
        attacks: int_field(&v, "attacks")? as usize,
        runs_per_cell: int_field(&v, "runs_per_cell")? as u32,
        sweep: field(&v, "sweep")?
            .as_bool()
            .ok_or("campaign field \"sweep\" is not a bool")?,
        policy: field(&v, "policy")?
            .as_str()
            .ok_or("campaign field \"policy\" is not a string")?
            .to_string(),
        scenarios: int_field(&v, "scenarios")? as usize,
    })
}

/// Every decodable campaign-provenance record in the store, in the
/// store's deterministic (fingerprint) order — the campaigns that
/// populated it.
pub fn store_campaigns(store: &Store) -> Vec<CampaignProvenance> {
    store
        .iter()
        .filter(|(key, _)| is_campaign_key(key))
        .filter_map(|(_, payload)| decode_campaign(payload).ok())
        .collect()
}

/// Cache effectiveness of one [`run_campaign_cached`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Scenarios answered from the store.
    pub hits: usize,
    /// Scenarios that had to be simulated (and were then stored).
    pub misses: usize,
}

impl CacheStats {
    /// Total scenarios consulted.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// The one-line human rendering the CLI and CI smoke grep for.
    pub fn summary_line(&self) -> String {
        format!(
            "cache: hits={} misses={} (executed {} of {} scenarios)",
            self.hits,
            self.misses,
            self.misses,
            self.total()
        )
    }
}

fn canon_f64(v: f64) -> String {
    // Shortest round-trip rendering: canonical and exact.
    format!("{v}")
}

/// The canonical JSON rendering of a workload spec: compact, fixed
/// field order, shortest-round-trip floats. Equal specs — and only
/// equal specs — produce equal strings, so this is the workload's
/// content address regardless of the label it runs under.
pub fn canonical_workload_json(spec: &WorkloadSpec) -> String {
    let solid = match &spec.solid {
        Solid::RectPrism {
            width,
            depth,
            height,
        } => format!(
            r#"{{"type":"rect","width":{},"depth":{},"height":{}}}"#,
            canon_f64(*width),
            canon_f64(*depth),
            canon_f64(*height)
        ),
        Solid::Prism {
            radius,
            height,
            segments,
        } => format!(
            r#"{{"type":"prism","radius":{},"height":{},"segments":{}}}"#,
            canon_f64(*radius),
            canon_f64(*height),
            segments
        ),
    };
    let c = &spec.config;
    format!(
        concat!(
            r#"{{"solid":{},"copies":{},"spacing":{},"config":{{"#,
            r#""layer_height":{},"extrusion_width":{},"filament_diameter":{},"#,
            r#""perimeters":{},"infill_spacing":{},"infill_pattern":"{:?}","#,
            r#""print_speed":{},"first_layer_speed":{},"travel_speed":{},"#,
            r#""retract_len":{},"retract_speed":{},"hotend_temp":{},"bed_temp":{},"#,
            r#""fan_duty":{},"fan_from_layer":{},"flow":{},"center":[{},{}]}}}}"#
        ),
        solid,
        spec.copies,
        canon_f64(spec.spacing),
        canon_f64(c.layer_height),
        canon_f64(c.extrusion_width),
        canon_f64(c.filament_diameter),
        c.perimeters,
        canon_f64(c.infill_spacing),
        c.infill_pattern,
        canon_f64(c.print_speed),
        canon_f64(c.first_layer_speed),
        canon_f64(c.travel_speed),
        canon_f64(c.retract_len),
        canon_f64(c.retract_speed),
        canon_f64(c.hotend_temp),
        canon_f64(c.bed_temp),
        c.fan_duty,
        c.fan_from_layer,
        canon_f64(c.flow),
        canon_f64(spec.config.center.0),
        canon_f64(spec.config.center.1),
    )
}

/// The canonical key addressing one scenario's result: every input that
/// influences the outcome, spelled out. The workload enters as its
/// canonical spec JSON (not its label), the attack as its parsed spec
/// string, the detector suite as its full canonical policy string
/// ([`offramps::verdict::DetectorSuite::policy`] — so changing the
/// suite re-addresses every cached verdict), plus both seeds and the
/// format-version salt.
pub fn scenario_key(
    workload_json: &str,
    attack: &str,
    golden_seed: u64,
    run_seed: u64,
    detector_policy: &str,
) -> String {
    format!(
        "{SCENARIO_KEY_PREFIX}workload={workload_json}|attack={attack}|golden_seed={golden_seed}|run_seed={run_seed}|detector={detector_policy}"
    )
}

/// Encodes a scenario's outcome as the store payload: every
/// deterministic field of [`ScenarioResult`] (host timing excluded),
/// plus the attack and workload label so store-wide analytics can group
/// records without re-deriving a campaign spec.
pub fn encode_result(r: &ScenarioResult) -> String {
    let mut out = String::new();
    let mut w = ObjectWriter::new(&mut out, 0);
    w.string("trojan", &r.scenario.trojan)
        .string("workload", &r.scenario.workload)
        .string("fw_state", &r.fw_state)
        .int("events", r.events as i128)
        .int("sim_ns", r.sim_ns as i128)
        .raw(
            "fw_steps",
            &format!(
                "[{}, {}, {}, {}]",
                r.fw_steps[0], r.fw_steps[1], r.fw_steps[2], r.fw_steps[3]
            ),
        );
    // The verdict fields go through the same writer as the report JSON,
    // so the payload can never drift from what `ScenarioResult`
    // serializes.
    r.write_verdict_fields(&mut w);
    w.finish();
    out
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("payload missing {key:?}"))
}

fn int_field(v: &Value, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("payload field {key:?} is not an integer"))
}

/// Decodes one entry of a payload's `evidence` array back into an
/// [`Evidence`] (strict: every present field must have the right type;
/// `threshold`, `final_totals_match` and `peak` may be absent — the
/// partial-evidence shape unjudged detectors produce).
fn decode_evidence(v: &Value) -> Result<Evidence, String> {
    let alarmed = match field(v, "alarmed")? {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        _ => return Err("evidence field \"alarmed\" is not bool/null".into()),
    };
    let threshold = match v.get("threshold") {
        None => None,
        Some(t) => Some(
            t.as_f64()
                .ok_or("evidence field \"threshold\" is not a number")?,
        ),
    };
    let final_totals_match = match v.get("final_totals_match") {
        None | Some(Value::Null) => None,
        Some(Value::Bool(b)) => Some(*b),
        Some(_) => return Err("evidence field \"final_totals_match\" is not bool/null".into()),
    };
    let peak = match v.get("peak") {
        None => 0.0,
        Some(p) => p
            .as_f64()
            .ok_or("evidence field \"peak\" is not a number")?,
    };
    Ok(Evidence {
        detector: field(v, "detector")?
            .as_str()
            .ok_or("evidence field \"detector\" is not a string")?
            .to_string(),
        alarmed,
        flagged: int_field(v, "flagged")? as usize,
        flagged_values: int_field(v, "flagged_values")? as usize,
        compared: int_field(v, "compared")? as usize,
        threshold,
        peak,
        final_totals_match,
    })
}

/// Decodes a store payload back into a [`ScenarioResult`] for the given
/// scenario slot. The decoded result renders byte-identically to the
/// fresh one in both the summary table and the JSON report; only
/// `wall_ms` (excluded from both) is zeroed.
///
/// Multi-detector payloads carry their full per-detector statistics in
/// the `evidence` array; transaction-only payloads (including every
/// record written before the suite API existed) reconstruct the
/// transaction judge's evidence from the legacy field names. Those
/// legacy fields have never included the judge's `peak` deviation — it
/// is not part of the transaction-only artifact contract — so decoded
/// results reconstruct `peak: 0.0`; every field that *does* appear in
/// the summary or JSON renders byte-identically.
pub fn decode_result(scenario: Scenario, payload: &str) -> Result<ScenarioResult, String> {
    let v = json::parse(payload)?;
    let steps = field(&v, "fw_steps")?
        .as_array()
        .ok_or("payload field \"fw_steps\" is not an array")?;
    if steps.len() != 4 {
        return Err(format!("fw_steps has {} entries", steps.len()));
    }
    let mut fw_steps = [0i64; 4];
    for (slot, step) in fw_steps.iter_mut().zip(steps) {
        *slot = step.as_i128().ok_or("fw_steps entry is not an integer")? as i64;
    }
    let detected = field(&v, "detected")?
        .as_bool()
        .ok_or("payload field \"detected\" is not a bool")?;
    let evidence = match v.get("evidence") {
        Some(list) => list
            .as_array()
            .ok_or("payload field \"evidence\" is not an array")?
            .iter()
            .map(decode_evidence)
            .collect::<Result<Vec<_>, _>>()?,
        None => {
            // Pre-suite / transaction-only payload: the legacy fields
            // *are* the transaction judge's sufficient statistics, and
            // the fused verdict is its alarm.
            let final_totals_match = match field(&v, "final_totals_match")? {
                Value::Null => None,
                Value::Bool(b) => Some(*b),
                _ => return Err("payload field \"final_totals_match\" is not bool/null".into()),
            };
            let threshold = match v.get("suspect_fraction") {
                None => None,
                Some(f) => Some(
                    f.as_f64()
                        .ok_or("payload field \"suspect_fraction\" is not a number")?,
                ),
            };
            vec![Evidence {
                detector: offramps::TransactionDetector::NAME.to_string(),
                alarmed: threshold.is_some().then_some(detected),
                flagged: int_field(&v, "mismatched_transactions")? as usize,
                flagged_values: int_field(&v, "mismatches")? as usize,
                compared: int_field(&v, "transactions_compared")? as usize,
                threshold,
                peak: 0.0,
                final_totals_match,
            }]
        }
    };
    // Time-to-detection: written only by online campaigns whose fused
    // monitor alarmed mid-print. Absent from every pre-online record
    // (and from online clean runs), so a store warmed post-hoc decodes
    // with `ttd: None` — same verdict, no TTD line.
    let ttd = match v.get("ttd_step") {
        None => None,
        Some(step) => Some(TimeToDetection {
            alarm_step: step
                .as_u64()
                .ok_or("payload field \"ttd_step\" is not an integer")?,
            print_fraction: field(&v, "ttd_print_fraction")?
                .as_f64()
                .ok_or("payload field \"ttd_print_fraction\" is not a number")?,
            material_saved: field(&v, "ttd_material_saved")?
                .as_f64()
                .ok_or("payload field \"ttd_material_saved\" is not a number")?,
        }),
    };
    Ok(ScenarioResult {
        scenario,
        fw_state: field(&v, "fw_state")?
            .as_str()
            .ok_or("payload field \"fw_state\" is not a string")?
            .to_string(),
        events: int_field(&v, "events")?,
        sim_ns: int_field(&v, "sim_ns")?,
        fw_steps,
        verdict: Verdict {
            alarmed: detected,
            evidence,
        },
        ttd,
        wall_ms: 0,
    })
}

/// Runs the campaign through the store: cached scenarios are decoded,
/// only misses are simulated (on `threads` workers), and fresh results
/// are appended to the store in matrix order. Workload slicing and
/// golden captures are computed only for workloads with at least one
/// miss — a fully cached rerun executes **zero** simulation.
///
/// # Errors
///
/// Reports an invalid spec (like [`crate::campaign::run_campaign`]) or
/// a store I/O failure. A record that exists but fails to decode is
/// treated as a miss and recomputed (the rewrite supersedes it).
pub fn run_campaign_cached(
    spec: &CampaignSpec,
    threads: usize,
    store: &mut Store,
) -> Result<(CampaignReport, CacheStats), String> {
    run_campaign_cached_with(spec, threads, store, Engine::default())
}

/// [`run_campaign_cached`] with an explicit execution engine for the
/// misses. Cache keys, payloads and report artifacts are engine
/// independent — a store warmed by the solo engine serves 100 % hits
/// under the batched engine and vice versa.
///
/// # Errors
///
/// Same conditions as [`run_campaign_cached`].
pub fn run_campaign_cached_with(
    spec: &CampaignSpec,
    threads: usize,
    store: &mut Store,
    engine: Engine,
) -> Result<(CampaignReport, CacheStats), String> {
    run_campaign_cached_observed(spec, threads, store, engine, &Obs::disabled(), false)
}

/// [`run_campaign_cached_with`] with the observability plane attached
/// (see [`crate::campaign::run_campaign_observed`] for the campaign
/// side). On top of the campaign metrics, an enabled handle records
/// the store's effectiveness (`store.hits` / `store.misses` /
/// `store.appends`, `campaign.scenarios_decoded`) and the open-time
/// shard-scan rollup (`store.scan.*` — lines walked, records,
/// superseded rewrites, torn and foreign lines skipped). All of it is
/// a pure function of the store state and the spec, so the metrics
/// document stays deterministic.
///
/// # Errors
///
/// Same conditions as [`run_campaign_cached`].
pub fn run_campaign_cached_observed(
    spec: &CampaignSpec,
    threads: usize,
    store: &mut Store,
    engine: Engine,
    obs: &Obs,
    trace_alarms: bool,
) -> Result<(CampaignReport, CacheStats), String> {
    let suite = spec.suite()?;
    let scenarios = spec.scenarios()?;
    // detlint: allow(D2) -- wall-clock here feeds only the --timing-json sidecar, never deterministic artifacts
    let t0 = Instant::now();

    let canon: BTreeMap<&str, String> = spec
        .workloads
        .iter()
        .map(|w| (w.label(), canonical_workload_json(w.spec())))
        .collect();
    let policy = suite.policy();
    let keys: Vec<String> = scenarios
        .iter()
        .map(|sc| {
            scenario_key(
                &canon[sc.workload.as_str()],
                &sc.trojan,
                spec.golden_seed(&sc.workload),
                sc.seed,
                &policy,
            )
        })
        .collect();

    let decode_start = obs.clock_micros();
    let mut results: Vec<Option<ScenarioResult>> = Vec::with_capacity(scenarios.len());
    let mut misses: Vec<&Scenario> = Vec::new();
    for (sc, key) in scenarios.iter().zip(&keys) {
        let decoded = store
            .get(key)
            .and_then(|p| decode_result(sc.clone(), p).ok())
            .map(|mut r| {
                // Scenario keys are online-agnostic, so an online-warmed
                // store can serve a post-hoc campaign — which must keep
                // its pre-online artifact shape byte for byte: stored
                // time-to-detection marks ride along only when this
                // campaign judges online too.
                if !spec.online {
                    r.ttd = None;
                }
                r
            });
        if decoded.is_none() {
            misses.push(sc);
        }
        results.push(decoded);
    }
    obs.record_span("campaign", None, "decode", decode_start, obs.clock_micros());
    let stats = CacheStats {
        hits: scenarios.len() - misses.len(),
        misses: misses.len(),
    };
    if obs.is_enabled() {
        obs.count("store.hits", stats.hits as u64);
        obs.count("store.misses", stats.misses as u64);
        // Fresh results are appended below, one record per miss.
        obs.count("store.appends", stats.misses as u64);
        obs.count("campaign.scenarios_decoded", stats.hits as u64);
        let scan = store.scan_stats();
        obs.count("store.scan.lines", scan.lines as u64);
        obs.count("store.scan.records", scan.records as u64);
        obs.count("store.scan.superseded", scan.superseded as u64);
        obs.count("store.scan.torn", scan.torn as u64);
        obs.count("store.scan.foreign", scan.foreign as u64);
    }

    if !misses.is_empty() {
        let needed: BTreeSet<&str> = misses.iter().map(|sc| sc.workload.as_str()).collect();
        let workloads: Vec<&Workload> = spec
            .workloads
            .iter()
            .filter(|w| needed.contains(w.label()))
            .collect();
        let slice_start = obs.clock_micros();
        let programs: BTreeMap<&str, Arc<Program>> = workloads
            .iter()
            .zip(crate::campaign::parallel_map(&workloads, threads, |w| {
                w.program()
            }))
            .map(|(w, program)| (w.label(), program))
            .collect();
        obs.record_span("campaign", None, "slice", slice_start, obs.clock_micros());
        // Golden provisioning is engine shaped: solo fans golden
        // bundles over the pool first; lockstep fuses each workload's
        // golden lanes into its first miss batch. Either way golden
        // runs happen only for workloads with at least one miss, and
        // the artifacts (and store payloads) are engine independent.
        let fresh = crate::campaign::execute_campaign(
            spec,
            &workloads,
            &misses,
            &programs,
            crate::campaign::Judging {
                suite: &suite,
                online: spec.online,
                obs,
                trace_alarms,
            },
            threads,
            engine,
        );
        // `fresh` comes back in `misses` order, which is matrix order —
        // so store appends stay in matrix order for every engine.
        for r in fresh {
            let index = r.scenario.index;
            store
                .put(&keys[index], &encode_result(&r))
                .map_err(|e| format!("cannot append to scenario store: {e}"))?;
            results[index] = Some(r);
        }
    }

    // Campaign-level provenance: one `campaign@1` record per campaign
    // run (content-addressed by the spec, so warm reruns rewrite it in
    // place) — `offramps-cli analytics` lists these.
    let workload_labels: Vec<&str> = spec.workloads.iter().map(Workload::label).collect();
    store
        .put(
            &campaign_key(spec, &policy, &workload_labels.join(",")),
            &encode_campaign(spec, &policy, scenarios.len()),
        )
        .map_err(|e| format!("cannot append campaign provenance: {e}"))?;

    let results: Vec<ScenarioResult> = results
        .into_iter()
        .map(|r| r.expect("every scenario is either a hit or a recomputed miss"))
        .collect();
    Ok((
        CampaignReport {
            spec: spec.clone(),
            results,
            threads,
            wall_s: t0.elapsed().as_secs_f64(),
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::campaign_detector_policy;
    use crate::json::ToJson;
    use offramps::detect;
    use offramps_gcode::slicer::SlicerConfig;

    #[test]
    fn canonical_json_distinguishes_specs_and_is_stable() {
        let a = Workload::mini();
        let b = Workload::standard();
        assert_eq!(
            canonical_workload_json(a.spec()),
            canonical_workload_json(a.spec())
        );
        assert_ne!(
            canonical_workload_json(a.spec()),
            canonical_workload_json(b.spec())
        );
        // It is valid JSON on our own parser.
        let v = json::parse(&canonical_workload_json(a.spec())).unwrap();
        assert_eq!(v.get("copies").unwrap().as_u64(), Some(1));
        assert_eq!(
            v.get("config").unwrap().get("perimeters").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn canonical_json_reacts_to_every_knob_group() {
        let base = WorkloadSpec::single(Solid::rect_prism(5.0, 5.0, 0.6), SlicerConfig::fast());
        let base_json = canonical_workload_json(&base);
        let mut geometry = base.clone();
        geometry.solid = Solid::rect_prism(5.0, 5.5, 0.6);
        let mut profile = base.clone();
        profile.config.flow = 1.05;
        let mut plate = base.clone();
        plate.copies = 2;
        plate.spacing = 11.0;
        for (name, spec) in [
            ("geometry", geometry),
            ("profile", profile),
            ("plate", plate),
        ] {
            assert_ne!(base_json, canonical_workload_json(&spec), "{name}");
        }
    }

    #[test]
    fn scenario_keys_separate_every_input() {
        let w = canonical_workload_json(Workload::mini().spec());
        let policy = campaign_detector_policy();
        let base = scenario_key(&w, "t2", 1, 2, &policy);
        assert_ne!(base, scenario_key(&w, "t2:0.5", 1, 2, &policy));
        assert_ne!(base, scenario_key(&w, "t2", 3, 2, &policy));
        assert_ne!(base, scenario_key(&w, "t2", 1, 4, &policy));
        assert_ne!(base, scenario_key(&w, "t2", 1, 2, "other policy"));
        assert!(is_scenario_key(&base));
        assert!(!is_scenario_key("offramps-scenario/v0|stale"));
        // The allocation-free prefix stays in lockstep with the salt.
        assert_eq!(
            SCENARIO_KEY_PREFIX,
            format!("offramps-scenario/v{SCENARIO_KEY_VERSION}|")
        );
    }

    #[test]
    fn result_payload_round_trips_exactly() {
        let scenario = Scenario {
            index: 3,
            trojan: "t5:200@2".into(),
            workload: "gen-001".into(),
            run: 0,
            seed: u64::MAX - 17, // exercises > 2^53 integers
        };
        let txn_evidence = Evidence {
            detector: "txn".into(),
            alarmed: Some(true),
            flagged: 17,
            flagged_values: 28,
            compared: 70,
            threshold: Some(detect::floored_suspect_fraction(0.01, 70)),
            peak: 0.0,
            final_totals_match: Some(false),
        };
        let original = ScenarioResult {
            scenario: scenario.clone(),
            fw_state: "Finished".into(),
            events: 123_456_789_012,
            sim_ns: 34_300_000_000,
            fw_steps: [-12, 0, 240, 666],
            verdict: Verdict {
                alarmed: true,
                evidence: vec![txn_evidence.clone()],
            },
            ttd: None,
            wall_ms: 999, // must NOT survive: host timing is not cached
        };
        let decoded = decode_result(scenario, &encode_result(&original)).unwrap();
        assert_eq!(decoded.suspect_fraction(), original.suspect_fraction());
        assert_eq!(decoded.fw_steps, original.fw_steps);
        assert_eq!(decoded.summary_line(), original.summary_line());
        assert_eq!(decoded.to_json(), original.to_json());
        assert_eq!(decoded.wall_ms, 0);

        // Unjudged (error) scenarios: suspect_fraction stays absent.
        let error = ScenarioResult {
            verdict: Verdict {
                alarmed: false,
                evidence: vec![Evidence::unjudged("txn")],
            },
            fw_state: "error: thermal runaway".into(),
            ..original.clone()
        };
        let payload = encode_result(&error);
        assert!(!payload.contains("suspect_fraction"), "{payload}");
        let decoded = decode_result(error.scenario.clone(), &payload).unwrap();
        assert_eq!(decoded.suspect_fraction(), None);
        assert_eq!(decoded.to_json(), error.to_json());

        // Multi-detector verdicts ride their full statistics in the
        // evidence array — including partially judged suites.
        let multi = ScenarioResult {
            verdict: Verdict {
                alarmed: true,
                evidence: vec![
                    Evidence {
                        peak: 37.5,
                        ..txn_evidence
                    },
                    Evidence {
                        detector: "power".into(),
                        alarmed: Some(false),
                        flagged: 2,
                        flagged_values: 2,
                        compared: 41,
                        threshold: Some(0.15),
                        peak: 0.625,
                        final_totals_match: None,
                    },
                ],
            },
            ..original.clone()
        };
        let payload = encode_result(&multi);
        assert!(payload.contains("\"evidence\""), "{payload}");
        let decoded = decode_result(multi.scenario.clone(), &payload).unwrap();
        assert_eq!(decoded.verdict, multi.verdict, "evidence round-trips");
        assert_eq!(decoded.to_json(), multi.to_json());

        // A partially judged suite (power stream missing) keeps the
        // unjudged evidence's absent fields absent.
        let partial = ScenarioResult {
            verdict: Verdict {
                alarmed: true,
                evidence: vec![
                    multi.verdict.evidence[0].clone(),
                    Evidence::unjudged("power"),
                ],
            },
            ..original
        };
        let payload = encode_result(&partial);
        let decoded = decode_result(partial.scenario.clone(), &payload).unwrap();
        assert_eq!(decoded.verdict, partial.verdict);
        assert_eq!(decoded.to_json(), partial.to_json());

        // Online results carry their time-to-detection — and only then:
        // a post-hoc payload must not grow the fields.
        assert!(!payload.contains("ttd_"), "{payload}");
        let online = ScenarioResult {
            ttd: Some(offramps::TimeToDetection {
                alarm_step: 42,
                print_fraction: 0.125,
                material_saved: 0.8753,
            }),
            ..partial
        };
        let payload = encode_result(&online);
        assert!(payload.contains("\"ttd_step\": 42"), "{payload}");
        let decoded = decode_result(online.scenario.clone(), &payload).unwrap();
        assert_eq!(decoded.ttd, online.ttd, "TTD round-trips");
        assert_eq!(decoded.to_json(), online.to_json());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let scenario = Scenario {
            index: 0,
            trojan: "none".into(),
            workload: "mini".into(),
            run: 0,
            seed: 1,
        };
        assert!(decode_result(scenario.clone(), "{}").is_err());
        assert!(decode_result(scenario, "not json").is_err());
    }
}

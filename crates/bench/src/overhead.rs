//! §V-B overhead regeneration.
//!
//! The paper reports: maximum propagation delay 12.923 ns (on `Y_DIR`),
//! control-signal frequencies below 20 kHz, minimum pulse widths of
//! 1 µs, and "no effect on print quality while running our detection
//! hardware". This module measures all four on the simulation.

use std::sync::Arc;

use offramps::{MitmConfig, SignalPath, TestBench};
use offramps_gcode::Program;
use offramps_printer::quality::{PartReport, QualityConfig};

/// Measured §V-B quantities.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Interceptor per-edge delay, nanoseconds (model parameter,
    /// defaults to the paper's measured 12.923 ns rounded to 13).
    pub pipeline_delay_ns: u64,
    /// Peak observed control-signal frequency, Hz.
    pub max_signal_frequency_hz: f64,
    /// The pin exhibiting the peak frequency.
    pub busiest_pin: String,
    /// Minimum observed STEP pulse width, ns.
    pub min_pulse_width_ns: u64,
    /// Flow ratio of a capture-path print vs a bypass print (1.0 = the
    /// monitor had no effect on the part).
    pub capture_vs_bypass_flow_ratio: f64,
    /// Layers shifted between the two prints (0 = no effect).
    pub capture_vs_bypass_shifted_layers: usize,
    /// Total control edges observed.
    pub control_edges: u64,
}

/// Runs the same job through bypass and capture paths with tracing and
/// measures the §V-B quantities.
pub fn regenerate(program: &Arc<Program>, seed: u64) -> OverheadReport {
    let bypass = TestBench::new(seed)
        .signal_path(SignalPath::bypass())
        .record_trace(true)
        .run(program)
        .expect("bypass run");
    let capture = TestBench::new(seed)
        .signal_path(SignalPath::capture())
        .run(program)
        .expect("capture run");

    let trace = bypass.trace.as_ref().expect("trace enabled");
    let summary = trace.summary();
    let qcfg = QualityConfig::default();
    let rep = PartReport::compare(&bypass.part, &capture.part, &qcfg);

    OverheadReport {
        pipeline_delay_ns: MitmConfig::default().pipeline_delay.as_nanos(),
        max_signal_frequency_hz: summary.max_frequency_hz.unwrap_or(0.0),
        busiest_pin: summary
            .busiest_pin
            .map(|p| p.name().to_string())
            .unwrap_or_default(),
        min_pulse_width_ns: summary.min_pulse_width.map(|d| d.as_nanos()).unwrap_or(0),
        capture_vs_bypass_flow_ratio: rep.flow_ratio,
        capture_vs_bypass_shifted_layers: rep.shifted_layers,
        control_edges: summary.events,
    }
}

impl crate::json::ToJson for OverheadReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = crate::json::ObjectWriter::new(out, indent);
        w.int("pipeline_delay_ns", self.pipeline_delay_ns as i128)
            .float("max_signal_frequency_hz", self.max_signal_frequency_hz)
            .string("busiest_pin", &self.busiest_pin)
            .int("min_pulse_width_ns", self.min_pulse_width_ns as i128)
            .float(
                "capture_vs_bypass_flow_ratio",
                self.capture_vs_bypass_flow_ratio,
            )
            .int(
                "capture_vs_bypass_shifted_layers",
                self.capture_vs_bypass_shifted_layers as i128,
            )
            .int("control_edges", self.control_edges as i128);
        w.finish();
    }
}

/// Formats the report for the console.
pub fn format_report(r: &OverheadReport) -> String {
    format!(
        "pipeline delay:        {} ns/edge, quantized to the 10 ns fabric clock (paper: 12.923 ns max)\n\
         max signal frequency:  {:.1} Hz on {}   (paper: < 20 kHz)\n\
         min pulse width:       {} ns   (paper: >= 1 us)\n\
         capture vs bypass:     flow ratio {:.4}, {} shifted layers   (paper: no effect)\n\
         control edges seen:    {}",
        r.pipeline_delay_ns,
        r.max_signal_frequency_hz,
        r.busiest_pin,
        r.min_pulse_width_ns,
        r.capture_vs_bypass_flow_ratio,
        r.capture_vs_bypass_shifted_layers,
        r.control_edges,
    )
}

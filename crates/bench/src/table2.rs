//! Table II regeneration: Flaw3D Trojan detection.
//!
//! "Each of these Trojans was printed and their pulse profiles were
//! captured using the OFFRAMPS. Those captures were then compared
//! against the known-good reference and the detection program was able
//! to identify all of the Trojans."

use std::sync::Arc;

use offramps::{detect, Capture, SignalPath, TestBench};
use offramps_attacks::{Flaw3dTrojan, TABLE_II_CASES};
use offramps_gcode::Program;

/// One regenerated Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Test case number (1–8).
    pub case: u32,
    /// Reduction or Relocation.
    pub trojan_type: String,
    /// The paper's modification value column.
    pub modification_value: f64,
    /// Detection verdict (the paper: ✓ for all eight).
    pub detected: bool,
    /// Number of out-of-margin transactions.
    pub mismatches: usize,
    /// Largest percent difference found.
    pub largest_percent: f64,
    /// Whether the 0 %-margin totals check failed.
    pub final_check_failed: bool,
    /// Transactions compared.
    pub transactions: usize,
}

/// Captures the golden reference print.
pub fn golden_capture(program: &Arc<Program>, seed: u64) -> Capture {
    TestBench::new(seed)
        .signal_path(SignalPath::capture())
        .run(program)
        .expect("golden capture run")
        .capture
        .expect("capture path active")
}

/// Runs one Flaw3D case and compares it to the golden capture.
pub fn run_case(
    case: u32,
    trojan: Flaw3dTrojan,
    program: &Arc<Program>,
    golden: &Capture,
    seed: u64,
) -> Table2Row {
    let attacked = Arc::new(trojan.apply(program));
    let art = TestBench::new(seed)
        .signal_path(SignalPath::capture())
        .run(&attacked)
        .expect("table 2 run");
    let capture = art.capture.expect("capture path active");
    let report = detect::compare(golden, &capture, &detect::DetectorConfig::default());
    Table2Row {
        case,
        trojan_type: trojan.type_name().into(),
        modification_value: trojan.modification_value(),
        detected: report.trojan_suspected,
        mismatches: report.mismatches.len(),
        largest_percent: report.largest_percent,
        final_check_failed: report.final_totals_match == Some(false),
        transactions: report.transactions_compared,
    }
}

/// Regenerates all eight Table II rows against `program`.
pub fn regenerate(program: &Arc<Program>, seed: u64) -> Vec<Table2Row> {
    let golden = golden_capture(program, seed);
    TABLE_II_CASES
        .iter()
        .map(|(case, trojan)| {
            run_case(
                *case,
                *trojan,
                program,
                &golden,
                seed + 100 + u64::from(*case),
            )
        })
        .collect()
}

impl crate::json::ToJson for Table2Row {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = crate::json::ObjectWriter::new(out, indent);
        w.int("case", self.case as i128)
            .string("trojan_type", &self.trojan_type)
            .float("modification_value", self.modification_value)
            .bool("detected", self.detected)
            .int("mismatches", self.mismatches as i128)
            .float("largest_percent", self.largest_percent)
            .bool("final_check_failed", self.final_check_failed)
            .int("transactions", self.transactions as i128);
        w.finish();
    }
}

/// Formats rows like the paper's Table II (plus our evidence columns).
pub fn format_table(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<12} {:<10} {:<9} {:<11} {:<10} {}\n",
        "Case", "Type", "ModValue", "Detected", "Mismatches", "Largest%", "FinalCheck"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:<12} {:<10} {:<9} {:<11} {:<10.2} {}\n",
            r.case,
            r.trojan_type,
            r.modification_value,
            if r.detected { "yes" } else { "NO" },
            r.mismatches,
            r.largest_percent,
            if r.final_check_failed { "FAIL" } else { "pass" },
        ));
    }
    out
}

//! Detector-suite construction and evidence provisioning for campaigns
//! and the baseline experiment.
//!
//! The judging API itself lives in [`offramps::verdict`]; this module
//! is the harness side: resolving `--detectors txn,power,acoustic,
//! thermal` into a [`DetectorSuite`], and producing the golden/observed
//! [`EvidenceBundle`]s a suite consumes. Provisioning is **channel
//! driven**: the suite's [`DetectorSuite::channel_plan`] says which
//! channels to synthesize (and with which models), the bench records
//! the plant-side trace only when a planned channel needs it, and the
//! golden calibration repetitions are **shared** — one set of golden
//! reruns per workload feeds every repeat-calibrated detector, instead
//! of re-simulating per detector. Campaigns and `baseline.rs` both
//! route their golden runs through [`golden_evidence`], so the two can
//! never drift in how a golden profile is produced.

use std::sync::Arc;

use offramps::verdict::{
    AcousticDetector, ChannelData, ChannelSynth, DetectorSuite, EvidenceBundle, FusionPolicy,
    PowerSideChannelDetector, ThermalDetector, TransactionDetector,
};
use offramps::{Detector, RunArtifacts, SignalPath, TestBench};
use offramps_gcode::Program;

/// The detector names `--detectors` accepts, in canonical order.
pub const DETECTOR_NAMES: [&str; 4] = [
    TransactionDetector::NAME,
    PowerSideChannelDetector::NAME,
    AcousticDetector::NAME,
    ThermalDetector::NAME,
];

/// Resolves one detector name to its campaign-default configuration.
///
/// # Errors
///
/// Returns the unknown name back.
pub fn by_name(name: &str) -> Result<Box<dyn Detector>, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "txn" => Ok(Box::new(TransactionDetector::campaign())),
        "power" => Ok(Box::new(PowerSideChannelDetector::campaign())),
        "acoustic" => Ok(Box::new(AcousticDetector::campaign())),
        "thermal" => Ok(Box::new(ThermalDetector::campaign())),
        other => Err(format!(
            "unknown detector {other:?} (expected one of: {})",
            DETECTOR_NAMES.join(", ")
        )),
    }
}

/// Builds a suite from detector names (order preserved) and a fusion
/// policy.
///
/// # Errors
///
/// Reports the first unknown name, duplicates, an empty list, or a
/// weighted fusion policy inconsistent with the suite.
pub fn suite_from_names(names: &[String], fusion: FusionPolicy) -> Result<DetectorSuite, String> {
    let detectors = names
        .iter()
        .map(|n| by_name(n))
        .collect::<Result<Vec<_>, _>>()?;
    DetectorSuite::new(detectors, fusion)
}

/// The bench one golden lane (the primary capture or a shared
/// calibration repetition) runs on. Shared by [`golden_evidence`] and
/// the campaign engine's fused batches, so a golden lane is configured
/// identically wherever it executes.
pub(crate) fn golden_bench(seed: u64, needs_plant_trace: bool) -> TestBench {
    TestBench::new(seed)
        .signal_path(SignalPath::capture())
        .record_plant_trace(needs_plant_trace)
}

/// Runs one print through the capture path, recording the plant-side
/// trace when the suite's channel plan consumes it.
pub(crate) fn capture_run(
    program: &Arc<Program>,
    seed: u64,
    needs_plant_trace: bool,
) -> Result<RunArtifacts, offramps::BenchError> {
    golden_bench(seed, needs_plant_trace).run(program)
}

/// Synthesizes one planned channel from a run's artifacts (`None` when
/// the artifacts lack the required source, e.g. no plant trace).
/// Sensor noise is seeded by the run's own seed, per channel salt.
fn synthesize(synth: &ChannelSynth, art: &RunArtifacts, seed: u64) -> Option<ChannelData> {
    match synth {
        ChannelSynth::Capture => art.capture.clone().map(ChannelData::Txn),
        ChannelSynth::Power(model) => art
            .plant_trace
            .as_ref()
            .map(|trace| ChannelData::Power(model.synthesize(trace, seed))),
        ChannelSynth::Acoustic(model) => art
            .plant_trace
            .as_ref()
            .map(|trace| ChannelData::Acoustic(model.synthesize(trace, seed))),
        ChannelSynth::Thermal(camera) => {
            Some(ChannelData::Thermal(camera.synthesize(&art.temps, seed)))
        }
    }
}

/// Turns one run's artifacts into the observed evidence bundle for
/// `suite`: exactly the channels the suite's plan asks for — the
/// transaction capture, and/or waveforms synthesized from the
/// plant-side trace and temperatures (sensor noise seeded by the run's
/// own seed).
pub fn observed_evidence(
    mut art: RunArtifacts,
    seed: u64,
    suite: &DetectorSuite,
) -> EvidenceBundle {
    let mut bundle = EvidenceBundle::default();
    for request in suite.channel_plan() {
        // The capture is moved, not cloned — it is the hot path's
        // biggest artifact.
        let data = if matches!(request.synth, ChannelSynth::Capture) {
            art.capture.take().map(ChannelData::Txn)
        } else {
            synthesize(&request.synth, &art, seed)
        };
        if let Some(data) = data {
            bundle.insert(data);
        }
    }
    bundle
}

/// Produces the golden evidence bundle for one workload: the golden
/// run under `primary_seed` synthesized into every planned channel,
/// plus — when any detector calibrates from repetitions — **shared**
/// golden reruns, one per entry of `calibration_seeds`, feeding every
/// repeat-calibrated channel at once (the primary run is each
/// channel's first calibration trace). Both the campaign runner and the
/// baseline experiment go through here.
pub fn golden_evidence(
    program: &Arc<Program>,
    primary_seed: u64,
    calibration_seeds: &[u64],
    suite: &DetectorSuite,
) -> EvidenceBundle {
    let needs_plant_trace = suite
        .channel_plan()
        .iter()
        .any(|r| r.synth.needs_plant_trace());
    let seeds = golden_seed_plan(primary_seed, calibration_seeds, suite);

    // Calibrating suites rerun the same golden workload several times —
    // the lockstep batch shape — so the primary print and every shared
    // calibration repetition run as sibling lanes of one batch, keeping
    // the program image hot. Non-calibrating suites take the plain solo
    // run. Either way the artifacts are identical per seed.
    let runs: Vec<(u64, RunArtifacts)> = if seeds.len() > 1 {
        let benches = seeds
            .iter()
            .map(|&seed| golden_bench(seed, needs_plant_trace))
            .collect();
        let programs: Vec<Arc<Program>> = seeds.iter().map(|_| Arc::clone(program)).collect();
        seeds
            .iter()
            .copied()
            .zip(TestBench::run_batch(benches, &programs))
            .map(|(seed, run)| (seed, run.expect("golden run")))
            .collect()
    } else {
        let art = capture_run(program, primary_seed, needs_plant_trace).expect("golden run");
        vec![(primary_seed, art)]
    };
    golden_bundle_from_runs(runs, suite)
}

/// The golden seeds one workload's evidence is built from: the primary
/// seed first, then every shared calibration repetition the suite
/// consumes (no tail for non-calibrating suites). The campaign engine
/// uses this plan to provision golden lanes inside a scenario batch;
/// [`golden_evidence`] uses it for the standalone path. One function,
/// so the two can never disagree about which seeds run.
pub(crate) fn golden_seed_plan(
    primary_seed: u64,
    calibration_seeds: &[u64],
    suite: &DetectorSuite,
) -> Vec<u64> {
    let max_calibration = suite.calibration_runs();
    let mut seeds = vec![primary_seed];
    if max_calibration >= 2 {
        seeds.extend(calibration_seeds.iter().copied().take(max_calibration - 1));
    }
    seeds
}

/// Assembles the golden bundle from already-simulated golden runs, in
/// [`golden_seed_plan`] order (`runs[0]` is the primary capture). This
/// is the synthesis half of [`golden_evidence`], split out so the
/// lockstep campaign engine can run the golden lanes as siblings of a
/// scenario batch and still build the byte-identical bundle.
pub(crate) fn golden_bundle_from_runs(
    mut runs: Vec<(u64, RunArtifacts)>,
    suite: &DetectorSuite,
) -> EvidenceBundle {
    let plan = suite.channel_plan();
    let max_calibration = suite.calibration_runs();
    let repeats = runs.split_off(1);
    let (primary_seed, art) = runs.pop().expect("primary golden run");
    let mut bundle = observed_evidence(art, primary_seed, suite);

    if max_calibration >= 2 {
        // One simulation per calibration seed, shared by every
        // calibrated channel — never one set of reruns per detector.
        for request in &plan {
            if request.calibration_runs < 2 {
                continue;
            }
            let channel = request.synth.channel();
            let Some(primary) = bundle.get(channel).cloned() else {
                continue;
            };
            let mut calib = vec![primary];
            for (seed, art) in repeats.iter().take(request.calibration_runs - 1) {
                calib.push(
                    synthesize(&request.synth, art, *seed)
                        .expect("calibration run carries the planned channel source"),
                );
            }
            bundle.insert_calibration(channel, calib);
        }
    }
    bundle
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps::Channel;

    #[test]
    fn names_resolve_and_unknown_rejected() {
        for name in DETECTOR_NAMES {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("sonar").is_err());
        assert!(suite_from_names(&["txn".into(), "txn".into()], FusionPolicy::Any).is_err());
        assert!(suite_from_names(&[], FusionPolicy::Any).is_err());
        let suite = suite_from_names(&["txn".into(), "power".into()], FusionPolicy::All).unwrap();
        assert_eq!(suite.names(), vec!["txn", "power"]);
        assert_eq!(suite.fusion(), &FusionPolicy::All);
        let quad = suite_from_names(
            &DETECTOR_NAMES.map(String::from),
            FusionPolicy::parse("weighted").unwrap(),
        )
        .unwrap();
        assert_eq!(quad.names(), DETECTOR_NAMES.to_vec());
    }

    #[test]
    fn golden_evidence_scales_with_suite() {
        let program = crate::workloads::Workload::mini().program();
        let txn_only = suite_from_names(&["txn".into()], FusionPolicy::Any).unwrap();
        let bundle = golden_evidence(&program, 7, &[], &txn_only);
        assert!(bundle.capture().is_some());
        assert!(
            bundle.power().is_none(),
            "no power work for txn-only suites"
        );
        assert!(bundle.calibration(Channel::Power).is_empty());

        let both = suite_from_names(&["txn".into(), "power".into()], FusionPolicy::Any).unwrap();
        let bundle = golden_evidence(&program, 7, &[8, 9], &both);
        assert!(bundle.capture().is_some());
        assert!(bundle.power().is_some());
        assert_eq!(
            bundle.calibration(Channel::Power).len(),
            3,
            "primary + two calibration repetitions"
        );
    }

    #[test]
    fn calibration_reruns_are_shared_across_detectors() {
        // A suite with three repeat-calibrated detectors must plan the
        // *max* of their calibration requests — the reruns are shared —
        // and every calibrated channel must be fed from them.
        let suite = suite_from_names(
            &[
                "txn".into(),
                "power".into(),
                "acoustic".into(),
                "thermal".into(),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        assert_eq!(
            suite.calibration_runs(),
            5,
            "max across detectors, not the sum (5+5+5 would be 15)"
        );
        let program = crate::workloads::Workload::mini().program();
        let seeds: Vec<u64> = (1..5).collect();
        let bundle = golden_evidence(&program, 7, &seeds, &suite);
        for channel in [Channel::Power, Channel::Acoustic, Channel::Thermal] {
            assert_eq!(
                bundle.calibration(channel).len(),
                5,
                "{channel}: primary + four shared reruns"
            );
        }
        assert!(
            bundle.calibration(Channel::Txn).is_empty(),
            "the txn judge does not calibrate"
        );
    }
}

//! Detector-suite construction and evidence production for campaigns
//! and the baseline experiment.
//!
//! The judging API itself lives in [`offramps::verdict`]; this module
//! is the harness side: resolving `--detectors txn,power` into a
//! [`DetectorSuite`], and producing the golden/observed
//! [`EvidenceBundle`]s a suite consumes. Campaigns and `baseline.rs`
//! both route their golden runs through [`golden_evidence`], so the two
//! can never drift in how a golden profile is produced.

use std::sync::Arc;

use offramps::verdict::{
    DetectorSuite, EvidenceBundle, FusionPolicy, PowerSideChannelDetector, TransactionDetector,
};
use offramps::{Detector, RunArtifacts, SignalPath, TestBench};
use offramps_gcode::Program;

/// The detector names `--detectors` accepts.
pub const DETECTOR_NAMES: [&str; 2] = [TransactionDetector::NAME, PowerSideChannelDetector::NAME];

/// Resolves one detector name to its campaign-default configuration.
///
/// # Errors
///
/// Returns the unknown name back.
pub fn by_name(name: &str) -> Result<Box<dyn Detector>, String> {
    match name.trim().to_ascii_lowercase().as_str() {
        "txn" => Ok(Box::new(TransactionDetector::campaign())),
        "power" => Ok(Box::new(PowerSideChannelDetector::campaign())),
        other => Err(format!(
            "unknown detector {other:?} (expected one of: {})",
            DETECTOR_NAMES.join(", ")
        )),
    }
}

/// Builds a suite from detector names (order preserved) and a fusion
/// policy.
///
/// # Errors
///
/// Reports the first unknown name, duplicates, or an empty list.
pub fn suite_from_names(names: &[String], fusion: FusionPolicy) -> Result<DetectorSuite, String> {
    let detectors = names
        .iter()
        .map(|n| by_name(n))
        .collect::<Result<Vec<_>, _>>()?;
    DetectorSuite::new(detectors, fusion)
}

/// Runs one print through the capture path, recording the plant-side
/// trace when the suite consumes power evidence.
pub(crate) fn capture_run(
    program: &Arc<Program>,
    seed: u64,
    needs_power: bool,
) -> Result<RunArtifacts, offramps::BenchError> {
    TestBench::new(seed)
        .signal_path(SignalPath::capture())
        .record_plant_trace(needs_power)
        .run(program)
}

/// Turns one run's artifacts into the observed evidence bundle for
/// `suite`: the transaction capture always, plus the power waveform
/// synthesized from the plant-side trace (sensor noise seeded by the
/// run's own seed) when the suite consumes it.
pub fn observed_evidence(art: RunArtifacts, seed: u64, suite: &DetectorSuite) -> EvidenceBundle {
    let power = match (suite.power_model(), art.plant_trace.as_ref()) {
        (Some(model), Some(trace)) => Some(model.synthesize(trace, seed)),
        _ => None,
    };
    EvidenceBundle {
        capture: art.capture,
        power,
        power_calibration: Vec::new(),
    }
}

/// Produces the golden evidence bundle for one workload: the golden
/// capture under `primary_seed`, plus — when the suite consumes power —
/// the golden power waveform and one calibration repetition per entry
/// of `calibration_seeds` (the primary run is the first calibration
/// trace). Both the campaign runner and the baseline experiment go
/// through here.
pub fn golden_evidence(
    program: &Arc<Program>,
    primary_seed: u64,
    calibration_seeds: &[u64],
    suite: &DetectorSuite,
) -> EvidenceBundle {
    let needs_power = suite.needs_power();
    let art = capture_run(program, primary_seed, needs_power).expect("golden run");
    let mut bundle = observed_evidence(art, primary_seed, suite);
    if let (Some(model), Some(primary)) = (suite.power_model(), bundle.power.clone()) {
        let mut calibration = vec![primary];
        for &seed in calibration_seeds {
            let art = capture_run(program, seed, true).expect("golden calibration run");
            let trace = art.plant_trace.expect("plant trace enabled");
            calibration.push(model.synthesize(&trace, seed));
        }
        bundle.power_calibration = calibration;
    }
    bundle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve_and_unknown_rejected() {
        for name in DETECTOR_NAMES {
            assert_eq!(by_name(name).unwrap().name(), name);
        }
        assert!(by_name("sonar").is_err());
        assert!(suite_from_names(&["txn".into(), "txn".into()], FusionPolicy::Any).is_err());
        assert!(suite_from_names(&[], FusionPolicy::Any).is_err());
        let suite = suite_from_names(&["txn".into(), "power".into()], FusionPolicy::All).unwrap();
        assert_eq!(suite.names(), vec!["txn", "power"]);
        assert_eq!(suite.fusion(), FusionPolicy::All);
    }

    #[test]
    fn golden_evidence_scales_with_suite() {
        let program = crate::workloads::Workload::mini().program();
        let txn_only = suite_from_names(&["txn".into()], FusionPolicy::Any).unwrap();
        let bundle = golden_evidence(&program, 7, &[], &txn_only);
        assert!(bundle.capture.is_some());
        assert!(bundle.power.is_none(), "no power work for txn-only suites");
        assert!(bundle.power_calibration.is_empty());

        let both = suite_from_names(&["txn".into(), "power".into()], FusionPolicy::Any).unwrap();
        let bundle = golden_evidence(&program, 7, &[8, 9], &both);
        assert!(bundle.capture.is_some());
        assert!(bundle.power.is_some());
        assert_eq!(
            bundle.power_calibration.len(),
            3,
            "primary + two calibration repetitions"
        );
    }
}

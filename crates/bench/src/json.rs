//! Minimal JSON emission for experiment reports.
//!
//! The offline build has no `serde`/`serde_json`, so the report types
//! hand-serialize through this small [`ToJson`] trait instead. Output is
//! pretty-printed with two-space indentation, close enough to
//! `serde_json::to_string_pretty` that the `target/experiments/*.json`
//! artifacts keep their shape.

use std::fmt::Write as _;

/// Serializes a value to a JSON fragment.
pub trait ToJson {
    /// Appends this value's JSON representation to `out` with the given
    /// indentation depth (in two-space levels).
    fn write_json(&self, out: &mut String, indent: usize);

    /// This value as a pretty-printed JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s, 0);
        s
    }
}

/// Pretty-prints any [`ToJson`] value — the drop-in replacement for
/// `serde_json::to_string_pretty` (minus the `Result`, since nothing
/// here can fail).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json()
}

/// Escapes a string for a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` the way JSON expects (finite; NaN/inf become null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else {
        "null".into()
    }
}

/// Builder for one JSON object at a given indentation level.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    indent: usize,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens an object.
    pub fn new(out: &'a mut String, indent: usize) -> Self {
        out.push('{');
        ObjectWriter {
            out,
            indent,
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('\n');
        for _ in 0..=self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(&escape(name));
        self.out.push_str(": ");
    }

    /// Emits a pre-rendered JSON fragment under `name`.
    pub fn raw(&mut self, name: &str, fragment: &str) -> &mut Self {
        self.key(name);
        self.out.push_str(fragment);
        self
    }

    /// Emits a string field.
    pub fn string(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let escaped = escape(value);
        self.out.push_str(&escaped);
        self
    }

    /// Emits a float field.
    pub fn float(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        let rendered = number(value);
        self.out.push_str(&rendered);
        self
    }

    /// Emits an integer field.
    pub fn int(&mut self, name: &str, value: i128) -> &mut Self {
        self.key(name);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Emits a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Emits a nested [`ToJson`] value.
    pub fn value<T: ToJson>(&mut self, name: &str, value: &T) -> &mut Self {
        self.key(name);
        value.write_json(self.out, self.indent + 1);
        self
    }

    /// Closes the object.
    pub fn finish(self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push('}');
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            for _ in 0..=indent {
                out.push_str("  ");
            }
            item.write_json(out, indent + 1);
        }
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_slice().write_json(out, indent);
    }
}

impl ToJson for offramps::Mismatch {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.int("index", self.index as i128)
            .int("axis", self.axis as i128)
            .int("golden", self.golden as i128)
            .int("observed", self.observed as i128)
            .float("percent", self.percent);
        w.finish();
    }
}

impl ToJson for offramps::DetectionReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.bool("trojan_suspected", self.trojan_suspected)
            .float("largest_percent", self.largest_percent)
            .int("transactions_compared", self.transactions_compared as i128)
            .int("length_difference", self.length_difference as i128);
        match self.final_totals_match {
            Some(v) => w.bool("final_totals_match", v),
            None => w.raw("final_totals_match", "null"),
        };
        w.value("mismatches", &self.mismatches);
        w.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: f64,
        label: String,
    }

    impl ToJson for Point {
        fn write_json(&self, out: &mut String, indent: usize) {
            let mut w = ObjectWriter::new(out, indent);
            w.float("x", self.x).string("label", &self.label);
            w.finish();
        }
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_render_json_safe() {
        assert_eq!(number(1.0), "1.0");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let pts = vec![
            Point {
                x: 1.0,
                label: "a".into(),
            },
            Point {
                x: 2.5,
                label: "b \"q\"".into(),
            },
        ];
        let json = to_string_pretty(&pts);
        assert!(json.starts_with("[\n  {\n"));
        assert!(json.contains("\"x\": 1.0"));
        assert!(json.contains("\"label\": \"b \\\"q\\\"\""));
        assert!(json.ends_with("\n]"));
    }

    #[test]
    fn empty_vec_is_compact() {
        let v: Vec<Point> = Vec::new();
        assert_eq!(to_string_pretty(&v), "[]");
    }
}

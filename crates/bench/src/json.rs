//! Minimal JSON emission *and parsing* for experiment reports.
//!
//! The offline build has no `serde`/`serde_json`, so the report types
//! hand-serialize through this small [`ToJson`] trait instead. Output is
//! pretty-printed with two-space indentation, close enough to
//! `serde_json::to_string_pretty` that the `target/experiments/*.json`
//! artifacts keep their shape.
//!
//! The scenario store reads its cached payloads back, so a matching
//! [`parse`] is provided: a strict recursive-descent parser producing a
//! [`Value`] tree. Numbers keep their **raw source text** ([`Value`]
//! stores the lexeme, not an eager `f64`), so 64-bit seeds and exactly
//! rendered floats survive a write → parse → reuse round trip without
//! precision loss.

use std::fmt::Write as _;

/// Serializes a value to a JSON fragment.
pub trait ToJson {
    /// Appends this value's JSON representation to `out` with the given
    /// indentation depth (in two-space levels).
    fn write_json(&self, out: &mut String, indent: usize);

    /// This value as a pretty-printed JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s, 0);
        s
    }
}

/// Pretty-prints any [`ToJson`] value — the drop-in replacement for
/// `serde_json::to_string_pretty` (minus the `Result`, since nothing
/// here can fail).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json()
}

/// Escapes a string for a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` the way JSON expects (finite; NaN/inf become null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else {
        "null".into()
    }
}

/// Formats a slice of `f64`s as a single-line JSON array fragment
/// (`[0.0, 0.5, 1.0]`) via [`number`] — the shared renderer for every
/// rates array in the analytics JSON.
pub fn number_array(values: &[f64]) -> String {
    let rendered: Vec<String> = values.iter().map(|v| number(*v)).collect();
    format!("[{}]", rendered.join(", "))
}

/// Builder for one JSON object at a given indentation level.
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    indent: usize,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens an object.
    pub fn new(out: &'a mut String, indent: usize) -> Self {
        out.push('{');
        ObjectWriter {
            out,
            indent,
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('\n');
        for _ in 0..=self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(&escape(name));
        self.out.push_str(": ");
    }

    /// Emits a pre-rendered JSON fragment under `name`.
    pub fn raw(&mut self, name: &str, fragment: &str) -> &mut Self {
        self.key(name);
        self.out.push_str(fragment);
        self
    }

    /// Emits a string field.
    pub fn string(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let escaped = escape(value);
        self.out.push_str(&escaped);
        self
    }

    /// Emits a float field.
    pub fn float(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        let rendered = number(value);
        self.out.push_str(&rendered);
        self
    }

    /// Emits an integer field.
    pub fn int(&mut self, name: &str, value: i128) -> &mut Self {
        self.key(name);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Emits a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Emits a nested [`ToJson`] value.
    pub fn value<T: ToJson>(&mut self, name: &str, value: &T) -> &mut Self {
        self.key(name);
        value.write_json(self.out, self.indent + 1);
        self
    }

    /// Closes the object.
    pub fn finish(self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push('}');
    }
}

/// A parsed JSON value.
///
/// Objects keep their key order (a `Vec` of pairs, not a map) so a
/// parse → re-render pipeline is deterministic; numbers keep their raw
/// lexeme so integers beyond 2⁵³ and shortest-round-trip floats are
/// exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source lexeme (e.g. `"1.0"`, `"-3e8"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A number as `f64` (possibly rounded for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// A number as an exact integer; `None` for floats or non-numbers.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// A number as `u64`; `None` for negatives, floats or non-numbers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (one value, surrounded by optional
/// whitespace).
///
/// # Errors
///
/// Reports the byte offset and nature of the first syntax error, or
/// trailing non-whitespace input.
///
/// # Example
///
/// ```
/// use offramps_bench::json::{parse, Value};
///
/// let v = parse(r#"{"seed": 18446744073709551615, "ok": true}"#).unwrap();
/// assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
/// assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
/// assert!(parse("{oops").is_err());
/// ```
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let Value::Str(key) = parse_string(text, bytes, pos)? else {
                    unreachable!("parse_string returns Str")
                };
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => parse_string(text, bytes, pos),
        Some(b't') if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(b'-' | b'0'..=b'9') => parse_number(text, bytes, pos),
        Some(&c) => Err(format!("unexpected {:?} at byte {}", c as char, *pos)),
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(format!("bad number at byte {start}"));
    }
    // JSON forbids leading zeros: "01" is two tokens, not a number.
    if *pos - digits_from > 1 && bytes[digits_from] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == frac_from {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        if *pos == exp_from {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(Value::Num(text[start..*pos].to_string()))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let rest = &text[*pos..];
        let Some(c) = rest.chars().next() else {
            return Err("unterminated string".into());
        };
        *pos += c.len_utf8();
        match c {
            '"' => return Ok(Value::Str(out)),
            '\\' => {
                let Some(esc) = text[*pos..].chars().next() else {
                    return Err("dangling escape".into());
                };
                *pos += esc.len_utf8();
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let unit = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: 😀 and friends.
                        let c = if (0xd800..0xdc00).contains(&unit) {
                            if !text[*pos..].starts_with("\\u") {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err("bad low surrogate".into());
                            }
                            let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(code).ok_or("bad surrogate pair")?
                        } else if (0xdc00..0xe000).contains(&unit) {
                            return Err("lone low surrogate".into());
                        } else {
                            char::from_u32(unit).ok_or("bad \\u escape")?
                        };
                        out.push(c);
                    }
                    other => return Err(format!("unknown escape \\{other}")),
                }
            }
            c if (c as u32) < 0x20 => {
                return Err(format!("raw control character {:#04x} in string", c as u32))
            }
            c => out.push(c),
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let hex = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| "bad \\u escape")?;
    let unit = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
    *pos = end;
    Ok(unit)
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String, indent: usize) {
        if self.is_empty() {
            out.push_str("[]");
            return;
        }
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            for _ in 0..=indent {
                out.push_str("  ");
            }
            item.write_json(out, indent + 1);
        }
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        self.as_slice().write_json(out, indent);
    }
}

impl ToJson for offramps::Mismatch {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.int("index", self.index as i128)
            .int("axis", self.axis as i128)
            .int("golden", self.golden as i128)
            .int("observed", self.observed as i128)
            .float("percent", self.percent);
        w.finish();
    }
}

impl ToJson for offramps::Evidence {
    /// One detector's sufficient statistics. Partial shapes are part of
    /// the schema: `alarmed` is `null` and `threshold` absent for
    /// unjudged evidence, `final_totals_match` and `peak` appear only
    /// when the detector produced them (see
    /// [`crate::cache::decode_result`] for the strict reader).
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.string("detector", &self.detector);
        match self.alarmed {
            Some(a) => w.bool("alarmed", a),
            None => w.raw("alarmed", "null"),
        };
        w.int("flagged", self.flagged as i128)
            .int("flagged_values", self.flagged_values as i128)
            .int("compared", self.compared as i128);
        if let Some(threshold) = self.threshold {
            w.float("threshold", threshold);
        }
        if self.judged() {
            w.float("peak", self.peak);
        }
        if let Some(totals) = self.final_totals_match {
            w.bool("final_totals_match", totals);
        }
        w.finish();
    }
}

impl ToJson for offramps::DetectionReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let mut w = ObjectWriter::new(out, indent);
        w.bool("trojan_suspected", self.trojan_suspected)
            .float("largest_percent", self.largest_percent)
            .int("transactions_compared", self.transactions_compared as i128)
            .int("length_difference", self.length_difference as i128);
        match self.final_totals_match {
            Some(v) => w.bool("final_totals_match", v),
            None => w.raw("final_totals_match", "null"),
        };
        w.value("mismatches", &self.mismatches);
        w.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: f64,
        label: String,
    }

    impl ToJson for Point {
        fn write_json(&self, out: &mut String, indent: usize) {
            let mut w = ObjectWriter::new(out, indent);
            w.float("x", self.x).string("label", &self.label);
            w.finish();
        }
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn escapes_every_control_char() {
        // All of C0 must come out as an escape, never raw.
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let escaped = escape(&c.to_string());
            assert!(
                !escaped.chars().any(char::is_control),
                "U+{code:04X} leaked raw: {escaped:?}"
            );
            // And parse back to the original character.
            let parsed = parse(&escaped).unwrap();
            assert_eq!(
                parsed.as_str(),
                Some(c.to_string().as_str()),
                "U+{code:04X}"
            );
        }
        assert_eq!(escape("\u{7}"), "\"\\u0007\"");
        assert_eq!(escape("\t\r\n"), "\"\\t\\r\\n\"");
    }

    #[test]
    fn non_bmp_codepoints_pass_through_and_parse() {
        // Non-BMP text is emitted as raw UTF-8 (valid JSON) …
        let s = "emoji 😀 and math 𝕫";
        let escaped = escape(s);
        assert_eq!(escaped, format!("\"{s}\""));
        assert_eq!(parse(&escaped).unwrap().as_str(), Some(s));
        // … and the surrogate-pair escape form decodes to the same
        // character.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "lone low surrogate");
        assert!(parse("\"\\ud83dx\"").is_err(), "high surrogate then text");
    }

    #[test]
    fn numbers_render_json_safe() {
        assert_eq!(number(1.0), "1.0");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(-3.0), "-3.0");
        assert_eq!(number(0.0), "0.0");
        // Non-finite values have no JSON number form: they become null
        // rather than emitting `NaN`/`inf` and corrupting the document.
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
        // Large magnitudes switch off the ".0" integral rendering but
        // stay parseable.
        let big = number(1e300);
        assert_eq!(parse(&big).unwrap().as_f64(), Some(1e300));
    }

    #[test]
    fn parser_handles_scalars_nesting_and_rejects_garbage() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(vec![]));
        let v = parse(r#"{"a": [1, -2.5, 3e8], "b": {"c": null}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i128(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(3e8));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        for bad in [
            "",
            "tru",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{a: 1}",
            "1 2",
            "0x10",
            "01x",
            "01",
            "-007.5",
            "\"\u{1}\"",
            "\"\\q\"",
            "- 1",
            "1.",
            ".5",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers_keep_raw_lexemes_for_exactness() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.as_i128(), Some(u64::MAX as i128));
        let v = parse("-170141183460469231731687303715884105728").unwrap();
        assert_eq!(v.as_i128(), Some(i128::MIN));
        assert_eq!(
            parse("2.5").unwrap().as_i128(),
            None,
            "floats are not integers"
        );
        assert_eq!(
            parse("\"2\"").unwrap().as_u64(),
            None,
            "strings are not numbers"
        );
    }

    #[test]
    fn writer_output_round_trips_through_the_parser() {
        // The report writer's own output — nested objects, arrays,
        // floats, escapes — must be readable by the parser with nothing
        // lost: the scenario store depends on this.
        let pts = vec![
            Point {
                x: -0.125,
                label: "tab\there \"and\" emoji 😀".into(),
            },
            Point {
                x: 3.0,
                label: String::new(),
            },
        ];
        let json = to_string_pretty(&pts);
        let v = parse(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("x").unwrap().as_f64(), Some(-0.125));
        assert_eq!(
            arr[0].get("label").unwrap().as_str(),
            Some("tab\there \"and\" emoji 😀")
        );
        assert_eq!(arr[1].get("x").unwrap().as_f64(), Some(3.0));
        assert_eq!(arr[1].get("label").unwrap().as_str(), Some(""));
        // Key order survives (objects are ordered pairs, not maps).
        match &arr[0] {
            Value::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["x", "label"]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn objects_and_arrays_nest() {
        let pts = vec![
            Point {
                x: 1.0,
                label: "a".into(),
            },
            Point {
                x: 2.5,
                label: "b \"q\"".into(),
            },
        ];
        let json = to_string_pretty(&pts);
        assert!(json.starts_with("[\n  {\n"));
        assert!(json.contains("\"x\": 1.0"));
        assert!(json.contains("\"label\": \"b \\\"q\\\"\""));
        assert!(json.ends_with("\n]"));
    }

    #[test]
    fn empty_vec_is_compact() {
        let v: Vec<Point> = Vec::new();
        assert_eq!(to_string_pretty(&v), "[]");
    }
}

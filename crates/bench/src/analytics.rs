//! Corpus-wide detection analytics: per-detector ROC over a
//! suspect-fraction threshold grid, plus calibrated weighted fusion.
//!
//! The paper judges every print at a single threshold (1 % suspect
//! fraction). But each scenario record already carries every detector's
//! sufficient statistics — `mismatched_transactions` over
//! `transactions_compared` plus the 0 %-margin final-totals bit for the
//! transaction judge, anomalous windows over compared windows for each
//! sampled side channel — so verdicts can be **re-judged offline at any
//! threshold** without re-running a single simulation. Sweeping
//! [`THRESHOLD_GRID`] over a whole campaign (or a whole scenario store)
//! yields, per attack and per detector, a detection-rate curve; the
//! `"none"` attack's curve is the false-positive rate at the same
//! thresholds, and the two together are the corpus-wide ROC.
//!
//! Re-judging goes through the same helpers as the live judges
//! ([`detect::floored_suspect_fraction`] for the transaction judge,
//! [`offramps_sidechannel::suspect_anomaly_fraction`] for every sampled
//! channel), so each curve's value at the live base threshold
//! reproduces the stored verdicts exactly (invariants the tests pin).
//!
//! On top of the per-detector curves, corpora observed by **two or more
//! side modalities** get a *learned* fusion policy: per-modality weights
//! fitted on the stored records (detection rate minus false-positive
//! rate at each modality's live base threshold, clamped at zero) and a
//! weighted-vote ROC next to the `any`-alarm fusion — the
//! [`offramps::verdict::weighted_vote`] rule, so the offline curves and
//! a live `--fuse weighted:…` campaign can never disagree.

use std::collections::BTreeMap;

use offramps::detect;
use offramps::verdict::{weighted_vote, TimeToDetection};

use crate::campaign::ScenarioResult;
use crate::json::{ObjectWriter, ToJson, Value};

/// The default suspect-fraction threshold grid: a log-ish sweep from
/// "flag anything" to "flag only gross tampering", with the paper's
/// 1 % in the middle. Ten points ≥ the eight the analytics contract
/// promises.
pub const THRESHOLD_GRID: [f64; 10] = [0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5];

/// Canonical rendering order for the side (non-transaction) detectors.
pub const SIDE_DETECTOR_ORDER: [&str; 3] = ["power", "acoustic", "thermal"];

/// The live base suspect fraction of the transaction judge (the
/// paper's 1 %), used when fitting fusion weights.
const TXN_FIT_BASE: f64 = 0.01;

/// The live base suspect fraction of a sampled side-channel judge —
/// the campaign default for that detector — used when fitting fusion
/// weights, so the fit scores each modality at the threshold its
/// stored alarms were actually judged with.
fn side_fit_base(detector: &str) -> f64 {
    match detector {
        offramps::PowerSideChannelDetector::NAME => {
            offramps::PowerSideChannelDetector::campaign()
                .config
                .suspect_fraction
        }
        offramps::AcousticDetector::NAME => {
            offramps::AcousticDetector::campaign()
                .config
                .suspect_fraction
        }
        offramps::ThermalDetector::NAME => {
            offramps::ThermalDetector::campaign()
                .config
                .suspect_fraction
        }
        // Unknown detectors (a store written by a newer build) fall
        // back to the power/thermal-style default; their stored alarms
        // still re-judge correctly — only the fitted weight is scored
        // at a generic threshold.
        _ => 0.15,
    }
}

/// One sampled side-channel judge's sufficient statistics for one
/// scenario (absent for records written before that modality existed
/// and for suites that do not run it).
#[derive(Debug, Clone, PartialEq)]
pub struct SideObservation {
    /// Detector name (`"power"`, `"acoustic"`, `"thermal"`).
    pub detector: String,
    /// Smoothed windows whose deviation exceeded the sigma threshold.
    pub anomalous_windows: usize,
    /// Windows compared.
    pub windows_compared: usize,
    /// Whether the judge actually judged (its stream may have been
    /// missing for an individual scenario).
    pub judged: bool,
}

/// One scenario's detection inputs, abstracted away from where the
/// record came from (a live [`ScenarioResult`] or a store payload).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Attack spec string (`"none"` for clean reprints).
    pub attack: String,
    /// Workload label the scenario printed.
    pub workload: String,
    /// Transactions with at least one out-of-margin axis.
    pub mismatched_transactions: usize,
    /// Transactions the detector compared.
    pub transactions_compared: usize,
    /// The end-of-print 0 %-margin totals check.
    pub final_totals_match: Option<bool>,
    /// Whether the transaction judge judged at all (bench errors are
    /// not).
    pub judged: bool,
    /// The sampled side-channel judges' statistics, when the record
    /// carries them (canonical order).
    pub side: Vec<SideObservation>,
    /// Time-to-detection, for records produced by an online campaign
    /// whose fused monitor alarmed mid-print (`None` for every post-hoc
    /// record and for online clean runs).
    pub ttd: Option<TimeToDetection>,
}

impl Observation {
    /// Extracts the detection inputs from a live campaign result.
    pub fn from_result(r: &ScenarioResult) -> Observation {
        let mut side: Vec<SideObservation> = r
            .verdict
            .evidence
            .iter()
            .filter(|e| e.detector != offramps::TransactionDetector::NAME)
            .map(|e| SideObservation {
                detector: e.detector.clone(),
                anomalous_windows: e.flagged,
                windows_compared: e.compared,
                judged: e.judged(),
            })
            .collect();
        sort_side(&mut side);
        Observation {
            attack: r.scenario.trojan.clone(),
            workload: r.scenario.workload.clone(),
            mismatched_transactions: r.mismatched_transactions(),
            transactions_compared: r.transactions_compared(),
            final_totals_match: r.final_totals_match(),
            judged: r.suspect_fraction().is_some(),
            side,
            ttd: r.ttd,
        }
    }

    /// Extracts the detection inputs from a decoded store payload (see
    /// [`crate::cache::encode_result`]). Records without an `evidence`
    /// array — every record written before side-channel evidence
    /// existed — parse fine and simply carry no side statistics; the
    /// analytics CLI counts and reports them per detector instead of
    /// erroring.
    ///
    /// # Errors
    ///
    /// Reports the first missing or mistyped field.
    pub fn from_payload(v: &Value) -> Result<Observation, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("payload missing string {key:?}"))
        };
        let count_field = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("payload missing count {key:?}"))
        };
        let mut side = Vec::new();
        if let Some(list) = v.get("evidence").and_then(Value::as_array) {
            for e in list {
                let detector = e
                    .get("detector")
                    .and_then(Value::as_str)
                    .ok_or("evidence entry missing detector name")?;
                if detector == offramps::TransactionDetector::NAME {
                    continue;
                }
                let count = |key: &str| {
                    e.get(key)
                        .and_then(Value::as_u64)
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("{detector} evidence missing count {key:?}"))
                };
                side.push(SideObservation {
                    detector: detector.to_string(),
                    anomalous_windows: count("flagged")?,
                    windows_compared: count("compared")?,
                    judged: matches!(e.get("alarmed"), Some(Value::Bool(_))),
                });
            }
        }
        sort_side(&mut side);
        // TTD rides only on records written by an online campaign whose
        // fused monitor alarmed; every other record simply lacks the
        // fields.
        let ttd = match v.get("ttd_step") {
            None => None,
            Some(step) => Some(TimeToDetection {
                alarm_step: step.as_u64().ok_or("ttd_step is not an integer")?,
                print_fraction: v
                    .get("ttd_print_fraction")
                    .and_then(Value::as_f64)
                    .ok_or("payload missing number \"ttd_print_fraction\"")?,
                material_saved: v
                    .get("ttd_material_saved")
                    .and_then(Value::as_f64)
                    .ok_or("payload missing number \"ttd_material_saved\"")?,
            }),
        };
        Ok(Observation {
            attack: str_field("trojan")?,
            workload: str_field("workload")?,
            mismatched_transactions: count_field("mismatched_transactions")?,
            transactions_compared: count_field("transactions_compared")?,
            final_totals_match: match v.get("final_totals_match") {
                None | Some(Value::Null) => None,
                Some(Value::Bool(b)) => Some(*b),
                Some(_) => return Err("final_totals_match is not bool/null".into()),
            },
            judged: v.get("suspect_fraction").is_some(),
            side,
            ttd,
        })
    }

    /// A named side judge's statistics, if the record carries them.
    pub fn side_for(&self, detector: &str) -> Option<&SideObservation> {
        self.side.iter().find(|s| s.detector == detector)
    }

    /// Shorthand for the power judge's statistics.
    pub fn power(&self) -> Option<&SideObservation> {
        self.side_for("power")
    }

    /// Re-judges this scenario's *transaction* evidence at `base`
    /// suspect fraction: the same verdict rule as the live campaign
    /// judge — mismatch fraction over the floored threshold, or a
    /// failed 0 %-margin totals check. Unjudged scenarios are never
    /// detected.
    pub fn detected_at(&self, base: f64) -> bool {
        if !self.judged {
            return false;
        }
        let threshold = detect::floored_suspect_fraction(base, self.transactions_compared);
        let fraction = if self.transactions_compared == 0 {
            0.0
        } else {
            self.mismatched_transactions as f64 / self.transactions_compared as f64
        };
        fraction > threshold || self.final_totals_match == Some(false)
    }

    /// Re-judges one side modality at `base` suspect fraction, through
    /// the same [`offramps_sidechannel::suspect_anomaly_fraction`] rule
    /// as the live judges (so the two can never drift). `None` when the
    /// record carries no judged evidence for that detector.
    pub fn side_detected_at(&self, detector: &str, base: f64) -> Option<bool> {
        let s = self.side_for(detector).filter(|s| s.judged)?;
        Some(offramps_sidechannel::suspect_anomaly_fraction(
            s.anomalous_windows,
            s.windows_compared,
            base,
        ))
    }

    /// Shorthand: re-judges the power evidence at `base`.
    pub fn power_detected_at(&self, base: f64) -> Option<bool> {
        self.side_detected_at("power", base)
    }

    /// The **any-alarm** fusion of every re-judged modality at `base`.
    /// Analytics fused curves are any-alarm *by definition* — an
    /// exploration of the most sensitive combined detector — regardless
    /// of the fusion policy the live campaign stored its `detected`
    /// verdicts under (an `--fuse all` store's fused curve can sit
    /// above its stored detection rate).
    pub fn fused_detected_at(&self, base: f64) -> bool {
        self.detected_at(base)
            || self
                .side
                .iter()
                .any(|s| self.side_detected_at(&s.detector, base) == Some(true))
    }

    /// The weighted-vote fusion of every re-judged modality at `base`,
    /// under the given weights and vote threshold — the exact
    /// [`weighted_vote`] rule a live `--fuse weighted:…` campaign uses.
    pub fn weighted_detected_at(
        &self,
        weights: &[(String, f64)],
        vote_threshold: f64,
        base: f64,
    ) -> bool {
        let mut votes: Vec<(&str, bool)> = Vec::with_capacity(1 + self.side.len());
        if self.judged {
            votes.push((offramps::TransactionDetector::NAME, self.detected_at(base)));
        }
        for s in &self.side {
            if let Some(alarm) = self.side_detected_at(&s.detector, base) {
                votes.push((s.detector.as_str(), alarm));
            }
        }
        weighted_vote(weights, vote_threshold, votes.into_iter())
    }

    /// Whether any modality (transaction or side) judged this record.
    fn judged_any(&self) -> bool {
        self.judged || self.side.iter().any(|s| s.judged)
    }
}

/// The canonical sort key for side detectors: `power`, `acoustic`,
/// `thermal`, then anything else alphabetically — the one ordering
/// every rendering surface (JSON keys, summary tables, weight fits)
/// shares.
fn canonical_rank(name: &str) -> (usize, &str) {
    (
        SIDE_DETECTOR_ORDER
            .iter()
            .position(|d| *d == name)
            .unwrap_or(SIDE_DETECTOR_ORDER.len()),
        name,
    )
}

/// Orders side observations canonically so mixed-suite stores render
/// deterministically.
fn sort_side(side: &mut [SideObservation]) {
    side.sort_by(|a, b| canonical_rank(&a.detector).cmp(&canonical_rank(&b.detector)));
}

/// One side detector's detection-rate curve within an attack group.
#[derive(Debug, Clone, PartialEq)]
pub struct SideCurve {
    /// Detector name.
    pub detector: String,
    /// Records this judge judged (the rate's denominator).
    pub judged: usize,
    /// Detection rate at each grid threshold.
    pub detection_rate: Vec<f64>,
}

/// Time-to-detection distribution for one attack, over the online
/// records whose fused monitor alarmed mid-print. Every JSON field it
/// emits is `ttd_`-prefixed, so online-only artifact additions stay
/// greppable (and strippable) line by line.
#[derive(Debug, Clone, PartialEq)]
pub struct TtdStats {
    /// Records carrying a TTD mark (fused online alarms).
    pub alarms: usize,
    /// Earliest alarming monitor slice across the group.
    pub min_step: u64,
    /// Latest alarming monitor slice across the group.
    pub max_step: u64,
    /// Mean alarming slice.
    pub mean_step: f64,
    /// Mean fraction of the print completed at the alarm.
    pub mean_print_fraction: f64,
    /// Mean fraction of the print's filament saved by halting there.
    pub mean_material_saved: f64,
}

impl TtdStats {
    /// Aggregates a group's TTD marks (`None` when nothing alarmed
    /// online).
    fn over<'a>(marks: impl Iterator<Item = &'a TimeToDetection>) -> Option<TtdStats> {
        let marks: Vec<&TimeToDetection> = marks.collect();
        if marks.is_empty() {
            return None;
        }
        let n = marks.len() as f64;
        Some(TtdStats {
            alarms: marks.len(),
            min_step: marks.iter().map(|t| t.alarm_step).min().expect("non-empty"),
            max_step: marks.iter().map(|t| t.alarm_step).max().expect("non-empty"),
            mean_step: marks.iter().map(|t| t.alarm_step as f64).sum::<f64>() / n,
            mean_print_fraction: marks.iter().map(|t| t.print_fraction).sum::<f64>() / n,
            mean_material_saved: marks.iter().map(|t| t.material_saved).sum::<f64>() / n,
        })
    }
}

/// One attack's detection-rate curves over the threshold grid: the
/// transaction judge always, plus one curve per side modality present
/// and the any-alarm fusion when any side evidence exists.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCurve {
    /// Attack spec string.
    pub attack: String,
    /// Scenario records contributing (judged or not).
    pub scenarios: usize,
    /// Records the transaction judge judged (that rate's denominator).
    pub judged: usize,
    /// Transaction-judge detection rate at each grid threshold, `0.0`
    /// when nothing was judged.
    pub detection_rate: Vec<f64>,
    /// Per-side-detector curves, canonical order, only for detectors
    /// that judged at least one record in this group.
    pub side: Vec<SideCurve>,
    /// Records judged by at least one modality (the fused rate's
    /// denominator — a side-only record is a real fused observation).
    pub fused_judged: usize,
    /// Any-alarm fused detection rate per threshold (over
    /// `fused_judged`); `None` when no side evidence exists. Fused
    /// curves are any-alarm by definition (see
    /// [`Observation::fused_detected_at`]), whatever fusion policy the
    /// live campaign ran with.
    pub fused_detection_rate: Option<Vec<f64>>,
    /// Time-to-detection distribution — present only when some record
    /// in the group carries an online alarm mark, so post-hoc corpora
    /// keep their pre-online artifact shape.
    pub ttd: Option<TtdStats>,
}

impl AttackCurve {
    /// A named side detector's curve, if present.
    pub fn side_curve(&self, detector: &str) -> Option<&SideCurve> {
        self.side.iter().find(|s| s.detector == detector)
    }

    /// Shorthand for the power judge's curve.
    pub fn power(&self) -> Option<&SideCurve> {
        self.side_curve("power")
    }
}

impl ToJson for AttackCurve {
    fn write_json(&self, out: &mut String, indent: usize) {
        let render = crate::json::number_array;
        let mut w = ObjectWriter::new(out, indent);
        w.string("attack", &self.attack);
        // Every TTD field is `ttd_`-prefixed and one per line, and the
        // block sits before the unconditional "scenarios" key (the
        // writer attaches the separating comma to the *previous* line),
        // so online additions can be stripped — or grepped — line by
        // line, leaving the post-hoc bytes exactly.
        if let Some(t) = &self.ttd {
            w.int("ttd_alarms", t.alarms as i128)
                .int("ttd_min_step", t.min_step as i128)
                .int("ttd_max_step", t.max_step as i128)
                .float("ttd_mean_step", t.mean_step)
                .float("ttd_mean_print_fraction", t.mean_print_fraction)
                .float("ttd_mean_material_saved", t.mean_material_saved);
        }
        w.int("scenarios", self.scenarios as i128)
            .int("judged", self.judged as i128)
            .raw("detection_rate", &render(&self.detection_rate));
        // Per-detector curves appear only for the modalities a corpus
        // actually carries, so transaction-only reports keep their
        // pre-suite shape (and txn+power reports their PR-4 shape).
        for side in &self.side {
            w.int(&format!("{}_judged", side.detector), side.judged as i128)
                .raw(
                    &format!("{}_detection_rate", side.detector),
                    &render(&side.detection_rate),
                );
        }
        if let Some(fused) = &self.fused_detection_rate {
            w.int("fused_judged", self.fused_judged as i128)
                .raw("fused_detection_rate", &render(fused));
        }
        w.finish();
    }
}

/// The calibrated weighted-fusion analytics: fitted weights plus the
/// weighted-vote ROC over the same grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedFusionReport {
    /// Per-modality weights (transaction judge first, then side
    /// detectors in canonical order), fitted on the records.
    pub weights: Vec<(String, f64)>,
    /// The vote threshold (fraction of judged weight that must alarm).
    pub vote_threshold: f64,
    /// Per-attack weighted detection-rate curves, sorted by attack
    /// name: `(attack, judged-by-any denominator, rates)`.
    pub curves: Vec<(String, usize, Vec<f64>)>,
}

impl WeightedFusionReport {
    /// The `"none"` attack's weighted curve — the weighted
    /// false-positive rate.
    pub fn false_positive_rate(&self) -> Option<&Vec<f64>> {
        self.curves
            .iter()
            .find(|(attack, _, _)| attack == "none")
            .map(|(_, _, rates)| rates)
    }

    /// The weighted curve for a specific attack.
    pub fn curve(&self, attack: &str) -> Option<&Vec<f64>> {
        self.curves
            .iter()
            .find(|(a, _, _)| a == attack)
            .map(|(_, _, rates)| rates)
    }

    /// The equivalent live fusion policy (for `--fuse` reuse).
    pub fn policy(&self) -> offramps::FusionPolicy {
        offramps::FusionPolicy::Weighted {
            weights: self.weights.clone(),
            threshold: self.vote_threshold,
        }
    }
}

impl ToJson for WeightedFusionReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let render = crate::json::number_array;
        let mut w = ObjectWriter::new(out, indent);
        w.float("vote_threshold", self.vote_threshold);
        let weights: Vec<String> = self
            .weights
            .iter()
            .map(|(d, v)| format!("{}: {}", crate::json::escape(d), crate::json::number(*v)))
            .collect();
        w.raw("weights", &format!("{{{}}}", weights.join(", ")));
        if let Some(fp) = self.false_positive_rate() {
            w.raw("false_positive_rate", &render(fp));
        }
        let mut attacks = String::from("[");
        for (i, (attack, judged, rates)) in self.curves.iter().enumerate() {
            if i > 0 {
                attacks.push(',');
            }
            attacks.push_str(&format!(
                "\n    {{\"attack\": {}, \"judged\": {}, \"detection_rate\": {}}}",
                crate::json::escape(attack),
                judged,
                render(rates)
            ));
        }
        attacks.push_str("\n  ]");
        w.raw("attacks", &attacks);
        w.finish();
    }
}

/// Per-attack ROC analytics over a set of scenario observations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsReport {
    /// The suspect-fraction grid every curve is evaluated on.
    pub thresholds: Vec<f64>,
    /// One curve per attack, sorted by attack name (deterministic
    /// regardless of input order).
    pub curves: Vec<AttackCurve>,
    /// Calibrated weighted fusion — present only when the observations
    /// carry two or more judged side modalities (the corpora where a
    /// learned combination has something to learn).
    pub weighted: Option<WeightedFusionReport>,
}

impl AnalyticsReport {
    /// Sweeps `thresholds` over `observations`, grouping by attack.
    pub fn over(observations: &[Observation], thresholds: &[f64]) -> AnalyticsReport {
        let mut groups: BTreeMap<&str, Vec<&Observation>> = BTreeMap::new();
        for obs in observations {
            groups.entry(&obs.attack).or_default().push(obs);
        }
        let rate = |hits: usize, denom: usize| {
            if denom == 0 {
                0.0
            } else {
                hits as f64 / denom as f64
            }
        };
        let side_names = side_detector_names(observations);
        let curves: Vec<AttackCurve> = groups
            .iter()
            .map(|(attack, group)| {
                let judged = group.iter().filter(|o| o.judged).count();
                let detection_rate = thresholds
                    .iter()
                    .map(|&t| rate(group.iter().filter(|o| o.detected_at(t)).count(), judged))
                    .collect();
                let mut side = Vec::new();
                for name in &side_names {
                    let side_judged = group
                        .iter()
                        .filter(|o| o.side_for(name).is_some_and(|s| s.judged))
                        .count();
                    if side_judged == 0 {
                        continue;
                    }
                    side.push(SideCurve {
                        detector: name.clone(),
                        judged: side_judged,
                        detection_rate: thresholds
                            .iter()
                            .map(|&t| {
                                rate(
                                    group
                                        .iter()
                                        .filter(|o| o.side_detected_at(name, t) == Some(true))
                                        .count(),
                                    side_judged,
                                )
                            })
                            .collect(),
                    });
                }
                // The fused rate's denominator: records judged by *any*
                // modality (a side-only record is a real fused
                // observation even though the txn judge never saw it).
                let fused_judged = group.iter().filter(|o| o.judged_any()).count();
                let fused_detection_rate = if side.is_empty() {
                    None
                } else {
                    Some(
                        thresholds
                            .iter()
                            .map(|&t| {
                                rate(
                                    group.iter().filter(|o| o.fused_detected_at(t)).count(),
                                    fused_judged,
                                )
                            })
                            .collect(),
                    )
                };
                AttackCurve {
                    attack: attack.to_string(),
                    scenarios: group.len(),
                    judged,
                    detection_rate,
                    side,
                    fused_judged,
                    fused_detection_rate,
                    ttd: TtdStats::over(group.iter().filter_map(|o| o.ttd.as_ref())),
                }
            })
            .collect();

        // A learned fusion needs at least two side modalities to weigh
        // against the transaction judge; txn-only and txn+power corpora
        // keep their exact pre-refactor artifact shape.
        let judged_side_modalities = side_names
            .iter()
            .filter(|name| {
                observations
                    .iter()
                    .any(|o| o.side_for(name).is_some_and(|s| s.judged))
            })
            .count();
        let weighted = (judged_side_modalities >= 2).then(|| {
            let weights = fit_weights(observations, &side_names);
            let vote_threshold = 0.5;
            let curves = groups
                .iter()
                .map(|(attack, group)| {
                    let judged_any = group.iter().filter(|o| o.judged_any()).count();
                    let rates = thresholds
                        .iter()
                        .map(|&t| {
                            rate(
                                group
                                    .iter()
                                    .filter(|o| o.weighted_detected_at(&weights, vote_threshold, t))
                                    .count(),
                                judged_any,
                            )
                        })
                        .collect();
                    (attack.to_string(), judged_any, rates)
                })
                .collect();
            WeightedFusionReport {
                weights,
                vote_threshold,
                curves,
            }
        });

        AnalyticsReport {
            thresholds: thresholds.to_vec(),
            curves,
            weighted,
        }
    }

    /// The analytics for a campaign's own results, on the default grid.
    pub fn from_results(results: &[ScenarioResult]) -> AnalyticsReport {
        let observations: Vec<Observation> = results.iter().map(Observation::from_result).collect();
        AnalyticsReport::over(&observations, &THRESHOLD_GRID)
    }

    /// The `"none"` attack's curve — the false-positive rate at each
    /// threshold, i.e. the ROC's x-axis for every other curve.
    pub fn false_positive_curve(&self) -> Option<&AttackCurve> {
        self.curves.iter().find(|c| c.attack == "none")
    }

    /// The curve for a specific attack.
    pub fn curve(&self, attack: &str) -> Option<&AttackCurve> {
        self.curves.iter().find(|c| c.attack == attack)
    }

    /// The side detectors appearing anywhere in the report, canonical
    /// order.
    fn side_detectors(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for curve in &self.curves {
            for side in &curve.side {
                if !names.contains(&side.detector.as_str()) {
                    names.push(&side.detector);
                }
            }
        }
        names.sort_by(|a, b| canonical_rank(a).cmp(&canonical_rank(b)));
        names
    }

    /// Rows for a summary table, false-positive (`"none"`) row first.
    fn summary_rows(&self) -> Vec<&AttackCurve> {
        self.false_positive_curve()
            .into_iter()
            .chain(self.curves.iter().filter(|c| c.attack != "none"))
            .collect()
    }

    /// Renders one threshold table over `rate` (rows without a rate are
    /// skipped).
    fn summary_table(
        &self,
        out: &mut String,
        judged: impl Fn(&AttackCurve) -> usize,
        rate: impl Fn(&AttackCurve) -> Option<Vec<f64>>,
    ) {
        out.push_str(&format!("{:<14} {:>5} {:>6}", "attack", "runs", "judged"));
        for t in &self.thresholds {
            out.push_str(&format!(" {:>6}", format!("{t}")));
        }
        out.push('\n');
        out.push_str(&"-".repeat(27 + 7 * self.thresholds.len()));
        out.push('\n');
        for c in self.summary_rows() {
            let Some(rates) = rate(c) else { continue };
            out.push_str(&format!(
                "{:<14} {:>5} {:>6}",
                c.attack,
                c.scenarios,
                judged(c)
            ));
            for r in &rates {
                out.push_str(&format!(" {:>6.3}", r));
            }
            out.push('\n');
        }
    }

    /// A deterministic human-readable table: one row per attack, one
    /// column per threshold, false-positive row first. Corpora with
    /// side-channel evidence get one more table per modality, then the
    /// any-alarm fusion, then (for ≥ 2 side modalities) the calibrated
    /// weighted fusion.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        self.summary_table(&mut out, |c| c.judged, |c| Some(c.detection_rate.clone()));
        let side_names = self.side_detectors();
        for name in &side_names {
            out.push_str(&match *name {
                "power" => "\npower side-channel (anomalous-window fraction over the same grid)\n"
                    .to_string(),
                "acoustic" => {
                    "\nacoustic side-channel (anomalous-window fraction over the same grid)\n"
                        .to_string()
                }
                "thermal" => {
                    "\nthermal camera (anomalous-window fraction over the same grid)\n".to_string()
                }
                other => format!("\n{other} (anomalous-window fraction over the same grid)\n"),
            });
            self.summary_table(
                &mut out,
                |c| c.side_curve(name).map_or(0, |s| s.judged),
                |c| c.side_curve(name).map(|s| s.detection_rate.clone()),
            );
        }
        if !side_names.is_empty() {
            // The historical two-modality wording is part of the pinned
            // txn+power artifact; wider suites say what they mean.
            out.push_str(if side_names == ["power"] {
                "\nfused (any-alarm over both modalities)\n"
            } else {
                "\nfused (any-alarm over all modalities)\n"
            });
            self.summary_table(
                &mut out,
                |c| c.fused_judged,
                |c| c.fused_detection_rate.clone(),
            );
        }
        if let Some(weighted) = &self.weighted {
            let weights: Vec<String> = weighted
                .weights
                .iter()
                .map(|(d, v)| format!("{d}={v}"))
                .collect();
            out.push_str(&format!(
                "\nweighted fusion (calibrated: {}; vote threshold {})\n",
                weights.join(", "),
                weighted.vote_threshold
            ));
            self.summary_table(
                &mut out,
                |c| c.fused_judged,
                |c| {
                    weighted
                        .curves
                        .iter()
                        .find(|(attack, _, _)| *attack == c.attack)
                        .map(|(_, _, rates)| rates.clone())
                },
            );
        }
        if self.curves.iter().any(|c| c.ttd.is_some()) {
            out.push_str(
                "\ntime-to-detection (fused online alarms; print fraction done at alarm)\n",
            );
            out.push_str(&format!(
                "{:<14} {:>5} {:>6} {:>9} {:>9} {:>10} {:>10} {:>10}\n",
                "attack",
                "runs",
                "alarms",
                "min_step",
                "max_step",
                "mean_step",
                "mean_done",
                "mean_saved"
            ));
            out.push_str(&"-".repeat(80));
            out.push('\n');
            for c in self.summary_rows() {
                let Some(t) = &c.ttd else { continue };
                out.push_str(&format!(
                    "{:<14} {:>5} {:>6} {:>9} {:>9} {:>10.1} {:>10.3} {:>10.3}\n",
                    c.attack,
                    c.scenarios,
                    t.alarms,
                    t.min_step,
                    t.max_step,
                    t.mean_step,
                    t.mean_print_fraction,
                    t.mean_material_saved
                ));
            }
        }
        out
    }
}

/// Every side detector named by any observation, canonical order.
fn side_detector_names(observations: &[Observation]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for obs in observations {
        for s in &obs.side {
            if !names.contains(&s.detector) {
                names.push(s.detector.clone());
            }
        }
    }
    names.sort_by(|a, b| canonical_rank(a).cmp(&canonical_rank(b)));
    names
}

/// Fits per-modality fusion weights on stored records: each modality's
/// Youden-style score — detection rate over attack records minus
/// false-positive rate over clean reprints, both at the modality's live
/// base threshold — clamped at zero and rounded to 3 decimals (so
/// policy strings stay short and runs stay reproducible). When every
/// modality scores zero (e.g. an all-clean corpus), weights fall back
/// to equal.
pub fn fit_weights(observations: &[Observation], side_names: &[String]) -> Vec<(String, f64)> {
    let mut modalities: Vec<(&str, f64)> =
        vec![(offramps::TransactionDetector::NAME, TXN_FIT_BASE)];
    for name in side_names {
        modalities.push((name.as_str(), side_fit_base(name)));
    }
    let mut weights: Vec<(String, f64)> = Vec::new();
    for (name, base) in modalities {
        let alarm = |o: &Observation| -> Option<bool> {
            if name == offramps::TransactionDetector::NAME {
                o.judged.then(|| o.detected_at(base))
            } else {
                o.side_detected_at(name, base)
            }
        };
        let rate_over = |attack_records: bool| -> f64 {
            let mut judged = 0usize;
            let mut hits = 0usize;
            for o in observations {
                if (o.attack == "none") == attack_records {
                    continue;
                }
                if let Some(alarmed) = alarm(o) {
                    judged += 1;
                    if alarmed {
                        hits += 1;
                    }
                }
            }
            if judged == 0 {
                0.0
            } else {
                hits as f64 / judged as f64
            }
        };
        let j = (rate_over(true) - rate_over(false)).max(0.0);
        weights.push((name.to_string(), (j * 1000.0).round() / 1000.0));
    }
    if weights.iter().all(|(_, w)| *w == 0.0) {
        for (_, w) in &mut weights {
            *w = 1.0;
        }
    }
    weights
}

impl ToJson for AnalyticsReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let grid: Vec<String> = self
            .thresholds
            .iter()
            .map(|t| crate::json::number(*t))
            .collect();
        let render = crate::json::number_array;
        let mut w = ObjectWriter::new(out, indent);
        w.raw("thresholds", &format!("[{}]", grid.join(", ")));
        if let Some(fp) = self.false_positive_curve() {
            w.raw("false_positive_rate", &render(&fp.detection_rate));
            // The per-detector false-positive curves ride along when
            // the clean reprints carry that modality's evidence.
            for side in &fp.side {
                w.raw(
                    &format!("{}_false_positive_rate", side.detector),
                    &render(&side.detection_rate),
                );
            }
            if let Some(fused) = &fp.fused_detection_rate {
                w.raw("fused_false_positive_rate", &render(fused));
            }
        }
        w.value("attacks", &self.curves);
        if let Some(weighted) = &self.weighted {
            w.value("weighted_fusion", weighted);
        }
        w.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(attack: &str, mismatched: usize, compared: usize, totals: Option<bool>) -> Observation {
        Observation {
            attack: attack.into(),
            workload: "w".into(),
            mismatched_transactions: mismatched,
            transactions_compared: compared,
            final_totals_match: totals,
            judged: true,
            side: Vec::new(),
            ttd: None,
        }
    }

    fn with_side(
        mut obs: Observation,
        detector: &str,
        anomalous: usize,
        compared: usize,
    ) -> Observation {
        obs.side.push(SideObservation {
            detector: detector.into(),
            anomalous_windows: anomalous,
            windows_compared: compared,
            judged: true,
        });
        sort_side(&mut obs.side);
        obs
    }

    fn power(obs: Observation, anomalous: usize, compared: usize) -> Observation {
        with_side(obs, "power", anomalous, compared)
    }

    #[test]
    fn grid_has_at_least_eight_thresholds_and_the_papers_default() {
        assert!(THRESHOLD_GRID.len() >= 8);
        assert!(THRESHOLD_GRID.contains(&0.01));
        assert!(THRESHOLD_GRID.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn rejudging_is_monotone_in_threshold() {
        let o = obs("t", 30, 1_000, Some(true));
        let verdicts: Vec<bool> = THRESHOLD_GRID.iter().map(|&t| o.detected_at(t)).collect();
        // Once a higher threshold clears it, it stays cleared.
        for pair in verdicts.windows(2) {
            assert!(pair[0] || !pair[1], "{verdicts:?}");
        }
        assert!(verdicts[0], "3% mismatches over threshold 0");
        assert!(!verdicts[THRESHOLD_GRID.len() - 1], "3% under 50%");
    }

    #[test]
    fn floor_applies_to_the_grid_and_final_check_floors_the_curve() {
        // 1 wobble in 50 transactions: under the 2.8-transaction floor
        // even at base threshold 0.
        assert!(!obs("t", 1, 50, Some(true)).detected_at(0.0));
        // A failed totals check is caught at every threshold.
        let sneaky = obs("t", 0, 50, Some(false));
        assert!(THRESHOLD_GRID.iter().all(|&t| sneaky.detected_at(t)));
        // Unjudged scenarios never count as detected.
        let unjudged = Observation {
            judged: false,
            ..obs("t", 50, 50, Some(false))
        };
        assert!(THRESHOLD_GRID.iter().all(|&t| !unjudged.detected_at(t)));
    }

    #[test]
    fn report_groups_sorts_and_rates() {
        let observations = vec![
            obs("t2", 40, 100, Some(true)),  // 40% fraction
            obs("t2", 0, 100, Some(true)),   // clean
            obs("none", 0, 100, Some(true)), // clean
            obs("flaw3d", 90, 100, Some(false)),
        ];
        let report = AnalyticsReport::over(&observations, &THRESHOLD_GRID);
        let attacks: Vec<&str> = report.curves.iter().map(|c| c.attack.as_str()).collect();
        assert_eq!(attacks, vec!["flaw3d", "none", "t2"], "sorted by name");
        let t2 = report.curve("t2").unwrap();
        assert_eq!(t2.scenarios, 2);
        assert_eq!(t2.detection_rate[3], 0.5, "one of two t2 runs over 1%");
        assert_eq!(
            report.false_positive_curve().unwrap().detection_rate[3],
            0.0
        );
        let flaw = report.curve("flaw3d").unwrap();
        assert!(
            flaw.detection_rate.iter().all(|&r| r == 1.0),
            "totals check floors the curve"
        );

        let json = crate::json::to_string_pretty(&report);
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(
            v.get("thresholds").unwrap().as_array().unwrap().len(),
            THRESHOLD_GRID.len()
        );
        assert_eq!(v.get("attacks").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("false_positive_rate").is_some());

        let table = report.summary();
        assert!(table.starts_with("attack"), "{table}");
        assert!(table.contains("flaw3d"), "{table}");
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[2].starts_with("none"), "FPR row leads: {table}");
        assert!(
            !table.contains("power side-channel"),
            "no power sections without power evidence: {table}"
        );
        assert!(!json.contains("power_detection_rate"), "{json}");
        assert!(!json.contains("weighted_fusion"), "{json}");
    }

    #[test]
    fn power_evidence_adds_per_detector_and_fused_curves() {
        let observations = vec![
            // Transaction judge blind (co-located Trojan), power judge
            // sees 30% anomalous windows.
            power(obs("t2", 0, 100, Some(true)), 30, 100),
            // Both modalities clean.
            power(obs("none", 0, 100, Some(true)), 0, 100),
            // A record written before power evidence existed.
            obs("t2", 0, 100, Some(true)),
        ];
        let report = AnalyticsReport::over(&observations, &THRESHOLD_GRID);
        let t2 = report.curve("t2").unwrap();
        assert_eq!(t2.scenarios, 2);
        assert_eq!(t2.judged, 2);
        let t2_power = t2.power().unwrap();
        assert_eq!(t2_power.judged, 1, "pre-power record skipped for power");
        let idx_01 = THRESHOLD_GRID.iter().position(|&t| t == 0.01).unwrap();
        assert_eq!(t2.detection_rate[idx_01], 0.0, "txn judge is blind");
        assert_eq!(
            t2_power.detection_rate[idx_01], 1.0,
            "power judge catches it"
        );
        let fused = t2.fused_detection_rate.as_ref().unwrap();
        assert_eq!(
            fused[idx_01], 0.5,
            "fused over txn-judged denominator: 1 of 2"
        );
        // Monotone in threshold, like the transaction curves.
        for pair in t2_power.detection_rate.windows(2) {
            assert!(pair[0] >= pair[1], "{:?}", t2_power.detection_rate);
        }

        let json = crate::json::to_string_pretty(&report);
        assert!(json.contains("\"power_detection_rate\""), "{json}");
        assert!(json.contains("\"fused_detection_rate\""), "{json}");
        assert!(json.contains("\"power_false_positive_rate\""), "{json}");
        assert!(
            !json.contains("weighted_fusion"),
            "one side modality: no learned fusion block: {json}"
        );
        let table = report.summary();
        assert!(table.contains("power side-channel"), "{table}");
        assert!(
            table.contains("fused (any-alarm over both modalities)"),
            "{table}"
        );
    }

    #[test]
    fn power_rejudge_rule_matches_live_judge() {
        // fraction strictly over the threshold, never at it.
        let o = power(obs("t", 0, 100, Some(true)), 15, 100);
        assert_eq!(o.power_detected_at(0.15), Some(false), "0.15 !> 0.15");
        assert_eq!(o.power_detected_at(0.1), Some(true));
        // Unjudged power evidence re-judges as None, fuses as txn-only.
        let unjudged = Observation {
            side: vec![SideObservation {
                detector: "power".into(),
                anomalous_windows: 50,
                windows_compared: 100,
                judged: false,
            }],
            ..obs("t", 90, 100, Some(false))
        };
        assert_eq!(unjudged.power_detected_at(0.0), None);
        assert!(unjudged.fused_detected_at(0.01), "txn still alarms");
    }

    #[test]
    fn multi_modality_corpora_get_calibrated_weighted_fusion() {
        // Acoustic catches t2 (txn/power blind), thermal catches tx2
        // (everything else blind), nothing false-positives.
        let quad = |attack: &str, txn: usize, p: usize, a: usize, th: usize| {
            let o = obs(attack, txn, 100, Some(true));
            let o = power(o, p, 100);
            let o = with_side(o, "acoustic", a, 100);
            with_side(o, "thermal", th, 100)
        };
        let observations = vec![
            quad("none", 0, 0, 0, 0),
            quad("t2", 0, 0, 40, 0),
            quad("tx2", 0, 0, 0, 60),
            quad("flaw3d", 50, 0, 10, 0),
        ];
        let report = AnalyticsReport::over(&observations, &THRESHOLD_GRID);
        let weighted = report.weighted.as_ref().expect("two+ side modalities");
        let names: Vec<&str> = weighted.weights.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(names, vec!["txn", "power", "acoustic", "thermal"]);
        let weight = |d: &str| {
            weighted
                .weights
                .iter()
                .find(|(n, _)| n == d)
                .map(|(_, w)| *w)
                .unwrap()
        };
        assert!(weight("acoustic") > 0.0, "{:?}", weighted.weights);
        assert!(weight("thermal") > 0.0, "{:?}", weighted.weights);
        assert_eq!(
            weight("power"),
            0.0,
            "power never fired: {:?}",
            weighted.weights
        );

        // The weighted ROC exists for every attack, clean stays clean.
        let idx_01 = THRESHOLD_GRID.iter().position(|&t| t == 0.01).unwrap();
        assert_eq!(weighted.false_positive_rate().unwrap()[idx_01], 0.0);
        assert!(weighted.curve("flaw3d").is_some());

        // Per-detector curves for all three side modalities.
        let t2 = report.curve("t2").unwrap();
        assert!(t2.side_curve("acoustic").is_some());
        assert!(t2.side_curve("thermal").is_some());

        let json = crate::json::to_string_pretty(&report);
        assert!(json.contains("\"acoustic_detection_rate\""), "{json}");
        assert!(json.contains("\"thermal_false_positive_rate\""), "{json}");
        assert!(json.contains("\"weighted_fusion\""), "{json}");
        crate::json::parse(&json).expect("report JSON parses");
        let table = report.summary();
        assert!(table.contains("acoustic side-channel"), "{table}");
        assert!(table.contains("thermal camera"), "{table}");
        assert!(
            table.contains("fused (any-alarm over all modalities)"),
            "{table}"
        );
        assert!(table.contains("weighted fusion (calibrated:"), "{table}");
    }

    #[test]
    fn online_records_surface_ttd_distributions() {
        let mark = |step: u64, done: f64, saved: f64| {
            Some(TimeToDetection {
                alarm_step: step,
                print_fraction: done,
                material_saved: saved,
            })
        };
        let observations = vec![
            obs("none", 0, 100, Some(true)),
            Observation {
                ttd: mark(10, 0.2, 0.85),
                ..obs("t2", 40, 100, Some(true))
            },
            Observation {
                ttd: mark(30, 0.6, 0.45),
                ..obs("t2", 20, 100, Some(true))
            },
            // An online attacked run the monitor never caught mid-print.
            obs("t2", 5, 100, Some(true)),
        ];
        let report = AnalyticsReport::over(&observations, &THRESHOLD_GRID);
        let t2 = report.curve("t2").unwrap().ttd.as_ref().unwrap();
        assert_eq!(t2.alarms, 2, "uncaught runs don't dilute the stats");
        assert_eq!((t2.min_step, t2.max_step), (10, 30));
        assert_eq!(t2.mean_step, 20.0);
        assert_eq!(t2.mean_print_fraction, 0.4);
        assert_eq!(t2.mean_material_saved, 0.65);
        assert!(report.curve("none").unwrap().ttd.is_none());

        let json = crate::json::to_string_pretty(&report);
        assert!(json.contains("\"ttd_alarms\": 2"), "{json}");
        assert!(json.contains("\"ttd_mean_print_fraction\": 0.4"), "{json}");
        // Every online-only JSON addition carries the ttd_ marker on
        // its own line — the strippability the equivalence harness and
        // CI rely on.
        let stripped: String = json
            .lines()
            .filter(|l| !l.contains("ttd_"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!stripped.contains("ttd"), "{stripped}");

        let table = report.summary();
        assert!(table.contains("time-to-detection"), "{table}");
        assert!(table.contains("mean_saved"), "{table}");

        // A TTD-free corpus keeps the pre-online shape: no section, no
        // fields.
        let post_hoc = AnalyticsReport::over(&[obs("t2", 40, 100, Some(true))], &THRESHOLD_GRID);
        assert!(!crate::json::to_string_pretty(&post_hoc).contains("ttd"));
        assert!(!post_hoc.summary().contains("time-to-detection"));
    }

    #[test]
    fn fit_weights_falls_back_to_equal_on_informationless_corpora() {
        let observations = vec![
            power(obs("none", 0, 100, Some(true)), 0, 100),
            power(obs("t9", 0, 100, Some(true)), 0, 100),
        ];
        let weights = fit_weights(&observations, &["power".to_string()]);
        assert!(weights.iter().all(|(_, w)| *w == 1.0), "{weights:?}");
    }

    #[test]
    fn weighted_rejudge_uses_the_live_vote_rule() {
        let o = with_side(
            power(obs("t", 0, 100, Some(true)), 40, 100),
            "acoustic",
            0,
            100,
        );
        let equal = vec![
            ("txn".to_string(), 1.0),
            ("power".to_string(), 1.0),
            ("acoustic".to_string(), 1.0),
        ];
        // One of three modalities alarms: majority vote says clean,
        // any-style threshold flags it.
        assert!(!o.weighted_detected_at(&equal, 0.5, 0.01));
        assert!(o.weighted_detected_at(&equal, 0.0, 0.01));
        // Weighting the alarming modality up flips the majority.
        let tuned = vec![
            ("txn".to_string(), 0.1),
            ("power".to_string(), 2.0),
            ("acoustic".to_string(), 0.1),
        ];
        assert!(o.weighted_detected_at(&tuned, 0.5, 0.01));
    }
}

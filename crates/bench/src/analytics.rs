//! Corpus-wide detection analytics: per-attack ROC over a
//! suspect-fraction threshold grid.
//!
//! The paper judges every print at a single threshold (1 % suspect
//! fraction). But each scenario record already carries the detector's
//! raw material — `mismatched_transactions` over
//! `transactions_compared`, plus the 0 %-margin final-totals bit — so
//! verdicts can be **re-judged offline at any threshold** without
//! re-running a single simulation. Sweeping [`THRESHOLD_GRID`] over a
//! whole campaign (or a whole scenario store) yields, per attack, a
//! detection-rate curve; the `"none"` attack's curve is the
//! false-positive rate at the same thresholds, and the two together are
//! the corpus-wide ROC.
//!
//! Re-judging goes through the same
//! [`detect::floored_suspect_fraction`] helper as the live campaign
//! judge, so the curve's value at the default 1 % base threshold
//! reproduces each record's stored verdict exactly (an invariant the
//! tests pin).

use std::collections::BTreeMap;

use offramps::detect;

use crate::campaign::ScenarioResult;
use crate::json::{ObjectWriter, ToJson, Value};

/// The default suspect-fraction threshold grid: a log-ish sweep from
/// "flag anything" to "flag only gross tampering", with the paper's
/// 1 % in the middle. Ten points ≥ the eight the analytics contract
/// promises.
pub const THRESHOLD_GRID: [f64; 10] = [0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5];

/// One scenario's detection inputs, abstracted away from where the
/// record came from (a live [`ScenarioResult`] or a store payload).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Attack spec string (`"none"` for clean reprints).
    pub attack: String,
    /// Workload label the scenario printed.
    pub workload: String,
    /// Transactions with at least one out-of-margin axis.
    pub mismatched_transactions: usize,
    /// Transactions the detector compared.
    pub transactions_compared: usize,
    /// The end-of-print 0 %-margin totals check.
    pub final_totals_match: Option<bool>,
    /// Whether the scenario was judged at all (bench errors are not).
    pub judged: bool,
}

impl Observation {
    /// Extracts the detection inputs from a live campaign result.
    pub fn from_result(r: &ScenarioResult) -> Observation {
        Observation {
            attack: r.scenario.trojan.clone(),
            workload: r.scenario.workload.clone(),
            mismatched_transactions: r.mismatched_transactions,
            transactions_compared: r.transactions_compared,
            final_totals_match: r.final_totals_match,
            judged: r.suspect_fraction.is_some(),
        }
    }

    /// Extracts the detection inputs from a decoded store payload (see
    /// [`crate::cache::encode_result`]).
    ///
    /// # Errors
    ///
    /// Reports the first missing or mistyped field.
    pub fn from_payload(v: &Value) -> Result<Observation, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("payload missing string {key:?}"))
        };
        let count_field = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("payload missing count {key:?}"))
        };
        Ok(Observation {
            attack: str_field("trojan")?,
            workload: str_field("workload")?,
            mismatched_transactions: count_field("mismatched_transactions")?,
            transactions_compared: count_field("transactions_compared")?,
            final_totals_match: match v.get("final_totals_match") {
                None | Some(Value::Null) => None,
                Some(Value::Bool(b)) => Some(*b),
                Some(_) => return Err("final_totals_match is not bool/null".into()),
            },
            judged: v.get("suspect_fraction").is_some(),
        })
    }

    /// Re-judges this scenario at `base` suspect fraction: the same
    /// verdict rule as the live campaign judge — mismatch fraction over
    /// the floored threshold, or a failed 0 %-margin totals check.
    /// Unjudged scenarios are never detected.
    pub fn detected_at(&self, base: f64) -> bool {
        if !self.judged {
            return false;
        }
        let threshold = detect::floored_suspect_fraction(base, self.transactions_compared);
        let fraction = if self.transactions_compared == 0 {
            0.0
        } else {
            self.mismatched_transactions as f64 / self.transactions_compared as f64
        };
        fraction > threshold || self.final_totals_match == Some(false)
    }
}

/// One attack's detection-rate curve over the threshold grid.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCurve {
    /// Attack spec string.
    pub attack: String,
    /// Scenario records contributing (judged or not).
    pub scenarios: usize,
    /// Records that were actually judged (the rate's denominator).
    pub judged: usize,
    /// Detection rate at each grid threshold, `0.0` when nothing was
    /// judged.
    pub detection_rate: Vec<f64>,
}

impl ToJson for AttackCurve {
    fn write_json(&self, out: &mut String, indent: usize) {
        let rates: Vec<String> = self
            .detection_rate
            .iter()
            .map(|r| crate::json::number(*r))
            .collect();
        let mut w = ObjectWriter::new(out, indent);
        w.string("attack", &self.attack)
            .int("scenarios", self.scenarios as i128)
            .int("judged", self.judged as i128)
            .raw("detection_rate", &format!("[{}]", rates.join(", ")));
        w.finish();
    }
}

/// Per-attack ROC analytics over a set of scenario observations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsReport {
    /// The suspect-fraction grid every curve is evaluated on.
    pub thresholds: Vec<f64>,
    /// One curve per attack, sorted by attack name (deterministic
    /// regardless of input order).
    pub curves: Vec<AttackCurve>,
}

impl AnalyticsReport {
    /// Sweeps `thresholds` over `observations`, grouping by attack.
    pub fn over(observations: &[Observation], thresholds: &[f64]) -> AnalyticsReport {
        let mut groups: BTreeMap<&str, Vec<&Observation>> = BTreeMap::new();
        for obs in observations {
            groups.entry(&obs.attack).or_default().push(obs);
        }
        let curves = groups
            .into_iter()
            .map(|(attack, group)| {
                let judged = group.iter().filter(|o| o.judged).count();
                let detection_rate = thresholds
                    .iter()
                    .map(|&t| {
                        if judged == 0 {
                            return 0.0;
                        }
                        let hits = group.iter().filter(|o| o.detected_at(t)).count();
                        hits as f64 / judged as f64
                    })
                    .collect();
                AttackCurve {
                    attack: attack.to_string(),
                    scenarios: group.len(),
                    judged,
                    detection_rate,
                }
            })
            .collect();
        AnalyticsReport {
            thresholds: thresholds.to_vec(),
            curves,
        }
    }

    /// The analytics for a campaign's own results, on the default grid.
    pub fn from_results(results: &[ScenarioResult]) -> AnalyticsReport {
        let observations: Vec<Observation> = results.iter().map(Observation::from_result).collect();
        AnalyticsReport::over(&observations, &THRESHOLD_GRID)
    }

    /// The `"none"` attack's curve — the false-positive rate at each
    /// threshold, i.e. the ROC's x-axis for every other curve.
    pub fn false_positive_curve(&self) -> Option<&AttackCurve> {
        self.curves.iter().find(|c| c.attack == "none")
    }

    /// The curve for a specific attack.
    pub fn curve(&self, attack: &str) -> Option<&AttackCurve> {
        self.curves.iter().find(|c| c.attack == attack)
    }

    /// A deterministic human-readable table: one row per attack, one
    /// column per threshold, false-positive row first.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<14} {:>5} {:>6}", "attack", "runs", "judged"));
        for t in &self.thresholds {
            out.push_str(&format!(" {:>6}", format!("{t}")));
        }
        out.push('\n');
        out.push_str(&"-".repeat(27 + 7 * self.thresholds.len()));
        out.push('\n');
        let rows: Vec<&AttackCurve> = self
            .false_positive_curve()
            .into_iter()
            .chain(self.curves.iter().filter(|c| c.attack != "none"))
            .collect();
        for c in rows {
            out.push_str(&format!(
                "{:<14} {:>5} {:>6}",
                c.attack, c.scenarios, c.judged
            ));
            for r in &c.detection_rate {
                out.push_str(&format!(" {:>6.3}", r));
            }
            out.push('\n');
        }
        out
    }
}

impl ToJson for AnalyticsReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let grid: Vec<String> = self
            .thresholds
            .iter()
            .map(|t| crate::json::number(*t))
            .collect();
        let mut w = ObjectWriter::new(out, indent);
        w.raw("thresholds", &format!("[{}]", grid.join(", ")));
        if let Some(fp) = self.false_positive_curve() {
            let rates: Vec<String> = fp
                .detection_rate
                .iter()
                .map(|r| crate::json::number(*r))
                .collect();
            w.raw("false_positive_rate", &format!("[{}]", rates.join(", ")));
        }
        w.value("attacks", &self.curves);
        w.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(attack: &str, mismatched: usize, compared: usize, totals: Option<bool>) -> Observation {
        Observation {
            attack: attack.into(),
            workload: "w".into(),
            mismatched_transactions: mismatched,
            transactions_compared: compared,
            final_totals_match: totals,
            judged: true,
        }
    }

    #[test]
    fn grid_has_at_least_eight_thresholds_and_the_papers_default() {
        assert!(THRESHOLD_GRID.len() >= 8);
        assert!(THRESHOLD_GRID.contains(&0.01));
        assert!(THRESHOLD_GRID.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn rejudging_is_monotone_in_threshold() {
        let o = obs("t", 30, 1_000, Some(true));
        let verdicts: Vec<bool> = THRESHOLD_GRID.iter().map(|&t| o.detected_at(t)).collect();
        // Once a higher threshold clears it, it stays cleared.
        for pair in verdicts.windows(2) {
            assert!(pair[0] || !pair[1], "{verdicts:?}");
        }
        assert!(verdicts[0], "3% mismatches over threshold 0");
        assert!(!verdicts[THRESHOLD_GRID.len() - 1], "3% under 50%");
    }

    #[test]
    fn floor_applies_to_the_grid_and_final_check_floors_the_curve() {
        // 1 wobble in 50 transactions: under the 2.8-transaction floor
        // even at base threshold 0.
        assert!(!obs("t", 1, 50, Some(true)).detected_at(0.0));
        // A failed totals check is caught at every threshold.
        let sneaky = obs("t", 0, 50, Some(false));
        assert!(THRESHOLD_GRID.iter().all(|&t| sneaky.detected_at(t)));
        // Unjudged scenarios never count as detected.
        let unjudged = Observation {
            judged: false,
            ..obs("t", 50, 50, Some(false))
        };
        assert!(THRESHOLD_GRID.iter().all(|&t| !unjudged.detected_at(t)));
    }

    #[test]
    fn report_groups_sorts_and_rates() {
        let observations = vec![
            obs("t2", 40, 100, Some(true)),  // 40% fraction
            obs("t2", 0, 100, Some(true)),   // clean
            obs("none", 0, 100, Some(true)), // clean
            obs("flaw3d", 90, 100, Some(false)),
        ];
        let report = AnalyticsReport::over(&observations, &THRESHOLD_GRID);
        let attacks: Vec<&str> = report.curves.iter().map(|c| c.attack.as_str()).collect();
        assert_eq!(attacks, vec!["flaw3d", "none", "t2"], "sorted by name");
        let t2 = report.curve("t2").unwrap();
        assert_eq!(t2.scenarios, 2);
        assert_eq!(t2.detection_rate[3], 0.5, "one of two t2 runs over 1%");
        assert_eq!(
            report.false_positive_curve().unwrap().detection_rate[3],
            0.0
        );
        let flaw = report.curve("flaw3d").unwrap();
        assert!(
            flaw.detection_rate.iter().all(|&r| r == 1.0),
            "totals check floors the curve"
        );

        let json = crate::json::to_string_pretty(&report);
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(
            v.get("thresholds").unwrap().as_array().unwrap().len(),
            THRESHOLD_GRID.len()
        );
        assert_eq!(v.get("attacks").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("false_positive_rate").is_some());

        let table = report.summary();
        assert!(table.starts_with("attack"), "{table}");
        assert!(table.contains("flaw3d"), "{table}");
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[2].starts_with("none"), "FPR row leads: {table}");
    }
}

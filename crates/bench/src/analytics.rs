//! Corpus-wide detection analytics: per-attack ROC over a
//! suspect-fraction threshold grid.
//!
//! The paper judges every print at a single threshold (1 % suspect
//! fraction). But each scenario record already carries the detector's
//! raw material — `mismatched_transactions` over
//! `transactions_compared`, plus the 0 %-margin final-totals bit — so
//! verdicts can be **re-judged offline at any threshold** without
//! re-running a single simulation. Sweeping [`THRESHOLD_GRID`] over a
//! whole campaign (or a whole scenario store) yields, per attack, a
//! detection-rate curve; the `"none"` attack's curve is the
//! false-positive rate at the same thresholds, and the two together are
//! the corpus-wide ROC.
//!
//! Re-judging goes through the same
//! [`detect::floored_suspect_fraction`] helper as the live campaign
//! judge, so the curve's value at the default 1 % base threshold
//! reproduces each record's stored verdict exactly (an invariant the
//! tests pin).

use std::collections::BTreeMap;

use offramps::detect;

use crate::campaign::ScenarioResult;
use crate::json::{ObjectWriter, ToJson, Value};

/// The default suspect-fraction threshold grid: a log-ish sweep from
/// "flag anything" to "flag only gross tampering", with the paper's
/// 1 % in the middle. Ten points ≥ the eight the analytics contract
/// promises.
pub const THRESHOLD_GRID: [f64; 10] = [0.0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5];

/// The power side-channel judge's sufficient statistics for one
/// scenario (absent for records written before power evidence existed
/// and for transaction-only campaigns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerObservation {
    /// Smoothed windows whose deviation exceeded the sigma threshold.
    pub anomalous_windows: usize,
    /// Windows compared.
    pub windows_compared: usize,
    /// Whether the power judge actually judged (its stream may have
    /// been missing for an individual scenario).
    pub judged: bool,
}

/// One scenario's detection inputs, abstracted away from where the
/// record came from (a live [`ScenarioResult`] or a store payload).
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Attack spec string (`"none"` for clean reprints).
    pub attack: String,
    /// Workload label the scenario printed.
    pub workload: String,
    /// Transactions with at least one out-of-margin axis.
    pub mismatched_transactions: usize,
    /// Transactions the detector compared.
    pub transactions_compared: usize,
    /// The end-of-print 0 %-margin totals check.
    pub final_totals_match: Option<bool>,
    /// Whether the transaction judge judged at all (bench errors are
    /// not).
    pub judged: bool,
    /// The power judge's statistics, when the record carries them.
    pub power: Option<PowerObservation>,
}

impl Observation {
    /// Extracts the detection inputs from a live campaign result.
    pub fn from_result(r: &ScenarioResult) -> Observation {
        let power = r.verdict.power().map(|e| PowerObservation {
            anomalous_windows: e.flagged,
            windows_compared: e.compared,
            judged: e.judged(),
        });
        Observation {
            attack: r.scenario.trojan.clone(),
            workload: r.scenario.workload.clone(),
            mismatched_transactions: r.mismatched_transactions(),
            transactions_compared: r.transactions_compared(),
            final_totals_match: r.final_totals_match(),
            judged: r.suspect_fraction().is_some(),
            power,
        }
    }

    /// Extracts the detection inputs from a decoded store payload (see
    /// [`crate::cache::encode_result`]). Records without an `evidence`
    /// array — every record written before power evidence existed —
    /// parse fine and simply carry no power statistics; the analytics
    /// CLI counts and reports them instead of erroring.
    ///
    /// # Errors
    ///
    /// Reports the first missing or mistyped field.
    pub fn from_payload(v: &Value) -> Result<Observation, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("payload missing string {key:?}"))
        };
        let count_field = |key: &str| -> Result<usize, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| format!("payload missing count {key:?}"))
        };
        let power = match v.get("evidence").and_then(Value::as_array) {
            None => None,
            Some(list) => list
                .iter()
                .find(|e| e.get("detector").and_then(Value::as_str) == Some("power"))
                .map(|e| -> Result<PowerObservation, String> {
                    let count = |key: &str| {
                        e.get(key)
                            .and_then(Value::as_u64)
                            .map(|n| n as usize)
                            .ok_or_else(|| format!("power evidence missing count {key:?}"))
                    };
                    Ok(PowerObservation {
                        anomalous_windows: count("flagged")?,
                        windows_compared: count("compared")?,
                        judged: matches!(e.get("alarmed"), Some(Value::Bool(_))),
                    })
                })
                .transpose()?,
        };
        Ok(Observation {
            attack: str_field("trojan")?,
            workload: str_field("workload")?,
            mismatched_transactions: count_field("mismatched_transactions")?,
            transactions_compared: count_field("transactions_compared")?,
            final_totals_match: match v.get("final_totals_match") {
                None | Some(Value::Null) => None,
                Some(Value::Bool(b)) => Some(*b),
                Some(_) => return Err("final_totals_match is not bool/null".into()),
            },
            judged: v.get("suspect_fraction").is_some(),
            power,
        })
    }

    /// Re-judges this scenario's *transaction* evidence at `base`
    /// suspect fraction: the same verdict rule as the live campaign
    /// judge — mismatch fraction over the floored threshold, or a
    /// failed 0 %-margin totals check. Unjudged scenarios are never
    /// detected.
    pub fn detected_at(&self, base: f64) -> bool {
        if !self.judged {
            return false;
        }
        let threshold = detect::floored_suspect_fraction(base, self.transactions_compared);
        let fraction = if self.transactions_compared == 0 {
            0.0
        } else {
            self.mismatched_transactions as f64 / self.transactions_compared as f64
        };
        fraction > threshold || self.final_totals_match == Some(false)
    }

    /// Re-judges this scenario's *power* evidence at `base` suspect
    /// fraction, through the same
    /// [`offramps_sidechannel::suspect_anomaly_fraction`] rule as the
    /// live power judge (so the two can never drift). `None` when the
    /// record carries no judged power evidence.
    pub fn power_detected_at(&self, base: f64) -> Option<bool> {
        let p = self.power.filter(|p| p.judged)?;
        Some(offramps_sidechannel::suspect_anomaly_fraction(
            p.anomalous_windows,
            p.windows_compared,
            base,
        ))
    }

    /// The **any-alarm** fusion of both re-judged modalities at `base`.
    /// Analytics fused curves are any-alarm *by definition* — an
    /// exploration of the most sensitive combined detector — regardless
    /// of the fusion policy the live campaign stored its `detected`
    /// verdicts under (an `--fuse all` store's fused curve can sit
    /// above its stored detection rate).
    pub fn fused_detected_at(&self, base: f64) -> bool {
        self.detected_at(base) || self.power_detected_at(base).unwrap_or(false)
    }
}

/// One attack's detection-rate curves over the threshold grid: the
/// transaction judge always, plus the power judge and the any-alarm
/// fusion when the observations carry power evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCurve {
    /// Attack spec string.
    pub attack: String,
    /// Scenario records contributing (judged or not).
    pub scenarios: usize,
    /// Records the transaction judge judged (that rate's denominator).
    pub judged: usize,
    /// Transaction-judge detection rate at each grid threshold, `0.0`
    /// when nothing was judged.
    pub detection_rate: Vec<f64>,
    /// Records the power judge judged.
    pub power_judged: usize,
    /// Records judged by at least one modality (the fused rate's
    /// denominator — a power-only record is a real fused observation).
    pub fused_judged: usize,
    /// Power-judge detection rate per threshold (over `power_judged`);
    /// `None` when no record carries judged power evidence.
    pub power_detection_rate: Option<Vec<f64>>,
    /// Any-alarm fused detection rate per threshold (over
    /// `fused_judged`); `None` alongside `power_detection_rate`. Fused
    /// curves are any-alarm by definition (see
    /// [`Observation::fused_detected_at`]), whatever fusion policy the
    /// live campaign ran with.
    pub fused_detection_rate: Option<Vec<f64>>,
}

impl ToJson for AttackCurve {
    fn write_json(&self, out: &mut String, indent: usize) {
        let render = crate::json::number_array;
        let mut w = ObjectWriter::new(out, indent);
        w.string("attack", &self.attack)
            .int("scenarios", self.scenarios as i128)
            .int("judged", self.judged as i128)
            .raw("detection_rate", &render(&self.detection_rate));
        // Per-detector curves appear only for power-bearing corpora so
        // transaction-only reports keep their pre-suite shape.
        if let (Some(power), Some(fused)) = (&self.power_detection_rate, &self.fused_detection_rate)
        {
            w.int("power_judged", self.power_judged as i128)
                .raw("power_detection_rate", &render(power))
                .int("fused_judged", self.fused_judged as i128)
                .raw("fused_detection_rate", &render(fused));
        }
        w.finish();
    }
}

/// Per-attack ROC analytics over a set of scenario observations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsReport {
    /// The suspect-fraction grid every curve is evaluated on.
    pub thresholds: Vec<f64>,
    /// One curve per attack, sorted by attack name (deterministic
    /// regardless of input order).
    pub curves: Vec<AttackCurve>,
}

impl AnalyticsReport {
    /// Sweeps `thresholds` over `observations`, grouping by attack.
    pub fn over(observations: &[Observation], thresholds: &[f64]) -> AnalyticsReport {
        let mut groups: BTreeMap<&str, Vec<&Observation>> = BTreeMap::new();
        for obs in observations {
            groups.entry(&obs.attack).or_default().push(obs);
        }
        let curves = groups
            .into_iter()
            .map(|(attack, group)| {
                let judged = group.iter().filter(|o| o.judged).count();
                let power_judged = group
                    .iter()
                    .filter(|o| o.power.is_some_and(|p| p.judged))
                    .count();
                // The fused rate's denominator: records judged by *any*
                // modality (a power-only record is a real fused
                // observation even though the txn judge never saw it).
                let judged_any = group
                    .iter()
                    .filter(|o| o.judged || o.power.is_some_and(|p| p.judged))
                    .count();
                let rate = |hits: usize, denom: usize| {
                    if denom == 0 {
                        0.0
                    } else {
                        hits as f64 / denom as f64
                    }
                };
                let detection_rate = thresholds
                    .iter()
                    .map(|&t| rate(group.iter().filter(|o| o.detected_at(t)).count(), judged))
                    .collect();
                let (power_detection_rate, fused_detection_rate) = if power_judged > 0 {
                    let power = thresholds
                        .iter()
                        .map(|&t| {
                            rate(
                                group
                                    .iter()
                                    .filter(|o| o.power_detected_at(t) == Some(true))
                                    .count(),
                                power_judged,
                            )
                        })
                        .collect();
                    let fused = thresholds
                        .iter()
                        .map(|&t| {
                            rate(
                                group.iter().filter(|o| o.fused_detected_at(t)).count(),
                                judged_any,
                            )
                        })
                        .collect();
                    (Some(power), Some(fused))
                } else {
                    (None, None)
                };
                AttackCurve {
                    attack: attack.to_string(),
                    scenarios: group.len(),
                    judged,
                    detection_rate,
                    power_judged,
                    fused_judged: judged_any,
                    power_detection_rate,
                    fused_detection_rate,
                }
            })
            .collect();
        AnalyticsReport {
            thresholds: thresholds.to_vec(),
            curves,
        }
    }

    /// The analytics for a campaign's own results, on the default grid.
    pub fn from_results(results: &[ScenarioResult]) -> AnalyticsReport {
        let observations: Vec<Observation> = results.iter().map(Observation::from_result).collect();
        AnalyticsReport::over(&observations, &THRESHOLD_GRID)
    }

    /// The `"none"` attack's curve — the false-positive rate at each
    /// threshold, i.e. the ROC's x-axis for every other curve.
    pub fn false_positive_curve(&self) -> Option<&AttackCurve> {
        self.curves.iter().find(|c| c.attack == "none")
    }

    /// The curve for a specific attack.
    pub fn curve(&self, attack: &str) -> Option<&AttackCurve> {
        self.curves.iter().find(|c| c.attack == attack)
    }

    /// Rows for a summary table, false-positive (`"none"`) row first.
    fn summary_rows(&self) -> Vec<&AttackCurve> {
        self.false_positive_curve()
            .into_iter()
            .chain(self.curves.iter().filter(|c| c.attack != "none"))
            .collect()
    }

    /// Renders one threshold table over `rate` (rows without a rate are
    /// skipped).
    fn summary_table(
        &self,
        out: &mut String,
        judged: impl Fn(&AttackCurve) -> usize,
        rate: impl Fn(&AttackCurve) -> Option<&Vec<f64>>,
    ) {
        out.push_str(&format!("{:<14} {:>5} {:>6}", "attack", "runs", "judged"));
        for t in &self.thresholds {
            out.push_str(&format!(" {:>6}", format!("{t}")));
        }
        out.push('\n');
        out.push_str(&"-".repeat(27 + 7 * self.thresholds.len()));
        out.push('\n');
        for c in self.summary_rows() {
            let Some(rates) = rate(c) else { continue };
            out.push_str(&format!(
                "{:<14} {:>5} {:>6}",
                c.attack,
                c.scenarios,
                judged(c)
            ));
            for r in rates {
                out.push_str(&format!(" {:>6.3}", r));
            }
            out.push('\n');
        }
    }

    /// A deterministic human-readable table: one row per attack, one
    /// column per threshold, false-positive row first. Corpora with
    /// power evidence get two more tables — the power judge's curves
    /// and the any-alarm fusion — after the transaction table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        self.summary_table(&mut out, |c| c.judged, |c| Some(&c.detection_rate));
        if self.curves.iter().any(|c| c.power_detection_rate.is_some()) {
            out.push_str("\npower side-channel (anomalous-window fraction over the same grid)\n");
            self.summary_table(
                &mut out,
                |c| c.power_judged,
                |c| c.power_detection_rate.as_ref(),
            );
            out.push_str("\nfused (any-alarm over both modalities)\n");
            self.summary_table(
                &mut out,
                |c| c.fused_judged,
                |c| c.fused_detection_rate.as_ref(),
            );
        }
        out
    }
}

impl ToJson for AnalyticsReport {
    fn write_json(&self, out: &mut String, indent: usize) {
        let grid: Vec<String> = self
            .thresholds
            .iter()
            .map(|t| crate::json::number(*t))
            .collect();
        let render = crate::json::number_array;
        let mut w = ObjectWriter::new(out, indent);
        w.raw("thresholds", &format!("[{}]", grid.join(", ")));
        if let Some(fp) = self.false_positive_curve() {
            w.raw("false_positive_rate", &render(&fp.detection_rate));
            // The per-detector false-positive curves ride along when
            // the clean reprints carry power evidence.
            if let (Some(power), Some(fused)) = (&fp.power_detection_rate, &fp.fused_detection_rate)
            {
                w.raw("power_false_positive_rate", &render(power))
                    .raw("fused_false_positive_rate", &render(fused));
            }
        }
        w.value("attacks", &self.curves);
        w.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(attack: &str, mismatched: usize, compared: usize, totals: Option<bool>) -> Observation {
        Observation {
            attack: attack.into(),
            workload: "w".into(),
            mismatched_transactions: mismatched,
            transactions_compared: compared,
            final_totals_match: totals,
            judged: true,
            power: None,
        }
    }

    fn power(obs: Observation, anomalous: usize, compared: usize) -> Observation {
        Observation {
            power: Some(PowerObservation {
                anomalous_windows: anomalous,
                windows_compared: compared,
                judged: true,
            }),
            ..obs
        }
    }

    #[test]
    fn grid_has_at_least_eight_thresholds_and_the_papers_default() {
        assert!(THRESHOLD_GRID.len() >= 8);
        assert!(THRESHOLD_GRID.contains(&0.01));
        assert!(THRESHOLD_GRID.windows(2).all(|w| w[0] < w[1]), "sorted");
    }

    #[test]
    fn rejudging_is_monotone_in_threshold() {
        let o = obs("t", 30, 1_000, Some(true));
        let verdicts: Vec<bool> = THRESHOLD_GRID.iter().map(|&t| o.detected_at(t)).collect();
        // Once a higher threshold clears it, it stays cleared.
        for pair in verdicts.windows(2) {
            assert!(pair[0] || !pair[1], "{verdicts:?}");
        }
        assert!(verdicts[0], "3% mismatches over threshold 0");
        assert!(!verdicts[THRESHOLD_GRID.len() - 1], "3% under 50%");
    }

    #[test]
    fn floor_applies_to_the_grid_and_final_check_floors_the_curve() {
        // 1 wobble in 50 transactions: under the 2.8-transaction floor
        // even at base threshold 0.
        assert!(!obs("t", 1, 50, Some(true)).detected_at(0.0));
        // A failed totals check is caught at every threshold.
        let sneaky = obs("t", 0, 50, Some(false));
        assert!(THRESHOLD_GRID.iter().all(|&t| sneaky.detected_at(t)));
        // Unjudged scenarios never count as detected.
        let unjudged = Observation {
            judged: false,
            ..obs("t", 50, 50, Some(false))
        };
        assert!(THRESHOLD_GRID.iter().all(|&t| !unjudged.detected_at(t)));
    }

    #[test]
    fn report_groups_sorts_and_rates() {
        let observations = vec![
            obs("t2", 40, 100, Some(true)),  // 40% fraction
            obs("t2", 0, 100, Some(true)),   // clean
            obs("none", 0, 100, Some(true)), // clean
            obs("flaw3d", 90, 100, Some(false)),
        ];
        let report = AnalyticsReport::over(&observations, &THRESHOLD_GRID);
        let attacks: Vec<&str> = report.curves.iter().map(|c| c.attack.as_str()).collect();
        assert_eq!(attacks, vec!["flaw3d", "none", "t2"], "sorted by name");
        let t2 = report.curve("t2").unwrap();
        assert_eq!(t2.scenarios, 2);
        assert_eq!(t2.detection_rate[3], 0.5, "one of two t2 runs over 1%");
        assert_eq!(
            report.false_positive_curve().unwrap().detection_rate[3],
            0.0
        );
        let flaw = report.curve("flaw3d").unwrap();
        assert!(
            flaw.detection_rate.iter().all(|&r| r == 1.0),
            "totals check floors the curve"
        );

        let json = crate::json::to_string_pretty(&report);
        let v = crate::json::parse(&json).unwrap();
        assert_eq!(
            v.get("thresholds").unwrap().as_array().unwrap().len(),
            THRESHOLD_GRID.len()
        );
        assert_eq!(v.get("attacks").unwrap().as_array().unwrap().len(), 3);
        assert!(v.get("false_positive_rate").is_some());

        let table = report.summary();
        assert!(table.starts_with("attack"), "{table}");
        assert!(table.contains("flaw3d"), "{table}");
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[2].starts_with("none"), "FPR row leads: {table}");
        assert!(
            !table.contains("power side-channel"),
            "no power sections without power evidence: {table}"
        );
        assert!(!json.contains("power_detection_rate"), "{json}");
    }

    #[test]
    fn power_evidence_adds_per_detector_and_fused_curves() {
        let observations = vec![
            // Transaction judge blind (co-located Trojan), power judge
            // sees 30% anomalous windows.
            power(obs("t2", 0, 100, Some(true)), 30, 100),
            // Both modalities clean.
            power(obs("none", 0, 100, Some(true)), 0, 100),
            // A record written before power evidence existed.
            obs("t2", 0, 100, Some(true)),
        ];
        let report = AnalyticsReport::over(&observations, &THRESHOLD_GRID);
        let t2 = report.curve("t2").unwrap();
        assert_eq!(t2.scenarios, 2);
        assert_eq!(t2.judged, 2);
        assert_eq!(t2.power_judged, 1, "pre-power record skipped for power");
        let idx_01 = THRESHOLD_GRID.iter().position(|&t| t == 0.01).unwrap();
        assert_eq!(t2.detection_rate[idx_01], 0.0, "txn judge is blind");
        let power_rate = t2.power_detection_rate.as_ref().unwrap();
        assert_eq!(power_rate[idx_01], 1.0, "power judge catches it");
        let fused = t2.fused_detection_rate.as_ref().unwrap();
        assert_eq!(
            fused[idx_01], 0.5,
            "fused over txn-judged denominator: 1 of 2"
        );
        // Monotone in threshold, like the transaction curves.
        for pair in power_rate.windows(2) {
            assert!(pair[0] >= pair[1], "{power_rate:?}");
        }

        let json = crate::json::to_string_pretty(&report);
        assert!(json.contains("\"power_detection_rate\""), "{json}");
        assert!(json.contains("\"fused_detection_rate\""), "{json}");
        assert!(json.contains("\"power_false_positive_rate\""), "{json}");
        let table = report.summary();
        assert!(table.contains("power side-channel"), "{table}");
        assert!(table.contains("fused (any-alarm"), "{table}");
    }

    #[test]
    fn power_rejudge_rule_matches_live_judge() {
        // fraction strictly over the threshold, never at it.
        let o = power(obs("t", 0, 100, Some(true)), 15, 100);
        assert_eq!(o.power_detected_at(0.15), Some(false), "0.15 !> 0.15");
        assert_eq!(o.power_detected_at(0.1), Some(true));
        // Unjudged power evidence re-judges as None, fuses as txn-only.
        let unjudged = Observation {
            power: Some(PowerObservation {
                anomalous_windows: 50,
                windows_compared: 100,
                judged: false,
            }),
            ..obs("t", 90, 100, Some(false))
        };
        assert_eq!(unjudged.power_detected_at(0.0), None);
        assert!(unjudged.fused_detected_at(0.01), "txn still alarms");
    }
}

//! §V-B overhead bench: regenerates the propagation-delay / signal-rate
//! report, then measures interceptor throughput per path configuration.

use criterion::{Criterion, SamplingMode};

use offramps::{MitmConfig, Offramps, SignalPath};
use offramps_bench::{overhead, workloads};
use offramps_des::{ActionSink, Tick};
use offramps_signals::{Level, Pin, SignalEvent};

fn print_report() {
    println!("\n================ SV-B OVERHEAD ================");
    let program = workloads::standard_part();
    let report = overhead::regenerate(&program, 21);
    println!("{}\n", overhead::format_report(&report));
    let json = offramps_bench::json::to_string_pretty(&report);
    let _ = std::fs::create_dir_all("target/experiments");
    let _ = std::fs::write("target/experiments/overhead.json", json);
}

/// Measures events/second through the interceptor for each Figure 3
/// configuration (host-side cost of the MITM model).
fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("mitm_throughput");
    group.sampling_mode(SamplingMode::Flat).sample_size(30);
    for (name, path) in [
        ("bypass", SignalPath::bypass()),
        ("modify", SignalPath::modify()),
        ("capture", SignalPath::capture()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let cfg = MitmConfig {
                        path,
                        ..MitmConfig::default()
                    };
                    let mut m = Offramps::new(cfg, 1);
                    if path.modify {
                        m.add_trojan(Box::new(offramps::trojans::FlowReductionTrojan::half()));
                    }
                    m
                },
                |mut m| {
                    // 10k step edges through the control path, reusing
                    // one sink like the scheduler does.
                    let mut sink = ActionSink::new();
                    for i in 0..5_000u64 {
                        let t = Tick::from_micros(i * 100);
                        sink.begin(t);
                        m.on_control(t, SignalEvent::logic(Pin::XStep, Level::High), &mut sink);
                        sink.drain().for_each(drop);
                        let t2 = t + offramps_des::SimDuration::from_micros(2);
                        sink.begin(t2);
                        m.on_control(t2, SignalEvent::logic(Pin::XStep, Level::Low), &mut sink);
                        sink.drain().for_each(drop);
                    }
                    m
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn main() {
    print_report();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

//! Table I bench: regenerates the Trojan-effect table, then measures
//! the simulation cost of golden vs Trojaned prints.

use criterion::{Criterion, SamplingMode};

use offramps::trojans::FlowReductionTrojan;
use offramps::TestBench;
use offramps_bench::{table1, workloads};

fn print_table() {
    println!("\n================ TABLE I (Trojans T0-T9) ================");
    let rows = table1::regenerate(42);
    print!("{}", table1::format_table(&rows));
    let ok = rows.iter().filter(|r| r.matches_paper).count();
    println!("rows matching the paper: {ok}/{}\n", rows.len());
    // Machine-readable copy for EXPERIMENTS.md.
    let json = offramps_bench::json::to_string_pretty(&rows);
    let _ = std::fs::create_dir_all("target/experiments");
    let _ = std::fs::write("target/experiments/table1.json", json);
}

fn benches(c: &mut Criterion) {
    let program = workloads::mini_part();
    let mut group = c.benchmark_group("table1");
    group.sampling_mode(SamplingMode::Flat).sample_size(10);
    group.bench_function("golden_print_sim", |b| {
        b.iter(|| TestBench::new(1).run(&program).unwrap())
    });
    group.bench_function("t2_trojan_print_sim", |b| {
        b.iter(|| {
            TestBench::new(1)
                .with_trojan(Box::new(FlowReductionTrojan::half()))
                .run(&program)
                .unwrap()
        })
    });
    group.finish();
}

fn main() {
    print_table();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

//! Baseline bench: OFFRAMPS vs the power side-channel on the Table II
//! attacks — the quantified version of §VI "Related platforms".

use criterion::{Criterion, SamplingMode};

use offramps_bench::{baseline, workloads};
use offramps_sidechannel::{PowerDetector, PowerDetectorConfig, PowerModel};
use offramps_signals::{Level, LogicEvent, Pin, SignalTrace};

fn print_table() {
    println!("\n================ BASELINE: OFFRAMPS vs power side-channel ================");
    let program = workloads::detection_part();
    let rows = baseline::regenerate(&program, 77);
    print!("{}", baseline::format_table(&rows));
    let (ours, theirs) = baseline::score(&rows);
    println!("\nOFFRAMPS detected {ours}/8; power side-channel detected {theirs}/8");
    println!("(the paper: direct signal access loses no data; side-channels are lossy)\n");
    let json = offramps_bench::json::to_string_pretty(&rows);
    let _ = std::fs::create_dir_all("target/experiments");
    let _ = std::fs::write("target/experiments/baseline.json", json);
}

fn benches(c: &mut Criterion) {
    // Synthesize + compare cost on a synthetic 60 s trace.
    let mut trace = SignalTrace::new();
    let mut at = offramps_des::Tick::ZERO;
    while at < offramps_des::Tick::from_secs(60) {
        trace.record(at, LogicEvent::new(Pin::XStep, Level::High));
        trace.record(
            at + offramps_des::SimDuration::from_micros(2),
            LogicEvent::new(Pin::XStep, Level::Low),
        );
        at += offramps_des::SimDuration::from_micros(250);
    }
    let model = PowerModel::default();
    let golden = model.synthesize(&trace, 1);
    let det = PowerDetector::new(golden.clone(), PowerDetectorConfig::default());

    let mut group = c.benchmark_group("sidechannel");
    group.sampling_mode(SamplingMode::Flat).sample_size(10);
    group.bench_function("synthesize_60s_trace", |b| {
        b.iter(|| model.synthesize(&trace, 2))
    });
    group.bench_function("compare_60s_trace", |b| b.iter(|| det.compare(&golden)));
    group.finish();
}

fn main() {
    print_table();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

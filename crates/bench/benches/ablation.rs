//! Ablation studies on the detector design choices DESIGN.md calls out:
//!
//! * margin sweep — why the paper settled on 5 %,
//! * export-period sweep — the paper's claim that "this 5% margin of
//!   error can be made significantly smaller with a faster communication
//!   protocol",
//! * stealth frontier — which reduction factors the windowed check alone
//!   can see, and why the 0 %-margin final check earns its place.

use criterion::{Criterion, SamplingMode};

use offramps::{detect, SignalPath, TestBench};
use offramps_attacks::Flaw3dTrojan;
use offramps_bench::{table2, workloads};
use offramps_des::SimDuration;

fn margin_sweep() {
    println!("--- margin sweep (golden-vs-golden false positives / trojan true positives) ---");
    let program = workloads::standard_part();
    let golden = table2::golden_capture(&program, 31);
    let reprint = table2::golden_capture(&program, 32);
    let attacked_prog =
        std::sync::Arc::new(Flaw3dTrojan::Reduction { factor: 0.85 }.apply(&program));
    let attacked = TestBench::new(33)
        .signal_path(SignalPath::capture())
        .run(&attacked_prog)
        .unwrap()
        .capture
        .unwrap();

    println!(
        "{:<8} {:<22} {:<20}",
        "margin", "golden mismatches", "x0.85 mismatches"
    );
    for pct in [1.0_f64, 2.0, 3.0, 5.0, 7.0, 10.0] {
        let cfg = detect::DetectorConfig {
            margin: pct / 100.0,
            final_check: false,
            ..detect::DetectorConfig::default()
        };
        let fp = detect::compare(&golden, &reprint, &cfg);
        let tp = detect::compare(&golden, &attacked, &cfg);
        println!(
            "{:<8} {:<22} {:<20}",
            format!("{pct}%"),
            format!(
                "{} (suspected: {})",
                fp.mismatches.len(),
                fp.trojan_suspected
            ),
            format!(
                "{} (suspected: {})",
                tp.mismatches.len(),
                tp.trojan_suspected
            ),
        );
    }
    println!();
}

fn period_sweep() {
    println!("--- export-period sweep (drift between known-good prints) ---");
    let program = workloads::standard_part();
    println!(
        "{:<12} {:<14} {:<10}",
        "period", "transactions", "max drift"
    );
    for ms in [20u64, 50, 100, 200, 500] {
        let mitm = |seed: u64| {
            let cfg = offramps::MitmConfig {
                path: SignalPath::capture(),
                export_period: SimDuration::from_millis(ms),
                ..Default::default()
            };
            TestBench::new(seed)
                .mitm_config(cfg)
                .run(&program)
                .unwrap()
                .capture
                .unwrap()
        };
        let a = mitm(41);
        let b = mitm(42);
        let rep = detect::compare(
            &a,
            &b,
            &detect::DetectorConfig {
                final_check: false,
                ..Default::default()
            },
        );
        println!(
            "{:<12} {:<14} {:<10}",
            format!("{ms} ms"),
            rep.transactions_compared,
            format!("{:.2}%", rep.largest_percent),
        );
    }
    println!();
}

fn stealth_frontier() {
    println!("--- stealth frontier (windowed 5% check alone, no final check) ---");
    let program = workloads::standard_part();
    let golden = table2::golden_capture(&program, 51);
    let window_only = detect::DetectorConfig {
        final_check: false,
        ..detect::DetectorConfig::default()
    };
    let full = detect::DetectorConfig::default();
    println!(
        "{:<10} {:<18} {:<18}",
        "factor", "window-only", "with final check"
    );
    for factor in [0.98_f64, 0.95, 0.9, 0.8, 0.5] {
        let attacked_prog = std::sync::Arc::new(Flaw3dTrojan::Reduction { factor }.apply(&program));
        let attacked = TestBench::new(60 + (factor * 100.0) as u64)
            .signal_path(SignalPath::capture())
            .run(&attacked_prog)
            .unwrap()
            .capture
            .unwrap();
        let w = detect::compare(&golden, &attacked, &window_only);
        let f = detect::compare(&golden, &attacked, &full);
        println!(
            "{:<10} {:<18} {:<18}",
            factor,
            if w.trojan_suspected {
                "detected"
            } else {
                "MISSED"
            },
            if f.trojan_suspected {
                "detected"
            } else {
                "MISSED"
            },
        );
    }
    println!();
}

fn benches(c: &mut Criterion) {
    // The ablations above are analyses; keep one timing datum: how fast
    // a full margin-sweep analysis runs on captured data.
    let program = workloads::mini_part();
    let golden = table2::golden_capture(&program, 71);
    let mut group = c.benchmark_group("ablation");
    group.sampling_mode(SamplingMode::Flat).sample_size(20);
    group.bench_function("six_margin_compares", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for pct in [1.0_f64, 2.0, 3.0, 5.0, 7.0, 10.0] {
                let cfg = detect::DetectorConfig {
                    margin: pct / 100.0,
                    ..detect::DetectorConfig::default()
                };
                total += detect::compare(&golden, &golden, &cfg).mismatches.len();
            }
            total
        })
    });
    group.finish();
}

fn main() {
    println!("\n================ ABLATIONS ================");
    margin_sweep();
    period_sweep();
    stealth_frontier();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

//! Table II bench: regenerates the Flaw3D detection table, then
//! measures detector throughput.

use criterion::{Criterion, SamplingMode};

use offramps::{detect, SignalPath, TestBench};
use offramps_attacks::Flaw3dTrojan;
use offramps_bench::{table2, workloads};

fn print_table() {
    println!("\n================ TABLE II (Flaw3D detection) ================");
    let program = workloads::detection_part();
    let rows = table2::regenerate(&program, 7);
    print!("{}", table2::format_table(&rows));
    let detected = rows.iter().filter(|r| r.detected).count();
    println!("detected: {detected}/8 (paper: 8/8)\n");
    let json = offramps_bench::json::to_string_pretty(&rows);
    let _ = std::fs::create_dir_all("target/experiments");
    let _ = std::fs::write("target/experiments/table2.json", json);
}

fn benches(c: &mut Criterion) {
    // Pre-compute captures once; benchmark the comparison itself (the
    // host-side analysis that would run in real time during a print).
    let program = workloads::standard_part();
    let golden = table2::golden_capture(&program, 1);
    let attacked = std::sync::Arc::new(Flaw3dTrojan::Reduction { factor: 0.9 }.apply(&program));
    let observed = TestBench::new(2)
        .signal_path(SignalPath::capture())
        .run(&attacked)
        .unwrap()
        .capture
        .unwrap();
    let cfg = detect::DetectorConfig::default();

    let mut group = c.benchmark_group("table2");
    group.sampling_mode(SamplingMode::Flat).sample_size(20);
    group.bench_function("offline_compare", |b| {
        b.iter(|| detect::compare(&golden, &observed, &cfg))
    });
    group.bench_function("gcode_transform_reduction", |b| {
        b.iter(|| Flaw3dTrojan::Reduction { factor: 0.9 }.apply(&program))
    });
    group.bench_function("gcode_transform_relocation", |b| {
        b.iter(|| Flaw3dTrojan::Relocation { every_n: 20 }.apply(&program))
    });
    group.finish();
}

fn main() {
    print_table();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

//! Microbenchmarks of the substrates: G-code parsing, slicing, motion
//! planning, signal tracing, and the DES queue.

use criterion::{Criterion, SamplingMode, Throughput};

use offramps_bench::workloads;
use offramps_des::{EventQueue, Tick};
use offramps_firmware::motion::{MoveExec, Trapezoid};
use offramps_gcode::{parse, slicer::SlicerConfig, slicer::Solid, ProgramStats};
use offramps_signals::{Level, LogicEvent, Pin, SignalTrace};

fn benches(c: &mut Criterion) {
    // --- G-code ---
    let program = workloads::standard_part();
    let text = program.to_gcode();
    let mut group = c.benchmark_group("gcode");
    group.sampling_mode(SamplingMode::Flat).sample_size(30);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse_program", |b| b.iter(|| parse(&text).unwrap()));
    group.bench_function("write_program", |b| b.iter(|| program.to_gcode()));
    group.bench_function("stats", |b| b.iter(|| ProgramStats::analyze(&program)));
    group.bench_function("slice_prism", |b| {
        b.iter(|| {
            offramps_gcode::slicer::slice(
                &Solid::rect_prism(10.0, 10.0, 1.5),
                &SlicerConfig::fast(),
            )
        })
    });
    group.finish();

    // --- motion ---
    let mut group = c.benchmark_group("motion");
    group.sampling_mode(SamplingMode::Flat).sample_size(30);
    group.bench_function("trapezoid_plan", |b| {
        b.iter(|| Trapezoid::plan(25.0, 60.0, 1000.0))
    });
    group.bench_function("exec_2000_steps", |b| {
        b.iter(|| {
            let mut exec = MoveExec::new([2000, 777, 0, 333], 20.0, 40.0, 1000.0, Tick::ZERO, 1.0);
            let mut n = 0;
            while exec.next_step().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();

    // --- signals ---
    let mut trace = SignalTrace::new();
    for i in 0..20_000u64 {
        let t = Tick::from_micros(i * 50);
        trace.record(t, LogicEvent::new(Pin::XStep, Level::High));
        trace.record(
            t + offramps_des::SimDuration::from_micros(2),
            LogicEvent::new(Pin::XStep, Level::Low),
        );
    }
    let mut group = c.benchmark_group("signals");
    group.sampling_mode(SamplingMode::Flat).sample_size(20);
    group.bench_function("trace_pin_stats_40k_events", |b| {
        b.iter(|| trace.pin_stats(Pin::XStep))
    });
    group.bench_function("trace_summary", |b| b.iter(|| trace.summary()));
    group.finish();

    // --- DES queue ---
    let mut group = c.benchmark_group("des");
    group.sampling_mode(SamplingMode::Flat).sample_size(20);
    group.bench_function("queue_10k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(Tick::new((i * 2654435761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.payload);
            }
            sum
        })
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

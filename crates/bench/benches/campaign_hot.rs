//! Campaign hot-path bench: one sweep over the mini workload per
//! engine, comparing the pre-batch-style solo engine against lockstep
//! batching. The full pinned trajectory (mini + corpus, recorded
//! baseline, medians, speedups) is `offramps-cli bench`; this bench is
//! the quick interactive A/B for kernel work.

use criterion::{Criterion, SamplingMode};

use offramps_bench::campaign::{
    run_campaign_with, sweep_attacks, CampaignSpec, Engine, DEFAULT_LOCKSTEP_BATCH,
};
use offramps_bench::workloads::Workload;

/// The sweep grid on the mini workload only — small enough to sample
/// repeatedly, shaped exactly like the pinned sweep's hot path.
fn mini_sweep() -> CampaignSpec {
    let mut spec = CampaignSpec::default_matrix(42);
    spec.trojans = sweep_attacks();
    spec.workloads = vec![Workload::mini()];
    spec
}

fn benches(c: &mut Criterion) {
    let spec = mini_sweep();
    let scenarios = spec.scenarios().expect("pinned sweep expands").len();
    println!("\n============ CAMPAIGN HOT PATH ({scenarios} scenarios/iter) ============");

    let mut group = c.benchmark_group("campaign_sweep");
    group.sampling_mode(SamplingMode::Flat).sample_size(10);
    for (name, engine) in [
        ("solo", Engine::Solo),
        ("lockstep1", Engine::Lockstep(1)),
        ("lockstep2", Engine::Lockstep(2)),
        ("lockstep4", Engine::Lockstep(4)),
        ("lockstep", Engine::Lockstep(DEFAULT_LOCKSTEP_BATCH)),
        ("lockstep-full", Engine::Lockstep(0)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = run_campaign_with(&spec, 1, engine).expect("campaign runs");
                assert!(report.total_events() > 0);
                report.total_events()
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

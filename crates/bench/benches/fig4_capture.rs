//! Figure 4 bench: regenerates the capture excerpts and detector
//! output, then measures capture serialization and online detection.

use criterion::{Criterion, SamplingMode};

use offramps::{detect, Capture, OnlineDetector};
use offramps_bench::{fig4, table2, workloads};

fn print_figure() {
    println!(
        "\n================ FIGURE 4 (detection of an emulated Flaw3D Trojan) ================"
    );
    let program = workloads::detection_part();
    let fig = fig4::regenerate(&program, 11);
    let (golden, trojaned) = fig.excerpt(6);
    println!("(a) golden reference:\n{golden}");
    println!("(b) Flaw3D Trojan print:\n{trojaned}");
    println!("(c) detection tool output:\n{}\n", fig.report);
    let _ = std::fs::create_dir_all("target/experiments");
    let _ = std::fs::write("target/experiments/fig4_golden.csv", fig.golden.to_csv());
    let _ = std::fs::write(
        "target/experiments/fig4_trojaned.csv",
        fig.trojaned.to_csv(),
    );
    let json = offramps_bench::json::to_string_pretty(&fig.report);
    let _ = std::fs::write("target/experiments/fig4_report.json", json);
}

fn benches(c: &mut Criterion) {
    let program = workloads::standard_part();
    let golden = table2::golden_capture(&program, 3);
    let csv = golden.to_csv();

    let mut group = c.benchmark_group("fig4");
    group.sampling_mode(SamplingMode::Flat).sample_size(30);
    group.bench_function("capture_to_csv", |b| b.iter(|| golden.to_csv()));
    group.bench_function("capture_from_csv", |b| {
        b.iter(|| Capture::from_csv(csv.as_bytes()).unwrap())
    });
    group.bench_function("online_feed_full_print", |b| {
        b.iter(|| {
            let mut det = OnlineDetector::new(golden.clone(), detect::DetectorConfig::default());
            for t in golden.transactions() {
                det.feed(*t);
            }
            det.alarmed()
        })
    });
    group.bench_function("transaction_wire_round_trip", |b| {
        let t = golden.transactions()[0];
        b.iter(|| {
            let wire = t.to_wire();
            offramps::Transaction::from_wire(t.index, &wire)
        })
    });
    group.finish();
}

fn main() {
    print_figure();
    let mut c = Criterion::default().configure_from_args();
    benches(&mut c);
    c.final_summary();
}

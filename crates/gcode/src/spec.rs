//! Parametric workload specifications.
//!
//! The paper evaluates over a handful of hand-picked prints; scaling the
//! reproduction to campaign-size scenario matrices needs workloads as
//! *data*. A [`WorkloadSpec`] captures everything the slicer needs —
//! part geometry, plate layout, and the full [`SlicerConfig`] profile —
//! so a corpus generator (see `offramps-bench`'s `corpus` module) can
//! sample thousands of distinct-but-deterministic print jobs, and each
//! spec can describe itself in campaign listings.
//!
//! # Example
//!
//! ```
//! use offramps_gcode::spec::WorkloadSpec;
//! use offramps_gcode::slicer::{SlicerConfig, Solid};
//! use offramps_gcode::ProgramStats;
//!
//! let spec = WorkloadSpec::single(Solid::rect_prism(5.0, 5.0, 0.6), SlicerConfig::fast());
//! let stats = ProgramStats::analyze(&spec.slice());
//! assert_eq!(stats.layer_count(), 2);
//! assert!(spec.summary().contains("5x5x0.6"));
//! ```

use crate::ast::Program;
use crate::slicer::{slice_plate, SlicerConfig, Solid};

/// A complete, serializable description of one print job: what part(s)
/// to print, how they sit on the plate, and the slicing profile.
///
/// The spec is plain data — cloning it is cheap and slicing it is
/// deterministic, so two equal specs always produce byte-identical
/// G-code. `copies > 1` lays the part out in a row and makes the
/// workload travel-heavy (long inter-island hops with retraction);
/// `copies == 1` keeps it extrusion-heavy.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The part printed at every island.
    pub solid: Solid,
    /// Islands on the plate (≥ 1). The row is centred on
    /// `config.center`.
    pub copies: u32,
    /// Centre-to-centre island pitch, mm (ignored for one copy).
    pub spacing: f64,
    /// The full slicing profile: layer height, perimeters, infill
    /// spacing/pattern, speeds, temperatures, fan, retraction, flow.
    pub config: SlicerConfig,
}

impl WorkloadSpec {
    /// A single-island spec — the shape of every canonical paper
    /// workload.
    pub fn single(solid: Solid, config: SlicerConfig) -> Self {
        WorkloadSpec {
            solid,
            copies: 1,
            spacing: 0.0,
            config,
        }
    }

    /// A travel-heavy plate: `copies` islands in a row at `spacing` mm
    /// pitch.
    ///
    /// # Panics
    ///
    /// Panics if `copies` is zero, or if `copies > 1` with a
    /// non-positive `spacing`.
    pub fn plate(solid: Solid, copies: u32, spacing: f64, config: SlicerConfig) -> Self {
        assert!(copies > 0, "a plate needs at least one copy");
        assert!(
            copies == 1 || spacing > 0.0,
            "multi-island plates need positive spacing"
        );
        WorkloadSpec {
            solid,
            copies,
            spacing,
            config,
        }
    }

    /// Number of layers the sliced program will have.
    pub fn layer_count(&self) -> usize {
        (self.solid.height() / self.config.layer_height)
            .round()
            .max(1.0) as usize
    }

    /// The island centres, in print order (a row centred on
    /// `config.center`).
    pub fn centers(&self) -> Vec<(f64, f64)> {
        let (cx, cy) = self.config.center;
        let n = self.copies.max(1);
        (0..n)
            .map(|i| {
                let offset = (f64::from(i) - f64::from(n - 1) / 2.0) * self.spacing;
                (cx + offset, cy)
            })
            .collect()
    }

    /// Slices the spec into a complete printable program.
    ///
    /// # Panics
    ///
    /// Panics on non-positive geometry, like [`slice_plate`].
    pub fn slice(&self) -> Program {
        let parts: Vec<(Solid, (f64, f64))> = self
            .centers()
            .into_iter()
            .map(|c| (self.solid.clone(), c))
            .collect();
        slice_plate(&parts, &self.config)
    }

    /// One-line human description for campaign listings:
    /// geometry × layers × copies plus the profile knobs that matter.
    pub fn summary(&self) -> String {
        let shape = match &self.solid {
            Solid::RectPrism {
                width,
                depth,
                height,
            } => format!("{width}x{depth}x{height}mm box"),
            Solid::Prism {
                radius,
                height,
                segments,
            } => format!("r{radius}x{height}mm cyl/{segments}"),
        };
        let plate = if self.copies > 1 {
            format!(" x{} @{}mm", self.copies, self.spacing)
        } else {
            String::new()
        };
        format!(
            "{shape}{plate}, {} layers @{}mm, {}p infill {}mm {:?}, {}mm/s, {}C/{}C",
            self.layer_count(),
            self.config.layer_height,
            self.config.perimeters,
            self.config.infill_spacing,
            self.config.infill_pattern,
            self.config.print_speed,
            self.config.hotend_temp,
            self.config.bed_temp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slicer::slice;
    use crate::stats::ProgramStats;

    #[test]
    fn single_spec_matches_direct_slice() {
        let cfg = SlicerConfig::fast();
        let solid = Solid::rect_prism(10.0, 10.0, 1.5);
        let spec = WorkloadSpec::single(solid.clone(), cfg.clone());
        assert_eq!(spec.slice().to_gcode(), slice(&solid, &cfg).to_gcode());
        assert_eq!(spec.layer_count(), 5);
    }

    #[test]
    fn plate_centers_are_symmetric() {
        let spec = WorkloadSpec::plate(
            Solid::rect_prism(5.0, 5.0, 0.3),
            3,
            12.0,
            SlicerConfig::fast(),
        );
        let centers = spec.centers();
        assert_eq!(centers.len(), 3);
        let (cx, cy) = spec.config.center;
        assert_eq!(centers[1], (cx, cy));
        assert!((centers[0].0 - (cx - 12.0)).abs() < 1e-9);
        assert!((centers[2].0 - (cx + 12.0)).abs() < 1e-9);
    }

    #[test]
    fn plate_spec_is_travel_heavy() {
        let cfg = SlicerConfig::fast();
        let solid = Solid::rect_prism(5.0, 5.0, 0.6);
        let one = ProgramStats::analyze(&WorkloadSpec::single(solid.clone(), cfg.clone()).slice());
        let two = ProgramStats::analyze(&WorkloadSpec::plate(solid, 2, 15.0, cfg).slice());
        // Two layers of island hops at 15 mm pitch: ≥ 20 mm extra travel
        // on top of the doubled in-layer travel.
        assert!(
            two.travel_path_mm > one.travel_path_mm + 20.0,
            "{} vs {}",
            two.travel_path_mm,
            one.travel_path_mm
        );
    }

    #[test]
    fn summary_mentions_the_knobs() {
        let spec =
            WorkloadSpec::plate(Solid::cylinder(3.0, 0.9, 12), 2, 10.0, SlicerConfig::fast());
        let s = spec.summary();
        assert!(s.contains("cyl/12"), "{s}");
        assert!(s.contains("x2 @10mm"), "{s}");
        assert!(s.contains("3 layers"), "{s}");
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn rejects_zero_copies() {
        let _ = WorkloadSpec::plate(
            Solid::rect_prism(5.0, 5.0, 0.3),
            0,
            10.0,
            SlicerConfig::fast(),
        );
    }
}

//! Geometric statistics over a G-code program.
//!
//! Detection in the paper compares a print against a "golden" reference
//! that "can come from simulation" (§VII). [`ProgramStats`] is the first
//! step of that simulation: an interpreter for the motion-relevant
//! semantics (positioning modes, `G92` re-zeroing, sticky feedrates) that
//! yields the quantities the detector and the experiments reason about.

use crate::ast::{GCommand, Program};

/// Options for statistics extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsConfig {
    /// Two Z values closer than this count as the same layer (mm).
    pub layer_epsilon: f64,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            layer_epsilon: 1e-6,
        }
    }
}

/// Aggregate geometric statistics of a program.
///
/// # Example
///
/// ```
/// use offramps_gcode::{parse, ProgramStats};
/// let p = parse("G90\nM83\nG28\nG1 X10 Y0 E0.5 F1200\nG1 X10 Y10 E0.5\n")?;
/// let s = ProgramStats::analyze(&p);
/// assert_eq!(s.total_extruded_mm, 1.0);
/// assert_eq!(s.extrusion_path_mm, 20.0);
/// # Ok::<(), offramps_gcode::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramStats {
    /// Net filament pushed forward, mm (retracts subtract).
    pub net_extruded_mm: f64,
    /// Total forward filament, mm (retracts do not subtract).
    pub total_extruded_mm: f64,
    /// Total filament pulled back by retracts, mm.
    pub retracted_mm: f64,
    /// XY path length of extruding moves, mm.
    pub extrusion_path_mm: f64,
    /// XY path length of travel (non-extruding) moves, mm.
    pub travel_path_mm: f64,
    /// Number of motion commands.
    pub moves: usize,
    /// Number of extruding motion commands.
    pub extruding_moves: usize,
    /// Smallest visited X/Y/Z of extruding moves, mm.
    pub min_corner: [f64; 3],
    /// Largest visited X/Y/Z of extruding moves, mm.
    pub max_corner: [f64; 3],
    /// Distinct Z heights at which extrusion occurred, ascending.
    pub layers: Vec<f64>,
    /// Total commanded dwell time, milliseconds.
    pub dwell_ms: f64,
    /// Highest commanded hotend target, °C.
    pub max_hotend_target: f64,
    /// Highest commanded bed target, °C.
    pub max_bed_target: f64,
}

impl ProgramStats {
    /// Analyzes `program` with default options.
    pub fn analyze(program: &Program) -> Self {
        Self::analyze_with(program, StatsConfig::default())
    }

    /// Analyzes `program` with explicit options.
    pub fn analyze_with(program: &Program, config: StatsConfig) -> Self {
        let mut st = Interp::default();
        let mut out = ProgramStats {
            net_extruded_mm: 0.0,
            total_extruded_mm: 0.0,
            retracted_mm: 0.0,
            extrusion_path_mm: 0.0,
            travel_path_mm: 0.0,
            moves: 0,
            extruding_moves: 0,
            min_corner: [f64::INFINITY; 3],
            max_corner: [f64::NEG_INFINITY; 3],
            layers: Vec::new(),
            dwell_ms: 0.0,
            max_hotend_target: 0.0,
            max_bed_target: 0.0,
        };
        for cmd in program.commands() {
            match cmd {
                GCommand::Move { x, y, z, e, .. } => {
                    let (dx, dy, dz, de) = st.apply_move(*x, *y, *z, *e);
                    let xy = (dx * dx + dy * dy).sqrt();
                    out.moves += 1;
                    if de > 0.0 {
                        out.extruding_moves += 1;
                        out.total_extruded_mm += de;
                        out.extrusion_path_mm += xy;
                        for (i, v) in [st.pos[0], st.pos[1], st.pos[2]].iter().enumerate() {
                            out.min_corner[i] = out.min_corner[i].min(*v);
                            out.max_corner[i] = out.max_corner[i].max(*v);
                        }
                        let z_now = st.pos[2];
                        if !out
                            .layers
                            .iter()
                            .any(|l| (l - z_now).abs() <= config.layer_epsilon)
                        {
                            out.layers.push(z_now);
                        }
                    } else {
                        out.travel_path_mm += xy;
                        if de < 0.0 {
                            out.retracted_mm += -de;
                        }
                    }
                    out.net_extruded_mm += de;
                    let _ = dz;
                }
                GCommand::Dwell { milliseconds } => out.dwell_ms += milliseconds,
                GCommand::Home { x, y, z } => st.home(*x, *y, *z),
                GCommand::AbsolutePositioning => st.absolute = true,
                GCommand::RelativePositioning => st.absolute = false,
                GCommand::SetPosition { x, y, z, e } => st.set_position(*x, *y, *z, *e),
                GCommand::AbsoluteExtrusion => st.e_absolute = true,
                GCommand::RelativeExtrusion => st.e_absolute = false,
                GCommand::SetHotendTemp { celsius, .. } => {
                    out.max_hotend_target = out.max_hotend_target.max(*celsius);
                }
                GCommand::SetBedTemp { celsius, .. } => {
                    out.max_bed_target = out.max_bed_target.max(*celsius);
                }
                _ => {}
            }
        }
        out.layers
            .sort_by(|a, b| a.partial_cmp(b).expect("layer z is never NaN"));
        out
    }

    /// Number of distinct extruded layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

/// Minimal positioning-semantics interpreter shared by the statistics
/// pass.
#[derive(Debug)]
struct Interp {
    pos: [f64; 3],
    e: f64,
    absolute: bool,
    e_absolute: bool,
}

impl Default for Interp {
    fn default() -> Self {
        Interp {
            pos: [0.0; 3],
            e: 0.0,
            absolute: true,
            e_absolute: true,
        }
    }
}

impl Interp {
    /// Applies a move; returns the deltas (dx, dy, dz, de).
    fn apply_move(
        &mut self,
        x: Option<f64>,
        y: Option<f64>,
        z: Option<f64>,
        e: Option<f64>,
    ) -> (f64, f64, f64, f64) {
        let mut delta = [0.0; 3];
        for (i, target) in [x, y, z].into_iter().enumerate() {
            if let Some(t) = target {
                let new = if self.absolute { t } else { self.pos[i] + t };
                delta[i] = new - self.pos[i];
                self.pos[i] = new;
            }
        }
        let de = if let Some(t) = e {
            let new = if self.e_absolute { t } else { self.e + t };
            let d = new - self.e;
            self.e = new;
            d
        } else {
            0.0
        };
        (delta[0], delta[1], delta[2], de)
    }

    fn home(&mut self, x: bool, y: bool, z: bool) {
        if x {
            self.pos[0] = 0.0;
        }
        if y {
            self.pos[1] = 0.0;
        }
        if z {
            self.pos[2] = 0.0;
        }
    }

    fn set_position(&mut self, x: Option<f64>, y: Option<f64>, z: Option<f64>, e: Option<f64>) {
        if let Some(v) = x {
            self.pos[0] = v;
        }
        if let Some(v) = y {
            self.pos[1] = v;
        }
        if let Some(v) = z {
            self.pos[2] = v;
        }
        if let Some(v) = e {
            self.e = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn stats(src: &str) -> ProgramStats {
        ProgramStats::analyze(&parse(src).unwrap())
    }

    #[test]
    fn absolute_extrusion_accumulates() {
        let s = stats("G90\nM82\nG1 X10 E1\nG1 X20 E3\n");
        assert_eq!(s.total_extruded_mm, 3.0);
        assert_eq!(s.net_extruded_mm, 3.0);
        assert_eq!(s.extruding_moves, 2);
        assert_eq!(s.extrusion_path_mm, 20.0);
    }

    #[test]
    fn relative_extrusion_and_retract() {
        let s = stats("G90\nM83\nG1 X10 E2\nG1 E-0.8\nG1 X0 E2.8\n");
        assert!((s.total_extruded_mm - 4.8).abs() < 1e-12);
        assert!((s.retracted_mm - 0.8).abs() < 1e-12);
        assert!((s.net_extruded_mm - 4.0).abs() < 1e-12);
    }

    #[test]
    fn g92_rezeroing() {
        let s = stats("G90\nM82\nG1 X10 E5\nG92 E0\nG1 X20 E5\n");
        assert_eq!(s.total_extruded_mm, 10.0);
    }

    #[test]
    fn relative_positioning_path() {
        let s = stats("G91\nM83\nG1 X3 Y4 E0.1\nG1 X3 Y4 E0.1\n");
        assert_eq!(s.extrusion_path_mm, 10.0);
        assert_eq!(s.max_corner[0], 6.0);
    }

    #[test]
    fn travel_vs_extrusion_split() {
        let s = stats("G90\nM83\nG0 X10\nG1 X20 E0.5\nG0 Y10\n");
        assert_eq!(s.travel_path_mm, 20.0);
        assert_eq!(s.extrusion_path_mm, 10.0);
        assert_eq!(s.moves, 3);
    }

    #[test]
    fn layers_detected() {
        let s = stats("G90\nM83\nG1 Z0.2\nG1 X10 E1\nG1 Z0.4\nG1 X0 E1\nG1 Z0.4\nG1 Y5 E0.5\n");
        assert_eq!(s.layer_count(), 2);
        assert_eq!(s.layers, vec![0.2, 0.4]);
    }

    #[test]
    fn homing_resets_position() {
        let s = stats("G90\nM83\nG1 X10 Y10\nG28\nG1 X3 Y4 E0.1\n");
        // After home, the extruding move runs 0,0 -> 3,4 = 5mm.
        assert_eq!(s.extrusion_path_mm, 5.0);
    }

    #[test]
    fn temperature_targets_tracked() {
        let s = stats("M140 S60\nM109 S215\nM104 S0\n");
        assert_eq!(s.max_hotend_target, 215.0);
        assert_eq!(s.max_bed_target, 60.0);
    }

    #[test]
    fn dwell_accumulates() {
        let s = stats("G4 P250\nG4 S1\n");
        assert_eq!(s.dwell_ms, 1250.0);
    }
}

//! G-code toolchain for the OFFRAMPS reproduction.
//!
//! Additive-manufacturing control flows from a slicer, through G-code,
//! into the printer firmware (paper Figure 1). This crate provides that
//! front half of the pipeline:
//!
//! * [`parse`] / [`Program`] — a Marlin-dialect G-code parser producing a
//!   typed AST ([`GCommand`]) that round-trips through [`Program::to_gcode`],
//! * [`ProgramStats`] — geometric statistics (extruded filament, path
//!   lengths, bounding box, layers) used to build golden references,
//! * [`slicer`] — a small slicer that turns solids (calibration cube,
//!   prisms, cylinders, vases) into realistic multi-layer toolpaths, the
//!   workloads every experiment in the paper prints.
//!
//! # Example
//!
//! ```
//! use offramps_gcode::{parse, GCommand};
//!
//! let program = parse("G28 ; home\nG1 X10 Y5 E0.4 F1200\n")?;
//! assert_eq!(program.commands().len(), 2);
//! assert!(matches!(program.commands()[0], GCommand::Home { .. }));
//! # Ok::<(), offramps_gcode::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod parser;
pub mod slicer;
pub mod spec;
mod stats;
mod writer;

pub use ast::{GCommand, Program};
pub use parser::{parse, parse_line, ParseError};
pub use spec::WorkloadSpec;
pub use stats::{ProgramStats, StatsConfig};
pub use writer::snap5;

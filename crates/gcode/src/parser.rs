//! Marlin-dialect G-code parser.
//!
//! Accepts the format emitted by Cura/Slic3r/PrusaSlicer and host software
//! such as Repetier Host: `;` and `(...)` comments, optional `N` line
//! numbers with `*` checksums, case-insensitive words, and decimal
//! parameters.

use std::fmt;

use crate::ast::{GCommand, Program};

/// Error produced when a line of G-code cannot be parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "g-code parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// One `letter + value` G-code word.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Word {
    letter: char,
    value: f64,
}

/// Strips comments, line numbers and checksums; returns the significant
/// text of the line (may be empty).
fn strip_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_paren = false;
    while let Some(c) = chars.next() {
        match c {
            ';' if !in_paren => break, // rest of line is a comment
            '(' => in_paren = true,
            ')' if in_paren => in_paren = false,
            '*' if !in_paren => {
                // Checksum: `*nn` terminates the significant text.
                for d in chars.by_ref() {
                    if !d.is_ascii_digit() && !d.is_whitespace() {
                        break;
                    }
                }
                break;
            }
            _ if in_paren => {}
            _ => out.push(c),
        }
    }
    out.trim().to_string()
}

/// Tokenizes significant text into words.
fn tokenize(text: &str, line_no: usize) -> Result<Vec<Word>, ParseError> {
    let mut words = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if !c.is_ascii_alphabetic() {
            return Err(ParseError {
                line: line_no,
                message: format!("expected a word letter, found {c:?}"),
            });
        }
        let letter = c.to_ascii_uppercase();
        i += 1;
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || matches!(bytes[i], '.' | '-' | '+'))
        {
            i += 1;
        }
        let num: String = bytes[start..i].iter().collect();
        // Bare letters (e.g. `G28 X`) mean "flag present" → value 1.
        let value = if num.is_empty() {
            1.0
        } else {
            num.parse::<f64>().map_err(|_| ParseError {
                line: line_no,
                message: format!("invalid number {num:?} for word {letter}"),
            })?
        };
        words.push(Word { letter, value });
    }
    Ok(words)
}

fn find(words: &[Word], letter: char) -> Option<f64> {
    words.iter().find(|w| w.letter == letter).map(|w| w.value)
}

fn has(words: &[Word], letter: char) -> bool {
    words.iter().any(|w| w.letter == letter)
}

/// Parses one line of G-code. Returns `Ok(None)` for blank/comment-only
/// lines.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed words or numbers. Unknown but
/// well-formed commands parse to [`GCommand::Raw`].
///
/// # Example
///
/// ```
/// use offramps_gcode::{parse_line, GCommand};
/// let cmd = parse_line("M104 S210", 1)?.unwrap();
/// assert_eq!(cmd, GCommand::SetHotendTemp { celsius: 210.0, wait: false });
/// # Ok::<(), offramps_gcode::ParseError>(())
/// ```
pub fn parse_line(line: &str, line_no: usize) -> Result<Option<GCommand>, ParseError> {
    let text = strip_line(line);
    if text.is_empty() {
        return Ok(None);
    }
    let mut words = tokenize(&text, line_no)?;
    if words.is_empty() {
        return Ok(None);
    }
    // Drop a leading line number word.
    if words[0].letter == 'N' {
        words.remove(0);
        if words.is_empty() {
            return Ok(None);
        }
    }
    let head = words[0];
    let rest = &words[1..];
    let code = head.value;
    let int_code = code as i64;
    let is_int = (code - int_code as f64).abs() < f64::EPSILON;

    let cmd = match (head.letter, int_code, is_int) {
        ('G', 0, true) | ('G', 1, true) => GCommand::Move {
            rapid: int_code == 0,
            x: find(rest, 'X'),
            y: find(rest, 'Y'),
            z: find(rest, 'Z'),
            e: find(rest, 'E'),
            feedrate: find(rest, 'F'),
        },
        ('G', 4, true) => {
            let ms = find(rest, 'P').unwrap_or_else(|| find(rest, 'S').map_or(0.0, |s| s * 1000.0));
            GCommand::Dwell { milliseconds: ms }
        }
        ('G', 28, true) => {
            let (x, y, z) = (has(rest, 'X'), has(rest, 'Y'), has(rest, 'Z'));
            if !x && !y && !z {
                GCommand::Home {
                    x: true,
                    y: true,
                    z: true,
                }
            } else {
                GCommand::Home { x, y, z }
            }
        }
        ('G', 90, true) => GCommand::AbsolutePositioning,
        ('G', 91, true) => GCommand::RelativePositioning,
        ('G', 92, true) => GCommand::SetPosition {
            x: find(rest, 'X'),
            y: find(rest, 'Y'),
            z: find(rest, 'Z'),
            e: find(rest, 'E'),
        },
        ('M', 82, true) => GCommand::AbsoluteExtrusion,
        ('M', 83, true) => GCommand::RelativeExtrusion,
        ('M', 104, true) => GCommand::SetHotendTemp {
            celsius: find(rest, 'S').unwrap_or(0.0),
            wait: false,
        },
        ('M', 109, true) => GCommand::SetHotendTemp {
            celsius: find(rest, 'S').or_else(|| find(rest, 'R')).unwrap_or(0.0),
            wait: true,
        },
        ('M', 140, true) => GCommand::SetBedTemp {
            celsius: find(rest, 'S').unwrap_or(0.0),
            wait: false,
        },
        ('M', 190, true) => GCommand::SetBedTemp {
            celsius: find(rest, 'S').or_else(|| find(rest, 'R')).unwrap_or(0.0),
            wait: true,
        },
        ('M', 106, true) => {
            let duty = find(rest, 'S').unwrap_or(255.0).clamp(0.0, 255.0).round() as u8;
            GCommand::FanOn { duty }
        }
        ('M', 107, true) => GCommand::FanOff,
        ('M', 17, true) => GCommand::EnableSteppers,
        ('M', 18, true) | ('M', 84, true) => GCommand::DisableSteppers,
        _ => GCommand::Raw { text },
    };
    Ok(Some(cmd))
}

/// Parses a complete G-code document.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// # Example
///
/// ```
/// use offramps_gcode::parse;
/// let p = parse("G90\nG28\nG1 X5 Y5 F3000\n")?;
/// assert_eq!(p.len(), 3);
/// # Ok::<(), offramps_gcode::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let mut program = Program::new();
    for (i, line) in source.lines().enumerate() {
        if let Some(cmd) = parse_line(line, i + 1)? {
            program.push(cmd);
        }
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_moves_with_all_words() {
        let c = parse_line("G1 X1.5 Y-2 Z0.3 E0.04 F1800", 1)
            .unwrap()
            .unwrap();
        assert_eq!(
            c,
            GCommand::Move {
                rapid: false,
                x: Some(1.5),
                y: Some(-2.0),
                z: Some(0.3),
                e: Some(0.04),
                feedrate: Some(1800.0),
            }
        );
    }

    #[test]
    fn g0_is_rapid() {
        let c = parse_line("G0 X10", 1).unwrap().unwrap();
        assert!(matches!(c, GCommand::Move { rapid: true, .. }));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        assert_eq!(parse_line("; pure comment", 1).unwrap(), None);
        assert_eq!(parse_line("   ", 1).unwrap(), None);
        assert_eq!(parse_line("(paren comment)", 1).unwrap(), None);
        let c = parse_line("G28 ; home all", 1).unwrap().unwrap();
        assert_eq!(
            c,
            GCommand::Home {
                x: true,
                y: true,
                z: true
            }
        );
    }

    #[test]
    fn home_with_axis_flags() {
        let c = parse_line("G28 X Y", 1).unwrap().unwrap();
        assert_eq!(
            c,
            GCommand::Home {
                x: true,
                y: true,
                z: false
            }
        );
        let c = parse_line("G28 Z", 1).unwrap().unwrap();
        assert_eq!(
            c,
            GCommand::Home {
                x: false,
                y: false,
                z: true
            }
        );
    }

    #[test]
    fn line_numbers_and_checksums() {
        let c = parse_line("N42 G1 X5*87", 1).unwrap().unwrap();
        assert!(matches!(c, GCommand::Move { x: Some(x), .. } if x == 5.0));
        // A pure line-number line is empty.
        assert_eq!(parse_line("N10", 1).unwrap(), None);
    }

    #[test]
    fn temperatures() {
        assert_eq!(
            parse_line("M109 S215", 1).unwrap().unwrap(),
            GCommand::SetHotendTemp {
                celsius: 215.0,
                wait: true
            }
        );
        assert_eq!(
            parse_line("M140 S60", 1).unwrap().unwrap(),
            GCommand::SetBedTemp {
                celsius: 60.0,
                wait: false
            }
        );
        assert_eq!(
            parse_line("M190 R55", 1).unwrap().unwrap(),
            GCommand::SetBedTemp {
                celsius: 55.0,
                wait: true
            }
        );
    }

    #[test]
    fn fan_and_steppers() {
        assert_eq!(
            parse_line("M106 S128", 1).unwrap().unwrap(),
            GCommand::FanOn { duty: 128 }
        );
        assert_eq!(
            parse_line("M106", 1).unwrap().unwrap(),
            GCommand::FanOn { duty: 255 }
        );
        assert_eq!(parse_line("M107", 1).unwrap().unwrap(), GCommand::FanOff);
        assert_eq!(
            parse_line("M84", 1).unwrap().unwrap(),
            GCommand::DisableSteppers
        );
        assert_eq!(
            parse_line("M17", 1).unwrap().unwrap(),
            GCommand::EnableSteppers
        );
    }

    #[test]
    fn dwell_p_and_s() {
        assert_eq!(
            parse_line("G4 P500", 1).unwrap().unwrap(),
            GCommand::Dwell {
                milliseconds: 500.0
            }
        );
        assert_eq!(
            parse_line("G4 S2", 1).unwrap().unwrap(),
            GCommand::Dwell {
                milliseconds: 2000.0
            }
        );
    }

    #[test]
    fn set_position() {
        assert_eq!(
            parse_line("G92 E0", 1).unwrap().unwrap(),
            GCommand::SetPosition {
                x: None,
                y: None,
                z: None,
                e: Some(0.0)
            }
        );
    }

    #[test]
    fn unknown_commands_preserved() {
        let c = parse_line("M115", 1).unwrap().unwrap();
        assert_eq!(
            c,
            GCommand::Raw {
                text: "M115".into()
            }
        );
        let c = parse_line("M73 P10 R32", 1).unwrap().unwrap();
        assert_eq!(
            c,
            GCommand::Raw {
                text: "M73 P10 R32".into()
            }
        );
    }

    #[test]
    fn lowercase_accepted() {
        let c = parse_line("g1 x5 e0.1", 1).unwrap().unwrap();
        assert!(matches!(c, GCommand::Move { x: Some(x), e: Some(_), .. } if x == 5.0));
    }

    #[test]
    fn malformed_numbers_error() {
        let e = parse_line("G1 X1.2.3", 1).unwrap_err();
        assert!(e.message.contains("invalid number"));
        assert_eq!(e.line, 1);
        let e = parse_line("G1 X5 @", 7).unwrap_err();
        assert_eq!(e.line, 7);
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn full_document() {
        let src = "\
; Sliced by offramps-gcode
G90
M83
M140 S60
M109 S215
G28
G1 Z0.2 F600
G1 X20 Y20 E1.2 F1200
M107
M84
";
        let p = parse(src).unwrap();
        assert_eq!(p.len(), 9);
        assert!(matches!(p.commands()[2], GCommand::SetBedTemp { .. }));
    }
}

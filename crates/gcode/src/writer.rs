//! Canonical G-code serialization.
//!
//! [`crate::Program::to_gcode`] emits one command per line in a canonical
//! form chosen so that parsing the output reproduces the original AST
//! (verified by a round-trip property test).

use std::fmt::Write as _;

use crate::ast::{GCommand, Program};

/// Snaps a value onto the writer's canonical 5-decimal grid: the
/// nearest representable double to `v` rounded at 5 decimals, so
/// serializing and re-parsing the snapped value is exact
/// (`parse(format(snap5(v))) == snap5(v)`). The single grid shared by
/// the slicer (every emitted coordinate), the Flaw3D transforms
/// (rewritten E words) and the corpus sampler (continuous config
/// knobs).
pub fn snap5(v: f64) -> f64 {
    (v * 100_000.0).round() / 100_000.0
}

/// Formats a float with minimal digits (Marlin accepts up to 5 decimals;
/// we emit up to 5 and strip trailing zeros).
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let mut s = format!("{v:.5}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
        s
    }
}

fn push_word(out: &mut String, letter: char, value: Option<f64>) {
    if let Some(v) = value {
        let _ = write!(out, " {letter}{}", fmt_num(v));
    }
}

/// Serializes one command to its canonical single-line form.
pub(crate) fn command_to_string(cmd: &GCommand) -> String {
    match cmd {
        GCommand::Move {
            rapid,
            x,
            y,
            z,
            e,
            feedrate,
        } => {
            let mut s = String::from(if *rapid { "G0" } else { "G1" });
            push_word(&mut s, 'X', *x);
            push_word(&mut s, 'Y', *y);
            push_word(&mut s, 'Z', *z);
            push_word(&mut s, 'E', *e);
            push_word(&mut s, 'F', *feedrate);
            s
        }
        GCommand::Dwell { milliseconds } => format!("G4 P{}", fmt_num(*milliseconds)),
        GCommand::Home { x, y, z } => {
            if *x && *y && *z {
                "G28".to_string()
            } else {
                let mut s = String::from("G28");
                if *x {
                    s.push_str(" X");
                }
                if *y {
                    s.push_str(" Y");
                }
                if *z {
                    s.push_str(" Z");
                }
                s
            }
        }
        GCommand::AbsolutePositioning => "G90".to_string(),
        GCommand::RelativePositioning => "G91".to_string(),
        GCommand::SetPosition { x, y, z, e } => {
            let mut s = String::from("G92");
            push_word(&mut s, 'X', *x);
            push_word(&mut s, 'Y', *y);
            push_word(&mut s, 'Z', *z);
            push_word(&mut s, 'E', *e);
            s
        }
        GCommand::AbsoluteExtrusion => "M82".to_string(),
        GCommand::RelativeExtrusion => "M83".to_string(),
        GCommand::SetHotendTemp { celsius, wait } => {
            format!("M{} S{}", if *wait { 109 } else { 104 }, fmt_num(*celsius))
        }
        GCommand::SetBedTemp { celsius, wait } => {
            format!("M{} S{}", if *wait { 190 } else { 140 }, fmt_num(*celsius))
        }
        GCommand::FanOn { duty } => format!("M106 S{duty}"),
        GCommand::FanOff => "M107".to_string(),
        GCommand::EnableSteppers => "M17".to_string(),
        GCommand::DisableSteppers => "M84".to_string(),
        GCommand::Raw { text } => text.clone(),
    }
}

/// Serializes a whole program, one command per line.
pub(crate) fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for cmd in program.commands() {
        out.push_str(&command_to_string(cmd));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn canonical_forms() {
        assert_eq!(
            command_to_string(&GCommand::Move {
                rapid: false,
                x: Some(1.5),
                y: None,
                z: Some(0.3),
                e: Some(-0.8),
                feedrate: Some(1200.0),
            }),
            "G1 X1.5 Z0.3 E-0.8 F1200"
        );
        assert_eq!(
            command_to_string(&GCommand::Home {
                x: true,
                y: false,
                z: false
            }),
            "G28 X"
        );
        assert_eq!(
            command_to_string(&GCommand::Home {
                x: true,
                y: true,
                z: true
            }),
            "G28"
        );
        assert_eq!(
            command_to_string(&GCommand::SetHotendTemp {
                celsius: 210.0,
                wait: true
            }),
            "M109 S210"
        );
        assert_eq!(command_to_string(&GCommand::FanOn { duty: 64 }), "M106 S64");
    }

    #[test]
    fn trailing_zero_stripping() {
        assert_eq!(fmt_num(1.50000), "1.5");
        assert_eq!(fmt_num(2.0), "2");
        assert_eq!(fmt_num(-0.04), "-0.04");
        assert_eq!(fmt_num(0.12345), "0.12345");
    }

    /// Snaps a value onto the exact 5-decimal grid the writer emits, so
    /// the round trip is bit-identical.
    fn grid(v: f64) -> f64 {
        format!("{v:.5}").parse().expect("formatted float reparses")
    }

    /// Seeded stand-in for a property-based generator (the build is
    /// offline, so `proptest` is unavailable): a tiny deterministic
    /// command fuzzer driven by a splitmix-style stream.
    struct CmdGen {
        state: u64,
    }

    impl CmdGen {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn range(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        fn flag(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }

        fn opt_mm(&mut self) -> Option<f64> {
            if self.flag() {
                let i = self.range(1000) as i64 - 500;
                let f = self.range(100_000);
                Some(grid(i as f64 + f as f64 / 100_000.0))
            } else {
                None
            }
        }

        fn command(&mut self) -> GCommand {
            match self.range(14) {
                0 => GCommand::Move {
                    rapid: self.flag(),
                    x: self.opt_mm(),
                    y: self.opt_mm(),
                    z: self.opt_mm(),
                    e: self.opt_mm(),
                    feedrate: if self.flag() {
                        Some((1 + self.range(99_999)) as f64)
                    } else {
                        None
                    },
                },
                1 => GCommand::Dwell {
                    milliseconds: self.range(1_000_000) as f64,
                },
                2 => {
                    let (x, y, z) = (self.flag(), self.flag(), self.flag());
                    if !x && !y && !z {
                        GCommand::Home {
                            x: true,
                            y: true,
                            z: true,
                        }
                    } else {
                        GCommand::Home { x, y, z }
                    }
                }
                3 => GCommand::AbsolutePositioning,
                4 => GCommand::RelativePositioning,
                5 => GCommand::SetPosition {
                    x: self.opt_mm(),
                    y: self.opt_mm(),
                    z: self.opt_mm(),
                    e: self.opt_mm(),
                },
                6 => GCommand::AbsoluteExtrusion,
                7 => GCommand::RelativeExtrusion,
                8 => GCommand::SetHotendTemp {
                    celsius: self.range(400) as f64,
                    wait: self.flag(),
                },
                9 => GCommand::SetBedTemp {
                    celsius: self.range(120) as f64,
                    wait: self.flag(),
                },
                10 => GCommand::FanOn {
                    duty: self.range(256) as u8,
                },
                11 => GCommand::FanOff,
                12 => GCommand::EnableSteppers,
                _ => GCommand::DisableSteppers,
            }
        }
    }

    /// write → parse is the identity on typed commands, over a few
    /// hundred randomly generated programs.
    #[test]
    fn random_round_trip() {
        for seed in 0u64..200 {
            let mut gen = CmdGen { state: seed };
            let len = gen.range(50) as usize;
            let program: Program = (0..len).map(|_| gen.command()).collect();
            let text = program.to_gcode();
            let reparsed = parse(&text).expect("canonical output must parse");
            assert_eq!(program, reparsed, "seed {seed}");
        }
    }
}

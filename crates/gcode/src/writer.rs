//! Canonical G-code serialization.
//!
//! [`crate::Program::to_gcode`] emits one command per line in a canonical
//! form chosen so that parsing the output reproduces the original AST
//! (verified by a round-trip property test).

use std::fmt::Write as _;

use crate::ast::{GCommand, Program};

/// Formats a float with minimal digits (Marlin accepts up to 5 decimals;
/// we emit up to 5 and strip trailing zeros).
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let mut s = format!("{v:.5}");
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
        s
    }
}

fn push_word(out: &mut String, letter: char, value: Option<f64>) {
    if let Some(v) = value {
        let _ = write!(out, " {letter}{}", fmt_num(v));
    }
}

/// Serializes one command to its canonical single-line form.
pub(crate) fn command_to_string(cmd: &GCommand) -> String {
    match cmd {
        GCommand::Move { rapid, x, y, z, e, feedrate } => {
            let mut s = String::from(if *rapid { "G0" } else { "G1" });
            push_word(&mut s, 'X', *x);
            push_word(&mut s, 'Y', *y);
            push_word(&mut s, 'Z', *z);
            push_word(&mut s, 'E', *e);
            push_word(&mut s, 'F', *feedrate);
            s
        }
        GCommand::Dwell { milliseconds } => format!("G4 P{}", fmt_num(*milliseconds)),
        GCommand::Home { x, y, z } => {
            if *x && *y && *z {
                "G28".to_string()
            } else {
                let mut s = String::from("G28");
                if *x {
                    s.push_str(" X");
                }
                if *y {
                    s.push_str(" Y");
                }
                if *z {
                    s.push_str(" Z");
                }
                s
            }
        }
        GCommand::AbsolutePositioning => "G90".to_string(),
        GCommand::RelativePositioning => "G91".to_string(),
        GCommand::SetPosition { x, y, z, e } => {
            let mut s = String::from("G92");
            push_word(&mut s, 'X', *x);
            push_word(&mut s, 'Y', *y);
            push_word(&mut s, 'Z', *z);
            push_word(&mut s, 'E', *e);
            s
        }
        GCommand::AbsoluteExtrusion => "M82".to_string(),
        GCommand::RelativeExtrusion => "M83".to_string(),
        GCommand::SetHotendTemp { celsius, wait } => {
            format!("M{} S{}", if *wait { 109 } else { 104 }, fmt_num(*celsius))
        }
        GCommand::SetBedTemp { celsius, wait } => {
            format!("M{} S{}", if *wait { 190 } else { 140 }, fmt_num(*celsius))
        }
        GCommand::FanOn { duty } => format!("M106 S{duty}"),
        GCommand::FanOff => "M107".to_string(),
        GCommand::EnableSteppers => "M17".to_string(),
        GCommand::DisableSteppers => "M84".to_string(),
        GCommand::Raw { text } => text.clone(),
    }
}

/// Serializes a whole program, one command per line.
pub(crate) fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for cmd in program.commands() {
        out.push_str(&command_to_string(cmd));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use proptest::prelude::*;

    #[test]
    fn canonical_forms() {
        assert_eq!(
            command_to_string(&GCommand::Move {
                rapid: false,
                x: Some(1.5),
                y: None,
                z: Some(0.3),
                e: Some(-0.8),
                feedrate: Some(1200.0),
            }),
            "G1 X1.5 Z0.3 E-0.8 F1200"
        );
        assert_eq!(
            command_to_string(&GCommand::Home { x: true, y: false, z: false }),
            "G28 X"
        );
        assert_eq!(
            command_to_string(&GCommand::Home { x: true, y: true, z: true }),
            "G28"
        );
        assert_eq!(
            command_to_string(&GCommand::SetHotendTemp { celsius: 210.0, wait: true }),
            "M109 S210"
        );
        assert_eq!(command_to_string(&GCommand::FanOn { duty: 64 }), "M106 S64");
    }

    #[test]
    fn trailing_zero_stripping() {
        assert_eq!(fmt_num(1.50000), "1.5");
        assert_eq!(fmt_num(2.0), "2");
        assert_eq!(fmt_num(-0.04), "-0.04");
        assert_eq!(fmt_num(0.12345), "0.12345");
    }

    /// Snaps a value onto the exact 5-decimal grid the writer emits, so
    /// the round trip is bit-identical.
    fn grid(v: f64) -> f64 {
        format!("{v:.5}").parse().expect("formatted float reparses")
    }

    fn arb_opt_mm() -> impl Strategy<Value = Option<f64>> {
        proptest::option::of(
            (-500i64..500i64, 0u32..100_000u32)
                .prop_map(|(i, f)| grid(i as f64 + f as f64 / 100_000.0)),
        )
    }

    fn arb_command() -> impl Strategy<Value = GCommand> {
        prop_oneof![
            (any::<bool>(), arb_opt_mm(), arb_opt_mm(), arb_opt_mm(), arb_opt_mm(),
             proptest::option::of(1u32..100_000u32))
                .prop_map(|(rapid, x, y, z, e, f)| GCommand::Move {
                    rapid,
                    x,
                    y,
                    z,
                    e,
                    feedrate: f.map(f64::from),
                }),
            (0u32..1_000_000u32).prop_map(|p| GCommand::Dwell { milliseconds: p as f64 }),
            (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(x, y, z)| {
                if !x && !y && !z {
                    GCommand::Home { x: true, y: true, z: true }
                } else {
                    GCommand::Home { x, y, z }
                }
            }),
            Just(GCommand::AbsolutePositioning),
            Just(GCommand::RelativePositioning),
            (arb_opt_mm(), arb_opt_mm(), arb_opt_mm(), arb_opt_mm())
                .prop_map(|(x, y, z, e)| GCommand::SetPosition { x, y, z, e }),
            Just(GCommand::AbsoluteExtrusion),
            Just(GCommand::RelativeExtrusion),
            (0u32..400u32, any::<bool>())
                .prop_map(|(c, w)| GCommand::SetHotendTemp { celsius: c as f64, wait: w }),
            (0u32..120u32, any::<bool>())
                .prop_map(|(c, w)| GCommand::SetBedTemp { celsius: c as f64, wait: w }),
            any::<u8>().prop_map(|d| GCommand::FanOn { duty: d }),
            Just(GCommand::FanOff),
            Just(GCommand::EnableSteppers),
            Just(GCommand::DisableSteppers),
        ]
    }

    proptest! {
        /// write → parse is the identity on typed commands.
        #[test]
        fn prop_round_trip(cmds in proptest::collection::vec(arb_command(), 0..50)) {
            let program: Program = cmds.into_iter().collect();
            let text = program.to_gcode();
            let reparsed = parse(&text).expect("canonical output must parse");
            prop_assert_eq!(program, reparsed);
        }
    }
}

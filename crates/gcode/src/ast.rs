//! Typed G-code AST (Marlin dialect).

use std::fmt;

/// One G-code command, as Marlin interprets it.
///
/// Only the commands the firmware simulator executes are typed; anything
/// else is preserved verbatim in [`GCommand::Raw`] so programs survive a
/// parse → write round trip.
#[derive(Debug, Clone, PartialEq)]
pub enum GCommand {
    /// `G0`/`G1` — linear move. Unset axes keep their current target.
    Move {
        /// True for `G0` (travel); false for `G1` (print move).
        rapid: bool,
        /// Target X, mm (absolute or relative per the positioning mode).
        x: Option<f64>,
        /// Target Y, mm.
        y: Option<f64>,
        /// Target Z, mm.
        z: Option<f64>,
        /// Target E (filament), mm.
        e: Option<f64>,
        /// Feedrate, mm/min (sticky: applies to later moves too).
        feedrate: Option<f64>,
    },
    /// `G4` — dwell.
    Dwell {
        /// Pause length in milliseconds.
        milliseconds: f64,
    },
    /// `G28` — home. With no axis words all axes home.
    Home {
        /// Home X.
        x: bool,
        /// Home Y.
        y: bool,
        /// Home Z.
        z: bool,
    },
    /// `G90` — absolute positioning for X/Y/Z (and E unless `M83`).
    AbsolutePositioning,
    /// `G91` — relative positioning.
    RelativePositioning,
    /// `G92` — reset the logical position of the given axes.
    SetPosition {
        /// New logical X, mm.
        x: Option<f64>,
        /// New logical Y, mm.
        y: Option<f64>,
        /// New logical Z, mm.
        z: Option<f64>,
        /// New logical E, mm.
        e: Option<f64>,
    },
    /// `M82` — absolute extruder mode.
    AbsoluteExtrusion,
    /// `M83` — relative extruder mode.
    RelativeExtrusion,
    /// `M104`/`M109` — set hotend temperature.
    SetHotendTemp {
        /// Target in °C; 0 turns the heater off.
        celsius: f64,
        /// True for `M109`: block until the target is reached.
        wait: bool,
    },
    /// `M140`/`M190` — set bed temperature.
    SetBedTemp {
        /// Target in °C; 0 turns the heater off.
        celsius: f64,
        /// True for `M190`: block until the target is reached.
        wait: bool,
    },
    /// `M106` — part-cooling fan on at `duty`/255.
    FanOn {
        /// PWM duty, 0–255.
        duty: u8,
    },
    /// `M107` — part-cooling fan off.
    FanOff,
    /// `M17` — energize all stepper drivers.
    EnableSteppers,
    /// `M18`/`M84` — release all stepper drivers.
    DisableSteppers,
    /// Any other command, preserved verbatim (e.g. `M115`, `M73 P10`).
    Raw {
        /// The literal text of the command without comment.
        text: String,
    },
}

impl GCommand {
    /// True if this is a motion command (`G0`/`G1`) that extrudes
    /// (has an E word).
    pub fn is_extruding_move(&self) -> bool {
        matches!(self, GCommand::Move { e: Some(_), .. })
    }

    /// True if this is any motion command.
    pub fn is_move(&self) -> bool {
        matches!(self, GCommand::Move { .. })
    }
}

impl fmt::Display for GCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::writer::command_to_string(self))
    }
}

/// A parsed G-code program: an ordered list of commands.
///
/// # Example
///
/// ```
/// use offramps_gcode::{Program, GCommand};
///
/// let mut p = Program::new();
/// p.push(GCommand::Home { x: true, y: true, z: true });
/// p.push(GCommand::Move { rapid: false, x: Some(10.0), y: None, z: None,
///                         e: Some(0.5), feedrate: Some(1200.0) });
/// assert_eq!(p.len(), 2);
/// let text = p.to_gcode();
/// assert!(text.starts_with("G28"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    commands: Vec<GCommand>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program {
            commands: Vec::new(),
        }
    }

    /// Appends a command.
    pub fn push(&mut self, command: GCommand) {
        self.commands.push(command);
    }

    /// The commands in execution order.
    pub fn commands(&self) -> &[GCommand] {
        &self.commands
    }

    /// Mutable access to the commands (used by attack transformers).
    pub fn commands_mut(&mut self) -> &mut Vec<GCommand> {
        &mut self.commands
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// True if the program has no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Iterates over the commands.
    pub fn iter(&self) -> std::slice::Iter<'_, GCommand> {
        self.commands.iter()
    }

    /// Serializes back to G-code text (one command per line, `\n`
    /// terminated). Parsing the output yields an equal `Program`.
    pub fn to_gcode(&self) -> String {
        crate::writer::program_to_string(self)
    }
}

impl FromIterator<GCommand> for Program {
    fn from_iter<I: IntoIterator<Item = GCommand>>(iter: I) -> Self {
        Program {
            commands: iter.into_iter().collect(),
        }
    }
}

impl Extend<GCommand> for Program {
    fn extend<I: IntoIterator<Item = GCommand>>(&mut self, iter: I) {
        self.commands.extend(iter);
    }
}

impl IntoIterator for Program {
    type Item = GCommand;
    type IntoIter = std::vec::IntoIter<GCommand>;
    fn into_iter(self) -> Self::IntoIter {
        self.commands.into_iter()
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a GCommand;
    type IntoIter = std::slice::Iter<'a, GCommand>;
    fn into_iter(self) -> Self::IntoIter {
        self.commands.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_collect_and_iterate() {
        let p: Program = vec![GCommand::EnableSteppers, GCommand::FanOff]
            .into_iter()
            .collect();
        assert_eq!(p.len(), 2);
        assert_eq!(p.iter().count(), 2);
        assert_eq!((&p).into_iter().count(), 2);
        assert_eq!(p.into_iter().count(), 2);
    }

    #[test]
    fn move_classification() {
        let m = GCommand::Move {
            rapid: false,
            x: Some(1.0),
            y: None,
            z: None,
            e: Some(0.1),
            feedrate: None,
        };
        assert!(m.is_move());
        assert!(m.is_extruding_move());
        assert!(!GCommand::FanOff.is_move());
        let travel = GCommand::Move {
            rapid: true,
            x: Some(1.0),
            y: None,
            z: None,
            e: None,
            feedrate: None,
        };
        assert!(!travel.is_extruding_move());
    }

    #[test]
    fn empty_program() {
        let p = Program::new();
        assert!(p.is_empty());
        assert_eq!(p.to_gcode(), "");
    }
}

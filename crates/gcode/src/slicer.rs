//! A small slicer: solids → multi-layer G-code toolpaths.
//!
//! The paper slices its test parts with Ultimaker Cura and prints them on
//! a Prusa i3 MK3S+. A full slicer is out of scope, but the experiments
//! need realistic workloads: multi-layer prints with perimeters, infill,
//! travel moves, retraction, heating and fan control. This module slices
//! **convex** solids (boxes, cylinders/prisms) into exactly that command
//! vocabulary.
//!
//! # Example
//!
//! ```
//! use offramps_gcode::slicer::{SlicerConfig, Solid, slice};
//! use offramps_gcode::ProgramStats;
//!
//! let cfg = SlicerConfig::default();
//! let program = slice(&Solid::rect_prism(10.0, 10.0, 1.0), &cfg);
//! let stats = ProgramStats::analyze(&program);
//! assert!(stats.total_extruded_mm > 0.0);
//! assert_eq!(stats.layer_count(), 5); // 1.0mm at 0.2mm layers
//! ```

use crate::ast::{GCommand, Program};

/// How infill scanlines are oriented from layer to layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InfillPattern {
    /// Alternate the scan direction 90° every layer (the classic
    /// rectilinear grid; the default and the behaviour of every paper
    /// workload).
    #[default]
    Crosshatch,
    /// Keep every layer's scanlines parallel — weaker parts, but a
    /// distinct motion signature (long runs of same-axis moves).
    Aligned,
}

/// Slicing parameters (defaults match a common 0.4 mm-nozzle PLA profile).
#[derive(Debug, Clone, PartialEq)]
pub struct SlicerConfig {
    /// Layer height, mm.
    pub layer_height: f64,
    /// Extrusion width, mm (usually a bit wider than the nozzle).
    pub extrusion_width: f64,
    /// Filament diameter, mm.
    pub filament_diameter: f64,
    /// Number of perimeter loops per layer.
    pub perimeters: u32,
    /// Spacing between infill lines, mm (0 disables infill).
    pub infill_spacing: f64,
    /// Layer-to-layer infill orientation.
    pub infill_pattern: InfillPattern,
    /// Print-move speed, mm/s.
    pub print_speed: f64,
    /// First-layer print speed, mm/s.
    pub first_layer_speed: f64,
    /// Travel speed, mm/s.
    pub travel_speed: f64,
    /// Retraction length, mm (0 disables retraction).
    pub retract_len: f64,
    /// Retraction speed, mm/s.
    pub retract_speed: f64,
    /// Hotend temperature, °C.
    pub hotend_temp: f64,
    /// Bed temperature, °C.
    pub bed_temp: f64,
    /// Part-fan duty (0–255) from `fan_from_layer` onward.
    pub fan_duty: u8,
    /// First layer index (0-based) with the fan on.
    pub fan_from_layer: usize,
    /// Extrusion multiplier ("flow").
    pub flow: f64,
    /// Part centre on the bed, mm.
    pub center: (f64, f64),
}

impl Default for SlicerConfig {
    fn default() -> Self {
        SlicerConfig {
            layer_height: 0.2,
            extrusion_width: 0.45,
            filament_diameter: 1.75,
            perimeters: 2,
            infill_spacing: 2.0,
            infill_pattern: InfillPattern::Crosshatch,
            print_speed: 40.0,
            first_layer_speed: 20.0,
            travel_speed: 120.0,
            retract_len: 0.8,
            retract_speed: 35.0,
            hotend_temp: 215.0,
            bed_temp: 60.0,
            fan_duty: 255,
            fan_from_layer: 1,
            flow: 1.0,
            center: (125.0, 105.0),
        }
    }
}

impl SlicerConfig {
    /// A small, fast profile for unit tests and quick simulations:
    /// thicker layers, single perimeter, sparse infill, near origin.
    pub fn fast() -> Self {
        SlicerConfig {
            layer_height: 0.3,
            perimeters: 1,
            infill_spacing: 3.0,
            center: (30.0, 30.0),
            ..SlicerConfig::default()
        }
    }

    /// Filament millimetres pushed per millimetre of XY path.
    pub fn e_per_mm(&self) -> f64 {
        let bead_area = self.extrusion_width * self.layer_height;
        let filament_area =
            std::f64::consts::FRAC_PI_4 * self.filament_diameter * self.filament_diameter;
        bead_area * self.flow / filament_area
    }
}

/// A convex solid the slicer understands.
#[derive(Debug, Clone, PartialEq)]
pub enum Solid {
    /// Axis-aligned rectangular prism, centred on `SlicerConfig::center`.
    RectPrism {
        /// X size, mm.
        width: f64,
        /// Y size, mm.
        depth: f64,
        /// Z size, mm.
        height: f64,
    },
    /// Right prism over a regular polygon (`segments` ≥ 3); approximates a
    /// cylinder for large `segments`.
    Prism {
        /// Circumscribed radius, mm.
        radius: f64,
        /// Z size, mm.
        height: f64,
        /// Number of polygon vertices.
        segments: u32,
    },
}

impl Solid {
    /// Convenience constructor for a rectangular prism.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not strictly positive.
    pub fn rect_prism(width: f64, depth: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && depth > 0.0 && height > 0.0,
            "solid dimensions must be positive"
        );
        Solid::RectPrism {
            width,
            depth,
            height,
        }
    }

    /// Convenience constructor for a cylinder-like prism.
    ///
    /// # Panics
    ///
    /// Panics if `radius`/`height` are not positive or `segments < 3`.
    pub fn cylinder(radius: f64, height: f64, segments: u32) -> Self {
        assert!(
            radius > 0.0 && height > 0.0,
            "solid dimensions must be positive"
        );
        assert!(segments >= 3, "a prism needs at least 3 segments");
        Solid::Prism {
            radius,
            height,
            segments,
        }
    }

    /// The 20 mm calibration cube used throughout the paper's Table I.
    pub fn calibration_cube() -> Self {
        Solid::rect_prism(20.0, 20.0, 20.0)
    }

    /// Part height, mm.
    pub fn height(&self) -> f64 {
        match self {
            Solid::RectPrism { height, .. } | Solid::Prism { height, .. } => *height,
        }
    }

    /// The outline polygon at a given layer, centred at `center`,
    /// counter-clockwise.
    fn outline(&self, center: (f64, f64)) -> Vec<(f64, f64)> {
        match self {
            Solid::RectPrism { width, depth, .. } => {
                let (hw, hd) = (width / 2.0, depth / 2.0);
                vec![
                    (center.0 - hw, center.1 - hd),
                    (center.0 + hw, center.1 - hd),
                    (center.0 + hw, center.1 + hd),
                    (center.0 - hw, center.1 + hd),
                ]
            }
            Solid::Prism {
                radius, segments, ..
            } => (0..*segments)
                .map(|i| {
                    let a = 2.0 * std::f64::consts::PI * f64::from(i) / f64::from(*segments);
                    (center.0 + radius * a.cos(), center.1 + radius * a.sin())
                })
                .collect(),
        }
    }
}

/// Insets a convex CCW polygon by distance `d` (positive = inward).
/// Returns `None` if the polygon collapses.
fn inset_convex(poly: &[(f64, f64)], d: f64) -> Option<Vec<(f64, f64)>> {
    let n = poly.len();
    if n < 3 {
        return None;
    }
    // Shift every edge inward along its inner normal, then intersect
    // consecutive edges.
    let mut lines = Vec::with_capacity(n); // (point on line, direction)
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        let (dx, dy) = (b.0 - a.0, b.1 - a.1);
        let len = (dx * dx + dy * dy).sqrt();
        if len == 0.0 {
            return None;
        }
        // CCW polygon: the inward normal of edge (dx,dy) is (-dy,dx)/len.
        let nx = -dy / len;
        let ny = dx / len;
        lines.push(((a.0 + nx * d, a.1 + ny * d), (dx, dy)));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let (p1, d1) = lines[(i + n - 1) % n];
        let (p2, d2) = lines[i];
        let denom = d1.0 * d2.1 - d1.1 * d2.0;
        if denom.abs() < 1e-12 {
            return None; // parallel edges (degenerate)
        }
        let t = ((p2.0 - p1.0) * d2.1 - (p2.1 - p1.1) * d2.0) / denom;
        out.push((p1.0 + d1.0 * t, p1.1 + d1.1 * t));
    }
    // Validate: the polygon collapses when any edge flips direction
    // (vertices crossed over the centre), and must keep positive area.
    for i in 0..n {
        let v0 = out[i];
        let v1 = out[(i + 1) % n];
        // Segment v_i → v_{i+1} lies on inset line i; compare with that
        // edge's original direction.
        let d_orig = lines[i].1;
        let dot = (v1.0 - v0.0) * d_orig.0 + (v1.1 - v0.1) * d_orig.1;
        if dot <= 1e-12 {
            return None;
        }
    }
    if signed_area(&out) <= 1e-9 {
        return None;
    }
    Some(out)
}

fn signed_area(poly: &[(f64, f64)]) -> f64 {
    let n = poly.len();
    let mut a = 0.0;
    for i in 0..n {
        let p = poly[i];
        let q = poly[(i + 1) % n];
        a += p.0 * q.1 - q.0 * p.1;
    }
    a / 2.0
}

/// Intersects a horizontal scanline `y` with a convex polygon; returns the
/// x-range covered, if any.
fn scanline_range(poly: &[(f64, f64)], y: f64) -> Option<(f64, f64)> {
    let n = poly.len();
    let mut xs: Vec<f64> = Vec::with_capacity(2);
    for i in 0..n {
        let a = poly[i];
        let b = poly[(i + 1) % n];
        let (y0, y1) = (a.1, b.1);
        if (y0 - y).abs() < 1e-12 && (y1 - y).abs() < 1e-12 {
            // Horizontal edge on the scanline: take both ends.
            xs.push(a.0);
            xs.push(b.0);
        } else if (y0 <= y && y1 > y) || (y1 <= y && y0 > y) {
            let t = (y - y0) / (y1 - y0);
            xs.push(a.0 + t * (b.0 - a.0));
        }
    }
    if xs.len() < 2 {
        return None;
    }
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (hi - lo > 1e-9).then_some((lo, hi))
}

/// Emitter that tracks position and produces travel/print/retract moves.
struct Emitter<'a> {
    cfg: &'a SlicerConfig,
    program: Program,
    pos: Option<(f64, f64)>,
    retracted: bool,
}

impl<'a> Emitter<'a> {
    fn new(cfg: &'a SlicerConfig) -> Self {
        Emitter {
            cfg,
            program: Program::new(),
            pos: None,
            retracted: false,
        }
    }

    fn push(&mut self, cmd: GCommand) {
        self.program.push(cmd);
    }

    fn travel_to(&mut self, x: f64, y: f64) {
        if self.pos == Some((x, y)) {
            return;
        }
        let far = self
            .pos
            .map(|(px, py)| ((x - px).powi(2) + (y - py).powi(2)).sqrt() > 2.0)
            .unwrap_or(true);
        if far && self.cfg.retract_len > 0.0 && !self.retracted {
            self.push(GCommand::Move {
                rapid: false,
                x: None,
                y: None,
                z: None,
                e: Some(-self.cfg.retract_len),
                feedrate: Some(self.cfg.retract_speed * 60.0),
            });
            self.retracted = true;
        }
        self.push(GCommand::Move {
            rapid: true,
            x: Some(round5(x)),
            y: Some(round5(y)),
            z: None,
            e: None,
            feedrate: Some(self.cfg.travel_speed * 60.0),
        });
        self.pos = Some((x, y));
    }

    fn print_to(&mut self, x: f64, y: f64, speed_mm_s: f64) {
        let (px, py) = self.pos.expect("print move requires a prior position");
        let dist = ((x - px).powi(2) + (y - py).powi(2)).sqrt();
        if dist < 1e-9 {
            return;
        }
        if self.retracted {
            self.push(GCommand::Move {
                rapid: false,
                x: None,
                y: None,
                z: None,
                e: Some(self.cfg.retract_len),
                feedrate: Some(self.cfg.retract_speed * 60.0),
            });
            self.retracted = false;
        }
        let e = dist * self.cfg.e_per_mm();
        self.push(GCommand::Move {
            rapid: false,
            x: Some(round5(x)),
            y: Some(round5(y)),
            z: None,
            e: Some(round5(e)),
            feedrate: Some(speed_mm_s * 60.0),
        });
        self.pos = Some((x, y));
    }

    fn polygon(&mut self, poly: &[(f64, f64)], speed: f64) {
        if poly.is_empty() {
            return;
        }
        self.travel_to(poly[0].0, poly[0].1);
        for p in poly.iter().skip(1).chain(std::iter::once(&poly[0])) {
            self.print_to(p.0, p.1, speed);
        }
    }
}

use crate::writer::snap5 as round5;

/// Slices `solid` with `cfg` into a complete printable program
/// (heat-up, homing, layers, cool-down). The part is centred on
/// `cfg.center`; multi-part plates go through [`slice_plate`].
///
/// # Panics
///
/// Panics if `cfg.layer_height` or geometric parameters are not positive.
pub fn slice(solid: &Solid, cfg: &SlicerConfig) -> Program {
    slice_plate(std::slice::from_ref(&(solid.clone(), cfg.center)), cfg)
}

/// Slices a whole build plate: each `(solid, centre)` island is printed
/// in order within every layer, so multi-island plates produce the long
/// inter-part travels (with retraction) that make a workload
/// travel-heavy. A single-island plate emits exactly the same program as
/// [`slice`]. Layers continue until the tallest island is finished;
/// shorter islands simply stop contributing.
///
/// # Panics
///
/// Panics if `parts` is empty, or if `cfg.layer_height` or geometric
/// parameters are not positive.
pub fn slice_plate(parts: &[(Solid, (f64, f64))], cfg: &SlicerConfig) -> Program {
    assert!(!parts.is_empty(), "a plate needs at least one part");
    assert!(cfg.layer_height > 0.0, "layer height must be positive");
    assert!(
        cfg.extrusion_width > 0.0,
        "extrusion width must be positive"
    );
    let mut em = Emitter::new(cfg);

    // ---- start sequence (heat, home, positioning modes) ----
    em.push(GCommand::AbsolutePositioning);
    em.push(GCommand::RelativeExtrusion);
    em.push(GCommand::SetBedTemp {
        celsius: cfg.bed_temp,
        wait: false,
    });
    em.push(GCommand::SetHotendTemp {
        celsius: cfg.hotend_temp,
        wait: false,
    });
    em.push(GCommand::Home {
        x: true,
        y: true,
        z: true,
    });
    em.push(GCommand::SetBedTemp {
        celsius: cfg.bed_temp,
        wait: true,
    });
    em.push(GCommand::SetHotendTemp {
        celsius: cfg.hotend_temp,
        wait: true,
    });
    em.push(GCommand::EnableSteppers);
    em.push(GCommand::SetPosition {
        x: None,
        y: None,
        z: None,
        e: Some(0.0),
    });

    let layer_count = parts
        .iter()
        .map(|(solid, _)| (solid.height() / cfg.layer_height).round().max(1.0) as usize)
        .max()
        .expect("non-empty plate");
    let outlines: Vec<(usize, Vec<(f64, f64)>)> = parts
        .iter()
        .map(|(solid, center)| {
            let layers = (solid.height() / cfg.layer_height).round().max(1.0) as usize;
            (layers, solid.outline(*center))
        })
        .collect();

    for layer in 0..layer_count {
        let z = cfg.layer_height * (layer + 1) as f64;
        // Fan control at the configured layer.
        if layer == cfg.fan_from_layer && cfg.fan_duty > 0 {
            em.push(GCommand::FanOn { duty: cfg.fan_duty });
        }
        em.push(GCommand::Move {
            rapid: false,
            x: None,
            y: None,
            z: Some(round5(z)),
            e: None,
            feedrate: Some(600.0),
        });
        let speed = if layer == 0 {
            cfg.first_layer_speed
        } else {
            cfg.print_speed
        };

        for (part_layers, outline) in &outlines {
            if layer >= *part_layers {
                continue; // this island already topped out
            }

            // Perimeters, outside-in: loop i inset by (i + 0.5) widths.
            let mut innermost = None;
            for i in 0..cfg.perimeters {
                let d = cfg.extrusion_width * (f64::from(i) + 0.5);
                match inset_convex(outline, d) {
                    Some(loop_poly) => {
                        em.polygon(&loop_poly, speed);
                        innermost = Some(loop_poly);
                    }
                    None => break,
                }
            }

            // Infill: scanlines inside the innermost perimeter (inset one
            // more width so infill slightly overlaps the perimeter).
            // Alternate scan direction each line; orientation per layer is
            // the configured pattern's choice.
            if cfg.infill_spacing > 0.0 {
                if let Some(inner) = innermost
                    .as_ref()
                    .and_then(|p| inset_convex(p, cfg.extrusion_width * 0.5))
                {
                    let rotate = match cfg.infill_pattern {
                        InfillPattern::Crosshatch => layer % 2 == 1,
                        InfillPattern::Aligned => false,
                    };
                    let poly: Vec<(f64, f64)> = if rotate {
                        inner.iter().map(|(x, y)| (*y, *x)).collect()
                    } else {
                        inner.clone()
                    };
                    let min_y = poly.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
                    let max_y = poly.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
                    let mut y = min_y + cfg.infill_spacing / 2.0;
                    let mut flip = false;
                    while y < max_y {
                        if let Some((lo, hi)) = scanline_range(&poly, y) {
                            let (sx, ex) = if flip { (hi, lo) } else { (lo, hi) };
                            let (tsx, tsy) = if rotate { (y, sx) } else { (sx, y) };
                            let (tex, tey) = if rotate { (y, ex) } else { (ex, y) };
                            em.travel_to(tsx, tsy);
                            em.print_to(tex, tey, speed);
                            flip = !flip;
                        }
                        y += cfg.infill_spacing;
                    }
                }
            }
        }
    }

    // ---- end sequence ----
    if cfg.retract_len > 0.0 {
        em.push(GCommand::Move {
            rapid: false,
            x: None,
            y: None,
            z: None,
            e: Some(-cfg.retract_len),
            feedrate: Some(cfg.retract_speed * 60.0),
        });
    }
    em.push(GCommand::SetHotendTemp {
        celsius: 0.0,
        wait: false,
    });
    em.push(GCommand::SetBedTemp {
        celsius: 0.0,
        wait: false,
    });
    em.push(GCommand::FanOff);
    em.push(GCommand::Home {
        x: true,
        y: true,
        z: false,
    });
    em.push(GCommand::DisableSteppers);
    em.program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ProgramStats;

    #[test]
    fn inset_square() {
        let sq = vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)];
        let inner = inset_convex(&sq, 1.0).unwrap();
        assert_eq!(inner.len(), 4);
        for (x, y) in &inner {
            assert!(*x >= 0.99 && *x <= 9.01, "x {x}");
            assert!(*y >= 0.99 && *y <= 9.01, "y {y}");
        }
        assert!((signed_area(&inner) - 64.0).abs() < 1e-9);
    }

    #[test]
    fn inset_collapse_returns_none() {
        let sq = vec![(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)];
        assert!(inset_convex(&sq, 2.5).is_none());
    }

    #[test]
    fn scanline_square() {
        let sq = vec![(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)];
        assert_eq!(scanline_range(&sq, 5.0), Some((0.0, 10.0)));
        assert_eq!(scanline_range(&sq, 11.0), None);
    }

    #[test]
    fn sliced_cube_has_expected_layers_and_extrusion() {
        let cfg = SlicerConfig::fast();
        let p = slice(&Solid::rect_prism(10.0, 10.0, 3.0), &cfg);
        let s = ProgramStats::analyze(&p);
        assert_eq!(s.layer_count(), 10, "3mm at 0.3mm layers");
        assert!(
            s.total_extruded_mm > 1.0,
            "extruded {}",
            s.total_extruded_mm
        );
        // Bead volume ~= path length * width * height. Retract/un-retract
        // pairs cancel in `net_extruded_mm`; the final end-of-print retract
        // is never refed, so add it back to get the filament in the part.
        let bead_volume = s.extrusion_path_mm * cfg.extrusion_width * cfg.layer_height;
        let part_filament = s.net_extruded_mm + cfg.retract_len;
        let filament_volume = part_filament
            * std::f64::consts::FRAC_PI_4
            * cfg.filament_diameter
            * cfg.filament_diameter;
        let rel = (bead_volume - filament_volume).abs() / bead_volume;
        assert!(rel < 0.02, "volume mismatch {rel}");
    }

    #[test]
    fn part_fits_within_commanded_bbox() {
        let cfg = SlicerConfig::fast();
        let p = slice(&Solid::rect_prism(10.0, 8.0, 0.6), &cfg);
        let s = ProgramStats::analyze(&p);
        let (cx, cy) = cfg.center;
        assert!(s.min_corner[0] >= cx - 5.0 - 1e-6);
        assert!(s.max_corner[0] <= cx + 5.0 + 1e-6);
        assert!(s.min_corner[1] >= cy - 4.0 - 1e-6);
        assert!(s.max_corner[1] <= cy + 4.0 + 1e-6);
    }

    #[test]
    fn cylinder_slices() {
        let cfg = SlicerConfig::fast();
        let p = slice(&Solid::cylinder(6.0, 0.9, 24), &cfg);
        let s = ProgramStats::analyze(&p);
        assert_eq!(s.layer_count(), 3);
        assert!(s.total_extruded_mm > 0.5);
    }

    #[test]
    fn start_sequence_heats_then_homes_then_waits() {
        let p = slice(&Solid::rect_prism(5.0, 5.0, 0.3), &SlicerConfig::fast());
        let cmds = p.commands();
        let home_idx = cmds
            .iter()
            .position(|c| matches!(c, GCommand::Home { .. }))
            .unwrap();
        let heat_idx = cmds
            .iter()
            .position(|c| matches!(c, GCommand::SetHotendTemp { wait: false, .. }))
            .unwrap();
        let wait_idx = cmds
            .iter()
            .position(|c| matches!(c, GCommand::SetHotendTemp { wait: true, .. }))
            .unwrap();
        assert!(heat_idx < home_idx && home_idx < wait_idx);
    }

    #[test]
    fn fan_turns_on_at_configured_layer() {
        let cfg = SlicerConfig::fast();
        let p = slice(&Solid::rect_prism(8.0, 8.0, 1.2), &cfg);
        let text = p.to_gcode();
        assert!(text.contains("M106 S255"));
        assert!(text.ends_with("M84\n"));
    }

    #[test]
    fn retraction_emitted_for_long_travels() {
        let cfg = SlicerConfig::fast();
        let p = slice(&Solid::rect_prism(12.0, 12.0, 0.3), &cfg);
        let has_retract = p
            .commands()
            .iter()
            .any(|c| matches!(c, GCommand::Move { e: Some(e), x: None, y: None, .. } if *e < 0.0));
        assert!(has_retract, "expected at least one retract");
    }

    #[test]
    fn calibration_cube_matches_paper_workload() {
        let cube = Solid::calibration_cube();
        assert_eq!(cube.height(), 20.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_degenerate_solid() {
        let _ = Solid::rect_prism(0.0, 5.0, 5.0);
    }

    #[test]
    fn single_island_plate_equals_slice() {
        let cfg = SlicerConfig::fast();
        let solid = Solid::rect_prism(7.0, 6.0, 0.9);
        let direct = slice(&solid, &cfg);
        let plated = slice_plate(&[(solid, cfg.center)], &cfg);
        assert_eq!(direct.to_gcode(), plated.to_gcode());
    }

    #[test]
    fn two_island_plate_adds_travel_and_doubles_material() {
        let cfg = SlicerConfig::fast();
        let solid = Solid::rect_prism(5.0, 5.0, 0.6);
        let one = ProgramStats::analyze(&slice(&solid, &cfg));
        let plate = slice_plate(
            &[(solid.clone(), (25.0, 30.0)), (solid.clone(), (40.0, 30.0))],
            &cfg,
        );
        let two = ProgramStats::analyze(&plate);
        assert_eq!(one.layer_count(), two.layer_count());
        let material_ratio = two.total_extruded_mm / one.total_extruded_mm;
        assert!(
            (material_ratio - 2.0).abs() < 0.05,
            "material ratio {material_ratio}"
        );
        assert!(
            two.travel_path_mm > one.travel_path_mm + 10.0,
            "island hops must add travel: {} vs {}",
            two.travel_path_mm,
            one.travel_path_mm
        );
    }

    #[test]
    fn shorter_island_stops_contributing() {
        let cfg = SlicerConfig::fast();
        let plate = slice_plate(
            &[
                (Solid::rect_prism(5.0, 5.0, 1.2), (25.0, 30.0)),
                (Solid::rect_prism(5.0, 5.0, 0.3), (40.0, 30.0)),
            ],
            &cfg,
        );
        let s = ProgramStats::analyze(&plate);
        assert_eq!(s.layer_count(), 4, "tallest island sets the layer count");
    }

    /// Counts extruding XY moves that change Y (vertical strokes). A
    /// square's perimeter contributes exactly two per loop per layer;
    /// horizontal infill contributes none.
    fn vertical_extruding_moves(p: &Program) -> usize {
        let (mut x, mut y) = (f64::NAN, f64::NAN);
        let mut count = 0;
        for cmd in p.commands() {
            if let GCommand::Move {
                x: mx, y: my, e, ..
            } = cmd
            {
                let (nx, ny) = (mx.unwrap_or(x), my.unwrap_or(y));
                if e.is_some_and(|e| e > 0.0) && (ny - y).abs() > 1e-9 {
                    count += 1;
                }
                (x, y) = (nx, ny);
            }
        }
        count
    }

    #[test]
    fn aligned_infill_never_rotates() {
        let solid = Solid::rect_prism(8.0, 8.0, 0.9); // 3 layers
        let crosshatch = slice(&solid, &SlicerConfig::fast());
        let aligned = slice(
            &solid,
            &SlicerConfig {
                infill_pattern: InfillPattern::Aligned,
                ..SlicerConfig::fast()
            },
        );
        assert_ne!(crosshatch.to_gcode(), aligned.to_gcode());
        // Aligned: only perimeter verticals (2 per layer, 1 perimeter).
        assert_eq!(vertical_extruding_moves(&aligned), 6);
        // Crosshatch: the middle layer's infill runs vertically too.
        assert!(vertical_extruding_moves(&crosshatch) > 6);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn rejects_empty_plate() {
        let _ = slice_plate(&[], &SlicerConfig::fast());
    }

    #[test]
    fn e_per_mm_is_physical() {
        let cfg = SlicerConfig::default();
        // 0.45 * 0.2 / (pi/4 * 1.75^2) ~= 0.0374
        assert!((cfg.e_per_mm() - 0.0374).abs() < 0.001);
    }
}

//! Deposition model: where the plastic actually lands.
//!
//! The paper demonstrates its Trojans with photographs of printed parts
//! (Table I). The simulation's stand-in is a geometric record of every
//! extruded path segment: enough to measure dimensional inaccuracy,
//! under-/over-extrusion, layer shifts and delamination-scale Z errors —
//! the exact defects T1–T5 and T9 cause.

/// One extruded path segment at a fixed Z.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Layer height of the segment, mm.
    pub z_mm: f64,
    /// Segment start, mm.
    pub from: (f64, f64),
    /// Segment end, mm.
    pub to: (f64, f64),
    /// Filament consumed over the segment, mm.
    pub e_mm: f64,
}

impl Segment {
    /// XY length of the segment, mm.
    pub fn length_mm(&self) -> f64 {
        let dx = self.to.0 - self.from.0;
        let dy = self.to.1 - self.from.1;
        (dx * dx + dy * dy).sqrt()
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> (f64, f64) {
        (
            (self.from.0 + self.to.0) / 2.0,
            (self.from.1 + self.to.1) / 2.0,
        )
    }
}

/// Aggregate description of one printed layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSummary {
    /// Layer Z, mm.
    pub z_mm: f64,
    /// Total extruded path length, mm.
    pub path_mm: f64,
    /// Total filament consumed, mm.
    pub e_mm: f64,
    /// Bounding box `[min_x, min_y, max_x, max_y]`, mm.
    pub bbox: [f64; 4],
    /// Path-length-weighted centroid, mm.
    pub centroid: (f64, f64),
    /// Number of recorded segments.
    pub segments: usize,
}

/// The complete deposited part.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartModel {
    segments: Vec<Segment>,
    /// Filament pushed forward over the whole job, mm.
    pub total_forward_e_mm: f64,
    /// Filament retracted over the whole job, mm.
    pub total_reverse_e_mm: f64,
}

impl PartModel {
    /// All recorded segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Filament attributed to actual deposition (segments), mm.
    pub fn deposited_e_mm(&self) -> f64 {
        self.segments.iter().map(|s| s.e_mm).sum()
    }

    /// Groups segments into layers (Z quantized to `z_quantum` mm),
    /// ascending in Z.
    pub fn layers(&self, z_quantum: f64) -> Vec<LayerSummary> {
        assert!(z_quantum > 0.0, "z quantum must be positive");
        let mut keys: Vec<i64> = self
            .segments
            .iter()
            .map(|s| (s.z_mm / z_quantum).round() as i64)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.iter()
            .map(|k| {
                let mut sum = LayerSummary {
                    z_mm: 0.0,
                    path_mm: 0.0,
                    e_mm: 0.0,
                    bbox: [
                        f64::INFINITY,
                        f64::INFINITY,
                        f64::NEG_INFINITY,
                        f64::NEG_INFINITY,
                    ],
                    centroid: (0.0, 0.0),
                    segments: 0,
                };
                let mut wx = 0.0;
                let mut wy = 0.0;
                for s in self
                    .segments
                    .iter()
                    .filter(|s| (s.z_mm / z_quantum).round() as i64 == *k)
                {
                    let len = s.length_mm();
                    sum.path_mm += len;
                    sum.e_mm += s.e_mm;
                    sum.segments += 1;
                    sum.z_mm = s.z_mm;
                    for p in [s.from, s.to] {
                        sum.bbox[0] = sum.bbox[0].min(p.0);
                        sum.bbox[1] = sum.bbox[1].min(p.1);
                        sum.bbox[2] = sum.bbox[2].max(p.0);
                        sum.bbox[3] = sum.bbox[3].max(p.1);
                    }
                    let mid = s.midpoint();
                    wx += mid.0 * len;
                    wy += mid.1 * len;
                }
                if sum.path_mm > 0.0 {
                    sum.centroid = (wx / sum.path_mm, wy / sum.path_mm);
                }
                sum
            })
            .filter(|l| l.segments > 0)
            .collect()
    }
}

/// Online recorder converting axis positions into [`Segment`]s.
///
/// The plant calls [`DepositionModel::update`] after every committed
/// microstep; the recorder emits a segment whenever filament was fed and
/// the head moved at least `resolution_mm` (or changed layers).
///
/// # Example
///
/// ```
/// use offramps_printer::DepositionModel;
///
/// let mut dep = DepositionModel::new(0.2);
/// dep.update(0.0, 0.0, 0.2, 0.0);
/// dep.update(10.0, 0.0, 0.2, 0.37); // extrude along X
/// let part = dep.finish();
/// assert!((part.deposited_e_mm() - 0.37).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DepositionModel {
    resolution_mm: f64,
    part: PartModel,
    last: Option<(f64, f64, f64)>,
    /// High-water mark of the E axis attributed to deposition so far.
    /// Retract/un-retract cycles dip below and return to this mark
    /// without creating material; only E beyond it deposits.
    e_hw: f64,
    prev_e: f64,
}

impl DepositionModel {
    /// Creates a recorder with the given XY sampling resolution.
    ///
    /// # Panics
    ///
    /// Panics if `resolution_mm` is not strictly positive.
    pub fn new(resolution_mm: f64) -> Self {
        assert!(resolution_mm > 0.0, "resolution must be positive");
        DepositionModel {
            resolution_mm,
            part: PartModel::default(),
            last: None,
            e_hw: 0.0,
            prev_e: 0.0,
        }
    }

    /// Feeds the current tool position (mm) and cumulative extruder
    /// position (mm, may decrease on retracts).
    pub fn update(&mut self, x: f64, y: f64, z: f64, e: f64) {
        let de_inst = e - self.prev_e;
        if de_inst > 0.0 {
            self.part.total_forward_e_mm += de_inst;
        } else {
            self.part.total_reverse_e_mm += -de_inst;
        }
        self.prev_e = e;

        let Some((lx, ly, lz)) = self.last else {
            self.last = Some((x, y, z));
            self.e_hw = e;
            return;
        };

        let moved = ((x - lx).powi(2) + (y - ly).powi(2)).sqrt();
        let z_changed = (z - lz).abs() > 1e-9;
        // Only filament beyond the high-water mark is new material;
        // retract/un-retract round trips stay below it.
        let de = (e - self.e_hw).max(0.0);

        if moved >= self.resolution_mm || z_changed {
            if de > 0.0 && moved > 1e-9 {
                self.part.segments.push(Segment {
                    z_mm: lz,
                    from: (lx, ly),
                    to: (x, y),
                    e_mm: de,
                });
            }
            self.last = Some((x, y, z));
            self.e_hw = self.e_hw.max(e);
        }
    }

    /// Flushes any pending partial segment and returns the part.
    pub fn finish(mut self) -> PartModel {
        if let Some((lx, ly, lz)) = self.last {
            let de = self.prev_e - self.e_hw;
            if de > 0.0 {
                // Terminal blob at the final position.
                self.part.segments.push(Segment {
                    z_mm: lz,
                    from: (lx, ly),
                    to: (lx, ly),
                    e_mm: de,
                });
            }
        }
        self.part
    }

    /// Read-only view of the part recorded so far.
    pub fn part(&self) -> &PartModel {
        &self.part
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the recorder along a straight line in small increments,
    /// as microstep-resolution updates would.
    fn extrude_line(
        dep: &mut DepositionModel,
        from: (f64, f64),
        to: (f64, f64),
        z: f64,
        e0: f64,
        e1: f64,
        steps: usize,
    ) {
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            dep.update(
                from.0 + (to.0 - from.0) * t,
                from.1 + (to.1 - from.1) * t,
                z,
                e0 + (e1 - e0) * t,
            );
        }
    }

    #[test]
    fn line_attributes_all_filament() {
        let mut dep = DepositionModel::new(0.2);
        extrude_line(&mut dep, (0.0, 0.0), (10.0, 0.0), 0.2, 0.0, 0.5, 1000);
        let part = dep.finish();
        assert!((part.deposited_e_mm() - 0.5).abs() < 1e-9);
        assert!((part.total_forward_e_mm - 0.5).abs() < 1e-9);
        let total_len: f64 = part.segments().iter().map(|s| s.length_mm()).sum();
        assert!((total_len - 10.0).abs() < 0.01);
    }

    #[test]
    fn travel_without_extrusion_records_nothing() {
        let mut dep = DepositionModel::new(0.2);
        extrude_line(&mut dep, (0.0, 0.0), (30.0, 0.0), 0.2, 0.0, 0.0, 100);
        assert!(dep.finish().segments().is_empty());
    }

    #[test]
    fn retraction_is_swallowed() {
        let mut dep = DepositionModel::new(0.2);
        extrude_line(&mut dep, (0.0, 0.0), (5.0, 0.0), 0.2, 0.0, 0.2, 100);
        // Retract in place.
        dep.update(5.0, 0.0, 0.2, -0.6);
        // Travel far, unretract, print again.
        dep.update(20.0, 0.0, 0.2, -0.6);
        dep.update(20.0, 0.0, 0.2, 0.2);
        extrude_line(&mut dep, (20.0, 0.0), (25.0, 0.0), 0.2, 0.2, 0.4, 100);
        let part = dep.finish();
        assert!((part.total_reverse_e_mm - 0.8).abs() < 1e-9);
        // Deposited = 0.2 (first line) + 0.2 (second line); the unretract
        // refill returns to the high-water mark and is not geometry.
        let dep_e = part.deposited_e_mm();
        assert!((dep_e - 0.4).abs() < 0.01, "got {dep_e}");
    }

    #[test]
    fn layers_group_by_z() {
        let mut dep = DepositionModel::new(0.2);
        extrude_line(&mut dep, (0.0, 0.0), (10.0, 0.0), 0.2, 0.0, 0.4, 200);
        dep.update(10.0, 0.0, 0.4, 0.4);
        extrude_line(&mut dep, (10.0, 0.0), (0.0, 0.0), 0.4, 0.4, 0.8, 200);
        let part = dep.finish();
        let layers = part.layers(0.01);
        assert_eq!(layers.len(), 2);
        assert!((layers[0].z_mm - 0.2).abs() < 1e-9);
        assert!((layers[1].z_mm - 0.4).abs() < 1e-9);
        assert!((layers[0].path_mm - 10.0).abs() < 0.2);
        assert!((layers[0].centroid.0 - 5.0).abs() < 0.2);
    }

    #[test]
    fn bbox_covers_square() {
        let mut dep = DepositionModel::new(0.1);
        let sq = [(0.0, 0.0), (8.0, 0.0), (8.0, 8.0), (0.0, 8.0), (0.0, 0.0)];
        let mut e = 0.0;
        for w in sq.windows(2) {
            extrude_line(&mut dep, w[0], w[1], 0.2, e, e + 0.3, 200);
            e += 0.3;
        }
        let layers = dep.finish().layers(0.01);
        assert_eq!(layers.len(), 1);
        let b = layers[0].bbox;
        assert!(b[0] <= 0.01 && b[1] <= 0.01 && b[2] >= 7.99 && b[3] >= 7.99);
        assert!((layers[0].centroid.0 - 4.0).abs() < 0.1);
    }

    #[test]
    fn segment_geometry_helpers() {
        let s = Segment {
            z_mm: 0.2,
            from: (0.0, 0.0),
            to: (3.0, 4.0),
            e_mm: 0.1,
        };
        assert!((s.length_mm() - 5.0).abs() < 1e-12);
        assert_eq!(s.midpoint(), (1.5, 2.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_resolution() {
        let _ = DepositionModel::new(0.0);
    }
}

//! Part-cooling fan model.
//!
//! The fan's rotor is a first-order system: RPM relaxes toward the level
//! implied by the gate with time constant `tau`. Because `tau` (≈0.5 s)
//! is much longer than the PWM period (20 ms), the rotor itself averages
//! the PWM — exactly why PWM fan control works — so the steady-state RPM
//! reads out the *effective* duty, which is how Trojan T9's tampering
//! becomes observable.

use offramps_des::Tick;
use offramps_signals::Level;

/// The part-cooling fan driven by the RAMPS D9 MOSFET.
///
/// # Example
///
/// ```
/// use offramps_printer::FanPlant;
/// use offramps_des::Tick;
/// use offramps_signals::Level;
///
/// let mut fan = FanPlant::new(0.5, 6_000.0);
/// fan.set_gate(Tick::ZERO, Level::High);
/// assert!(fan.rpm(Tick::from_secs(5)) > 5_900.0); // spun up
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FanPlant {
    tau_s: f64,
    max_rpm: f64,
    gate_high: bool,
    rpm: f64,
    last_update: Tick,
    // Duty estimation over the life of the recording.
    high_time_ticks: u64,
    total_time_ticks: u64,
}

impl FanPlant {
    /// Creates a stopped fan.
    pub fn new(tau_s: f64, max_rpm: f64) -> Self {
        FanPlant {
            tau_s,
            max_rpm,
            gate_high: false,
            rpm: 0.0,
            last_update: Tick::ZERO,
            high_time_ticks: 0,
            total_time_ticks: 0,
        }
    }

    fn integrate_to(&mut self, now: Tick) {
        if now <= self.last_update {
            return;
        }
        let dt_ticks = now.saturating_since(self.last_update).ticks();
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        let target = if self.gate_high { self.max_rpm } else { 0.0 };
        self.rpm = target + (self.rpm - target) * (-dt / self.tau_s).exp();
        if self.gate_high {
            self.high_time_ticks += dt_ticks;
        }
        self.total_time_ticks += dt_ticks;
        self.last_update = now;
    }

    /// Applies a gate level at `now`.
    pub fn set_gate(&mut self, now: Tick, level: Level) {
        self.integrate_to(now);
        self.gate_high = level.is_high();
    }

    /// Rotor speed at `now`. Advances internal state.
    pub fn rpm(&mut self, now: Tick) -> f64 {
        self.integrate_to(now);
        self.rpm
    }

    /// Effective duty (0–1) over everything observed so far.
    pub fn lifetime_duty(&self) -> f64 {
        if self.total_time_ticks == 0 {
            0.0
        } else {
            self.high_time_ticks as f64 / self.total_time_ticks as f64
        }
    }

    /// Resets duty accounting (e.g. at print start).
    pub fn reset_duty_accounting(&mut self) {
        self.high_time_ticks = 0;
        self.total_time_ticks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_des::SimDuration;

    #[test]
    fn spins_up_and_down() {
        let mut f = FanPlant::new(0.5, 6_000.0);
        f.set_gate(Tick::ZERO, Level::High);
        assert!(f.rpm(Tick::from_secs(3)) > 5_950.0);
        f.set_gate(Tick::from_secs(3), Level::Low);
        assert!(f.rpm(Tick::from_secs(6)) < 50.0);
    }

    #[test]
    fn pwm_averages_to_duty() {
        let mut f = FanPlant::new(0.5, 6_000.0);
        let period = SimDuration::from_millis(20);
        let mut t = Tick::ZERO;
        for _ in 0..500 {
            f.set_gate(t, Level::High);
            // 25% duty.
            f.set_gate(t + period / 4, Level::Low);
            t += period;
        }
        let rpm = f.rpm(t);
        assert!(
            (rpm - 1_500.0).abs() < 150.0,
            "25% duty should settle near 1500 rpm, got {rpm}"
        );
        assert!((f.lifetime_duty() - 0.25).abs() < 0.01);
    }

    #[test]
    fn duty_accounting_resets() {
        let mut f = FanPlant::new(0.5, 6_000.0);
        f.set_gate(Tick::ZERO, Level::High);
        let _ = f.rpm(Tick::from_secs(1));
        assert!(f.lifetime_duty() > 0.99);
        f.reset_duty_accounting();
        assert_eq!(f.lifetime_duty(), 0.0);
    }
}

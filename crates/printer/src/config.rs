//! Physical configuration of the simulated printer.
//!
//! Defaults model the paper's test machine: a Prusa i3 MK3S+ converted to
//! mechanical MIN endstops, driven by a RAMPS 1.4 with A4988 drivers at
//! 1/16 microstepping and a 24 V supply.

use offramps_signals::Axis;

/// Per-axis mechanical parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisConfig {
    /// Microsteps per millimetre of carriage travel (at the driver's
    /// configured microstep mode).
    pub steps_per_mm: f64,
    /// Usable travel, mm. Positions are clamped to `[-overtravel, travel]`.
    pub travel_mm: f64,
    /// How far past logical zero the carriage can physically move before
    /// hitting the frame, mm.
    pub overtravel_mm: f64,
    /// The MIN endstop reads *triggered* while the position is at or below
    /// this threshold, mm.
    pub endstop_trigger_mm: f64,
}

impl AxisConfig {
    /// Prusa-like defaults for a given axis.
    pub fn default_for(axis: Axis) -> Self {
        match axis {
            Axis::X => AxisConfig {
                steps_per_mm: 100.0,
                travel_mm: 250.0,
                overtravel_mm: 1.0,
                endstop_trigger_mm: 0.1,
            },
            Axis::Y => AxisConfig {
                steps_per_mm: 100.0,
                travel_mm: 210.0,
                overtravel_mm: 1.0,
                endstop_trigger_mm: 0.1,
            },
            Axis::Z => AxisConfig {
                steps_per_mm: 400.0,
                travel_mm: 210.0,
                overtravel_mm: 0.5,
                endstop_trigger_mm: 0.05,
            },
            // The extruder has no endstop and no travel limit.
            Axis::E => AxisConfig {
                steps_per_mm: 280.0,
                travel_mm: f64::INFINITY,
                overtravel_mm: f64::INFINITY,
                endstop_trigger_mm: f64::NEG_INFINITY,
            },
        }
    }
}

/// Lumped-RC thermal parameters of one heater.
///
/// `dT/dt = (power·gate − loss·(T − ambient)) / capacity`. The defaults
/// are tuned so heat-up times are realistic-but-brisk (tens of seconds),
/// keeping whole-print simulations fast; the *shape* (first-order rise,
/// overshoot behaviour under PID, unbounded rise at 100 % duty) matches
/// the physical hotend/bed the paper heated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Heater power when the MOSFET gate is high, W.
    pub power_w: f64,
    /// Thermal capacity, J/K.
    pub capacity_j_per_k: f64,
    /// Loss coefficient to ambient, W/K.
    pub loss_w_per_k: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Thermistor Beta coefficient (model: 100 kΩ NTC, Semitec-like).
    pub therm_beta: f64,
    /// Thermistor nominal resistance at 25 °C, Ω.
    pub therm_r25: f64,
    /// Divider pull-up on the RAMPS, Ω.
    pub pullup_ohm: f64,
    /// Temperature the element is damaged/destroyed at, °C (for
    /// reporting destructive Trojans like T7).
    pub damage_temp_c: f64,
}

impl ThermalConfig {
    /// A hotend-like heater (45 W cartridge, low thermal mass;
    /// equilibrium ≈ 325 °C at 100 % duty, so a stuck-on MOSFET passes
    /// MAXTEMP within a print — the paper observed T7 "passing the
    /// intended temperature within a few seconds of activation").
    pub fn hotend() -> Self {
        ThermalConfig {
            power_w: 45.0,
            capacity_j_per_k: 4.0,
            loss_w_per_k: 0.15,
            ambient_c: 25.0,
            therm_beta: 4267.0,
            therm_r25: 100_000.0,
            pullup_ohm: 4_700.0,
            damage_temp_c: 290.0,
        }
    }

    /// A heated-bed-like heater (accelerated: reaches 60 °C in ~15 s).
    pub fn bed() -> Self {
        ThermalConfig {
            power_w: 250.0,
            capacity_j_per_k: 70.0,
            loss_w_per_k: 1.8,
            ambient_c: 25.0,
            therm_beta: 3950.0,
            therm_r25: 100_000.0,
            pullup_ohm: 4_700.0,
            damage_temp_c: 150.0,
        }
    }

    /// Steady-state temperature at a constant duty in `[0, 1]`.
    pub fn steady_state_c(&self, duty: f64) -> f64 {
        self.ambient_c + self.power_w * duty / self.loss_w_per_k
    }

    /// Thermal time constant, seconds.
    pub fn tau_s(&self) -> f64 {
        self.capacity_j_per_k / self.loss_w_per_k
    }
}

/// Complete plant configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantConfig {
    /// Mechanics of X, Y, Z, E in [`Axis::ALL`] order.
    pub axes: [AxisConfig; 4],
    /// Hotend thermal model.
    pub hotend: ThermalConfig,
    /// Bed thermal model.
    pub bed: ThermalConfig,
    /// Shortest STEP high pulse the A4988 will register, ns (datasheet
    /// minimum is 1 µs).
    pub min_step_pulse_ns: u64,
    /// ADC sampling period for the thermistor feedback, milliseconds.
    pub adc_period_ms: u64,
    /// Fan: time constant of the first-order RPM response, seconds.
    pub fan_tau_s: f64,
    /// Fan: RPM at 100 % duty.
    pub fan_max_rpm: f64,
    /// Deposition: minimum XY distance between recorded path samples, mm.
    pub deposition_resolution_mm: f64,
}

impl Default for PlantConfig {
    fn default() -> Self {
        PlantConfig {
            axes: [
                AxisConfig::default_for(Axis::X),
                AxisConfig::default_for(Axis::Y),
                AxisConfig::default_for(Axis::Z),
                AxisConfig::default_for(Axis::E),
            ],
            hotend: ThermalConfig::hotend(),
            bed: ThermalConfig::bed(),
            min_step_pulse_ns: 1_000,
            adc_period_ms: 100,
            fan_tau_s: 0.5,
            fan_max_rpm: 6_000.0,
            deposition_resolution_mm: 0.2,
        }
    }
}

impl PlantConfig {
    /// The axis configuration for `axis`.
    pub fn axis(&self, axis: Axis) -> &AxisConfig {
        &self.axes[axis.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_prusa_like() {
        let c = PlantConfig::default();
        assert_eq!(c.axis(Axis::X).steps_per_mm, 100.0);
        assert_eq!(c.axis(Axis::Z).steps_per_mm, 400.0);
        assert_eq!(c.axis(Axis::E).steps_per_mm, 280.0);
        assert!(c.axis(Axis::E).min_is_unreachable());
    }

    impl AxisConfig {
        fn min_is_unreachable(&self) -> bool {
            self.endstop_trigger_mm == f64::NEG_INFINITY
        }
    }

    #[test]
    fn hotend_can_exceed_damage_temp_when_stuck_on() {
        let h = ThermalConfig::hotend();
        // Stuck-on MOSFET (T7) must be able to push past the damage point.
        assert!(h.steady_state_c(1.0) > h.damage_temp_c);
        // But a PID holding ~75% duty can still reach typical PLA temps.
        assert!(h.steady_state_c(0.75) > 215.0);
    }

    #[test]
    fn bed_reaches_typical_targets() {
        let b = ThermalConfig::bed();
        assert!(b.steady_state_c(1.0) > 100.0);
        assert!(b.tau_s() > 10.0);
    }
}

//! Part-quality comparison against a golden print.
//!
//! Table I of the paper shows Trojaned parts photographed on graph paper;
//! the visible defects are dimensional shifts, flow anomalies and layer
//! misalignment. This module quantifies those defects by comparing the
//! [`PartModel`] of a run against the golden run's.

use std::fmt;

use crate::deposition::PartModel;

/// Thresholds for defect classification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Z quantum used to group segments into layers, mm.
    pub z_quantum_mm: f64,
    /// A layer whose centroid moved more than this counts as shifted, mm.
    pub shift_threshold_mm: f64,
    /// Flow ratios outside `1 ± flow_tolerance` count as flow defects.
    pub flow_tolerance: f64,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            z_quantum_mm: 0.02,
            shift_threshold_mm: 0.3,
            flow_tolerance: 0.05,
        }
    }
}

/// Measured geometric differences between a test part and the golden part.
#[derive(Debug, Clone, PartialEq)]
pub struct PartReport {
    /// Test filament volume / golden filament volume.
    pub flow_ratio: f64,
    /// Largest per-layer centroid displacement, mm.
    pub max_centroid_offset_mm: f64,
    /// Number of layers displaced beyond the shift threshold.
    pub shifted_layers: usize,
    /// Largest per-layer-index Z difference, mm.
    pub max_z_deviation_mm: f64,
    /// Largest difference in any bounding-box dimension, mm.
    pub bbox_deviation_mm: f64,
    /// Layers found in the golden part.
    pub golden_layers: usize,
    /// Layers found in the test part.
    pub test_layers: usize,
    /// Largest gap between consecutive layer Z values in the test part,
    /// mm — gaps well above the layer height indicate delamination-scale
    /// Z shifts (Trojan T5).
    pub max_layer_gap_mm: f64,
}

impl PartReport {
    /// Compares `test` against `golden`.
    pub fn compare(golden: &PartModel, test: &PartModel, config: &QualityConfig) -> Self {
        let gl = golden.layers(config.z_quantum_mm);
        let tl = test.layers(config.z_quantum_mm);

        let golden_e = golden.deposited_e_mm();
        let flow_ratio = if golden_e > 0.0 {
            test.deposited_e_mm() / golden_e
        } else if test.deposited_e_mm() > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };

        let mut max_centroid = 0.0_f64;
        let mut shifted = 0;
        let mut max_z_dev = 0.0_f64;
        let mut bbox_dev = 0.0_f64;
        for (g, t) in gl.iter().zip(tl.iter()) {
            let d = ((g.centroid.0 - t.centroid.0).powi(2) + (g.centroid.1 - t.centroid.1).powi(2))
                .sqrt();
            max_centroid = max_centroid.max(d);
            if d > config.shift_threshold_mm {
                shifted += 1;
            }
            max_z_dev = max_z_dev.max((g.z_mm - t.z_mm).abs());
            for i in 0..4 {
                bbox_dev = bbox_dev.max((g.bbox[i] - t.bbox[i]).abs());
            }
        }

        let mut max_gap = 0.0_f64;
        for w in tl.windows(2) {
            max_gap = max_gap.max(w[1].z_mm - w[0].z_mm);
        }

        PartReport {
            flow_ratio,
            max_centroid_offset_mm: max_centroid,
            shifted_layers: shifted,
            max_z_deviation_mm: max_z_dev,
            bbox_deviation_mm: bbox_dev,
            golden_layers: gl.len(),
            test_layers: tl.len(),
            max_layer_gap_mm: max_gap,
        }
    }

    /// True when the part is geometrically indistinguishable from golden
    /// under `config` thresholds.
    pub fn is_clean(&self, config: &QualityConfig) -> bool {
        (self.flow_ratio - 1.0).abs() <= config.flow_tolerance
            && self.shifted_layers == 0
            && self.golden_layers == self.test_layers
            && self.bbox_deviation_mm <= config.shift_threshold_mm
    }
}

impl fmt::Display for PartReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flow ratio:           {:.3}", self.flow_ratio)?;
        writeln!(
            f,
            "max centroid offset:  {:.3} mm",
            self.max_centroid_offset_mm
        )?;
        writeln!(f, "shifted layers:       {}", self.shifted_layers)?;
        writeln!(f, "max Z deviation:      {:.3} mm", self.max_z_deviation_mm)?;
        writeln!(f, "bbox deviation:       {:.3} mm", self.bbox_deviation_mm)?;
        writeln!(
            f,
            "layers (golden/test): {}/{}",
            self.golden_layers, self.test_layers
        )?;
        write!(f, "max layer gap:        {:.3} mm", self.max_layer_gap_mm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deposition::DepositionModel;

    fn straight_part(x_offset: f64, e_scale: f64, layers: usize, layer_h: f64) -> PartModel {
        let mut dep = DepositionModel::new(0.1);
        let mut e = 0.0;
        for l in 0..layers {
            let z = layer_h * (l + 1) as f64;
            dep.update(x_offset, 0.0, z, e);
            for i in 1..=100 {
                let t = i as f64 / 100.0;
                dep.update(x_offset + 10.0 * t, 0.0, z, e + 0.4 * e_scale * t);
            }
            e += 0.4 * e_scale;
        }
        dep.finish()
    }

    #[test]
    fn identical_parts_are_clean() {
        let cfg = QualityConfig::default();
        let g = straight_part(0.0, 1.0, 5, 0.2);
        let t = straight_part(0.0, 1.0, 5, 0.2);
        let r = PartReport::compare(&g, &t, &cfg);
        assert!(r.is_clean(&cfg), "{r}");
        assert!((r.flow_ratio - 1.0).abs() < 1e-9);
        assert_eq!(r.golden_layers, 5);
    }

    #[test]
    fn under_extrusion_detected() {
        let cfg = QualityConfig::default();
        let g = straight_part(0.0, 1.0, 5, 0.2);
        let t = straight_part(0.0, 0.5, 5, 0.2);
        let r = PartReport::compare(&g, &t, &cfg);
        assert!((r.flow_ratio - 0.5).abs() < 0.02, "{}", r.flow_ratio);
        assert!(!r.is_clean(&cfg));
    }

    #[test]
    fn layer_shift_detected() {
        let cfg = QualityConfig::default();
        let g = straight_part(0.0, 1.0, 5, 0.2);
        let t = straight_part(2.0, 1.0, 5, 0.2);
        let r = PartReport::compare(&g, &t, &cfg);
        assert!(r.max_centroid_offset_mm > 1.9);
        assert_eq!(r.shifted_layers, 5);
        assert!(!r.is_clean(&cfg));
    }

    #[test]
    fn z_gap_detected() {
        let cfg = QualityConfig::default();
        let g = straight_part(0.0, 1.0, 5, 0.2);
        let t = straight_part(0.0, 1.0, 5, 0.5); // delaminated spacing
        let r = PartReport::compare(&g, &t, &cfg);
        assert!(r.max_layer_gap_mm > 0.45);
        assert!(r.max_z_deviation_mm > 0.25);
    }

    #[test]
    fn empty_golden_handled() {
        let cfg = QualityConfig::default();
        let g = PartModel::default();
        let t = straight_part(0.0, 1.0, 1, 0.2);
        let r = PartReport::compare(&g, &t, &cfg);
        assert!(r.flow_ratio.is_infinite());
        let r2 = PartReport::compare(&g, &PartModel::default(), &cfg);
        assert_eq!(r2.flow_ratio, 1.0);
    }

    #[test]
    fn display_is_informative() {
        let cfg = QualityConfig::default();
        let g = straight_part(0.0, 1.0, 2, 0.2);
        let r = PartReport::compare(&g, &g.clone(), &cfg);
        let text = r.to_string();
        assert!(text.contains("flow ratio"));
        assert!(text.contains("layers (golden/test): 2/2"));
    }
}

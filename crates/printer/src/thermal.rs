//! Heater thermodynamics and thermistor read-out.
//!
//! The heater is a lumped thermal mass: `C·dT/dt = P·g − k·(T − T_amb)`
//! where `g ∈ {0,1}` is the MOSFET gate. Between gate edges the ODE has
//! the closed form `T(t+Δ) = T_ss + (T − T_ss)·e^(−Δ/τ)`, so the plant
//! integrates lazily — exactly at gate edges and read-outs — which keeps
//! the event count independent of thermal resolution.

use offramps_des::Tick;
use offramps_signals::Level;

use crate::config::ThermalConfig;

/// One heating element (hotend or bed) with its MOSFET gate.
///
/// # Example
///
/// ```
/// use offramps_printer::{HeaterPlant, ThermalConfig};
/// use offramps_des::Tick;
/// use offramps_signals::Level;
///
/// let mut h = HeaterPlant::new(ThermalConfig::hotend());
/// h.set_gate(Tick::ZERO, Level::High);
/// let t = h.temperature_c(Tick::from_secs(30));
/// assert!(t > 100.0, "30 s at full power heats well past 100 C, got {t}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeaterPlant {
    config: ThermalConfig,
    gate_high: bool,
    temp_c: f64,
    last_update: Tick,
    /// Hottest temperature ever reached (°C) — the evidence a destructive
    /// Trojan leaves behind.
    pub peak_temp_c: f64,
    /// Accumulated seconds spent above `damage_temp_c`.
    pub seconds_over_damage: f64,
}

impl HeaterPlant {
    /// Creates a heater at ambient temperature with the gate low.
    pub fn new(config: ThermalConfig) -> Self {
        HeaterPlant {
            gate_high: false,
            temp_c: config.ambient_c,
            last_update: Tick::ZERO,
            peak_temp_c: config.ambient_c,
            seconds_over_damage: 0.0,
            config,
        }
    }

    /// Integrates the ODE up to `now` under the current gate state.
    fn integrate_to(&mut self, now: Tick) {
        if now <= self.last_update {
            return;
        }
        let dt = now.saturating_since(self.last_update).as_secs_f64();
        let duty = if self.gate_high { 1.0 } else { 0.0 };
        let t_ss = self.config.steady_state_c(duty);
        let tau = self.config.tau_s();
        let new_temp = t_ss + (self.temp_c - t_ss) * (-dt / tau).exp();

        // Track damage exposure exactly: the trajectory is a monotone
        // exponential, so the damage threshold is crossed at most once in
        // the interval, at t* = −τ·ln((damage − T_ss)/(T0 − T_ss)).
        let damage = self.config.damage_temp_c;
        let t0 = self.temp_c;
        let over = |t: f64| t > damage;
        self.seconds_over_damage += match (over(t0), over(new_temp)) {
            (true, true) => dt,
            (false, false) => 0.0,
            _ => {
                let ratio = (damage - t_ss) / (t0 - t_ss);
                let t_cross = if ratio > 0.0 { -tau * ratio.ln() } else { 0.0 };
                let t_cross = t_cross.clamp(0.0, dt);
                if over(new_temp) {
                    dt - t_cross // heated past the threshold at t_cross
                } else {
                    t_cross // cooled below it at t_cross
                }
            }
        };

        self.temp_c = new_temp;
        self.peak_temp_c = self.peak_temp_c.max(new_temp);
        self.last_update = now;
    }

    /// Applies a gate (MOSFET) level at `now`.
    pub fn set_gate(&mut self, now: Tick, level: Level) {
        self.integrate_to(now);
        self.gate_high = level.is_high();
    }

    /// The element temperature at `now` (°C). Advances the internal state.
    pub fn temperature_c(&mut self, now: Tick) -> f64 {
        self.integrate_to(now);
        self.temp_c
    }

    /// Current gate level.
    pub fn gate(&self) -> Level {
        Level::from(self.gate_high)
    }

    /// The thermal configuration.
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// The ADC counts a read-out at `now` would produce.
    pub fn read_adc(&mut self, now: Tick) -> u16 {
        let t = self.temperature_c(now);
        Thermistor::from(&self.config).temp_to_counts(t)
    }
}

/// NTC thermistor + divider + 10-bit ADC conversion (Beta model).
///
/// Both the plant (physics → counts) and a firmware lookup table
/// (counts → temperature) are derived from this model; Marlin similarly
/// ships per-thermistor tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thermistor {
    /// Beta coefficient, K.
    pub beta: f64,
    /// Resistance at 25 °C, Ω.
    pub r25: f64,
    /// Divider pull-up, Ω.
    pub pullup: f64,
}

impl From<&ThermalConfig> for Thermistor {
    fn from(c: &ThermalConfig) -> Self {
        Thermistor {
            beta: c.therm_beta,
            r25: c.therm_r25,
            pullup: c.pullup_ohm,
        }
    }
}

impl Thermistor {
    /// Thermistor resistance at `temp_c` (Beta model).
    pub fn resistance(&self, temp_c: f64) -> f64 {
        let t_k = temp_c + 273.15;
        let t25_k = 298.15;
        self.r25 * (self.beta * (1.0 / t_k - 1.0 / t25_k)).exp()
    }

    /// 10-bit ADC counts for a read-out at `temp_c`. The thermistor is on
    /// the low side of the divider: counts fall as temperature rises.
    pub fn temp_to_counts(&self, temp_c: f64) -> u16 {
        let r = self.resistance(temp_c);
        let frac = r / (r + self.pullup);
        (frac * 1023.0).round().clamp(0.0, 1023.0) as u16
    }

    /// Inverse conversion (used to build firmware-side tables).
    pub fn counts_to_temp(&self, counts: u16) -> f64 {
        let counts = counts.min(1023);
        if counts == 0 {
            return 500.0; // shorted divider: implausibly hot
        }
        if counts >= 1023 {
            return -50.0; // open circuit: implausibly cold
        }
        let frac = f64::from(counts) / 1023.0;
        let r = self.pullup * frac / (1.0 - frac);
        let t25_k = 298.15;
        let t_k = 1.0 / ((r / self.r25).ln() / self.beta + 1.0 / t25_k);
        t_k - 273.15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThermalConfig;
    use offramps_des::SimDuration;

    #[test]
    fn heats_toward_steady_state() {
        let cfg = ThermalConfig::hotend();
        let mut h = HeaterPlant::new(cfg);
        h.set_gate(Tick::ZERO, Level::High);
        let t_5tau = h.temperature_c(Tick::from_secs_f64(cfg.tau_s() * 5.0));
        assert!(
            (t_5tau - cfg.steady_state_c(1.0)).abs() < 3.0,
            "after 5 tau the temperature {t_5tau} must be near steady state"
        );
    }

    #[test]
    fn cools_back_to_ambient() {
        let cfg = ThermalConfig::hotend();
        let mut h = HeaterPlant::new(cfg);
        h.set_gate(Tick::ZERO, Level::High);
        let hot = h.temperature_c(Tick::from_secs(60));
        h.set_gate(Tick::from_secs(60), Level::Low);
        let later = h.temperature_c(Tick::from_secs_f64(60.0 + cfg.tau_s() * 6.0));
        assert!(hot > 150.0);
        assert!((later - cfg.ambient_c).abs() < 2.0, "cooled to {later}");
    }

    #[test]
    fn pwm_duty_holds_intermediate_temperature() {
        let cfg = ThermalConfig::hotend();
        let mut h = HeaterPlant::new(cfg);
        // 50% duty at 50 Hz for a long time.
        let period = SimDuration::from_millis(20);
        let mut t = Tick::ZERO;
        for _ in 0..((cfg.tau_s() * 6.0 / 0.02) as usize) {
            h.set_gate(t, Level::High);
            h.set_gate(t + period / 2, Level::Low);
            t += period;
        }
        let temp = h.temperature_c(t);
        let expect = cfg.steady_state_c(0.5);
        assert!(
            (temp - expect).abs() < 5.0,
            "50% duty must settle near {expect}, got {temp}"
        );
    }

    #[test]
    fn damage_exposure_tracked() {
        let cfg = ThermalConfig::hotend();
        let mut h = HeaterPlant::new(cfg);
        h.set_gate(Tick::ZERO, Level::High);
        let _ = h.temperature_c(Tick::from_secs(600));
        assert!(h.peak_temp_c > cfg.damage_temp_c);
        assert!(h.seconds_over_damage > 60.0);
    }

    #[test]
    fn thermistor_round_trip() {
        let th = Thermistor {
            beta: 4267.0,
            r25: 100_000.0,
            pullup: 4_700.0,
        };
        for temp in [25.0_f64, 60.0, 120.0, 215.0, 260.0] {
            let counts = th.temp_to_counts(temp);
            let back = th.counts_to_temp(counts);
            assert!(
                (back - temp).abs() < 2.0,
                "{temp}C -> {counts} counts -> {back}C"
            );
        }
    }

    #[test]
    fn thermistor_is_monotone_decreasing() {
        let th = Thermistor {
            beta: 4267.0,
            r25: 100_000.0,
            pullup: 4_700.0,
        };
        let mut last = u16::MAX;
        for t in (0..300).step_by(10) {
            let c = th.temp_to_counts(f64::from(t));
            assert!(c <= last, "counts must fall as temperature rises");
            last = c;
        }
    }

    #[test]
    fn adc_fault_extremes() {
        let th = Thermistor {
            beta: 4267.0,
            r25: 100_000.0,
            pullup: 4_700.0,
        };
        assert!(th.counts_to_temp(0) > 400.0, "short reads implausibly hot");
        assert!(
            th.counts_to_temp(1023) < -40.0,
            "open reads implausibly cold"
        );
    }

    #[test]
    fn gate_state_visible() {
        let mut h = HeaterPlant::new(ThermalConfig::bed());
        assert_eq!(h.gate(), Level::Low);
        h.set_gate(Tick::ZERO, Level::High);
        assert_eq!(h.gate(), Level::High);
    }
}

//! A4988 stepper driver model.
//!
//! The paper uses "the default A4988 drivers shipped with RAMPS. These
//! are inexpensive and popular, representative of components common to
//! commercial 3D printers." The behaviours that matter to OFFRAMPS
//! experiments are reproduced:
//!
//! * a **rising** STEP edge advances the motor one microstep in the
//!   direction given by DIR (high = positive by our convention),
//! * STEP pulses shorter than the datasheet minimum (1 µs) may be lost —
//!   we count and ignore them,
//! * the active-low ENABLE input gates everything: while disabled the
//!   driver ignores STEP entirely (the basis of Trojan T8).

use offramps_des::Tick;
use offramps_signals::{Level, LogicEvent};

/// Microstep resolution selected by the RAMPS jumpers under the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MicrostepMode {
    /// Full steps.
    Full,
    /// 1/2 step.
    Half,
    /// 1/4 step.
    Quarter,
    /// 1/8 step.
    Eighth,
    /// 1/16 step (all three jumpers installed — the common RAMPS setup).
    #[default]
    Sixteenth,
}

impl MicrostepMode {
    /// Microsteps per full motor step.
    pub const fn divisor(self) -> u32 {
        match self {
            MicrostepMode::Full => 1,
            MicrostepMode::Half => 2,
            MicrostepMode::Quarter => 4,
            MicrostepMode::Eighth => 8,
            MicrostepMode::Sixteenth => 16,
        }
    }

    /// The MS1/MS2/MS3 jumper levels that select this mode (A4988 truth
    /// table).
    pub const fn jumpers(self) -> (bool, bool, bool) {
        match self {
            MicrostepMode::Full => (false, false, false),
            MicrostepMode::Half => (true, false, false),
            MicrostepMode::Quarter => (false, true, false),
            MicrostepMode::Eighth => (true, true, false),
            MicrostepMode::Sixteenth => (true, true, true),
        }
    }
}

/// One A4988 driver: STEP/DIR/ENABLE in, microstep position out.
///
/// # Example
///
/// ```
/// use offramps_printer::A4988Driver;
/// use offramps_des::{Tick, SimDuration};
/// use offramps_signals::Level;
///
/// let mut drv = A4988Driver::new(1_000); // 1 us minimum pulse
/// drv.set_enable(Level::Low);            // active low: enabled
/// drv.set_dir(Level::High);              // positive
/// drv.step_edge(Tick::ZERO, Level::High);
/// drv.step_edge(Tick::from_micros(2), Level::Low);
/// assert_eq!(drv.position_microsteps(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct A4988Driver {
    min_pulse_ns: u64,
    enabled: bool,
    dir_positive: bool,
    step_high: bool,
    pending_rise: Option<Tick>,
    position: i64,
    /// Steps ignored because the driver was disabled.
    pub steps_while_disabled: u64,
    /// Rising edges whose high time was below the datasheet minimum.
    pub short_pulses: u64,
}

impl A4988Driver {
    /// Creates a driver with the given minimum STEP pulse width (ns).
    pub fn new(min_pulse_ns: u64) -> Self {
        A4988Driver {
            min_pulse_ns,
            enabled: false, // EN idles high (disabled) at power-on
            dir_positive: false,
            step_high: false,
            pending_rise: None,
            position: 0,
            steps_while_disabled: 0,
            short_pulses: 0,
        }
    }

    /// Applies a level on the ENABLE pin (active low).
    pub fn set_enable(&mut self, level: Level) {
        self.enabled = !level.is_high();
        if !self.enabled {
            self.pending_rise = None;
        }
    }

    /// Applies a level on the DIR pin (high = positive).
    pub fn set_dir(&mut self, level: Level) {
        self.dir_positive = level.is_high();
    }

    /// Applies a level change on the STEP pin at `tick`. A microstep is
    /// committed on the *falling* edge once the high time is validated
    /// against the minimum pulse width; in exchange the model never
    /// counts glitch pulses a real driver would miss.
    ///
    /// Returns the position delta committed by this event (−1, 0 or +1).
    pub fn step_edge(&mut self, tick: Tick, level: Level) -> i64 {
        match (self.step_high, level) {
            (false, Level::High) => {
                self.step_high = true;
                if self.enabled {
                    self.pending_rise = Some(tick);
                } else {
                    self.steps_while_disabled += 1;
                }
                0
            }
            (true, Level::Low) => {
                self.step_high = false;
                if let Some(rise) = self.pending_rise.take() {
                    let width_ns = tick.saturating_since(rise).as_nanos();
                    if width_ns >= self.min_pulse_ns {
                        let delta = if self.dir_positive { 1 } else { -1 };
                        self.position += delta;
                        return delta;
                    }
                    self.short_pulses += 1;
                }
                0
            }
            _ => 0, // repeated level: not an edge
        }
    }

    /// Routes a full logic event for this driver's pins.
    pub fn apply(&mut self, tick: Tick, event: LogicEvent) -> i64 {
        if event.pin.is_step() {
            self.step_edge(tick, event.level)
        } else if event.pin.is_dir() {
            self.set_dir(event.level);
            0
        } else if event.pin.is_enable() {
            self.set_enable(event.level);
            0
        } else {
            0
        }
    }

    /// Net microsteps since power-on.
    pub fn position_microsteps(&self) -> i64 {
        self.position
    }

    /// Overrides the position (used when an axis re-references at an
    /// endstop).
    pub fn set_position_microsteps(&mut self, position: i64) {
        self.position = position;
    }

    /// Whether the driver is currently energized.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Whether DIR currently selects the positive direction.
    pub fn is_dir_positive(&self) -> bool {
        self.dir_positive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_des::SimDuration;

    fn enabled_driver() -> A4988Driver {
        let mut d = A4988Driver::new(1_000);
        d.set_enable(Level::Low);
        d
    }

    fn pulse(d: &mut A4988Driver, at: Tick, width: SimDuration) -> i64 {
        d.step_edge(at, Level::High);
        d.step_edge(at + width, Level::Low)
    }

    #[test]
    fn steps_follow_dir() {
        let mut d = enabled_driver();
        d.set_dir(Level::High);
        assert_eq!(pulse(&mut d, Tick::ZERO, SimDuration::from_micros(2)), 1);
        assert_eq!(
            pulse(&mut d, Tick::from_micros(10), SimDuration::from_micros(2)),
            1
        );
        d.set_dir(Level::Low);
        assert_eq!(
            pulse(&mut d, Tick::from_micros(20), SimDuration::from_micros(2)),
            -1
        );
        assert_eq!(d.position_microsteps(), 1);
    }

    #[test]
    fn disabled_driver_ignores_steps() {
        let mut d = A4988Driver::new(1_000);
        d.set_dir(Level::High);
        assert_eq!(pulse(&mut d, Tick::ZERO, SimDuration::from_micros(2)), 0);
        assert_eq!(d.position_microsteps(), 0);
        assert_eq!(d.steps_while_disabled, 1);
    }

    #[test]
    fn short_pulses_rejected() {
        let mut d = enabled_driver();
        d.set_dir(Level::High);
        // 0.5 us < 1 us minimum.
        assert_eq!(pulse(&mut d, Tick::ZERO, SimDuration::from_nanos(500)), 0);
        assert_eq!(d.short_pulses, 1);
        assert_eq!(
            pulse(&mut d, Tick::from_micros(5), SimDuration::from_micros(1)),
            1
        );
    }

    #[test]
    fn disable_mid_pulse_drops_the_step() {
        let mut d = enabled_driver();
        d.set_dir(Level::High);
        d.step_edge(Tick::ZERO, Level::High);
        d.set_enable(Level::High); // T8-style kill between edges
        assert_eq!(d.step_edge(Tick::from_micros(2), Level::Low), 0);
        assert_eq!(d.position_microsteps(), 0);
    }

    #[test]
    fn repeated_levels_are_not_edges() {
        let mut d = enabled_driver();
        d.set_dir(Level::High);
        d.step_edge(Tick::ZERO, Level::High);
        d.step_edge(Tick::from_micros(1), Level::High); // repeat
        d.step_edge(Tick::from_micros(2), Level::Low);
        d.step_edge(Tick::from_micros(3), Level::Low); // repeat
        assert_eq!(d.position_microsteps(), 1);
    }

    #[test]
    fn microstep_table() {
        assert_eq!(MicrostepMode::Sixteenth.divisor(), 16);
        assert_eq!(MicrostepMode::Full.jumpers(), (false, false, false));
        assert_eq!(MicrostepMode::Sixteenth.jumpers(), (true, true, true));
        assert_eq!(MicrostepMode::default(), MicrostepMode::Sixteenth);
    }

    #[test]
    fn apply_routes_by_pin() {
        use offramps_signals::Pin;
        let mut d = A4988Driver::new(1_000);
        d.apply(Tick::ZERO, LogicEvent::new(Pin::XEnable, Level::Low));
        d.apply(Tick::ZERO, LogicEvent::new(Pin::XDir, Level::High));
        d.apply(Tick::ZERO, LogicEvent::new(Pin::XStep, Level::High));
        let delta = d.apply(
            Tick::from_micros(2),
            LogicEvent::new(Pin::XStep, Level::Low),
        );
        assert_eq!(delta, 1);
        assert!(d.is_enabled());
        assert!(d.is_dir_positive());
    }
}

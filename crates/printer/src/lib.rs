//! RAMPS 1.4 driver board and printer physical plant.
//!
//! In the paper's setup the RAMPS board "controls the actuator functions
//! of the printer directly with stepper motor drivers, fan control
//! circuitry, and heating element circuitry — all driven by the
//! aforementioned signals sent from the Arduino. In turn this board sends
//! back signals for the endstops of the axes and the thermistors".
//!
//! This crate simulates that whole downstream half:
//!
//! * [`A4988Driver`] — the stepper driver modules shipped with RAMPS
//!   (microstepping, active-low enable, minimum pulse width),
//! * [`AxisMechanism`] — carriage kinematics, travel limits and the
//!   mechanical MIN endstops,
//! * [`HeaterPlant`] / [`Thermistor`] — lumped-RC heater thermodynamics
//!   with NTC thermistor read-out through a 10-bit ADC divider,
//! * [`FanPlant`] — part-cooling fan response to PWM,
//! * [`DepositionModel`] / [`PartModel`] — where plastic actually lands,
//!   layer by layer, so Trojan effects become measurable geometry,
//! * [`PrinterPlant`] — the composite component wired into the
//!   co-simulation, consuming control [`SignalEvent`]s and producing
//!   endstop/thermistor feedback,
//! * [`quality`] — part-quality comparison against a golden print
//!   (the in-simulation stand-in for the paper's part photographs).
//!
//! [`SignalEvent`]: offramps_signals::SignalEvent

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod deposition;
mod driver;
mod fan;
mod mechanism;
mod plant;
pub mod quality;
mod thermal;

pub use config::{AxisConfig, PlantConfig, ThermalConfig};
pub use deposition::{DepositionModel, LayerSummary, PartModel, Segment};
pub use driver::{A4988Driver, MicrostepMode};
pub use fan::FanPlant;
pub use mechanism::AxisMechanism;
pub use plant::{PlantStatus, PrinterPlant, PORT_CTRL, PORT_FEEDBACK};
pub use thermal::{HeaterPlant, Thermistor};

//! The composite printer plant: RAMPS + mechanics + thermal + fan.
//!
//! [`PrinterPlant`] is the downstream end of the co-simulation. It
//! consumes the control-direction [`SignalEvent`]s (whatever the
//! interceptor forwarded) and produces the feedback-direction events the
//! firmware needs: endstop transitions and periodic thermistor ADC
//! samples.

use offramps_des::{ActionSink, DetRng, InPort, OutPort, SimComponent, SimDuration, Tick};
use offramps_signals::{AnalogChannel, Axis, Level, LogicEvent, Pin, SignalEvent, SignalTrace};

use crate::config::PlantConfig;
use crate::deposition::{DepositionModel, PartModel};
use crate::driver::A4988Driver;
use crate::fan::FanPlant;
use crate::mechanism::AxisMechanism;
use crate::thermal::HeaterPlant;

/// The plant's single output port: feedback-direction signals (endstop
/// transitions, thermistor ADC samples) for the firmware, via the
/// interceptor.
pub const PORT_FEEDBACK: OutPort = OutPort(0);

/// The plant's single input port: control-direction signals arriving
/// from the interceptor.
pub const PORT_CTRL: InPort = InPort(0);

/// Instantaneous observable state of the plant.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantStatus {
    /// Carriage/extruder positions, mm, in [`Axis::ALL`] order.
    pub positions_mm: [f64; 4],
    /// Hotend temperature, °C.
    pub hotend_c: f64,
    /// Bed temperature, °C.
    pub bed_c: f64,
    /// Hottest hotend temperature seen, °C.
    pub hotend_peak_c: f64,
    /// Seconds the hotend spent above its damage temperature.
    pub hotend_seconds_over_damage: f64,
    /// Part-fan speed, RPM.
    pub fan_rpm: f64,
    /// Effective fan duty over the whole run, 0–1.
    pub fan_duty: f64,
    /// Microsteps lost against travel limits, per axis.
    pub lost_steps: [u64; 4],
    /// Steps sent while the driver was disabled, per axis.
    pub steps_while_disabled: [u64; 4],
    /// STEP pulses below the driver's minimum width, per axis.
    pub short_pulses: [u64; 4],
}

/// The simulated RAMPS 1.4 + printer.
///
/// # Example
///
/// ```
/// use offramps_printer::{PrinterPlant, PlantConfig};
/// use offramps_des::Tick;
/// use offramps_signals::{SignalEvent, Pin, Level};
///
/// use offramps_des::ActionSink;
///
/// let mut plant = PrinterPlant::new(PlantConfig::default(), 7);
/// let mut sink = ActionSink::new();
/// // Enable the X driver and pulse it once.
/// for (t, pin, level) in [
///     (0u64, Pin::XEnable, Level::Low),
///     (0, Pin::XDir, Level::High),
///     (1, Pin::XStep, Level::High),
///     (3, Pin::XStep, Level::Low),
/// ] {
///     sink.begin(Tick::from_micros(t));
///     plant.on_control(Tick::from_micros(t), SignalEvent::logic(pin, level), &mut sink);
///     sink.drain().for_each(drop);
/// }
/// let before = plant.status(Tick::from_micros(3)).positions_mm[0];
/// assert!(before > 0.0);
/// ```
#[derive(Debug)]
pub struct PrinterPlant {
    config: PlantConfig,
    drivers: [A4988Driver; 4],
    mechs: [AxisMechanism; 4],
    hotend: HeaterPlant,
    bed: HeaterPlant,
    fan: FanPlant,
    deposition: DepositionModel,
    endstop_levels: [Level; 3],
    adc_rng: DetRng,
    trace: Option<SignalTrace>,
}

impl PrinterPlant {
    /// Creates the plant. `seed` drives ADC read-out noise.
    pub fn new(config: PlantConfig, seed: u64) -> Self {
        let drivers = std::array::from_fn(|_| A4988Driver::new(config.min_step_pulse_ns));
        let mechs = std::array::from_fn(|i| AxisMechanism::new(config.axes[i]));

        PrinterPlant {
            drivers,
            hotend: HeaterPlant::new(config.hotend),
            bed: HeaterPlant::new(config.bed),
            fan: FanPlant::new(config.fan_tau_s, config.fan_max_rpm),
            deposition: DepositionModel::new(config.deposition_resolution_mm),
            endstop_levels: std::array::from_fn(|i| {
                let m: &AxisMechanism = &mechs[i];
                m.endstop_level()
            }),
            mechs,
            adc_rng: DetRng::from_seed(seed ^ 0xadc0_ffee),
            config,
            trace: None,
        }
    }

    /// Enables recording of the control signals the plant actually
    /// receives — the driver-board side of the loop, *downstream* of any
    /// interceptor modification. A power side-channel sensor sits on
    /// this rail, so waveforms synthesized from this trace reflect what
    /// the motors really did, Trojans included (unlike the monitor's
    /// controller-side tap).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(SignalTrace::new());
        }
    }

    /// Takes the recorded plant-side trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<SignalTrace> {
        self.trace.take()
    }

    /// Initial feedback burst: current endstop levels plus the first ADC
    /// wake-up. Call once at simulation start.
    pub fn start(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        for axis in Axis::MOTION {
            let pin = axis.min_endstop_pin().expect("motion axes have endstops");
            sink.send(
                PORT_FEEDBACK,
                SignalEvent::logic(pin, self.endstop_levels[axis.index()]),
            );
        }
        sink.wake_at(now + SimDuration::from_millis(self.config.adc_period_ms));
    }

    /// Processes one control-direction event.
    pub fn on_control(
        &mut self,
        now: Tick,
        event: SignalEvent,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        match event {
            SignalEvent::Logic(ev) => {
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(now, ev);
                }
                self.on_logic(now, ev, sink)
            }
            // The display UART terminates at the (unmodelled) LCD; ADC
            // events never arrive on the control side.
            SignalEvent::Uart { .. } | SignalEvent::Adc { .. } => {}
        }
    }

    fn on_logic(&mut self, now: Tick, ev: LogicEvent, sink: &mut ActionSink<SignalEvent>) {
        match ev.pin {
            Pin::HotendHeat => self.hotend.set_gate(now, ev.level),
            Pin::BedHeat => self.bed.set_gate(now, ev.level),
            Pin::FanPwm => self.fan.set_gate(now, ev.level),
            Pin::PsOn => {}
            p => {
                if let Some(axis) = p.axis() {
                    if p.class() == offramps_signals::PinClass::Control {
                        let delta = self.drivers[axis.index()].apply(now, ev);
                        if delta != 0 {
                            self.commit_step(axis, delta, sink);
                        }
                    }
                }
            }
        }
    }

    fn commit_step(&mut self, axis: Axis, delta: i64, sink: &mut ActionSink<SignalEvent>) {
        let moved = self.mechs[axis.index()].advance(delta);
        if !moved {
            return;
        }
        // Deposition follows every committed step.
        let p = &self.mechs;
        self.deposition.update(
            p[0].position_mm(),
            p[1].position_mm(),
            p[2].position_mm(),
            p[3].position_mm(),
        );
        // Endstop transition?
        if let Some(pin) = axis.min_endstop_pin() {
            let level = self.mechs[axis.index()].endstop_level();
            if level != self.endstop_levels[axis.index()] {
                self.endstop_levels[axis.index()] = level;
                sink.send(PORT_FEEDBACK, SignalEvent::logic(pin, level));
            }
        }
    }

    /// Periodic wake-up: samples both thermistors and re-arms the timer.
    pub fn on_tick(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        for channel in AnalogChannel::ALL {
            let counts = match channel {
                AnalogChannel::HotendTherm => self.hotend.read_adc(now),
                AnalogChannel::BedTherm => self.bed.read_adc(now),
            };
            // ±1 LSB conversion noise.
            let noise = self.adc_rng.uniform_u64(0, 3) as i32 - 1;
            let noisy = (i32::from(counts) + noise).clamp(0, 1023) as u16;
            sink.send(
                PORT_FEEDBACK,
                SignalEvent::Adc {
                    channel,
                    counts: noisy,
                },
            );
        }
        sink.wake_at(now + SimDuration::from_millis(self.config.adc_period_ms));
    }

    /// Observable plant state at `now`.
    pub fn status(&mut self, now: Tick) -> PlantStatus {
        PlantStatus {
            positions_mm: std::array::from_fn(|i| self.mechs[i].position_mm()),
            hotend_c: self.hotend.temperature_c(now),
            bed_c: self.bed.temperature_c(now),
            hotend_peak_c: self.hotend.peak_temp_c,
            hotend_seconds_over_damage: self.hotend.seconds_over_damage,
            fan_rpm: self.fan.rpm(now),
            fan_duty: self.fan.lifetime_duty(),
            lost_steps: std::array::from_fn(|i| self.mechs[i].lost_steps),
            steps_while_disabled: std::array::from_fn(|i| self.drivers[i].steps_while_disabled),
            short_pulses: std::array::from_fn(|i| self.drivers[i].short_pulses),
        }
    }

    /// Consumes the plant, returning the deposited part.
    pub fn into_part(self) -> PartModel {
        self.deposition.finish()
    }

    /// Read-only view of the part so far.
    pub fn part(&self) -> &PartModel {
        self.deposition.part()
    }

    /// The plant configuration.
    pub fn config(&self) -> &PlantConfig {
        &self.config
    }

    /// Direct access to an axis mechanism (test/scenario setup).
    pub fn mechanism_mut(&mut self, axis: Axis) -> &mut AxisMechanism {
        &mut self.mechs[axis.index()]
    }
}

impl SimComponent for PrinterPlant {
    type Payload = SignalEvent;

    fn start(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        PrinterPlant::start(self, now, sink);
    }

    fn on_event(
        &mut self,
        now: Tick,
        _port: InPort,
        payload: SignalEvent,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        self.on_control(now, payload, sink);
    }

    fn on_tick(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        PrinterPlant::on_tick(self, now, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_des::SinkAction;

    fn plant() -> PrinterPlant {
        PrinterPlant::new(PlantConfig::default(), 1)
    }

    /// Drives one control event and returns the sink's actions.
    fn control(p: &mut PrinterPlant, t_us: u64, ev: SignalEvent) -> Vec<SinkAction<SignalEvent>> {
        let mut sink = ActionSink::new();
        sink.begin(Tick::from_micros(t_us));
        p.on_control(Tick::from_micros(t_us), ev, &mut sink);
        sink.drain().collect()
    }

    fn step(p: &mut PrinterPlant, t_us: u64, axis: Axis) -> Vec<SinkAction<SignalEvent>> {
        let mut acts = control(p, t_us, SignalEvent::logic(axis.step_pin(), Level::High));
        acts.extend(control(
            p,
            t_us + 2,
            SignalEvent::logic(axis.step_pin(), Level::Low),
        ));
        acts
    }

    #[test]
    fn steps_move_carriage() {
        let mut p = plant();
        control(&mut p, 0, SignalEvent::logic(Pin::XEnable, Level::Low));
        control(&mut p, 0, SignalEvent::logic(Pin::XDir, Level::High));
        let x0 = p.status(Tick::ZERO).positions_mm[0];
        for i in 0..100 {
            step(&mut p, 10 + i * 10, Axis::X);
        }
        let x1 = p.status(Tick::from_millis(2)).positions_mm[0];
        assert!((x1 - x0 - 1.0).abs() < 1e-9, "100 steps at 100/mm = 1mm");
    }

    #[test]
    fn disabled_driver_does_not_move() {
        let mut p = plant();
        control(&mut p, 0, SignalEvent::logic(Pin::XDir, Level::High));
        let x0 = p.status(Tick::ZERO).positions_mm[0];
        step(&mut p, 10, Axis::X);
        let s = p.status(Tick::from_millis(1));
        assert_eq!(s.positions_mm[0], x0);
        assert_eq!(s.steps_while_disabled[0], 1);
    }

    #[test]
    fn homing_toward_zero_triggers_endstop() {
        let mut p = plant();
        control(&mut p, 0, SignalEvent::logic(Pin::XEnable, Level::Low));
        control(&mut p, 0, SignalEvent::logic(Pin::XDir, Level::Low)); // negative
        p.mechanism_mut(Axis::X).reference_at(0.5);
        let mut endstop_events = Vec::new();
        for i in 0..200 {
            for a in step(&mut p, 10 + i * 10, Axis::X) {
                if let SinkAction::Send {
                    payload: SignalEvent::Logic(ev),
                    ..
                } = a
                {
                    endstop_events.push(ev);
                }
            }
        }
        assert_eq!(endstop_events.len(), 1, "exactly one transition");
        assert_eq!(endstop_events[0].pin, Pin::XMin);
        assert_eq!(endstop_events[0].level, Level::High);
    }

    #[test]
    fn start_reports_endstops_and_schedules_adc() {
        let mut p = plant();
        let mut sink = ActionSink::new();
        sink.begin(Tick::ZERO);
        p.start(Tick::ZERO, &mut sink);
        let acts: Vec<_> = sink.drain().collect();
        let emits = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    SinkAction::Send {
                        payload: SignalEvent::Logic(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(emits, 3);
        assert!(acts.iter().any(|a| matches!(a, SinkAction::WakeAt(_))));
    }

    #[test]
    fn adc_tick_reports_both_channels_and_rearms() {
        let mut p = plant();
        let mut sink = ActionSink::new();
        sink.begin(Tick::from_millis(100));
        p.on_tick(Tick::from_millis(100), &mut sink);
        let acts: Vec<_> = sink.drain().collect();
        let adc: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                SinkAction::Send {
                    payload: SignalEvent::Adc { channel, counts },
                    ..
                } => Some((*channel, *counts)),
                _ => None,
            })
            .collect();
        assert_eq!(adc.len(), 2);
        // Ambient ~25C reads high counts (thermistor on the low side).
        assert!(adc.iter().all(|(_, c)| *c > 900), "{adc:?}");
        assert!(matches!(
            acts.last(),
            Some(SinkAction::WakeAt(t)) if *t == Tick::from_millis(200)
        ));
    }

    #[test]
    fn heater_gate_heats_element() {
        let mut p = plant();
        control(&mut p, 0, SignalEvent::logic(Pin::HotendHeat, Level::High));
        let s = p.status(Tick::from_secs(30));
        assert!(s.hotend_c > 100.0, "got {}", s.hotend_c);
        assert!(s.bed_c < 30.0);
    }

    #[test]
    fn fan_gate_spins_fan() {
        let mut p = plant();
        control(&mut p, 0, SignalEvent::logic(Pin::FanPwm, Level::High));
        assert!(p.status(Tick::from_secs(3)).fan_rpm > 5_000.0);
    }

    #[test]
    fn extrusion_plus_motion_deposits() {
        let mut p = plant();
        for axis in [Axis::X, Axis::E] {
            control(&mut p, 0, SignalEvent::logic(axis.enable_pin(), Level::Low));
            control(&mut p, 0, SignalEvent::logic(axis.dir_pin(), Level::High));
        }
        // Interleave X and E steps: 400 X steps (4mm), 100 E steps.
        let mut t = 10;
        for i in 0..400 {
            step(&mut p, t, Axis::X);
            if i % 4 == 0 {
                step(&mut p, t + 5, Axis::E);
            }
            t += 10;
        }
        let part = p.into_part();
        assert!(part.total_forward_e_mm > 0.3);
        assert!(!part.segments().is_empty());
    }

    #[test]
    fn plant_trace_records_received_control_signals() {
        let mut p = plant();
        p.enable_trace();
        control(&mut p, 0, SignalEvent::logic(Pin::XEnable, Level::Low));
        step(&mut p, 10, Axis::X);
        let trace = p.take_trace().expect("tracing enabled");
        assert_eq!(trace.len(), 3, "enable + step high/low");
        assert!(p.take_trace().is_none(), "trace is taken once");
    }

    #[test]
    fn uart_is_sunk_silently() {
        let mut p = plant();
        let acts = control(
            &mut p,
            0,
            SignalEvent::Uart {
                direction: offramps_signals::UartDirection::ControllerToDisplay,
                byte: 0x55,
            },
        );
        assert!(acts.is_empty());
    }
}

//! Carriage kinematics, travel limits and endstops.

use offramps_signals::Level;

use crate::config::AxisConfig;

/// The mechanics of one axis: converts driver microsteps into carriage
/// position, enforces the physical travel range (steps into the frame are
/// lost, as a real stalled stepper skips), and drives the MIN endstop
/// switch.
///
/// # Example
///
/// ```
/// use offramps_printer::{AxisMechanism, AxisConfig};
/// use offramps_signals::{Axis, Level};
///
/// let mut mech = AxisMechanism::new(AxisConfig::default_for(Axis::X));
/// mech.reference_at(5.0);             // pretend carriage is at 5 mm
/// assert_eq!(mech.endstop_level(), Level::Low);
/// for _ in 0..5_000 { mech.advance(-1); } // 50 mm worth of -X microsteps
/// assert_eq!(mech.endstop_level(), Level::High); // switch pressed
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AxisMechanism {
    config: AxisConfig,
    /// Carriage position, microsteps relative to logical zero.
    position_steps: i64,
    /// Microsteps lost against the physical ends of travel.
    pub lost_steps: u64,
}

impl AxisMechanism {
    /// Creates the mechanism with the carriage parked at an arbitrary
    /// mid-travel position (real printers power on wherever the head was
    /// left; homing establishes the reference).
    pub fn new(config: AxisConfig) -> Self {
        let mid = if config.travel_mm.is_finite() {
            (config.travel_mm / 3.0 * config.steps_per_mm) as i64
        } else {
            0
        };
        AxisMechanism {
            config,
            position_steps: mid,
            lost_steps: 0,
        }
    }

    /// Moves the carriage by one (+1/−1) microstep, honouring the travel
    /// limits. Returns `true` if the carriage actually moved.
    pub fn advance(&mut self, delta: i64) -> bool {
        debug_assert!(
            delta == 1 || delta == -1,
            "drivers step one microstep at a time"
        );
        let new = self.position_steps + delta;
        let mm = new as f64 / self.config.steps_per_mm;
        if mm < -self.config.overtravel_mm || mm > self.config.travel_mm {
            self.lost_steps += 1;
            return false;
        }
        self.position_steps = new;
        true
    }

    /// Current position, mm from logical zero.
    pub fn position_mm(&self) -> f64 {
        self.position_steps as f64 / self.config.steps_per_mm
    }

    /// Current position, microsteps.
    pub fn position_steps(&self) -> i64 {
        self.position_steps
    }

    /// The MIN endstop output: high while pressed.
    pub fn endstop_level(&self) -> Level {
        Level::from(self.position_mm() <= self.config.endstop_trigger_mm)
    }

    /// Re-declare the current physical location as `mm` (used by tests
    /// and by scenario setup; real homing *discovers* zero through the
    /// endstop instead).
    pub fn reference_at(&mut self, mm: f64) {
        self.position_steps = (mm * self.config.steps_per_mm).round() as i64;
    }

    /// The axis configuration.
    pub fn config(&self) -> &AxisConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offramps_signals::Axis;

    fn x_axis() -> AxisMechanism {
        AxisMechanism::new(AxisConfig::default_for(Axis::X))
    }

    #[test]
    fn advance_moves_by_microsteps() {
        let mut m = x_axis();
        m.reference_at(10.0);
        for _ in 0..100 {
            assert!(m.advance(1));
        }
        assert!((m.position_mm() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn endstop_triggers_near_zero() {
        let mut m = x_axis();
        m.reference_at(0.2);
        assert_eq!(m.endstop_level(), Level::Low);
        m.reference_at(0.1);
        assert_eq!(m.endstop_level(), Level::High);
        m.reference_at(0.0);
        assert_eq!(m.endstop_level(), Level::High);
    }

    #[test]
    fn steps_into_the_frame_are_lost() {
        let mut m = x_axis();
        m.reference_at(-0.9);
        let spm = m.config().steps_per_mm;
        // 0.1mm of margin remains (overtravel 1.0mm): 10 steps succeed.
        let mut moved = 0;
        for _ in 0..50 {
            if m.advance(-1) {
                moved += 1;
            }
        }
        assert_eq!(moved, (0.1 * spm) as i32);
        assert_eq!(m.lost_steps, 40);
        assert!((m.position_mm() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_travel_enforced() {
        let mut m = x_axis();
        m.reference_at(249.99);
        let mut moved = 0;
        for _ in 0..10 {
            if m.advance(1) {
                moved += 1;
            }
        }
        assert_eq!(moved, 1);
        assert_eq!(m.lost_steps, 9);
    }

    #[test]
    fn extruder_is_unbounded() {
        let mut e = AxisMechanism::new(AxisConfig::default_for(Axis::E));
        for _ in 0..100_000 {
            assert!(e.advance(1));
        }
        assert_eq!(e.lost_steps, 0);
        assert_eq!(e.endstop_level(), Level::Low);
    }

    #[test]
    fn powers_on_mid_travel() {
        let m = x_axis();
        assert!(m.position_mm() > 1.0, "must not power on at the endstop");
        assert_eq!(m.endstop_level(), Level::Low);
    }
}

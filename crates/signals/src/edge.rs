//! Edge detection — the primitive the paper's FPGA modules build on.
//!
//! The paper's *Edge Detection Module* "implements an edge detector to
//! identify events such as print head movements or extrusions via
//! observation of the STEP and DIR stepper motor driver signals". In the
//! FPGA this is a one-flop delay and a comparator; here it is a per-pin
//! last-level register.

use crate::event::{Edge, Level, LogicEvent};
use crate::pin::Pin;

/// Detects edges on all pins from a stream of [`LogicEvent`]s.
///
/// # Example
///
/// ```
/// use offramps_signals::{EdgeDetector, LogicEvent, Pin, Level, Edge, SignalBus};
///
/// // Pre-load the detector with the bus reset levels so the first real
/// // transition is reported.
/// let mut det = EdgeDetector::with_bus(&SignalBus::new());
/// let e = det.observe(LogicEvent::new(Pin::XStep, Level::High));
/// assert_eq!(e, Some(Edge::Rising));
/// // Re-asserting the same level is not an edge.
/// assert_eq!(det.observe(LogicEvent::new(Pin::XStep, Level::High)), None);
/// ```
#[derive(Debug, Clone)]
pub struct EdgeDetector {
    last: [Level; Pin::COUNT],
    initialized: [bool; Pin::COUNT],
}

impl Default for EdgeDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl EdgeDetector {
    /// Creates a detector with all pins in the unknown state; the first
    /// observation of each pin initialises it and is never reported as an
    /// edge (there is nothing to compare against).
    pub fn new() -> Self {
        EdgeDetector {
            last: [Level::Low; Pin::COUNT],
            initialized: [false; Pin::COUNT],
        }
    }

    /// Creates a detector pre-loaded with the reset levels of `bus`, so
    /// the very first real transition is detected as an edge.
    pub fn with_bus(bus: &crate::bus::SignalBus) -> Self {
        let mut det = EdgeDetector::new();
        for (pin, level) in bus.iter() {
            det.last[pin.index()] = level;
            det.initialized[pin.index()] = true;
        }
        det
    }

    /// Feeds one event; returns the edge it produced, if any.
    pub fn observe(&mut self, event: LogicEvent) -> Option<Edge> {
        let i = event.pin.index();
        if !self.initialized[i] {
            self.initialized[i] = true;
            self.last[i] = event.level;
            return None;
        }
        if self.last[i] == event.level {
            return None;
        }
        self.last[i] = event.level;
        Some(Edge::to(event.level))
    }

    /// The last observed level of `pin`, if it has been observed.
    pub fn last_level(&self, pin: Pin) -> Option<Level> {
        self.initialized[pin.index()].then(|| self.last[pin.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::SignalBus;

    #[test]
    fn first_observation_is_not_an_edge() {
        let mut det = EdgeDetector::new();
        assert_eq!(det.observe(LogicEvent::new(Pin::ZDir, Level::High)), None);
        assert_eq!(det.last_level(Pin::ZDir), Some(Level::High));
        assert_eq!(det.last_level(Pin::XDir), None);
    }

    #[test]
    fn detects_both_edges() {
        let mut det = EdgeDetector::with_bus(&SignalBus::new());
        assert_eq!(
            det.observe(LogicEvent::new(Pin::EStep, Level::High)),
            Some(Edge::Rising)
        );
        assert_eq!(
            det.observe(LogicEvent::new(Pin::EStep, Level::Low)),
            Some(Edge::Falling)
        );
    }

    #[test]
    fn with_bus_reports_first_transition() {
        let det = EdgeDetector::with_bus(&SignalBus::new());
        // Enable pins idle high on the bus, so a low is a falling edge.
        let mut det = det;
        assert_eq!(
            det.observe(LogicEvent::new(Pin::XEnable, Level::Low)),
            Some(Edge::Falling)
        );
    }

    #[test]
    fn pins_are_independent() {
        let mut det = EdgeDetector::with_bus(&SignalBus::new());
        det.observe(LogicEvent::new(Pin::XStep, Level::High));
        // Y has not moved; its first rising edge is still detected.
        assert_eq!(
            det.observe(LogicEvent::new(Pin::YStep, Level::High)),
            Some(Edge::Rising)
        );
    }
}

//! The RAMPS 1.4 pin map.
//!
//! Pin numbers follow the canonical RAMPS 1.4 ↔ Arduino Mega 2560
//! assignment from the RepRap wiki (the same map Marlin's
//! `pins_RAMPS.h` uses for the "EFB" configuration: Extruder, Fan, Bed).

use std::fmt;

/// One motion axis or the extruder.
///
/// # Example
///
/// ```
/// use offramps_signals::{Axis, Pin};
/// assert_eq!(Axis::X.step_pin(), Pin::XStep);
/// assert_eq!(Axis::ALL.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axis {
    /// Gantry X (left/right).
    X,
    /// Gantry Y (bed front/back on a Prusa i3).
    Y,
    /// Gantry Z (up/down).
    Z,
    /// Filament extruder (E0).
    E,
}

impl Axis {
    /// All four axes in canonical order.
    pub const ALL: [Axis; 4] = [Axis::X, Axis::Y, Axis::Z, Axis::E];
    /// The three positioning axes (no extruder).
    pub const MOTION: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The STEP pin of this axis' stepper driver.
    pub const fn step_pin(self) -> Pin {
        match self {
            Axis::X => Pin::XStep,
            Axis::Y => Pin::YStep,
            Axis::Z => Pin::ZStep,
            Axis::E => Pin::EStep,
        }
    }

    /// The DIR pin of this axis' stepper driver.
    pub const fn dir_pin(self) -> Pin {
        match self {
            Axis::X => Pin::XDir,
            Axis::Y => Pin::YDir,
            Axis::Z => Pin::ZDir,
            Axis::E => Pin::EDir,
        }
    }

    /// The (active-low) ENABLE pin of this axis' stepper driver.
    pub const fn enable_pin(self) -> Pin {
        match self {
            Axis::X => Pin::XEnable,
            Axis::Y => Pin::YEnable,
            Axis::Z => Pin::ZEnable,
            Axis::E => Pin::EEnable,
        }
    }

    /// The MIN endstop pin, if the axis has one (the extruder does not).
    pub const fn min_endstop_pin(self) -> Option<Pin> {
        match self {
            Axis::X => Some(Pin::XMin),
            Axis::Y => Some(Pin::YMin),
            Axis::Z => Some(Pin::ZMin),
            Axis::E => None,
        }
    }

    /// Index in [`Axis::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
            Axis::E => 3,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Axis::X => "X",
            Axis::Y => "Y",
            Axis::Z => "Z",
            Axis::E => "E",
        })
    }
}

/// Whether a pin carries control (Arduino → RAMPS) or feedback
/// (RAMPS → Arduino) information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinClass {
    /// Driven by the firmware, consumed by the driver board.
    Control,
    /// Driven by the printer (endstops), consumed by the firmware.
    Feedback,
}

/// Every digital line of the Arduino ↔ RAMPS interface that OFFRAMPS
/// intercepts.
///
/// The analog thermistor channels are *not* pins: they are modelled as
/// [`crate::AnalogChannel`] samples because the Artix-7 reads them through
/// its XADC rather than as logic levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pin {
    /// X stepper STEP (Mega pin 54 / A0).
    XStep,
    /// X stepper DIR (55 / A1).
    XDir,
    /// X stepper ENABLE, active low (38).
    XEnable,
    /// Y stepper STEP (60 / A6).
    YStep,
    /// Y stepper DIR (61 / A7).
    YDir,
    /// Y stepper ENABLE, active low (56 / A2).
    YEnable,
    /// Z stepper STEP (46).
    ZStep,
    /// Z stepper DIR (48).
    ZDir,
    /// Z stepper ENABLE, active low (62 / A8).
    ZEnable,
    /// Extruder stepper STEP (26).
    EStep,
    /// Extruder stepper DIR (28).
    EDir,
    /// Extruder stepper ENABLE, active low (24).
    EEnable,
    /// Hotend heater MOSFET gate (D10).
    HotendHeat,
    /// Heated-bed MOSFET gate (D8).
    BedHeat,
    /// Part-cooling fan MOSFET gate (D9).
    FanPwm,
    /// PS_ON / power-supply control (12).
    PsOn,
    /// X MIN endstop switch (3).
    XMin,
    /// Y MIN endstop switch (14).
    YMin,
    /// Z MIN endstop switch (18).
    ZMin,
}

/// All pins, control first, in a stable order.
pub const ALL_PINS: [Pin; 19] = [
    Pin::XStep,
    Pin::XDir,
    Pin::XEnable,
    Pin::YStep,
    Pin::YDir,
    Pin::YEnable,
    Pin::ZStep,
    Pin::ZDir,
    Pin::ZEnable,
    Pin::EStep,
    Pin::EDir,
    Pin::EEnable,
    Pin::HotendHeat,
    Pin::BedHeat,
    Pin::FanPwm,
    Pin::PsOn,
    Pin::XMin,
    Pin::YMin,
    Pin::ZMin,
];

/// The control-direction pins (firmware → RAMPS).
pub const CONTROL_PINS: [Pin; 16] = [
    Pin::XStep,
    Pin::XDir,
    Pin::XEnable,
    Pin::YStep,
    Pin::YDir,
    Pin::YEnable,
    Pin::ZStep,
    Pin::ZDir,
    Pin::ZEnable,
    Pin::EStep,
    Pin::EDir,
    Pin::EEnable,
    Pin::HotendHeat,
    Pin::BedHeat,
    Pin::FanPwm,
    Pin::PsOn,
];

/// The feedback-direction pins (RAMPS → firmware).
pub const FEEDBACK_PINS: [Pin; 3] = [Pin::XMin, Pin::YMin, Pin::ZMin];

impl Pin {
    /// Stable dense index, usable for array-backed per-pin state.
    pub const fn index(self) -> usize {
        match self {
            Pin::XStep => 0,
            Pin::XDir => 1,
            Pin::XEnable => 2,
            Pin::YStep => 3,
            Pin::YDir => 4,
            Pin::YEnable => 5,
            Pin::ZStep => 6,
            Pin::ZDir => 7,
            Pin::ZEnable => 8,
            Pin::EStep => 9,
            Pin::EDir => 10,
            Pin::EEnable => 11,
            Pin::HotendHeat => 12,
            Pin::BedHeat => 13,
            Pin::FanPwm => 14,
            Pin::PsOn => 15,
            Pin::XMin => 16,
            Pin::YMin => 17,
            Pin::ZMin => 18,
        }
    }

    /// Number of distinct pins.
    pub const COUNT: usize = ALL_PINS.len();

    /// The Arduino Mega 2560 pin number on the RAMPS 1.4 (EFB) map.
    pub const fn arduino_pin(self) -> u8 {
        match self {
            Pin::XStep => 54,
            Pin::XDir => 55,
            Pin::XEnable => 38,
            Pin::YStep => 60,
            Pin::YDir => 61,
            Pin::YEnable => 56,
            Pin::ZStep => 46,
            Pin::ZDir => 48,
            Pin::ZEnable => 62,
            Pin::EStep => 26,
            Pin::EDir => 28,
            Pin::EEnable => 24,
            Pin::HotendHeat => 10,
            Pin::BedHeat => 8,
            Pin::FanPwm => 9,
            Pin::PsOn => 12,
            Pin::XMin => 3,
            Pin::YMin => 14,
            Pin::ZMin => 18,
        }
    }

    /// Control or feedback direction.
    pub const fn class(self) -> PinClass {
        match self {
            Pin::XMin | Pin::YMin | Pin::ZMin => PinClass::Feedback,
            _ => PinClass::Control,
        }
    }

    /// The axis a stepper-driver pin belongs to, if any.
    pub const fn axis(self) -> Option<Axis> {
        match self {
            Pin::XStep | Pin::XDir | Pin::XEnable | Pin::XMin => Some(Axis::X),
            Pin::YStep | Pin::YDir | Pin::YEnable | Pin::YMin => Some(Axis::Y),
            Pin::ZStep | Pin::ZDir | Pin::ZEnable | Pin::ZMin => Some(Axis::Z),
            Pin::EStep | Pin::EDir | Pin::EEnable => Some(Axis::E),
            _ => None,
        }
    }

    /// True for the four `*_STEP` pins.
    pub const fn is_step(self) -> bool {
        matches!(self, Pin::XStep | Pin::YStep | Pin::ZStep | Pin::EStep)
    }

    /// True for the four `*_DIR` pins.
    pub const fn is_dir(self) -> bool {
        matches!(self, Pin::XDir | Pin::YDir | Pin::ZDir | Pin::EDir)
    }

    /// True for the four `*_EN` pins.
    pub const fn is_enable(self) -> bool {
        matches!(
            self,
            Pin::XEnable | Pin::YEnable | Pin::ZEnable | Pin::EEnable
        )
    }

    /// True for the heater gates (D8 bed, D10 hotend).
    pub const fn is_heater(self) -> bool {
        matches!(self, Pin::HotendHeat | Pin::BedHeat)
    }

    /// Signal name as printed on RAMPS schematics (e.g. `X_STEP`).
    pub const fn name(self) -> &'static str {
        match self {
            Pin::XStep => "X_STEP",
            Pin::XDir => "X_DIR",
            Pin::XEnable => "X_EN",
            Pin::YStep => "Y_STEP",
            Pin::YDir => "Y_DIR",
            Pin::YEnable => "Y_EN",
            Pin::ZStep => "Z_STEP",
            Pin::ZDir => "Z_DIR",
            Pin::ZEnable => "Z_EN",
            Pin::EStep => "E0_STEP",
            Pin::EDir => "E0_DIR",
            Pin::EEnable => "E0_EN",
            Pin::HotendHeat => "D10",
            Pin::BedHeat => "D8",
            Pin::FanPwm => "D9",
            Pin::PsOn => "PS_ON",
            Pin::XMin => "X_MIN",
            Pin::YMin => "Y_MIN",
            Pin::ZMin => "Z_MIN",
        }
    }
}

impl fmt::Display for Pin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn indices_are_dense_and_unique() {
        let idx: HashSet<usize> = ALL_PINS.iter().map(|p| p.index()).collect();
        assert_eq!(idx.len(), Pin::COUNT);
        assert_eq!(*idx.iter().max().unwrap(), Pin::COUNT - 1);
        for (i, p) in ALL_PINS.iter().enumerate() {
            assert_eq!(p.index(), i, "ALL_PINS order must match index()");
        }
    }

    #[test]
    fn control_feedback_partition() {
        for p in CONTROL_PINS {
            assert_eq!(p.class(), PinClass::Control);
        }
        for p in FEEDBACK_PINS {
            assert_eq!(p.class(), PinClass::Feedback);
        }
        assert_eq!(CONTROL_PINS.len() + FEEDBACK_PINS.len(), ALL_PINS.len());
    }

    #[test]
    fn axis_pin_wiring() {
        for axis in Axis::ALL {
            assert_eq!(axis.step_pin().axis(), Some(axis));
            assert_eq!(axis.dir_pin().axis(), Some(axis));
            assert_eq!(axis.enable_pin().axis(), Some(axis));
            assert!(axis.step_pin().is_step());
            assert!(axis.dir_pin().is_dir());
            assert!(axis.enable_pin().is_enable());
        }
        assert_eq!(Axis::E.min_endstop_pin(), None);
        assert_eq!(Axis::X.min_endstop_pin(), Some(Pin::XMin));
    }

    #[test]
    fn ramps_pin_numbers_match_reprap_map() {
        // Spot-check the canonical RAMPS 1.4 assignments.
        assert_eq!(Pin::XStep.arduino_pin(), 54);
        assert_eq!(Pin::XEnable.arduino_pin(), 38);
        assert_eq!(Pin::YStep.arduino_pin(), 60);
        assert_eq!(Pin::ZMin.arduino_pin(), 18);
        assert_eq!(Pin::HotendHeat.arduino_pin(), 10);
        assert_eq!(Pin::BedHeat.arduino_pin(), 8);
        assert_eq!(Pin::FanPwm.arduino_pin(), 9);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = ALL_PINS.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), ALL_PINS.len());
        assert_eq!(Pin::YDir.to_string(), "Y_DIR");
    }

    #[test]
    fn axis_display_and_index() {
        assert_eq!(Axis::X.to_string(), "X");
        for (i, a) in Axis::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
        }
    }
}

//! Logic levels, edges, and the signal-event vocabulary.

use std::fmt;

use crate::pin::Pin;

/// A digital logic level.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Logic low (0 V).
    #[default]
    Low,
    /// Logic high (5 V on the Arduino/RAMPS side, 3.3 V inside the FPGA).
    High,
}

impl Level {
    /// The opposite level.
    pub const fn invert(self) -> Level {
        match self {
            Level::Low => Level::High,
            Level::High => Level::Low,
        }
    }

    /// True if high.
    pub const fn is_high(self) -> bool {
        matches!(self, Level::High)
    }

    /// `1` for high, `0` for low (as in a VCD dump).
    pub const fn as_bit(self) -> u8 {
        match self {
            Level::Low => 0,
            Level::High => 1,
        }
    }
}

impl From<bool> for Level {
    fn from(b: bool) -> Self {
        if b {
            Level::High
        } else {
            Level::Low
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Low => "L",
            Level::High => "H",
        })
    }
}

/// A logic transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low → high.
    Rising,
    /// High → low.
    Falling,
}

impl Edge {
    /// The edge that ends at `to`.
    pub const fn to(to: Level) -> Edge {
        match to {
            Level::High => Edge::Rising,
            Level::Low => Edge::Falling,
        }
    }

    /// The level after this edge.
    pub const fn level_after(self) -> Level {
        match self {
            Edge::Rising => Level::High,
            Edge::Falling => Level::Low,
        }
    }
}

/// A level change on one digital pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicEvent {
    /// The pin that changed.
    pub pin: Pin,
    /// The level it changed to.
    pub level: Level,
}

impl LogicEvent {
    /// Creates a level-change event.
    pub const fn new(pin: Pin, level: Level) -> Self {
        LogicEvent { pin, level }
    }

    /// The edge this event represents (assuming it is a real change).
    pub const fn edge(self) -> Edge {
        Edge::to(self.level)
    }
}

impl fmt::Display for LogicEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.pin, self.level)
    }
}

/// An analog channel of the interface (read via the FPGA's XADC in the
/// paper; thermistor dividers on the RAMPS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AnalogChannel {
    /// Hotend thermistor (RAMPS `T0`, Mega A13).
    HotendTherm,
    /// Bed thermistor (RAMPS `T1`, Mega A14).
    BedTherm,
}

impl AnalogChannel {
    /// Both channels.
    pub const ALL: [AnalogChannel; 2] = [AnalogChannel::HotendTherm, AnalogChannel::BedTherm];

    /// Signal name as on the RAMPS silkscreen.
    pub const fn name(self) -> &'static str {
        match self {
            AnalogChannel::HotendTherm => "T0",
            AnalogChannel::BedTherm => "T1",
        }
    }
}

impl fmt::Display for AnalogChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Direction of a UART byte relative to the Arduino.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UartDirection {
    /// Arduino → display/control board (through the RAMPS AUX headers).
    ControllerToDisplay,
    /// Display/control board → Arduino.
    DisplayToController,
}

/// Everything that can cross the Arduino ↔ RAMPS boundary, and therefore
/// everything the OFFRAMPS interceptor can observe or modify.
///
/// UART is modelled per-byte rather than per-bit (see `DESIGN.md` §4):
/// the interceptor's monitoring treats UART frames as opaque payloads, so
/// bit-level events would add cost without changing any measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignalEvent {
    /// A digital level change.
    Logic(LogicEvent),
    /// A sampled thermistor conversion: 10-bit ADC counts as the Arduino's
    /// ADC would report (0 = 0 V, 1023 = 5 V).
    Adc {
        /// Which thermistor divider was sampled.
        channel: AnalogChannel,
        /// Raw 10-bit conversion result.
        counts: u16,
    },
    /// A display-UART byte.
    Uart {
        /// Transfer direction.
        direction: UartDirection,
        /// Payload byte.
        byte: u8,
    },
}

impl SignalEvent {
    /// Convenience constructor for a logic change.
    pub const fn logic(pin: Pin, level: Level) -> Self {
        SignalEvent::Logic(LogicEvent::new(pin, level))
    }

    /// The inner logic event, if this is one.
    pub const fn as_logic(&self) -> Option<LogicEvent> {
        match self {
            SignalEvent::Logic(ev) => Some(*ev),
            _ => None,
        }
    }
}

impl fmt::Display for SignalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalEvent::Logic(ev) => write!(f, "{ev}"),
            SignalEvent::Adc { channel, counts } => write!(f, "{channel}={counts}"),
            SignalEvent::Uart { direction, byte } => {
                let arrow = match direction {
                    UartDirection::ControllerToDisplay => "->LCD",
                    UartDirection::DisplayToController => "<-LCD",
                };
                write!(f, "UART{arrow}:{byte:#04x}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_inversion_and_bits() {
        assert_eq!(Level::Low.invert(), Level::High);
        assert_eq!(Level::High.invert(), Level::Low);
        assert_eq!(Level::High.as_bit(), 1);
        assert!(Level::High.is_high());
        assert_eq!(Level::from(true), Level::High);
        assert_eq!(Level::default(), Level::Low);
    }

    #[test]
    fn edge_round_trip() {
        assert_eq!(Edge::to(Level::High), Edge::Rising);
        assert_eq!(Edge::Rising.level_after(), Level::High);
        assert_eq!(Edge::Falling.level_after(), Level::Low);
    }

    #[test]
    fn logic_event_edge() {
        let ev = LogicEvent::new(Pin::EStep, Level::High);
        assert_eq!(ev.edge(), Edge::Rising);
        assert_eq!(ev.to_string(), "E0_STEP=H");
    }

    #[test]
    fn signal_event_accessors() {
        let ev = SignalEvent::logic(Pin::XDir, Level::Low);
        assert_eq!(ev.as_logic(), Some(LogicEvent::new(Pin::XDir, Level::Low)));
        let adc = SignalEvent::Adc {
            channel: AnalogChannel::HotendTherm,
            counts: 512,
        };
        assert_eq!(adc.as_logic(), None);
        assert_eq!(adc.to_string(), "T0=512");
        let uart = SignalEvent::Uart {
            direction: UartDirection::ControllerToDisplay,
            byte: 0x41,
        };
        assert_eq!(uart.to_string(), "UART->LCD:0x41");
    }
}

//! Instantaneous state of all interface lines.

use crate::event::{Level, LogicEvent};
use crate::pin::{Pin, ALL_PINS};

/// The current logic level of every pin of the Arduino ↔ RAMPS interface.
///
/// The bus starts with every line low except the active-low stepper
/// `*_EN` pins, which idle high (drivers disabled) — matching the reset
/// state of the real boards.
///
/// # Example
///
/// ```
/// use offramps_signals::{SignalBus, Pin, Level, LogicEvent};
///
/// let mut bus = SignalBus::new();
/// assert_eq!(bus.level(Pin::XEnable), Level::High); // driver disabled
/// let changed = bus.apply(LogicEvent::new(Pin::XEnable, Level::Low));
/// assert!(changed);
/// assert!(bus.is_enabled(offramps_signals::Axis::X));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalBus {
    levels: [Level; Pin::COUNT],
}

impl Default for SignalBus {
    fn default() -> Self {
        Self::new()
    }
}

impl SignalBus {
    /// Creates a bus in the reset state.
    pub fn new() -> Self {
        let mut levels = [Level::Low; Pin::COUNT];
        for pin in ALL_PINS {
            if pin.is_enable() {
                levels[pin.index()] = Level::High; // active-low: disabled
            }
        }
        SignalBus { levels }
    }

    /// The current level of `pin`.
    pub fn level(&self, pin: Pin) -> Level {
        self.levels[pin.index()]
    }

    /// Applies a level change. Returns `true` if the level actually
    /// changed (i.e. the event is an edge, not a repeat).
    pub fn apply(&mut self, event: LogicEvent) -> bool {
        let slot = &mut self.levels[event.pin.index()];
        let changed = *slot != event.level;
        *slot = event.level;
        changed
    }

    /// True if the stepper driver of `axis` is enabled (`*_EN` low).
    pub fn is_enabled(&self, axis: crate::pin::Axis) -> bool {
        !self.level(axis.enable_pin()).is_high()
    }

    /// Iterator over `(pin, level)` pairs in stable pin order.
    pub fn iter(&self) -> impl Iterator<Item = (Pin, Level)> + '_ {
        ALL_PINS.iter().map(move |p| (*p, self.level(*p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pin::Axis;

    #[test]
    fn reset_state_matches_hardware() {
        let bus = SignalBus::new();
        for axis in Axis::ALL {
            assert!(!bus.is_enabled(axis), "{axis} must reset disabled");
        }
        assert_eq!(bus.level(Pin::XStep), Level::Low);
        assert_eq!(bus.level(Pin::HotendHeat), Level::Low);
    }

    #[test]
    fn apply_reports_edges_only() {
        let mut bus = SignalBus::new();
        assert!(bus.apply(LogicEvent::new(Pin::YStep, Level::High)));
        assert!(!bus.apply(LogicEvent::new(Pin::YStep, Level::High)));
        assert!(bus.apply(LogicEvent::new(Pin::YStep, Level::Low)));
    }

    #[test]
    fn iter_covers_every_pin() {
        let bus = SignalBus::new();
        assert_eq!(bus.iter().count(), Pin::COUNT);
    }

    #[test]
    fn enable_semantics_are_active_low() {
        let mut bus = SignalBus::new();
        bus.apply(LogicEvent::new(Pin::EEnable, Level::Low));
        assert!(bus.is_enabled(Axis::E));
        bus.apply(LogicEvent::new(Pin::EEnable, Level::High));
        assert!(!bus.is_enabled(Axis::E));
    }
}

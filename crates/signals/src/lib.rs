//! Wire-level model of the Arduino Mega ↔ RAMPS 1.4 interface.
//!
//! The OFFRAMPS board physically interposes on every signal between the
//! controller (Arduino Mega running Marlin) and the driver board
//! (RAMPS 1.4). This crate defines that signal vocabulary for the
//! simulation:
//!
//! * [`Pin`] — every digital line of the interface, with its real Arduino
//!   Mega pin number from the RAMPS 1.4 pin map,
//! * [`Level`], [`Edge`], [`LogicEvent`] — digital levels and transitions,
//! * [`SignalEvent`] — the full event vocabulary that flows between the
//!   firmware, the interceptor and the plant (logic edges, thermistor ADC
//!   samples, UART bytes),
//! * [`SignalBus`] — the instantaneous state of all lines,
//! * [`SignalTrace`] — a recording of events with logic-analyzer style
//!   queries (pulse counts, widths, frequencies) and VCD export,
//! * [`EdgeDetector`] — the edge-detection primitive the paper's FPGA
//!   modules are built from.
//!
//! # Example
//!
//! ```
//! use offramps_signals::{Pin, Level, SignalBus, LogicEvent};
//!
//! let mut bus = SignalBus::new();
//! bus.apply(LogicEvent::new(Pin::XStep, Level::High));
//! assert_eq!(bus.level(Pin::XStep), Level::High);
//! assert_eq!(Pin::XStep.arduino_pin(), 54); // A0 on the Mega
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod edge;
mod event;
mod pin;
mod trace;
mod vcd;

pub use bus::SignalBus;
pub use edge::EdgeDetector;
pub use event::{AnalogChannel, Edge, Level, LogicEvent, SignalEvent, UartDirection};
pub use pin::{Axis, Pin, PinClass, ALL_PINS, CONTROL_PINS, FEEDBACK_PINS};
pub use trace::{PinStats, SignalTrace, TraceSummary};
pub use vcd::write_vcd;

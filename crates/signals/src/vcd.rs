//! Value-change-dump (VCD) export.
//!
//! Traces captured by the interceptor can be dumped in the standard VCD
//! format and opened in GTKWave or PulseView — the workflow an engineer
//! would use with the physical OFFRAMPS board and a logic analyzer.

use std::io::{self, Write};

use offramps_des::TICK_NS;

use crate::event::Level;
use crate::pin::{Pin, ALL_PINS};
use crate::trace::SignalTrace;

/// Writes `trace` to `out` as a VCD file with one scalar wire per pin.
///
/// A `&mut Vec<u8>` or any other [`Write`] implementor can be passed by
/// mutable reference.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
///
/// # Example
///
/// ```
/// use offramps_signals::{SignalTrace, write_vcd};
/// let trace = SignalTrace::new();
/// let mut buf = Vec::new();
/// write_vcd(&mut buf, &trace, "golden print")?;
/// assert!(String::from_utf8(buf)?.contains("$timescale 10 ns"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_vcd<W: Write>(mut out: W, trace: &SignalTrace, comment: &str) -> io::Result<()> {
    writeln!(out, "$comment OFFRAMPS capture: {comment} $end")?;
    writeln!(out, "$timescale {TICK_NS} ns $end")?;
    writeln!(out, "$scope module offramps $end")?;
    for pin in ALL_PINS {
        writeln!(out, "$var wire 1 {} {} $end", ident(pin), pin.name())?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    // Initial values: everything unknown until first observation.
    writeln!(out, "$dumpvars")?;
    for pin in ALL_PINS {
        writeln!(out, "x{}", ident(pin))?;
    }
    writeln!(out, "$end")?;

    let mut last_tick = None;
    for entry in trace.entries() {
        if last_tick != Some(entry.tick) {
            writeln!(out, "#{}", entry.tick.ticks())?;
            last_tick = Some(entry.tick);
        }
        let bit = match entry.event.level {
            Level::Low => '0',
            Level::High => '1',
        };
        writeln!(out, "{bit}{}", ident(entry.event.pin))?;
    }
    Ok(())
}

/// Short printable VCD identifier for a pin (one char per pin, starting at
/// `!` which is the first legal VCD identifier character).
fn ident(pin: Pin) -> char {
    char::from(b'!' + pin.index() as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LogicEvent;
    use offramps_des::Tick;

    #[test]
    fn header_declares_every_pin() {
        let mut buf = Vec::new();
        write_vcd(&mut buf, &SignalTrace::new(), "empty").unwrap();
        let text = String::from_utf8(buf).unwrap();
        for pin in ALL_PINS {
            assert!(text.contains(pin.name()), "missing {pin}");
        }
        assert!(text.contains("$timescale 10 ns $end"));
    }

    #[test]
    fn events_serialize_in_order_with_shared_timestamps() {
        let mut trace = SignalTrace::new();
        trace.record(Tick::new(5), LogicEvent::new(Pin::XStep, Level::High));
        trace.record(Tick::new(5), LogicEvent::new(Pin::YStep, Level::High));
        trace.record(Tick::new(9), LogicEvent::new(Pin::XStep, Level::Low));
        let mut buf = Vec::new();
        write_vcd(&mut buf, &trace, "t").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body: Vec<&str> = text.lines().skip_while(|l| !l.starts_with('#')).collect();
        assert_eq!(body, vec!["#5", "1!", "1$", "#9", "0!"]);
    }

    #[test]
    fn identifiers_unique() {
        let ids: std::collections::HashSet<char> = ALL_PINS.iter().map(|p| ident(*p)).collect();
        assert_eq!(ids.len(), ALL_PINS.len());
    }
}

//! Signal recording and logic-analyzer style analysis.
//!
//! The paper notes that "the FPGA can act as a rudimentary 'digital logic
//! analyzer' for the control signals passing between the Arduino and RAMPS
//! boards". [`SignalTrace`] is that analyzer: a timestamped recording of
//! logic events with per-pin pulse statistics — the same quantities the
//! authors report in §V-B (maximum signal frequency below 20 kHz, minimum
//! pulse width 1 µs).

use offramps_des::{SimDuration, Tick};

use crate::event::{Edge, Level, LogicEvent};
use crate::pin::{Pin, ALL_PINS};

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the transition occurred.
    pub tick: Tick,
    /// What changed.
    pub event: LogicEvent,
}

/// Pulse statistics for a single pin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinStats {
    /// Number of rising edges.
    pub rising_edges: u64,
    /// Number of falling edges.
    pub falling_edges: u64,
    /// Shortest observed high pulse, if any complete pulse was seen.
    pub min_pulse_width: Option<SimDuration>,
    /// Longest observed high pulse, if any complete pulse was seen.
    pub max_pulse_width: Option<SimDuration>,
    /// Smallest interval between consecutive rising edges, if at least two
    /// rising edges were seen. Its reciprocal is the peak signal frequency.
    pub min_rising_period: Option<SimDuration>,
}

impl PinStats {
    /// Peak frequency in hertz implied by the minimum rising-edge period.
    pub fn max_frequency_hz(&self) -> Option<f64> {
        self.min_rising_period.and_then(|p| {
            let s = p.as_secs_f64();
            (s > 0.0).then(|| 1.0 / s)
        })
    }
}

/// Whole-trace summary across pins (§V-B quantities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Total recorded transitions.
    pub events: u64,
    /// Highest per-pin peak frequency in hertz, with the pin it occurred on.
    pub max_frequency_hz: Option<f64>,
    /// Pin exhibiting the peak frequency.
    pub busiest_pin: Option<Pin>,
    /// Shortest high pulse across all pins.
    pub min_pulse_width: Option<SimDuration>,
    /// Time of the first recorded event.
    pub first_tick: Option<Tick>,
    /// Time of the last recorded event.
    pub last_tick: Option<Tick>,
}

/// A timestamped recording of logic transitions on the interface.
///
/// # Example
///
/// ```
/// use offramps_des::Tick;
/// use offramps_signals::{SignalTrace, LogicEvent, Pin, Level};
///
/// let mut trace = SignalTrace::new();
/// trace.record(Tick::from_micros(0), LogicEvent::new(Pin::XStep, Level::High));
/// trace.record(Tick::from_micros(2), LogicEvent::new(Pin::XStep, Level::Low));
/// let stats = trace.pin_stats(Pin::XStep);
/// assert_eq!(stats.rising_edges, 1);
/// assert_eq!(stats.min_pulse_width.unwrap().as_nanos(), 2_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignalTrace {
    entries: Vec<TraceEntry>,
}

impl SignalTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SignalTrace {
            entries: Vec::new(),
        }
    }

    /// Appends one transition.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `tick` precedes the last recorded entry;
    /// recordings must be chronological.
    pub fn record(&mut self, tick: Tick, event: LogicEvent) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.tick <= tick),
            "trace must be recorded in chronological order"
        );
        self.entries.push(TraceEntry { tick, event });
    }

    /// All recorded entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded transitions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries for one pin, in order.
    pub fn pin_entries(&self, pin: Pin) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.event.pin == pin)
    }

    /// Number of edges of `edge` kind on `pin` in the half-open window
    /// `[from, to)`. The trace stores levels; an entry counts as an edge if
    /// it changed the pin's level.
    pub fn edges_in_window(&self, pin: Pin, edge: Edge, from: Tick, to: Tick) -> u64 {
        // Pins reset low; the first recorded `High` therefore counts as a
        // rising edge.
        let mut last = Level::Low;
        let mut count = 0;
        for e in self.pin_entries(pin) {
            let is_edge = last != e.event.level;
            if is_edge && e.tick >= from && e.tick < to && Edge::to(e.event.level) == edge {
                count += 1;
            }
            last = e.event.level;
        }
        count
    }

    /// Ticks of the rising transitions on one pin, in order. Pins reset
    /// low, so the first recorded `High` counts; repeated same-level
    /// entries are not edges. This is the step-timing view the
    /// acoustic/EM side-channel model consumes: each rising STEP edge is
    /// one motor "tick" whose spacing sets the emitted tone.
    pub fn rising_edge_ticks(&self, pin: Pin) -> impl Iterator<Item = Tick> + '_ {
        let mut last = Level::Low;
        self.pin_entries(pin).filter_map(move |e| {
            let rising = last == Level::Low && e.event.level == Level::High;
            last = e.event.level;
            rising.then_some(e.tick)
        })
    }

    /// Pulse statistics for one pin.
    pub fn pin_stats(&self, pin: Pin) -> PinStats {
        let mut stats = PinStats {
            rising_edges: 0,
            falling_edges: 0,
            min_pulse_width: None,
            max_pulse_width: None,
            min_rising_period: None,
        };
        // Pins reset low, so the first recorded `High` is a rising edge.
        let mut last_level = Level::Low;
        let mut last_rise: Option<Tick> = None;
        let mut prev_rise: Option<Tick> = None;
        for e in self.pin_entries(pin) {
            let changed = last_level != e.event.level;
            if changed {
                match Edge::to(e.event.level) {
                    Edge::Rising => {
                        stats.rising_edges += 1;
                        if let Some(p) = prev_rise {
                            let period = e.tick - p;
                            stats.min_rising_period = Some(
                                stats
                                    .min_rising_period
                                    .map_or(period, |m: SimDuration| m.min(period)),
                            );
                        }
                        prev_rise = Some(e.tick);
                        last_rise = Some(e.tick);
                    }
                    Edge::Falling => {
                        stats.falling_edges += 1;
                        if let Some(r) = last_rise.take() {
                            let width = e.tick - r;
                            stats.min_pulse_width = Some(
                                stats
                                    .min_pulse_width
                                    .map_or(width, |m: SimDuration| m.min(width)),
                            );
                            stats.max_pulse_width = Some(
                                stats
                                    .max_pulse_width
                                    .map_or(width, |m: SimDuration| m.max(width)),
                            );
                        }
                    }
                }
            }
            last_level = e.event.level;
        }
        stats
    }

    /// Whole-trace summary (the §V-B quantities).
    pub fn summary(&self) -> TraceSummary {
        let mut max_freq: Option<(f64, Pin)> = None;
        let mut min_pulse: Option<SimDuration> = None;
        for pin in ALL_PINS {
            let s = self.pin_stats(pin);
            if let Some(f) = s.max_frequency_hz() {
                if max_freq.is_none_or(|(m, _)| f > m) {
                    max_freq = Some((f, pin));
                }
            }
            if let Some(w) = s.min_pulse_width {
                min_pulse = Some(min_pulse.map_or(w, |m| m.min(w)));
            }
        }
        TraceSummary {
            events: self.entries.len() as u64,
            max_frequency_hz: max_freq.map(|(f, _)| f),
            busiest_pin: max_freq.map(|(_, p)| p),
            min_pulse_width: min_pulse,
            first_tick: self.entries.first().map(|e| e.tick),
            last_tick: self.entries.last().map(|e| e.tick),
        }
    }
}

impl FromIterator<TraceEntry> for SignalTrace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        let mut entries: Vec<TraceEntry> = iter.into_iter().collect();
        entries.sort_by_key(|e| e.tick);
        SignalTrace { entries }
    }
}

impl Extend<TraceEntry> for SignalTrace {
    fn extend<I: IntoIterator<Item = TraceEntry>>(&mut self, iter: I) {
        for e in iter {
            self.record(e.tick, e.event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse(trace: &mut SignalTrace, pin: Pin, at_us: u64, width_us: u64) {
        trace.record(Tick::from_micros(at_us), LogicEvent::new(pin, Level::High));
        trace.record(
            Tick::from_micros(at_us + width_us),
            LogicEvent::new(pin, Level::Low),
        );
    }

    #[test]
    fn counts_edges_per_pin() {
        let mut t = SignalTrace::new();
        // Establish initial low level so the first high is an edge.
        t.record(Tick::ZERO, LogicEvent::new(Pin::XStep, Level::Low));
        t.record(Tick::ZERO, LogicEvent::new(Pin::YStep, Level::Low));
        pulse(&mut t, Pin::XStep, 10, 2);
        pulse(&mut t, Pin::YStep, 15, 2);
        pulse(&mut t, Pin::XStep, 20, 2);
        let x = t.pin_stats(Pin::XStep);
        assert_eq!(x.rising_edges, 2);
        assert_eq!(x.falling_edges, 2);
        assert_eq!(t.pin_stats(Pin::YStep).rising_edges, 1);
        assert_eq!(t.pin_stats(Pin::ZStep).rising_edges, 0);
    }

    #[test]
    fn pulse_width_and_period() {
        let mut t = SignalTrace::new();
        t.record(Tick::ZERO, LogicEvent::new(Pin::EStep, Level::Low));
        pulse(&mut t, Pin::EStep, 100, 1); // 1 us pulse
        pulse(&mut t, Pin::EStep, 150, 3); // 3 us pulse, 50 us period
        let s = t.pin_stats(Pin::EStep);
        assert_eq!(s.min_pulse_width, Some(SimDuration::from_micros(1)));
        assert_eq!(s.max_pulse_width, Some(SimDuration::from_micros(3)));
        assert_eq!(s.min_rising_period, Some(SimDuration::from_micros(50)));
        let f = s.max_frequency_hz().unwrap();
        assert!((f - 20_000.0).abs() < 1e-6, "50us period = 20 kHz, got {f}");
    }

    #[test]
    fn window_queries() {
        let mut t = SignalTrace::new();
        t.record(Tick::ZERO, LogicEvent::new(Pin::XStep, Level::Low));
        for i in 0..10 {
            pulse(&mut t, Pin::XStep, 10 + i * 10, 2);
        }
        let n = t.edges_in_window(
            Pin::XStep,
            Edge::Rising,
            Tick::from_micros(10),
            Tick::from_micros(50),
        );
        assert_eq!(n, 4); // rising at 10,20,30,40
    }

    #[test]
    fn summary_finds_busiest_pin() {
        let mut t = SignalTrace::new();
        t.record(Tick::ZERO, LogicEvent::new(Pin::XStep, Level::Low));
        t.record(Tick::ZERO, LogicEvent::new(Pin::ZStep, Level::Low));
        // X: 100 us period; Z: 10 us period (faster).
        pulse(&mut t, Pin::XStep, 10, 2);
        pulse(&mut t, Pin::ZStep, 12, 2);
        pulse(&mut t, Pin::ZStep, 22, 2);
        pulse(&mut t, Pin::XStep, 110, 2);
        let s = t.summary();
        assert_eq!(s.busiest_pin, Some(Pin::ZStep));
        assert_eq!(s.min_pulse_width, Some(SimDuration::from_micros(2)));
        assert_eq!(s.events, 10);
        assert_eq!(s.first_tick, Some(Tick::ZERO));
    }

    #[test]
    fn from_iterator_sorts() {
        let entries = vec![
            TraceEntry {
                tick: Tick::from_micros(5),
                event: LogicEvent::new(Pin::XStep, Level::Low),
            },
            TraceEntry {
                tick: Tick::from_micros(1),
                event: LogicEvent::new(Pin::XStep, Level::High),
            },
        ];
        let t: SignalTrace = entries.into_iter().collect();
        assert!(t.entries()[0].tick < t.entries()[1].tick);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rising_edge_ticks_match_stats() {
        let mut t = SignalTrace::new();
        t.record(Tick::ZERO, LogicEvent::new(Pin::XStep, Level::Low));
        pulse(&mut t, Pin::XStep, 10, 2);
        t.record(
            Tick::from_micros(30),
            LogicEvent::new(Pin::XStep, Level::High),
        );
        // A repeated High is not a second edge.
        t.record(
            Tick::from_micros(31),
            LogicEvent::new(Pin::XStep, Level::High),
        );
        let ticks: Vec<Tick> = t.rising_edge_ticks(Pin::XStep).collect();
        assert_eq!(
            ticks,
            vec![Tick::from_micros(10), Tick::from_micros(30)],
            "{ticks:?}"
        );
        assert_eq!(ticks.len() as u64, t.pin_stats(Pin::XStep).rising_edges);
    }

    #[test]
    fn repeated_levels_are_not_edges() {
        let mut t = SignalTrace::new();
        t.record(Tick::ZERO, LogicEvent::new(Pin::XStep, Level::Low));
        t.record(
            Tick::from_micros(1),
            LogicEvent::new(Pin::XStep, Level::Low),
        );
        t.record(
            Tick::from_micros(2),
            LogicEvent::new(Pin::XStep, Level::High),
        );
        t.record(
            Tick::from_micros(3),
            LogicEvent::new(Pin::XStep, Level::High),
        );
        let s = t.pin_stats(Pin::XStep);
        assert_eq!(s.rising_edges, 1);
        assert_eq!(s.falling_edges, 0);
    }
}

#[cfg(test)]
mod randomized_tests {
    use super::*;
    use offramps_des::DetRng;

    /// For any well-formed pulse train, rising and falling edges
    /// balance (every pulse closes) and the full-range window query
    /// agrees with pin_stats.
    #[test]
    fn pulse_accounting_over_random_trains() {
        for seed in 0u64..64 {
            let mut rng = DetRng::from_seed(seed);
            let n = rng.uniform_u64(1, 100) as usize;
            let widths: Vec<u64> = (0..n).map(|_| rng.uniform_u64(1, 50)).collect();
            let mut t = SignalTrace::new();
            let mut at = 0u64;
            for w in &widths {
                t.record(
                    Tick::from_micros(at),
                    LogicEvent::new(Pin::EStep, Level::High),
                );
                t.record(
                    Tick::from_micros(at + w),
                    LogicEvent::new(Pin::EStep, Level::Low),
                );
                at += w + 100;
            }
            let s = t.pin_stats(Pin::EStep);
            assert_eq!(s.rising_edges, widths.len() as u64, "seed {seed}");
            assert_eq!(s.falling_edges, widths.len() as u64, "seed {seed}");
            assert_eq!(
                s.min_pulse_width,
                Some(SimDuration::from_micros(*widths.iter().min().unwrap())),
                "seed {seed}"
            );
            let window_count = t.edges_in_window(
                Pin::EStep,
                Edge::Rising,
                Tick::ZERO,
                Tick::from_micros(at + 1),
            );
            assert_eq!(window_count, widths.len() as u64, "seed {seed}");
        }
    }

    /// Window queries partition: counting in [0,m) plus [m,end)
    /// equals counting in [0,end).
    #[test]
    fn window_queries_partition() {
        for seed in 0u64..64 {
            let mut rng = DetRng::from_seed(seed ^ 0x77);
            let n = rng.uniform_u64(1, 60) as usize;
            let split = rng.uniform_u64(0, 6_000);
            let mut t = SignalTrace::new();
            for i in 0..n {
                let at = i as u64 * 100;
                t.record(
                    Tick::from_micros(at),
                    LogicEvent::new(Pin::XStep, Level::High),
                );
                t.record(
                    Tick::from_micros(at + 2),
                    LogicEvent::new(Pin::XStep, Level::Low),
                );
            }
            let end = Tick::from_micros(n as u64 * 100 + 10);
            let mid = Tick::from_micros(split);
            let a = t.edges_in_window(Pin::XStep, Edge::Rising, Tick::ZERO, mid.min(end));
            let b = t.edges_in_window(Pin::XStep, Edge::Rising, mid.min(end), end);
            let whole = t.edges_in_window(Pin::XStep, Edge::Rising, Tick::ZERO, end);
            assert_eq!(a + b, whole, "seed {seed}");
        }
    }
}

//! Pluggable multi-modality judging: named detectors over a generic
//! observation plane, fused into one verdict.
//!
//! The paper's monitor is valuable precisely because a print can be
//! judged from *independent physical evidence streams*: the §V-C
//! step-count comparison over the captured transactions, a power
//! side-channel over the driver rail, the acoustic/EM emission of the
//! steppers, a thermal camera on the heated elements. This module makes
//! the judging layer a first-class API in which a modality is **data,
//! not a struct field**:
//!
//! * [`Channel`] / [`ChannelData`] — the named evidence streams one
//!   print can produce (`txn` capture, `power`, `acoustic`, `thermal`);
//! * [`EvidenceBundle`] — a bundle of channels plus per-channel golden
//!   calibration repetitions;
//! * [`Detector`] — a named judge with a canonical policy string that
//!   *declares* ([`Detector::channels`]) which channels it consumes,
//!   how each is synthesized ([`ChannelSynth`]) and how many golden
//!   calibration repetitions it wants — the harness provisions exactly
//!   what the active suite asks for, sharing golden reruns across
//!   detectors;
//! * [`DetectorSuite`] — an ordered set of detectors plus a
//!   [`FusionPolicy`] (`any`, `all`, or calibrated [`FusionPolicy::Weighted`]
//!   voting), producing a fused [`Verdict`];
//! * the four shipped modalities: [`TransactionDetector`],
//!   [`PowerSideChannelDetector`], [`AcousticDetector`],
//!   [`ThermalDetector`].
//!
//! The taps are *physically different*: the transaction monitor counts
//! the controller's stream upstream of the Trojan mux; power, acoustic
//! and thermal sensors measure the plant downstream of it. A hardware
//! Trojan that masks pulses is invisible to the first and visible to
//! the others; one that only breaks step *timing* hides from the power
//! envelope but clicks audibly; one that only tampers with heat leaves
//! the motion plane spotless and glows on camera. Fusing independent
//! channels beats any single judge — which is the paper's core claim
//! about in-line intermediaries.
//!
//! A suite's [`DetectorSuite::policy`] string spells out every knob
//! that shapes a verdict; content-addressed stores key scenario records
//! by it, so changing the suite (or any detector default) re-addresses
//! every cached verdict at once.

use std::collections::BTreeMap;
use std::fmt;

use offramps_des::SimDuration;
use offramps_obs::Obs;
use offramps_sidechannel::{
    compare_sampled, AcousticModel, AcousticTrace, ComparatorConfig, PowerDetectorConfig,
    PowerModel, PowerTrace, SideChannelReport, StreamingComparator, ThermalCamera, ThermalTrace,
};

use crate::capture::{Capture, Transaction};
use crate::detect::{self, DetectorConfig};

/// A named evidence stream. The observation plane is keyed by these:
/// detectors declare which channels they consume, the harness
/// synthesizes only the channels the active suite asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// The monitor's transaction capture (controller-side tap).
    Txn,
    /// The driver-rail power waveform (plant-side tap).
    Power,
    /// The acoustic/EM emission envelope (plant-side step timing).
    Acoustic,
    /// The thermal-camera scene trace (true plant temperatures).
    Thermal,
}

impl Channel {
    /// Every channel, in canonical order.
    pub const ALL: [Channel; 4] = [
        Channel::Txn,
        Channel::Power,
        Channel::Acoustic,
        Channel::Thermal,
    ];

    /// Short stable name (`"txn"`, `"power"`, `"acoustic"`,
    /// `"thermal"`).
    pub fn name(&self) -> &'static str {
        match self {
            Channel::Txn => "txn",
            Channel::Power => "power",
            Channel::Acoustic => "acoustic",
            Channel::Thermal => "thermal",
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One channel's payload.
#[derive(Debug, Clone)]
pub enum ChannelData {
    /// A transaction capture.
    Txn(Capture),
    /// A synthesized power waveform.
    Power(PowerTrace),
    /// A synthesized acoustic/EM emission envelope.
    Acoustic(AcousticTrace),
    /// A synthesized thermal-camera trace.
    Thermal(ThermalTrace),
}

impl ChannelData {
    /// Which channel this payload belongs to.
    pub fn channel(&self) -> Channel {
        match self {
            ChannelData::Txn(_) => Channel::Txn,
            ChannelData::Power(_) => Channel::Power,
            ChannelData::Acoustic(_) => Channel::Acoustic,
            ChannelData::Thermal(_) => Channel::Thermal,
        }
    }

    /// The sampled scalar view, for the window-comparator modalities
    /// (`None` for the transaction capture, which is not a sampled
    /// waveform).
    pub fn samples(&self) -> Option<&[f64]> {
        match self {
            ChannelData::Txn(_) => None,
            ChannelData::Power(t) => Some(t.samples()),
            ChannelData::Acoustic(t) => Some(t.samples()),
            ChannelData::Thermal(t) => Some(t.samples()),
        }
    }
}

/// How a channel is synthesized from one run's artifacts. The harness
/// (`offramps_bench::detectors`) interprets these: `Capture` comes from
/// the monitor tap, `Power`/`Acoustic` from the plant-side signal
/// trace, `Thermal` from the plant temperature samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelSynth {
    /// The monitor's transaction capture (no synthesis model).
    Capture,
    /// Power waveform synthesis with this electrical model.
    Power(PowerModel),
    /// Acoustic/EM envelope synthesis with this emission model.
    Acoustic(AcousticModel),
    /// Thermal-scene synthesis with this camera model.
    Thermal(ThermalCamera),
}

impl ChannelSynth {
    /// The channel this synthesis produces.
    pub fn channel(&self) -> Channel {
        match self {
            ChannelSynth::Capture => Channel::Txn,
            ChannelSynth::Power(_) => Channel::Power,
            ChannelSynth::Acoustic(_) => Channel::Acoustic,
            ChannelSynth::Thermal(_) => Channel::Thermal,
        }
    }

    /// Whether producing this channel requires the plant-side signal
    /// trace to be recorded during the run.
    pub fn needs_plant_trace(&self) -> bool {
        matches!(self, ChannelSynth::Power(_) | ChannelSynth::Acoustic(_))
    }
}

/// One detector's declaration of a channel it consumes.
#[derive(Debug, Clone)]
pub struct ChannelRequest {
    /// How the channel is produced from run artifacts.
    pub synth: ChannelSynth,
    /// How many golden prints this detector wants for calibration on
    /// this channel, primary run included (0 or 1 = the primary golden
    /// run suffices, no repetitions).
    pub calibration_runs: usize,
}

impl ChannelRequest {
    /// A request for the transaction capture (no calibration).
    pub fn capture() -> ChannelRequest {
        ChannelRequest {
            synth: ChannelSynth::Capture,
            calibration_runs: 0,
        }
    }
}

/// The named evidence streams captured from one print: a bundle of
/// channels, plus (on golden bundles) per-channel calibration
/// repetitions — the published side-channel systems profile dozens of
/// repeated golden prints; observed bundles carry no calibration.
#[derive(Debug, Clone, Default)]
pub struct EvidenceBundle {
    channels: BTreeMap<Channel, ChannelData>,
    calibration: BTreeMap<Channel, Vec<ChannelData>>,
}

impl EvidenceBundle {
    /// A bundle holding just a transaction capture (the txn-only
    /// harness shape).
    pub fn from_capture(capture: Capture) -> EvidenceBundle {
        let mut bundle = EvidenceBundle::default();
        bundle.insert(ChannelData::Txn(capture));
        bundle
    }

    /// Inserts (or replaces) one channel's payload.
    pub fn insert(&mut self, data: ChannelData) {
        self.channels.insert(data.channel(), data);
    }

    /// Installs a channel's golden calibration repetitions (primary run
    /// first, by convention).
    pub fn insert_calibration(&mut self, channel: Channel, runs: Vec<ChannelData>) {
        self.calibration.insert(channel, runs);
    }

    /// One channel's payload, if present.
    pub fn get(&self, channel: Channel) -> Option<&ChannelData> {
        self.channels.get(&channel)
    }

    /// One channel's calibration repetitions (empty when none).
    pub fn calibration(&self, channel: Channel) -> &[ChannelData] {
        self.calibration.get(&channel).map_or(&[], Vec::as_slice)
    }

    /// The channels present, in canonical order.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        self.channels.keys().copied()
    }

    /// The transaction capture, if captured.
    pub fn capture(&self) -> Option<&Capture> {
        match self.channels.get(&Channel::Txn) {
            Some(ChannelData::Txn(c)) => Some(c),
            _ => None,
        }
    }

    /// The power waveform, if synthesized.
    pub fn power(&self) -> Option<&PowerTrace> {
        match self.channels.get(&Channel::Power) {
            Some(ChannelData::Power(t)) => Some(t),
            _ => None,
        }
    }

    /// The acoustic envelope, if synthesized.
    pub fn acoustic(&self) -> Option<&AcousticTrace> {
        match self.channels.get(&Channel::Acoustic) {
            Some(ChannelData::Acoustic(t)) => Some(t),
            _ => None,
        }
    }

    /// The thermal-scene trace, if synthesized.
    pub fn thermal(&self) -> Option<&ThermalTrace> {
        match self.channels.get(&Channel::Thermal) {
            Some(ChannelData::Thermal(t)) => Some(t),
            _ => None,
        }
    }

    /// A channel's calibration repetitions as sample slices (skipping
    /// any non-sampled payloads).
    fn calibration_samples(&self, channel: Channel) -> Vec<&[f64]> {
        self.calibration(channel)
            .iter()
            .filter_map(ChannelData::samples)
            .collect()
    }
}

/// One detector's judgment as sufficient statistics: everything needed
/// to re-judge the scenario offline at any threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The detector that produced this evidence (e.g. `"txn"`,
    /// `"power"`, `"acoustic"`, `"thermal"`).
    pub detector: String,
    /// The detector's own alarm; `None` when the evidence stream it
    /// needs was absent (an unjudged scenario, not a clean one).
    pub alarmed: Option<bool>,
    /// Units with an out-of-band signal: mismatching transactions for
    /// the step-count judge, anomalous windows for the sampled judges.
    pub flagged: usize,
    /// Individual out-of-band values (a transaction with two bad axes
    /// counts twice); equals `flagged` for window-based judges.
    pub flagged_values: usize,
    /// Units the detector compared (the suspect-fraction denominator).
    pub compared: usize,
    /// The suspect-fraction threshold the verdict used; `None` when
    /// unjudged.
    pub threshold: Option<f64>,
    /// Largest deviation seen: percent difference for the step-count
    /// judge, watts / a.u. / °C for the sampled judges.
    pub peak: f64,
    /// The end-of-print 0 %-margin totals check (transaction judge
    /// only; `None` elsewhere).
    pub final_totals_match: Option<bool>,
}

impl Evidence {
    /// Evidence for a scenario this detector could not judge (its
    /// stream was never captured, or the bench run errored).
    pub fn unjudged(detector: impl Into<String>) -> Evidence {
        Evidence {
            detector: detector.into(),
            alarmed: None,
            flagged: 0,
            flagged_values: 0,
            compared: 0,
            threshold: None,
            peak: 0.0,
            final_totals_match: None,
        }
    }

    /// True when the detector actually judged its stream.
    pub fn judged(&self) -> bool {
        self.alarmed.is_some()
    }

    /// Fraction of compared units flagged (0 when nothing compared).
    pub fn flagged_fraction(&self) -> f64 {
        if self.compared == 0 {
            0.0
        } else {
            self.flagged as f64 / self.compared as f64
        }
    }

    /// Evidence from a sampled-channel comparison report.
    fn from_report(detector: &'static str, report: SideChannelReport, base: f64) -> Evidence {
        Evidence {
            detector: detector.into(),
            alarmed: Some(report.sabotage_suspected),
            flagged: report.anomalous_windows,
            flagged_values: report.anomalous_windows,
            compared: report.windows_compared,
            threshold: Some(base),
            peak: report.largest_deviation_w,
            final_totals_match: None,
        }
    }
}

/// How a suite combines its detectors' alarms into one verdict.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FusionPolicy {
    /// Alarm when *any* judged detector alarms (the default: every
    /// independent evidence channel gets veto power over "clean").
    #[default]
    Any,
    /// Alarm only when *every* judged detector alarms (at least one
    /// must have judged).
    All,
    /// Weighted voting: alarm when the weight of alarming judged
    /// detectors reaches `threshold` of the total judged weight (and at
    /// least one weighted detector alarms). `weights` maps detector
    /// names to non-negative weights; an empty list weighs every judged
    /// detector equally. The boundaries degenerate exactly:
    /// `threshold = 0` is [`FusionPolicy::Any`], `threshold = 1` is
    /// [`FusionPolicy::All`] (over the positively weighted detectors).
    Weighted {
        /// Per-detector weights, in canonical (suite) order; empty =
        /// equal weights.
        weights: Vec<(String, f64)>,
        /// Fraction of the judged weight that must alarm, in `[0, 1]`.
        threshold: f64,
    },
}

impl FusionPolicy {
    /// Fuses per-detector evidence into the suite alarm. Unjudged
    /// evidence neither alarms nor vetoes.
    pub fn fuse(&self, evidence: &[Evidence]) -> bool {
        match self {
            FusionPolicy::Any => evidence.iter().filter_map(|e| e.alarmed).any(|a| a),
            FusionPolicy::All => {
                let judged: Vec<bool> = evidence.iter().filter_map(|e| e.alarmed).collect();
                !judged.is_empty() && judged.iter().all(|&a| a)
            }
            FusionPolicy::Weighted { weights, threshold } => {
                let votes = evidence
                    .iter()
                    .filter_map(|e| e.alarmed.map(|a| (e.detector.as_str(), a)));
                weighted_vote(weights, *threshold, votes)
            }
        }
    }

    /// The arithmetic behind one fused vote, for narration: the judged
    /// weight that alarmed, the total judged weight, and the policy's
    /// effective threshold (`any` degenerates to 0, `all` to 1, over
    /// equal weights). [`FusionPolicy::fuse`] stays the authoritative
    /// decision; the tally only explains it.
    pub fn tally_votes<'a>(&self, votes: impl Iterator<Item = (&'a str, bool)>) -> FusionTally {
        let (weights, threshold): (&[(String, f64)], f64) = match self {
            FusionPolicy::Any => (&[], 0.0),
            FusionPolicy::All => (&[], 1.0),
            FusionPolicy::Weighted { weights, threshold } => (weights, *threshold),
        };
        let weight_of = |det: &str| -> f64 {
            if weights.is_empty() {
                1.0
            } else {
                weights
                    .iter()
                    .find(|(name, _)| name == det)
                    .map_or(0.0, |(_, w)| *w)
            }
        };
        let mut total = 0.0;
        let mut alarmed = 0.0;
        for (det, alarm) in votes {
            let w = weight_of(det);
            total += w;
            if alarm {
                alarmed += w;
            }
        }
        FusionTally {
            alarmed_weight: alarmed,
            total_weight: total,
            threshold,
        }
    }

    /// [`FusionPolicy::tally_votes`] over per-detector evidence
    /// (unjudged evidence carries no weight, as in `fuse`).
    pub fn tally(&self, evidence: &[Evidence]) -> FusionTally {
        self.tally_votes(
            evidence
                .iter()
                .filter_map(|e| e.alarmed.map(|a| (e.detector.as_str(), a))),
        )
    }

    /// Parses a fusion policy:
    ///
    /// * `any` / `all`;
    /// * `weighted` — equal weights, threshold 0.5;
    /// * `weighted@0.3` — equal weights, explicit threshold;
    /// * `weighted:txn=1,power=0.5@0.3` — explicit weights (and
    ///   optional `@threshold`, default 0.5).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed policy.
    pub fn parse(name: &str) -> Result<FusionPolicy, String> {
        let name = name.trim().to_ascii_lowercase();
        match name.as_str() {
            "any" => return Ok(FusionPolicy::Any),
            "all" => return Ok(FusionPolicy::All),
            _ => {}
        }
        let Some(rest) = name.strip_prefix("weighted") else {
            return Err(format!(
                "unknown fusion policy {name:?} (any|all|weighted[:d=w,...][@threshold])"
            ));
        };
        let (spec, threshold) = match rest.rsplit_once('@') {
            Some((spec, t)) => {
                let t: f64 = t
                    .parse()
                    .map_err(|_| format!("bad weighted threshold in {name:?}"))?;
                (spec, t)
            }
            None => (rest, 0.5),
        };
        if !(0.0..=1.0).contains(&threshold) {
            return Err(format!("weighted threshold must be in [0, 1] in {name:?}"));
        }
        let mut weights = Vec::new();
        if let Some(list) = spec.strip_prefix(':') {
            for part in list.split(',').filter(|p| !p.is_empty()) {
                let (det, w) = part
                    .split_once('=')
                    .ok_or_else(|| format!("weighted wants d=w pairs, got {part:?}"))?;
                let w: f64 = w
                    .parse()
                    .map_err(|_| format!("bad weight for {det:?} in {name:?}"))?;
                if !(w.is_finite() && w >= 0.0) {
                    return Err(format!("weight for {det:?} must be >= 0 in {name:?}"));
                }
                weights.push((det.trim().to_string(), w));
            }
            if weights.is_empty() {
                return Err(format!("empty weight list in {name:?}"));
            }
        } else if !spec.is_empty() {
            return Err(format!("unknown fusion policy {name:?}"));
        }
        Ok(FusionPolicy::Weighted { weights, threshold })
    }
}

/// The numbers behind one fused vote, produced by
/// [`FusionPolicy::tally_votes`]: how much judged weight alarmed out
/// of how much, against which effective threshold. Rendered by the
/// campaign flight recorder as `fused 0.25/0.50`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionTally {
    /// Judged weight whose detectors alarmed.
    pub alarmed_weight: f64,
    /// Total judged weight.
    pub total_weight: f64,
    /// The policy's effective alarm threshold over the judged weight.
    pub threshold: f64,
}

impl FusionTally {
    /// Alarmed fraction of the judged weight (0 when nothing judged).
    pub fn alarmed_fraction(&self) -> f64 {
        if self.total_weight == 0.0 {
            0.0
        } else {
            self.alarmed_weight / self.total_weight
        }
    }
}

/// The weighted-vote rule shared by live fusion and offline weighted
/// re-judging (`offramps_bench::analytics`): alarm when the alarming
/// judged weight reaches `threshold` of the total judged weight and at
/// least one positively weighted detector alarms. An empty weight list
/// weighs every judged detector at 1; detectors absent from a non-empty
/// list weigh 0.
pub fn weighted_vote<'a>(
    weights: &[(String, f64)],
    threshold: f64,
    votes: impl Iterator<Item = (&'a str, bool)>,
) -> bool {
    let weight_of = |det: &str| -> f64 {
        if weights.is_empty() {
            1.0
        } else {
            weights
                .iter()
                .find(|(name, _)| name == det)
                .map_or(0.0, |(_, w)| *w)
        }
    };
    let mut total = 0.0;
    let mut alarmed = 0.0;
    for (det, alarm) in votes {
        let w = weight_of(det);
        total += w;
        if alarm {
            alarmed += w;
        }
    }
    total > 0.0 && alarmed > 0.0 && alarmed >= threshold * total
}

impl fmt::Display for FusionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionPolicy::Any => f.write_str("any"),
            FusionPolicy::All => f.write_str("all"),
            FusionPolicy::Weighted { weights, threshold } => {
                if weights.is_empty() {
                    write!(f, "weighted@{threshold}")
                } else {
                    let parts: Vec<String> =
                        weights.iter().map(|(d, w)| format!("{d}={w}")).collect();
                    write!(f, "weighted:{}@{threshold}", parts.join(","))
                }
            }
        }
    }
}

/// A suite's fused judgment of one print: the combined alarm plus every
/// detector's evidence, in suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The fused alarm.
    pub alarmed: bool,
    /// Per-detector evidence, in suite order.
    pub evidence: Vec<Evidence>,
}

impl Verdict {
    /// The evidence a named detector produced, if it is in the suite.
    pub fn evidence_for(&self, detector: &str) -> Option<&Evidence> {
        self.evidence.iter().find(|e| e.detector == detector)
    }

    /// Shorthand for the transaction judge's evidence.
    pub fn txn(&self) -> Option<&Evidence> {
        self.evidence_for(TransactionDetector::NAME)
    }

    /// Shorthand for the power judge's evidence.
    pub fn power(&self) -> Option<&Evidence> {
        self.evidence_for(PowerSideChannelDetector::NAME)
    }

    /// Shorthand for the acoustic judge's evidence.
    pub fn acoustic(&self) -> Option<&Evidence> {
        self.evidence_for(AcousticDetector::NAME)
    }

    /// Shorthand for the thermal judge's evidence.
    pub fn thermal(&self) -> Option<&Evidence> {
        self.evidence_for(ThermalDetector::NAME)
    }

    /// Publishes this verdict's per-detector rollup into the
    /// observability plane: `verdict.<name>.judged`,
    /// `verdict.<name>.alarms`, and `verdict.<name>.margin_micros` —
    /// the flagged fraction's signed distance to the detector's alarm
    /// threshold, in micro-units so registry merges stay exact — plus
    /// the fused `verdict.fused_alarms`. Everything recorded is a pure
    /// function of the verdict, so the metrics document stays
    /// byte-identical across thread counts and engines.
    pub fn record_metrics(&self, obs: &Obs) {
        if !obs.is_enabled() {
            return;
        }
        for e in &self.evidence {
            let Some(alarmed) = e.alarmed else { continue };
            obs.count(&format!("verdict.{}.judged", e.detector), 1);
            if alarmed {
                obs.count(&format!("verdict.{}.alarms", e.detector), 1);
            }
            if let Some(threshold) = e.threshold {
                let margin = ((e.flagged_fraction() - threshold) * 1e6).round() as i64;
                obs.observe(&format!("verdict.{}.margin_micros", e.detector), margin);
            }
        }
        if self.alarmed {
            obs.count("verdict.fused_alarms", 1);
        }
    }
}

/// A named judge over evidence bundles.
pub trait Detector: Send + Sync + fmt::Debug {
    /// Short stable name (`"txn"`, `"power"`, `"acoustic"`,
    /// `"thermal"`); keys evidence and CLI selection.
    fn name(&self) -> &'static str;

    /// Canonical rendering of every knob that shapes this detector's
    /// verdicts — the content-address component for cached results.
    fn policy(&self) -> String;

    /// The channels this detector consumes: what to synthesize, and how
    /// many golden calibration repetitions each channel wants. The
    /// default is the bare transaction capture.
    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest::capture()]
    }

    /// Judges an observed print against the golden evidence.
    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence;

    /// The incremental facet of this detector, when it can judge a
    /// print mid-stream (all four shipped detectors can). `None` means
    /// the detector only judges post-hoc: an online monitor falls back
    /// to [`Detector::judge`] at end-of-print and the detector never
    /// votes mid-print.
    fn streaming(&self) -> Option<&dyn StreamingDetector> {
        None
    }
}

/// The §V-C step-count judge behind the [`Detector`] API: the paper's
/// windowed margin comparison with the campaign's short-print floor
/// ([`detect::floored_suspect_fraction`]) applied to the base suspect
/// fraction.
#[derive(Debug, Clone)]
pub struct TransactionDetector {
    /// Base tuning; the suspect fraction is floored per capture length
    /// at judge time.
    pub base: DetectorConfig,
}

impl TransactionDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "txn";

    /// The campaign default: the paper's tuning.
    pub fn campaign() -> TransactionDetector {
        TransactionDetector {
            base: DetectorConfig::default(),
        }
    }
}

impl Detector for TransactionDetector {
    fn name(&self) -> &'static str {
        TransactionDetector::NAME
    }

    fn streaming(&self) -> Option<&dyn StreamingDetector> {
        Some(self)
    }

    /// Byte-compatible with the pre-suite campaign policy string, so a
    /// scenario store warmed by a transaction-only campaign stays warm
    /// across the API redesign.
    fn policy(&self) -> String {
        format!(
            "margin={};floor={};base={};final={};txn_floor={}",
            self.base.margin,
            self.base.denominator_floor,
            self.base.suspect_fraction,
            self.base.final_check,
            detect::SUSPECT_TRANSACTION_FLOOR,
        )
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let (Some(golden), Some(observed)) = (golden.capture(), observed.capture()) else {
            return Evidence::unjudged(self.name());
        };
        let n = golden.len().min(observed.len());
        let cfg = DetectorConfig {
            suspect_fraction: detect::floored_suspect_fraction(self.base.suspect_fraction, n),
            ..self.base
        };
        let report = detect::compare(golden, observed, &cfg);
        Evidence {
            detector: self.name().into(),
            alarmed: Some(report.trojan_suspected),
            flagged: report.mismatched_transactions(),
            flagged_values: report.mismatches.len(),
            compared: report.transactions_compared,
            threshold: Some(cfg.suspect_fraction),
            peak: report.largest_percent,
            final_totals_match: report.final_totals_match,
        }
    }
}

/// The power side-channel judge behind the [`Detector`] API: golden
/// power profiles (repetition-calibrated when the golden bundle carries
/// ≥ 2 calibration traces, single-profile otherwise) compared against
/// the observed driver-rail waveform.
#[derive(Debug, Clone)]
pub struct PowerSideChannelDetector {
    /// Comparator tuning (sigma threshold, smoothing, suspect
    /// fraction).
    pub config: PowerDetectorConfig,
    /// Electrical model the power traces are synthesized with.
    pub model: PowerModel,
    /// Golden repetitions to calibrate from.
    pub calibration_runs: usize,
}

impl PowerSideChannelDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "power";

    /// The campaign default: the repetition-calibrated configuration
    /// the baseline experiment validated (1 s smoothing windows tame
    /// move-boundary jitter; five golden repetitions).
    pub fn campaign() -> PowerSideChannelDetector {
        let model = PowerModel::default();
        PowerSideChannelDetector {
            config: PowerDetectorConfig {
                sigma_threshold: 5.0,
                noise_sigma_w: model.noise_sigma_w,
                smoothing: 100,
                suspect_fraction: 0.15,
            },
            model,
            calibration_runs: 5,
        }
    }
}

impl Detector for PowerSideChannelDetector {
    fn name(&self) -> &'static str {
        PowerSideChannelDetector::NAME
    }

    fn streaming(&self) -> Option<&dyn StreamingDetector> {
        Some(self)
    }

    fn policy(&self) -> String {
        format!(
            "sigma={};noise={};smooth={};base={};calib={};kstep_w={};hold_w={};rate_hz={};heaters={}",
            self.config.sigma_threshold,
            self.config.noise_sigma_w,
            self.config.smoothing,
            self.config.suspect_fraction,
            self.calibration_runs,
            self.model.motor_w_per_kstep,
            self.model.motor_hold_w,
            self.model.sample_rate_hz,
            self.model.include_heaters,
        )
    }

    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest {
            synth: ChannelSynth::Power(self.model),
            calibration_runs: self.calibration_runs.max(1),
        }]
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let Some(observed_power) = observed.power() else {
            return Evidence::unjudged(self.name());
        };
        let calibration = golden.calibration_samples(Channel::Power);
        let report = compare_sampled(
            &calibration,
            golden.power().map(PowerTrace::samples),
            observed_power.samples(),
            self.config.into(),
        );
        match report {
            Some(report) => {
                Evidence::from_report(self.name(), report, self.config.suspect_fraction)
            }
            None => Evidence::unjudged(self.name()),
        }
    }
}

/// The acoustic/EM side-channel judge: the stepper emission envelope
/// ([`AcousticModel`]) compared window by window against a
/// repetition-calibrated golden profile. Its click term makes it the
/// detector of choice for feed-rate/void Trojans that keep per-window
/// step *counts* (and therefore the power envelope) intact while
/// breaking the step *cadence*.
#[derive(Debug, Clone)]
pub struct AcousticDetector {
    /// Comparator tuning (sigma threshold, smoothing, suspect
    /// fraction; `noise_sigma` must match the model's).
    pub config: ComparatorConfig,
    /// Emission model the acoustic envelopes are synthesized with.
    pub model: AcousticModel,
    /// Golden repetitions to calibrate from.
    pub calibration_runs: usize,
}

impl AcousticDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "acoustic";

    /// The campaign default: 1 s comparison windows over 20 ms frames
    /// (averaging out move-boundary tone jitter the way the power judge
    /// does), five golden repetitions (shared with the other calibrated
    /// detectors), and a 5 % suspect fraction — emission is informative
    /// only while motors run, so the long silent heat-up dilutes the
    /// anomalous-window fraction and the bar sits lower than the power
    /// judge's.
    pub fn campaign() -> AcousticDetector {
        let model = AcousticModel::default();
        AcousticDetector {
            config: ComparatorConfig {
                sigma_threshold: 5.0,
                noise_sigma: model.noise_sigma,
                smoothing: 50,
                suspect_fraction: 0.05,
            },
            model,
            calibration_runs: 5,
        }
    }
}

impl Detector for AcousticDetector {
    fn name(&self) -> &'static str {
        AcousticDetector::NAME
    }

    fn streaming(&self) -> Option<&dyn StreamingDetector> {
        Some(self)
    }

    fn policy(&self) -> String {
        format!(
            "sigma={};noise={};smooth={};base={};calib={};rate_hz={};tone={};click={};ratio={};mic_noise={}",
            self.config.sigma_threshold,
            self.config.noise_sigma,
            self.config.smoothing,
            self.config.suspect_fraction,
            self.calibration_runs,
            self.model.sample_rate_hz,
            self.model.tone_per_kstep,
            self.model.click_unit,
            self.model.click_ratio,
            self.model.noise_sigma,
        )
    }

    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest {
            synth: ChannelSynth::Acoustic(self.model),
            calibration_runs: self.calibration_runs.max(1),
        }]
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let Some(observed_trace) = observed.acoustic() else {
            return Evidence::unjudged(self.name());
        };
        let calibration = golden.calibration_samples(Channel::Acoustic);
        let report = compare_sampled(
            &calibration,
            golden.acoustic().map(AcousticTrace::samples),
            observed_trace.samples(),
            self.config,
        );
        match report {
            Some(report) => {
                Evidence::from_report(self.name(), report, self.config.suspect_fraction)
            }
            None => Evidence::unjudged(self.name()),
        }
    }
}

/// The thermal-camera judge: the hotend+bed radiance proxy
/// ([`ThermalCamera`]) compared against a repetition-calibrated golden
/// profile, in °C. It catches temperature-manipulation attacks —
/// forced-on MOSFETs, thermistor miscalibrations driving the control
/// loop hot — that leave the motion plane (and therefore the txn,
/// power and acoustic channels) spotless.
#[derive(Debug, Clone)]
pub struct ThermalDetector {
    /// Comparator tuning (sigma threshold, smoothing, suspect
    /// fraction; `noise_sigma` must match the camera's).
    pub config: ComparatorConfig,
    /// Camera model the thermal traces are synthesized with.
    pub camera: ThermalCamera,
    /// Golden repetitions to calibrate from.
    pub calibration_runs: usize,
}

impl ThermalDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "thermal";

    /// The campaign default: 2 s comparison windows over 0.5 s frames,
    /// five golden repetitions (shared with the other calibrated
    /// detectors).
    pub fn campaign() -> ThermalDetector {
        let camera = ThermalCamera::default();
        ThermalDetector {
            config: ComparatorConfig {
                sigma_threshold: 5.0,
                noise_sigma: camera.noise_sigma_c,
                smoothing: 4,
                suspect_fraction: 0.15,
            },
            camera,
            calibration_runs: 5,
        }
    }
}

impl Detector for ThermalDetector {
    fn name(&self) -> &'static str {
        ThermalDetector::NAME
    }

    fn streaming(&self) -> Option<&dyn StreamingDetector> {
        Some(self)
    }

    fn policy(&self) -> String {
        format!(
            "sigma={};noise={};smooth={};base={};calib={};frame_ms={};cam_noise={}",
            self.config.sigma_threshold,
            self.config.noise_sigma,
            self.config.smoothing,
            self.config.suspect_fraction,
            self.calibration_runs,
            self.camera.frame_period_ms,
            self.camera.noise_sigma_c,
        )
    }

    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest {
            synth: ChannelSynth::Thermal(self.camera),
            calibration_runs: self.calibration_runs.max(1),
        }]
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let Some(observed_trace) = observed.thermal() else {
            return Evidence::unjudged(self.name());
        };
        let calibration = golden.calibration_samples(Channel::Thermal);
        let report = compare_sampled(
            &calibration,
            golden.thermal().map(ThermalTrace::samples),
            observed_trace.samples(),
            self.config,
        );
        match report {
            Some(report) => {
                Evidence::from_report(self.name(), report, self.config.suspect_fraction)
            }
            None => Evidence::unjudged(self.name()),
        }
    }
}

/// An ordered, uniquely named set of detectors plus a fusion policy.
#[derive(Debug)]
pub struct DetectorSuite {
    detectors: Vec<Box<dyn Detector>>,
    fusion: FusionPolicy,
}

impl DetectorSuite {
    /// Builds a suite.
    ///
    /// # Errors
    ///
    /// Rejects an empty suite, duplicate detector names, or a weighted
    /// fusion policy naming a detector outside the suite (or with no
    /// positive weight at all).
    pub fn new(
        detectors: Vec<Box<dyn Detector>>,
        fusion: FusionPolicy,
    ) -> Result<DetectorSuite, String> {
        if detectors.is_empty() {
            return Err("a detector suite needs at least one detector".into());
        }
        let mut seen = std::collections::BTreeSet::new();
        for d in &detectors {
            if !seen.insert(d.name()) {
                return Err(format!("duplicate detector {:?} in suite", d.name()));
            }
        }
        if let FusionPolicy::Weighted { weights, threshold } = &fusion {
            if !(threshold.is_finite() && (0.0..=1.0).contains(threshold)) {
                return Err("weighted fusion threshold must be in [0, 1]".into());
            }
            let mut named = std::collections::BTreeSet::new();
            for (name, w) in weights {
                if !seen.contains(name.as_str()) {
                    return Err(format!("weighted fusion names unknown detector {name:?}"));
                }
                if !named.insert(name.as_str()) {
                    return Err(format!("duplicate weight for detector {name:?}"));
                }
                if !(w.is_finite() && *w >= 0.0) {
                    return Err(format!("weight for {name:?} must be >= 0"));
                }
            }
            if !weights.is_empty() && weights.iter().all(|(_, w)| *w == 0.0) {
                return Err("weighted fusion needs at least one positive weight".into());
            }
        }
        Ok(DetectorSuite { detectors, fusion })
    }

    /// The campaign default: the transaction judge alone, any-alarm
    /// fusion.
    pub fn transaction_default() -> DetectorSuite {
        DetectorSuite {
            detectors: vec![Box::new(TransactionDetector::campaign())],
            fusion: FusionPolicy::Any,
        }
    }

    /// Detector names in suite order.
    pub fn names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// The detectors, in suite order.
    pub fn detectors(&self) -> &[Box<dyn Detector>] {
        &self.detectors
    }

    /// The fusion policy.
    pub fn fusion(&self) -> &FusionPolicy {
        &self.fusion
    }

    /// The merged channel plan: every channel some detector consumes,
    /// in first-declared order, with the *first* declarer's synthesis
    /// model and the *largest* calibration-repetition request across
    /// declarers. This is what the harness provisions — channels are
    /// synthesized once and calibration reruns are shared, however many
    /// detectors consume them.
    pub fn channel_plan(&self) -> Vec<ChannelRequest> {
        let mut plan: Vec<ChannelRequest> = Vec::new();
        for d in &self.detectors {
            for request in d.channels() {
                match plan
                    .iter_mut()
                    .find(|r| r.synth.channel() == request.synth.channel())
                {
                    Some(existing) => {
                        existing.calibration_runs =
                            existing.calibration_runs.max(request.calibration_runs);
                    }
                    None => plan.push(request),
                }
            }
        }
        plan
    }

    /// Whether any planned channel needs the plant-side signal trace
    /// recorded.
    pub fn needs_plant_trace(&self) -> bool {
        self.channel_plan()
            .iter()
            .any(|r| r.synth.needs_plant_trace())
    }

    /// The most golden repetition runs any detector wants for
    /// calibration (0 when no detector calibrates; the shared golden
    /// reruns satisfy every calibrated channel at once).
    pub fn calibration_runs(&self) -> usize {
        self.channel_plan()
            .iter()
            .map(|r| r.calibration_runs)
            .max()
            .unwrap_or(0)
    }

    /// The canonical rendering of the whole judging policy. A
    /// single-detector suite renders that detector's bare policy string
    /// (so the transaction-only default stays byte-compatible with the
    /// pre-suite campaign policy); multi-detector suites render
    /// `name{policy}` joined by `+` with the fusion policy appended.
    pub fn policy(&self) -> String {
        if let [only] = self.detectors.as_slice() {
            return only.policy();
        }
        let parts: Vec<String> = self
            .detectors
            .iter()
            .map(|d| format!("{}{{{}}}", d.name(), d.policy()))
            .collect();
        format!("{}|fuse={}", parts.join("+"), self.fusion)
    }

    /// Judges an observed print against the golden evidence: every
    /// detector in order, then fusion.
    pub fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Verdict {
        let evidence: Vec<Evidence> = self
            .detectors
            .iter()
            .map(|d| d.judge(golden, observed))
            .collect();
        Verdict {
            alarmed: self.fusion.fuse(&evidence),
            evidence,
        }
    }

    /// [`DetectorSuite::judge`] with the observability plane wired:
    /// the verdict's per-detector rollup is recorded into `obs` (a
    /// no-op when disabled).
    pub fn judge_observed(
        &self,
        golden: &EvidenceBundle,
        observed: &EvidenceBundle,
        obs: &Obs,
    ) -> Verdict {
        let verdict = self.judge(golden, observed);
        verdict.record_metrics(obs);
        verdict
    }

    /// The verdict for a print that produced no evidence at all (a
    /// bench error): every detector unjudged, no alarm.
    pub fn unjudged(&self) -> Verdict {
        Verdict {
            alarmed: false,
            evidence: self
                .detectors
                .iter()
                .map(|d| Evidence::unjudged(d.name()))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming (online) detection — §V-C: "this analysis can also be done
// in real-time while printing, enabling a user to halt a print as soon
// as a Trojan is suspected."
// ---------------------------------------------------------------------------

/// One detector's provisional view after a streamed evidence window:
/// the running counts plus the alarm the detector would raise if the
/// print were halted here. `alarmed` is `None` while the detector has
/// no stream to judge — it cannot vote mid-print.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEvidence {
    /// The detector that produced this view.
    pub detector: &'static str,
    /// The provisional alarm (`None` = nothing to judge so far).
    pub alarmed: Option<bool>,
    /// Units flagged so far (mismatching transactions / anomalous
    /// windows).
    pub flagged: usize,
    /// Units fully compared so far.
    pub compared: usize,
    /// The flagged-fraction threshold the provisional alarm was judged
    /// against (for the transaction judge, floored at the prefix seen
    /// so far); `None` while unjudged. Lets an alarm narrative state
    /// the margin each vote carried.
    pub threshold: Option<f64>,
}

impl WindowEvidence {
    fn unjudged(detector: &'static str) -> WindowEvidence {
        WindowEvidence {
            detector,
            alarmed: None,
            flagged: 0,
            compared: 0,
            threshold: None,
        }
    }

    /// Fraction of compared units flagged so far (0 before anything
    /// compared).
    pub fn flagged_fraction(&self) -> f64 {
        if self.compared == 0 {
            0.0
        } else {
            self.flagged as f64 / self.compared as f64
        }
    }

    /// Signed distance of the flagged fraction to the alarm threshold
    /// (`None` while unjudged): positive at or above the bar.
    pub fn margin(&self) -> Option<f64> {
        self.threshold.map(|t| self.flagged_fraction() - t)
    }
}

/// One window of newly observed evidence fed to a streaming detector.
/// A window of the wrong shape (or an empty one) is a pure poll: the
/// detector reports its provisional view without consuming anything.
#[derive(Debug, Clone, Copy)]
pub enum WindowData<'a> {
    /// Transactions newly captured in this window.
    Txn(&'a [Transaction]),
    /// Raw samples newly delivered in this window.
    Samples(&'a [f64]),
}

/// Opaque per-detector streaming state created by
/// [`StreamingDetector::begin`] and advanced by
/// [`StreamingDetector::judge_window`].
#[derive(Debug)]
pub struct StreamState {
    inner: StateInner,
}

#[derive(Debug)]
enum StateInner {
    /// Incremental §V-C step-count comparison. `stream` is `None` when
    /// either capture is missing (the scenario finalizes unjudged);
    /// `observed_final` holds the observed end-of-print totals, which
    /// only land at finalize — exactly like the post-hoc final check.
    Txn {
        stream: Option<detect::StreamingCompare>,
        observed_final: Option<[i32; 4]>,
    },
    /// Incremental sampled-channel comparison. `comparator` is `None`
    /// when the observed stream is absent or there is no golden
    /// material (the scenario finalizes unjudged).
    Sampled {
        name: &'static str,
        base: f64,
        comparator: Option<StreamingComparator>,
    },
}

/// The incremental facet of a [`Detector`]: open a stream against the
/// golden evidence, feed observed windows as the print progresses, read
/// the provisional alarm after each, and finalize into an [`Evidence`]
/// **byte-identical** to what [`Detector::judge`] produces over the
/// full bundles — the invariant that keeps every post-hoc artifact and
/// warmed scenario store valid under online judging.
pub trait StreamingDetector: Detector {
    /// The observed channel this detector consumes incrementally.
    fn stream_channel(&self) -> Channel;

    /// Opens a stream against the golden evidence (with its calibration
    /// repetitions) plus the observed stream's header — whether the
    /// channel is being captured at all and, for the transaction
    /// stream, the end-of-print totals that only matter at finalize.
    fn begin(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> StreamState;

    /// Feeds one window of newly observed evidence and returns the
    /// provisional view. The state after feeding the first `t` units
    /// depends only on `t`, never on how the stream was windowed.
    fn judge_window(&self, state: &mut StreamState, window: WindowData<'_>) -> WindowEvidence;

    /// Closes the stream. The returned evidence is byte-identical to
    /// [`Detector::judge`] over the same bundles.
    fn finalize(&self, state: StreamState) -> Evidence;
}

/// Shared `begin` for the three sampled-channel detectors: the same
/// golden-material selection as their post-hoc `judge`.
fn sampled_begin(
    name: &'static str,
    channel: Channel,
    config: ComparatorConfig,
    golden: &EvidenceBundle,
    observed: &EvidenceBundle,
) -> StreamState {
    let comparator = observed
        .get(channel)
        .and_then(ChannelData::samples)
        .and_then(|_| {
            StreamingComparator::begin(
                &golden.calibration_samples(channel),
                golden.get(channel).and_then(ChannelData::samples),
                config,
            )
        });
    StreamState {
        inner: StateInner::Sampled {
            name,
            base: config.suspect_fraction,
            comparator,
        },
    }
}

/// Shared `judge_window` for the sampled-channel detectors.
fn sampled_judge_window(
    detector: &'static str,
    state: &mut StreamState,
    window: WindowData<'_>,
) -> WindowEvidence {
    let StateInner::Sampled {
        name,
        base,
        comparator,
    } = &mut state.inner
    else {
        return WindowEvidence::unjudged(detector);
    };
    match comparator {
        Some(c) => {
            if let WindowData::Samples(samples) = window {
                c.extend(samples);
            }
            WindowEvidence {
                detector: name,
                alarmed: Some(c.suspected_so_far()),
                flagged: c.anomalous_windows(),
                compared: c.windows_compared(),
                threshold: Some(*base),
            }
        }
        None => WindowEvidence::unjudged(name),
    }
}

/// Shared `finalize` for the sampled-channel detectors.
fn sampled_finalize(detector: &'static str, state: StreamState) -> Evidence {
    let StateInner::Sampled {
        name,
        base,
        comparator,
    } = state.inner
    else {
        return Evidence::unjudged(detector);
    };
    match comparator {
        Some(c) => Evidence::from_report(name, c.finalize(), base),
        None => Evidence::unjudged(name),
    }
}

impl StreamingDetector for TransactionDetector {
    fn stream_channel(&self) -> Channel {
        Channel::Txn
    }

    fn begin(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> StreamState {
        let inner = match (golden.capture(), observed.capture()) {
            (Some(g), Some(o)) => StateInner::Txn {
                stream: Some(detect::StreamingCompare::new(g.clone(), self.base)),
                observed_final: o.final_counts(),
            },
            _ => StateInner::Txn {
                stream: None,
                observed_final: None,
            },
        };
        StreamState { inner }
    }

    fn judge_window(&self, state: &mut StreamState, window: WindowData<'_>) -> WindowEvidence {
        let StateInner::Txn {
            stream: Some(stream),
            ..
        } = &mut state.inner
        else {
            return WindowEvidence::unjudged(self.name());
        };
        if let WindowData::Txn(txns) = window {
            for t in txns {
                stream.feed(t);
            }
        }
        WindowEvidence {
            detector: self.name(),
            alarmed: Some(stream.provisionally_suspected()),
            flagged: stream.mismatched_transactions(),
            compared: stream.compared(),
            // The same prefix-floored bar the provisional alarm used.
            threshold: Some(detect::floored_suspect_fraction(
                self.base.suspect_fraction,
                stream.compared(),
            )),
        }
    }

    fn finalize(&self, state: StreamState) -> Evidence {
        let StateInner::Txn {
            stream: Some(stream),
            observed_final,
        } = state.inner
        else {
            return Evidence::unjudged(self.name());
        };
        let report = stream.finalize(observed_final);
        // The post-hoc judge floors the suspect fraction at the full
        // compared length; the streamed prefix length equals it here.
        let threshold = detect::floored_suspect_fraction(
            self.base.suspect_fraction,
            report.transactions_compared,
        );
        let alarmed =
            report.mismatch_fraction() > threshold || report.final_totals_match == Some(false);
        Evidence {
            detector: self.name().into(),
            alarmed: Some(alarmed),
            flagged: report.mismatched_transactions(),
            flagged_values: report.mismatches.len(),
            compared: report.transactions_compared,
            threshold: Some(threshold),
            peak: report.largest_percent,
            final_totals_match: report.final_totals_match,
        }
    }
}

impl StreamingDetector for PowerSideChannelDetector {
    fn stream_channel(&self) -> Channel {
        Channel::Power
    }

    fn begin(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> StreamState {
        sampled_begin(
            self.name(),
            Channel::Power,
            self.config.into(),
            golden,
            observed,
        )
    }

    fn judge_window(&self, state: &mut StreamState, window: WindowData<'_>) -> WindowEvidence {
        sampled_judge_window(self.name(), state, window)
    }

    fn finalize(&self, state: StreamState) -> Evidence {
        sampled_finalize(self.name(), state)
    }
}

impl StreamingDetector for AcousticDetector {
    fn stream_channel(&self) -> Channel {
        Channel::Acoustic
    }

    fn begin(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> StreamState {
        sampled_begin(
            self.name(),
            Channel::Acoustic,
            self.config,
            golden,
            observed,
        )
    }

    fn judge_window(&self, state: &mut StreamState, window: WindowData<'_>) -> WindowEvidence {
        sampled_judge_window(self.name(), state, window)
    }

    fn finalize(&self, state: StreamState) -> Evidence {
        sampled_finalize(self.name(), state)
    }
}

impl StreamingDetector for ThermalDetector {
    fn stream_channel(&self) -> Channel {
        Channel::Thermal
    }

    fn begin(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> StreamState {
        sampled_begin(self.name(), Channel::Thermal, self.config, golden, observed)
    }

    fn judge_window(&self, state: &mut StreamState, window: WindowData<'_>) -> WindowEvidence {
        sampled_judge_window(self.name(), state, window)
    }

    fn finalize(&self, state: StreamState) -> Evidence {
        sampled_finalize(self.name(), state)
    }
}

/// Time-to-detection: where in the print the fused online monitor first
/// raised its alarm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeToDetection {
    /// 1-based index of the first alarming evidence window (monitor
    /// slice).
    pub alarm_step: u64,
    /// Fraction of the print's duration completed at the alarm, in
    /// `[0, 1]`.
    pub print_fraction: f64,
    /// Fraction of the print's filament *not yet deposited* at the
    /// alarm — what halting there saves. Falls back to
    /// `1 - print_fraction` when the observed bundle carries no
    /// transaction capture (or the capture deposits nothing).
    pub material_saved: f64,
}

/// The outcome of replaying one print through an [`OnlineMonitor`]:
/// the end-of-print verdict (byte-identical to
/// [`DetectorSuite::judge`]) plus the time-to-detection, when the fused
/// alarm fired mid-print.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineOutcome {
    /// The finalized fused verdict.
    pub verdict: Verdict,
    /// When (if ever) the fused online alarm first fired.
    pub ttd: Option<TimeToDetection>,
}

/// One monitor slice's aftermath: the fused provisional alarm plus
/// every detector's provisional view.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineStep {
    /// 1-based slice index.
    pub step: u64,
    /// Print time covered so far (clamped to the print's end on the
    /// final slice).
    pub elapsed: SimDuration,
    /// The fused provisional alarm at this boundary.
    pub alarmed: bool,
    /// Per-detector provisional views, in suite order.
    pub windows: Vec<WindowEvidence>,
}

/// The fused online monitor over a [`DetectorSuite`]: a time-sliced
/// replay driver that feeds each detector's observed stream in capture
/// order and raises the suite's fusion policy over the provisional
/// votes at every slice boundary.
#[derive(Debug, Clone, Copy)]
pub struct StreamingSuite<'a> {
    suite: &'a DetectorSuite,
    slice: SimDuration,
}

impl<'a> StreamingSuite<'a> {
    /// The default evidence-window slice: the monitor's 0.1 s
    /// transaction capture period, the fastest cadence at which the
    /// paper's host-side analysis sees new data.
    pub fn default_slice() -> SimDuration {
        SimDuration::from_millis(100)
    }

    /// Wraps a suite with the default slice.
    pub fn new(suite: &'a DetectorSuite) -> StreamingSuite<'a> {
        StreamingSuite {
            suite,
            slice: Self::default_slice(),
        }
    }

    /// Overrides the evidence-window slice.
    ///
    /// # Panics
    ///
    /// Panics on a zero slice.
    pub fn with_slice(self, slice: SimDuration) -> StreamingSuite<'a> {
        assert!(!slice.is_zero(), "monitor slice must be non-zero");
        StreamingSuite { slice, ..self }
    }

    /// Opens a monitor replaying the observed bundle against the golden
    /// one.
    pub fn monitor(
        &self,
        golden: &'a EvidenceBundle,
        observed: &'a EvidenceBundle,
    ) -> OnlineMonitor<'a> {
        OnlineMonitor::new(self.suite, self.slice, golden, observed)
    }

    /// Replays to completion and returns the outcome.
    pub fn run(&self, golden: &'a EvidenceBundle, observed: &'a EvidenceBundle) -> OnlineOutcome {
        self.monitor(golden, observed).finish()
    }
}

/// One detector's replay lane: its streaming state plus a cursor over
/// the observed stream it consumes.
#[derive(Debug)]
struct Lane<'a> {
    detector: &'a dyn Detector,
    stream: Option<(&'a dyn StreamingDetector, StreamState)>,
    feed: Option<Feed<'a>>,
}

/// A cursor over one observed channel, releasing units in stream order
/// as the replay clock passes their capture timestamps.
#[derive(Debug)]
enum Feed<'a> {
    Txn {
        txns: &'a [Transaction],
        period_ticks: u64,
        cursor: usize,
    },
    Samples {
        samples: &'a [f64],
        period_ticks: u64,
        cursor: usize,
    },
}

impl<'a> Feed<'a> {
    /// Everything that became available up to the replay clock
    /// `now_ticks` (unit `i` lands once `(i + 1) * period <= now`).
    fn take_until(&mut self, now_ticks: u64) -> WindowData<'a> {
        match self {
            Feed::Txn {
                txns,
                period_ticks,
                cursor,
            } => {
                let avail = ((now_ticks / *period_ticks) as usize).min(txns.len());
                let window = &txns[*cursor..avail];
                *cursor = avail;
                WindowData::Txn(window)
            }
            Feed::Samples {
                samples,
                period_ticks,
                cursor,
            } => {
                let avail = ((now_ticks / *period_ticks) as usize).min(samples.len());
                let window = &samples[*cursor..avail];
                *cursor = avail;
                WindowData::Samples(window)
            }
        }
    }
}

/// Filament bookkeeping over the observed capture, independent of the
/// suite's composition (the material metric must not change when the
/// txn judge is absent).
#[derive(Debug)]
struct MaterialFeed<'a> {
    txns: &'a [Transaction],
    period_ticks: u64,
    cursor: usize,
    seen: f64,
    total: f64,
}

#[derive(Debug, Clone, Copy)]
struct AlarmMark {
    step: u64,
    ticks: u64,
    material_done: f64,
}

/// The feed for one observed channel, if present.
fn feed_for(channel: Channel, observed: &EvidenceBundle) -> Option<Feed<'_>> {
    match observed.get(channel)? {
        ChannelData::Txn(c) => Some(Feed::Txn {
            txns: c.transactions(),
            period_ticks: c.period.ticks().max(1),
            cursor: 0,
        }),
        data => Some(Feed::Samples {
            samples: data.samples()?,
            period_ticks: sampled_period_ticks(data)?.max(1),
            cursor: 0,
        }),
    }
}

fn sampled_period_ticks(data: &ChannelData) -> Option<u64> {
    match data {
        ChannelData::Txn(_) => None,
        ChannelData::Power(t) => Some(t.period().ticks()),
        ChannelData::Acoustic(t) => Some(t.period().ticks()),
        ChannelData::Thermal(t) => Some(t.period().ticks()),
    }
}

/// One channel's extent on the replay clock: sample count times period.
fn channel_extent_ticks(bundle: &EvidenceBundle, channel: Channel) -> Option<u64> {
    match bundle.get(channel)? {
        ChannelData::Txn(c) => Some(c.len() as u64 * c.period.ticks()),
        data => {
            let n = data.samples()?.len() as u64;
            Some(n * sampled_period_ticks(data)?)
        }
    }
}

/// A time-sliced replay of one recorded print through a detector
/// suite's streaming facets: [`OnlineMonitor::step`] advances the
/// replay clock one slice, feeds each lane what its sensor delivered in
/// that slice, and fuses the provisional votes;
/// [`OnlineMonitor::finish`] drains the remaining slices and finalizes
/// — the verdict it returns is byte-identical to
/// [`DetectorSuite::judge`] over the same bundles, whatever the slice
/// size.
#[derive(Debug)]
pub struct OnlineMonitor<'a> {
    suite: &'a DetectorSuite,
    golden: &'a EvidenceBundle,
    observed: &'a EvidenceBundle,
    slice_ticks: u64,
    lanes: Vec<Lane<'a>>,
    material: Option<MaterialFeed<'a>>,
    end_ticks: u64,
    steps_total: u64,
    step: u64,
    alarm: Option<AlarmMark>,
    windows_judged: u64,
    votes: u64,
}

impl<'a> OnlineMonitor<'a> {
    fn new(
        suite: &'a DetectorSuite,
        slice: SimDuration,
        golden: &'a EvidenceBundle,
        observed: &'a EvidenceBundle,
    ) -> OnlineMonitor<'a> {
        let lanes: Vec<Lane<'a>> = suite
            .detectors()
            .iter()
            .map(|d| {
                let detector: &'a dyn Detector = d.as_ref();
                let stream = detector.streaming().map(|s| (s, s.begin(golden, observed)));
                let feed = stream
                    .as_ref()
                    .and_then(|(s, _)| feed_for(s.stream_channel(), observed));
                Lane {
                    detector,
                    stream,
                    feed,
                }
            })
            .collect();
        let material = observed.capture().map(|c| MaterialFeed {
            txns: c.transactions(),
            period_ticks: c.period.ticks().max(1),
            cursor: 0,
            seen: 0.0,
            total: c
                .transactions()
                .iter()
                .map(|t| f64::from(t.counts[3].abs()))
                .sum(),
        });
        let end_ticks = Channel::ALL
            .iter()
            .filter_map(|&ch| channel_extent_ticks(observed, ch))
            .max()
            .unwrap_or(0);
        let slice_ticks = slice.ticks().max(1);
        OnlineMonitor {
            suite,
            golden,
            observed,
            slice_ticks,
            lanes,
            material,
            end_ticks,
            steps_total: end_ticks.div_ceil(slice_ticks),
            step: 0,
            alarm: None,
            windows_judged: 0,
            votes: 0,
        }
    }

    /// Total slices this replay covers.
    pub fn steps_total(&self) -> u64 {
        self.steps_total
    }

    /// The first fused alarm so far, if any.
    pub fn alarm_step(&self) -> Option<u64> {
        self.alarm.map(|a| a.step)
    }

    /// Advances the replay clock one slice: feeds every lane what its
    /// sensor delivered, fuses the provisional votes, and returns the
    /// slice's aftermath. `None` once the print has fully replayed.
    pub fn step(&mut self) -> Option<OnlineStep> {
        if self.step >= self.steps_total {
            return None;
        }
        self.step += 1;
        let now_ticks = self.step.saturating_mul(self.slice_ticks);
        if let Some(m) = &mut self.material {
            let avail = ((now_ticks / m.period_ticks) as usize).min(m.txns.len());
            for t in &m.txns[m.cursor..avail] {
                m.seen += f64::from(t.counts[3].abs());
            }
            m.cursor = avail;
        }
        let mut windows = Vec::with_capacity(self.lanes.len());
        for lane in &mut self.lanes {
            let view = match &mut lane.stream {
                Some((s, state)) => {
                    let window = match lane.feed.as_mut() {
                        Some(feed) => feed.take_until(now_ticks),
                        // No observed stream: a pure poll.
                        None => WindowData::Samples(&[]),
                    };
                    s.judge_window(state, window)
                }
                None => WindowEvidence::unjudged(lane.detector.name()),
            };
            windows.push(view);
        }
        for w in &windows {
            match w.alarmed {
                Some(true) => {
                    self.windows_judged += 1;
                    self.votes += 1;
                }
                Some(false) => self.windows_judged += 1,
                None => {}
            }
        }
        let provisional: Vec<Evidence> = windows
            .iter()
            .map(|w| Evidence {
                detector: w.detector.into(),
                alarmed: w.alarmed,
                flagged: w.flagged,
                flagged_values: w.flagged,
                compared: w.compared,
                threshold: None,
                peak: 0.0,
                final_totals_match: None,
            })
            .collect();
        let alarmed = self.suite.fusion().fuse(&provisional);
        let clamped = now_ticks.min(self.end_ticks);
        if alarmed && self.alarm.is_none() {
            self.alarm = Some(AlarmMark {
                step: self.step,
                ticks: clamped,
                material_done: self.material.as_ref().map_or(0.0, |m| m.seen),
            });
        }
        Some(OnlineStep {
            step: self.step,
            elapsed: SimDuration::from_ticks(clamped),
            alarmed,
            windows,
        })
    }

    /// Drains any remaining slices, finalizes every lane and returns
    /// the outcome. The verdict is byte-identical to
    /// [`DetectorSuite::judge`]; detectors without a streaming facet
    /// are judged post-hoc here (and never voted mid-print).
    pub fn finish(mut self) -> OnlineOutcome {
        while self.step().is_some() {}
        let OnlineMonitor {
            suite,
            golden,
            observed,
            lanes,
            material,
            end_ticks,
            alarm,
            ..
        } = self;
        let evidence: Vec<Evidence> = lanes
            .into_iter()
            .map(|lane| match lane.stream {
                Some((s, state)) => s.finalize(state),
                None => lane.detector.judge(golden, observed),
            })
            .collect();
        let verdict = Verdict {
            alarmed: suite.fusion().fuse(&evidence),
            evidence,
        };
        let ttd = alarm.map(|a| {
            let print_fraction = if end_ticks == 0 {
                0.0
            } else {
                a.ticks as f64 / end_ticks as f64
            };
            let material_saved = match &material {
                Some(m) if m.total > 0.0 => 1.0 - a.material_done / m.total,
                _ => 1.0 - print_fraction,
            };
            TimeToDetection {
                alarm_step: a.step,
                print_fraction,
                material_saved,
            }
        });
        OnlineOutcome { verdict, ttd }
    }

    /// [`OnlineMonitor::finish`] with the observability plane wired:
    /// drains the remaining slices first, then publishes the replay's
    /// window rollup (`verdict.online.windows_judged`,
    /// `verdict.online.votes`) and the final verdict's per-detector
    /// metrics into `obs`. Byte-identical outcome to [`finish`], and a
    /// no-op on a disabled handle.
    ///
    /// [`finish`]: OnlineMonitor::finish
    pub fn finish_observed(mut self, obs: &Obs) -> OnlineOutcome {
        while self.step().is_some() {}
        let windows_judged = self.windows_judged;
        let votes = self.votes;
        let outcome = self.finish();
        if obs.is_enabled() {
            obs.count("verdict.online.windows_judged", windows_judged);
            obs.count("verdict.online.votes", votes);
            outcome.verdict.record_metrics(obs);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Transaction;
    use offramps_des::{SimDuration, Tick};
    use offramps_signals::{Level, LogicEvent, Pin, SignalTrace};

    fn ramp(n: usize, scale: f64) -> Capture {
        (0..n)
            .map(|i| Transaction {
                index: i as u64,
                counts: [
                    (1_000.0 + 10.0 * i as f64) as i32,
                    (2_000.0 * scale) as i32,
                    100,
                    (500.0 * scale * i as f64) as i32,
                ],
            })
            .collect()
    }

    fn capture_bundle(cap: Capture) -> EvidenceBundle {
        EvidenceBundle::from_capture(cap)
    }

    fn step_trace(period_us: u64, seconds: u64) -> SignalTrace {
        let mut t = SignalTrace::new();
        let mut at = Tick::ZERO;
        while at < Tick::from_secs(seconds) {
            t.record(at, LogicEvent::new(Pin::XStep, Level::High));
            t.record(
                at + SimDuration::from_micros(2),
                LogicEvent::new(Pin::XStep, Level::Low),
            );
            at += SimDuration::from_micros(period_us);
        }
        t
    }

    #[test]
    fn transaction_detector_matches_campaign_judge() {
        let golden = ramp(100, 1.0);
        let observed = ramp(100, 0.5);
        let det = TransactionDetector::campaign();
        let ev = det.judge(
            &capture_bundle(golden.clone()),
            &capture_bundle(observed.clone()),
        );
        let n = golden.len().min(observed.len());
        let cfg = DetectorConfig {
            suspect_fraction: detect::floored_suspect_fraction(0.01, n),
            ..DetectorConfig::default()
        };
        let report = detect::compare(&golden, &observed, &cfg);
        assert_eq!(ev.alarmed, Some(report.trojan_suspected));
        assert_eq!(ev.flagged, report.mismatched_transactions());
        assert_eq!(ev.flagged_values, report.mismatches.len());
        assert_eq!(ev.compared, report.transactions_compared);
        assert_eq!(ev.threshold, Some(cfg.suspect_fraction));
        assert_eq!(ev.peak, report.largest_percent);
        assert_eq!(ev.final_totals_match, report.final_totals_match);
    }

    #[test]
    fn transaction_detector_unjudged_without_captures() {
        let det = TransactionDetector::campaign();
        let ev = det.judge(&EvidenceBundle::default(), &capture_bundle(ramp(10, 1.0)));
        assert!(!ev.judged());
        assert_eq!(ev.threshold, None);
    }

    #[test]
    fn power_detector_calibrated_judges_sustained_change() {
        let det = PowerSideChannelDetector::campaign();
        let model = det.model;
        let golden_runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Power(model.synthesize(&step_trace(250, 5), s)))
            .collect();
        let mut golden = EvidenceBundle::default();
        golden.insert(golden_runs[0].clone());
        golden.insert_calibration(Channel::Power, golden_runs);
        let mut clean = EvidenceBundle::default();
        clean.insert(ChannelData::Power(
            model.synthesize(&step_trace(250, 5), 99),
        ));
        let mut attacked = EvidenceBundle::default();
        attacked.insert(ChannelData::Power(
            model.synthesize(&step_trace(500, 5), 99),
        ));
        let clean_ev = det.judge(&golden, &clean);
        assert_eq!(clean_ev.alarmed, Some(false), "{clean_ev:?}");
        assert!(clean_ev.compared > 0);
        let attacked_ev = det.judge(&golden, &attacked);
        assert_eq!(attacked_ev.alarmed, Some(true), "{attacked_ev:?}");
        assert!(attacked_ev.peak > 1.0, "watts of sustained deviation");
        assert_eq!(attacked_ev.flagged, attacked_ev.flagged_values);
        // Single golden profile (no calibration repeats) still judges.
        let mut single = EvidenceBundle::default();
        single.insert(ChannelData::Power(model.synthesize(&step_trace(250, 5), 1)));
        assert!(det.judge(&single, &attacked).judged());
        // No power at all: unjudged.
        assert!(!det.judge(&golden, &EvidenceBundle::default()).judged());
    }

    #[test]
    fn acoustic_detector_hears_cadence_breaks() {
        let det = AcousticDetector::campaign();
        let model = det.model;
        // Golden: a steady train. Attacked: same rate with every 10th
        // pulse masked — per-window counts barely change, the cadence
        // does.
        let steady = step_trace(250, 5);
        let mut masked = SignalTrace::new();
        let mut at = Tick::ZERO;
        let mut i = 0u64;
        while at < Tick::from_secs(5) {
            if i % 10 != 9 {
                masked.record(at, LogicEvent::new(Pin::XStep, Level::High));
                masked.record(
                    at + SimDuration::from_micros(2),
                    LogicEvent::new(Pin::XStep, Level::Low),
                );
            }
            at += SimDuration::from_micros(250);
            i += 1;
        }
        let runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Acoustic(model.synthesize(&steady, s)))
            .collect();
        let mut golden = EvidenceBundle::default();
        golden.insert(runs[0].clone());
        golden.insert_calibration(Channel::Acoustic, runs);
        let mut clean = EvidenceBundle::default();
        clean.insert(ChannelData::Acoustic(model.synthesize(&steady, 99)));
        let mut voided = EvidenceBundle::default();
        voided.insert(ChannelData::Acoustic(model.synthesize(&masked, 99)));
        assert_eq!(det.judge(&golden, &clean).alarmed, Some(false));
        let ev = det.judge(&golden, &voided);
        assert_eq!(ev.alarmed, Some(true), "{ev:?}");
        assert!(!det.judge(&golden, &EvidenceBundle::default()).judged());
    }

    #[test]
    fn thermal_detector_sees_hotter_scene() {
        let det = ThermalDetector::campaign();
        let camera = det.camera;
        let scene = |offset: f64| -> Vec<(Tick, f64, f64)> {
            (0..600)
                .map(|i| (Tick::from_millis(i * 100), 210.0, 60.0 + offset))
                .collect()
        };
        let runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Thermal(camera.synthesize(&scene(0.0), s)))
            .collect();
        let mut golden = EvidenceBundle::default();
        golden.insert(runs[0].clone());
        golden.insert_calibration(Channel::Thermal, runs);
        let mut clean = EvidenceBundle::default();
        clean.insert(ChannelData::Thermal(camera.synthesize(&scene(0.0), 99)));
        let mut hot = EvidenceBundle::default();
        hot.insert(ChannelData::Thermal(camera.synthesize(&scene(12.0), 99)));
        assert_eq!(det.judge(&golden, &clean).alarmed, Some(false));
        let ev = det.judge(&golden, &hot);
        assert_eq!(ev.alarmed, Some(true), "{ev:?}");
        assert!(ev.peak > 10.0, "°C of sustained deviation: {ev:?}");
        assert!(!det.judge(&golden, &EvidenceBundle::default()).judged());
    }

    fn ev(name: &str, alarmed: Option<bool>) -> Evidence {
        Evidence {
            alarmed,
            ..Evidence::unjudged(name)
        }
    }

    #[test]
    fn fusion_policies() {
        let both = [ev("a", Some(true)), ev("b", Some(false))];
        assert!(FusionPolicy::Any.fuse(&both));
        assert!(!FusionPolicy::All.fuse(&both));
        let agree = [ev("a", Some(true)), ev("b", Some(true))];
        assert!(FusionPolicy::All.fuse(&agree));
        // Unjudged evidence neither alarms nor vetoes.
        let partial = [ev("a", Some(true)), ev("b", None)];
        assert!(FusionPolicy::Any.fuse(&partial));
        assert!(FusionPolicy::All.fuse(&partial));
        let none = [ev("a", None), ev("b", None)];
        assert!(!FusionPolicy::Any.fuse(&none));
        assert!(!FusionPolicy::All.fuse(&none));
        assert_eq!(FusionPolicy::parse("ALL").unwrap(), FusionPolicy::All);
        assert!(FusionPolicy::parse("most").is_err());
    }

    #[test]
    fn weighted_fusion_degenerates_to_any_and_all_at_the_boundaries() {
        let weighted = |threshold: f64| FusionPolicy::Weighted {
            weights: Vec::new(),
            threshold,
        };
        // Every judged/alarmed combination over three detectors: the
        // boundary thresholds must agree with any/all *exactly*.
        let states = [None, Some(false), Some(true)];
        for a in states {
            for b in states {
                for c in states {
                    let evidence = [ev("a", a), ev("b", b), ev("c", c)];
                    assert_eq!(
                        weighted(0.0).fuse(&evidence),
                        FusionPolicy::Any.fuse(&evidence),
                        "threshold 0 must be any: {evidence:?}"
                    );
                    assert_eq!(
                        weighted(1.0).fuse(&evidence),
                        FusionPolicy::All.fuse(&evidence),
                        "threshold 1 must be all: {evidence:?}"
                    );
                }
            }
        }
        // Majority voting sits between the two.
        let majority = weighted(0.5);
        assert!(majority.fuse(&[
            ev("a", Some(true)),
            ev("b", Some(true)),
            ev("c", Some(false))
        ]));
        assert!(!majority.fuse(&[
            ev("a", Some(true)),
            ev("b", Some(false)),
            ev("c", Some(false))
        ]));
        // Zero-weighting a detector removes its vote.
        let muted = FusionPolicy::Weighted {
            weights: vec![("a".into(), 1.0), ("b".into(), 0.0)],
            threshold: 0.5,
        };
        assert!(!muted.fuse(&[ev("a", Some(false)), ev("b", Some(true))]));
        assert!(muted.fuse(&[ev("a", Some(true)), ev("b", Some(false))]));
        // Detectors absent from a non-empty weight list weigh zero.
        assert!(muted.fuse(&[ev("a", Some(true)), ev("zzz", Some(false))]));
    }

    #[test]
    fn weighted_policy_parses_and_renders() {
        let p = FusionPolicy::parse("weighted").unwrap();
        assert_eq!(
            p,
            FusionPolicy::Weighted {
                weights: Vec::new(),
                threshold: 0.5
            }
        );
        assert_eq!(p.to_string(), "weighted@0.5");
        let p = FusionPolicy::parse("weighted@0.25").unwrap();
        assert_eq!(p.to_string(), "weighted@0.25");
        let p = FusionPolicy::parse("weighted:txn=1,power=0.5@0.75").unwrap();
        assert_eq!(
            p.to_string(),
            "weighted:txn=1@0.75".replace("txn=1", "txn=1,power=0.5")
        );
        // Round-trips through its own rendering.
        assert_eq!(FusionPolicy::parse(&p.to_string()).unwrap(), p);
        for bad in [
            "weighted@1.5",
            "weighted@x",
            "weighted:txn@0.5",
            "weighted:txn=-1",
            "weighted:",
            "weightedx",
        ] {
            assert!(FusionPolicy::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn suite_policy_strings() {
        let txn_only = DetectorSuite::transaction_default();
        assert_eq!(
            txn_only.policy(),
            "margin=0.05;floor=32;base=0.01;final=true;txn_floor=2.8",
            "single-detector suites render the bare policy for store compatibility"
        );
        let both = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        let policy = both.policy();
        assert!(policy.starts_with("txn{"), "{policy}");
        assert!(policy.contains("+power{"), "{policy}");
        assert!(policy.ends_with("|fuse=any"), "{policy}");
        assert_ne!(policy, txn_only.policy());
        let all = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::All,
        )
        .unwrap();
        assert_ne!(all.policy(), policy, "fusion is part of the policy");
        let quad = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
                Box::new(AcousticDetector::campaign()),
                Box::new(ThermalDetector::campaign()),
            ],
            FusionPolicy::Weighted {
                weights: Vec::new(),
                threshold: 0.5,
            },
        )
        .unwrap();
        let policy = quad.policy();
        assert!(policy.contains("+acoustic{"), "{policy}");
        assert!(policy.contains("+thermal{"), "{policy}");
        assert!(policy.ends_with("|fuse=weighted@0.5"), "{policy}");
    }

    #[test]
    fn suite_rejects_empty_duplicates_and_bad_weights() {
        assert!(DetectorSuite::new(Vec::new(), FusionPolicy::Any).is_err());
        let err = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(TransactionDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let weighted = |weights: Vec<(String, f64)>, threshold: f64| {
            DetectorSuite::new(
                vec![
                    Box::new(TransactionDetector::campaign()) as Box<dyn Detector>,
                    Box::new(PowerSideChannelDetector::campaign()),
                ],
                FusionPolicy::Weighted { weights, threshold },
            )
        };
        assert!(
            weighted(vec![("sonar".into(), 1.0)], 0.5).is_err(),
            "unknown name"
        );
        assert!(
            weighted(vec![("txn".into(), 0.0)], 0.5).is_err(),
            "all zero"
        );
        assert!(weighted(vec![("txn".into(), 1.0), ("txn".into(), 2.0)], 0.5).is_err());
        assert!(
            weighted(vec![("txn".into(), 1.0)], 2.0).is_err(),
            "threshold range"
        );
        assert!(weighted(vec![("txn".into(), 1.0), ("power".into(), 0.5)], 0.5).is_ok());
    }

    #[test]
    fn channel_plan_merges_and_shares_calibration() {
        let suite = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
                Box::new(AcousticDetector {
                    calibration_runs: 3,
                    ..AcousticDetector::campaign()
                }),
                Box::new(ThermalDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        let plan = suite.channel_plan();
        let channels: Vec<Channel> = plan.iter().map(|r| r.synth.channel()).collect();
        assert_eq!(
            channels,
            vec![
                Channel::Txn,
                Channel::Power,
                Channel::Acoustic,
                Channel::Thermal
            ]
        );
        assert!(suite.needs_plant_trace());
        assert_eq!(
            suite.calibration_runs(),
            5,
            "shared golden reruns: the max across detectors, not the sum"
        );
        // A thermal-only suite never asks for the plant trace.
        let thermal_only = DetectorSuite::new(
            vec![Box::new(ThermalDetector::campaign())],
            FusionPolicy::Any,
        )
        .unwrap();
        assert!(!thermal_only.needs_plant_trace());
        assert_eq!(thermal_only.calibration_runs(), 5);
        // The txn-only default plans no calibration at all.
        assert_eq!(DetectorSuite::transaction_default().calibration_runs(), 0);
        assert!(!DetectorSuite::transaction_default().needs_plant_trace());
    }

    #[test]
    fn suite_judges_and_fuses() {
        let suite = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        assert!(suite.needs_plant_trace());
        assert_eq!(suite.calibration_runs(), 5);
        assert_eq!(suite.names(), vec!["txn", "power"]);

        // Transaction tamper, no power evidence: fused alarm rides on
        // the one judged detector.
        let verdict = suite.judge(
            &capture_bundle(ramp(100, 1.0)),
            &capture_bundle(ramp(100, 0.5)),
        );
        assert!(verdict.alarmed);
        assert_eq!(verdict.txn().unwrap().alarmed, Some(true));
        assert_eq!(verdict.power().unwrap().alarmed, None);

        let unjudged = suite.unjudged();
        assert!(!unjudged.alarmed);
        assert_eq!(unjudged.evidence.len(), 2);
        assert!(unjudged.evidence.iter().all(|e| !e.judged()));
    }

    // --- streaming (online) detection -----------------------------------

    fn quad_suite() -> DetectorSuite {
        DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
                Box::new(AcousticDetector::campaign()),
                Box::new(ThermalDetector::campaign()),
            ],
            FusionPolicy::Weighted {
                weights: Vec::new(),
                threshold: 0.5,
            },
        )
        .unwrap()
    }

    fn thermal_scene(offset: f64) -> Vec<(Tick, f64, f64)> {
        (0..100)
            .map(|i| (Tick::from_millis(i * 100), 210.0, 60.0 + offset))
            .collect()
    }

    /// A golden bundle covering all four channels, with calibration
    /// repetitions for the sampled three.
    fn quad_golden() -> EvidenceBundle {
        let power = PowerSideChannelDetector::campaign().model;
        let mic = AcousticDetector::campaign().model;
        let cam = ThermalDetector::campaign().camera;
        let steady = step_trace(250, 5);
        let mut golden = EvidenceBundle::default();
        golden.insert(ChannelData::Txn(ramp(100, 1.0)));
        let runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Power(power.synthesize(&steady, s)))
            .collect();
        golden.insert(runs[0].clone());
        golden.insert_calibration(Channel::Power, runs);
        let runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Acoustic(mic.synthesize(&steady, s)))
            .collect();
        golden.insert(runs[0].clone());
        golden.insert_calibration(Channel::Acoustic, runs);
        let runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Thermal(cam.synthesize(&thermal_scene(0.0), s)))
            .collect();
        golden.insert(runs[0].clone());
        golden.insert_calibration(Channel::Thermal, runs);
        golden
    }

    /// An observed bundle over the same four channels: `attacked`
    /// halves the step rate, halves the deposited filament and heats
    /// the bed, so the txn, power, acoustic and thermal judges all see
    /// a sustained deviation.
    fn quad_observed(attacked: bool) -> EvidenceBundle {
        let power = PowerSideChannelDetector::campaign().model;
        let mic = AcousticDetector::campaign().model;
        let cam = ThermalDetector::campaign().camera;
        let trace = step_trace(if attacked { 500 } else { 250 }, 5);
        let scene = thermal_scene(if attacked { 12.0 } else { 0.0 });
        let mut observed = EvidenceBundle::default();
        observed.insert(ChannelData::Txn(ramp(
            100,
            if attacked { 0.5 } else { 1.0 },
        )));
        observed.insert(ChannelData::Power(power.synthesize(&trace, 99)));
        observed.insert(ChannelData::Acoustic(mic.synthesize(&trace, 99)));
        observed.insert(ChannelData::Thermal(cam.synthesize(&scene, 99)));
        observed
    }

    #[test]
    fn streaming_finalize_matches_post_hoc_for_any_slice() {
        let suite = quad_suite();
        let golden = quad_golden();
        for attacked in [false, true] {
            let observed = quad_observed(attacked);
            let post_hoc = suite.judge(&golden, &observed);
            let mut rng = offramps_des::DetRng::from_seed(7 + u64::from(attacked));
            for _ in 0..6 {
                let slice = SimDuration::from_millis(rng.uniform_u64(1, 700));
                let outcome = StreamingSuite::new(&suite)
                    .with_slice(slice)
                    .run(&golden, &observed);
                assert_eq!(outcome.verdict, post_hoc, "slice {slice:?}");
            }
            let outcome = StreamingSuite::new(&suite).run(&golden, &observed);
            assert_eq!(outcome.verdict, post_hoc);
            assert_eq!(
                outcome.ttd.is_some(),
                attacked,
                "online alarm iff attacked: {:?}",
                outcome.ttd
            );
        }
    }

    #[test]
    fn ttd_is_monotone_under_halving_slices() {
        let suite = quad_suite();
        let golden = quad_golden();
        let observed = quad_observed(true);
        let mut slice = SimDuration::from_millis(3200);
        let mut last: Option<f64> = None;
        while slice >= SimDuration::from_millis(100) {
            let outcome = StreamingSuite::new(&suite)
                .with_slice(slice)
                .run(&golden, &observed);
            let ttd = outcome.ttd.expect("attacked print alarms online");
            if let Some(prev) = last {
                assert!(
                    ttd.print_fraction <= prev,
                    "finer slices must not alarm later: {} then {} at {slice:?}",
                    prev,
                    ttd.print_fraction
                );
            }
            last = Some(ttd.print_fraction);
            slice = SimDuration::from_ticks(slice.ticks() / 2);
        }
    }

    #[test]
    fn online_monitor_steps_expose_the_first_fused_alarm() {
        let suite = quad_suite();
        let golden = quad_golden();
        let observed = quad_observed(true);
        let streaming = StreamingSuite::new(&suite);
        let mut monitor = streaming.monitor(&golden, &observed);
        let mut steps = 0;
        let mut first_alarm = None;
        while let Some(step) = monitor.step() {
            steps += 1;
            assert_eq!(step.step, steps);
            assert_eq!(step.windows.len(), 4);
            if step.alarmed && first_alarm.is_none() {
                first_alarm = Some(step.step);
            }
        }
        assert_eq!(steps, monitor.steps_total());
        assert_eq!(monitor.alarm_step(), first_alarm);
        let outcome = monitor.finish();
        let ttd = outcome.ttd.expect("attacked print alarms online");
        assert_eq!(Some(ttd.alarm_step), first_alarm);
        assert!(ttd.alarm_step < steps, "strictly before end-of-print");
        assert!(ttd.print_fraction > 0.0 && ttd.print_fraction < 1.0);
        assert!(ttd.material_saved > 0.0 && ttd.material_saved <= 1.0);
        assert!(outcome.verdict.alarmed);
    }

    #[test]
    fn streaming_suite_handles_missing_channels_like_the_post_hoc_path() {
        let suite = quad_suite();
        let golden = quad_golden();
        // Observed txn only: the three sampled judges finalize
        // unjudged, exactly like judge().
        let observed = capture_bundle(ramp(100, 0.5));
        let outcome = StreamingSuite::new(&suite).run(&golden, &observed);
        assert_eq!(outcome.verdict, suite.judge(&golden, &observed));
        // Nothing observed at all: a zero-length replay, no alarm.
        let empty = EvidenceBundle::default();
        let outcome = StreamingSuite::new(&suite).run(&golden, &empty);
        assert_eq!(outcome.verdict, suite.judge(&golden, &empty));
        assert!(outcome.ttd.is_none());
        assert!(!outcome.verdict.alarmed);
    }
}

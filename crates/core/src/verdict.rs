//! Pluggable multi-modality judging: named detectors over a generic
//! observation plane, fused into one verdict.
//!
//! The paper's monitor is valuable precisely because a print can be
//! judged from *independent physical evidence streams*: the §V-C
//! step-count comparison over the captured transactions, a power
//! side-channel over the driver rail, the acoustic/EM emission of the
//! steppers, a thermal camera on the heated elements. This module makes
//! the judging layer a first-class API in which a modality is **data,
//! not a struct field**:
//!
//! * [`Channel`] / [`ChannelData`] — the named evidence streams one
//!   print can produce (`txn` capture, `power`, `acoustic`, `thermal`);
//! * [`EvidenceBundle`] — a bundle of channels plus per-channel golden
//!   calibration repetitions;
//! * [`Detector`] — a named judge with a canonical policy string that
//!   *declares* ([`Detector::channels`]) which channels it consumes,
//!   how each is synthesized ([`ChannelSynth`]) and how many golden
//!   calibration repetitions it wants — the harness provisions exactly
//!   what the active suite asks for, sharing golden reruns across
//!   detectors;
//! * [`DetectorSuite`] — an ordered set of detectors plus a
//!   [`FusionPolicy`] (`any`, `all`, or calibrated [`FusionPolicy::Weighted`]
//!   voting), producing a fused [`Verdict`];
//! * the four shipped modalities: [`TransactionDetector`],
//!   [`PowerSideChannelDetector`], [`AcousticDetector`],
//!   [`ThermalDetector`].
//!
//! The taps are *physically different*: the transaction monitor counts
//! the controller's stream upstream of the Trojan mux; power, acoustic
//! and thermal sensors measure the plant downstream of it. A hardware
//! Trojan that masks pulses is invisible to the first and visible to
//! the others; one that only breaks step *timing* hides from the power
//! envelope but clicks audibly; one that only tampers with heat leaves
//! the motion plane spotless and glows on camera. Fusing independent
//! channels beats any single judge — which is the paper's core claim
//! about in-line intermediaries.
//!
//! A suite's [`DetectorSuite::policy`] string spells out every knob
//! that shapes a verdict; content-addressed stores key scenario records
//! by it, so changing the suite (or any detector default) re-addresses
//! every cached verdict at once.

use std::collections::BTreeMap;
use std::fmt;

use offramps_sidechannel::{
    compare_sampled, AcousticModel, AcousticTrace, ComparatorConfig, PowerDetectorConfig,
    PowerModel, PowerTrace, SideChannelReport, ThermalCamera, ThermalTrace,
};

use crate::capture::Capture;
use crate::detect::{self, DetectorConfig};

/// A named evidence stream. The observation plane is keyed by these:
/// detectors declare which channels they consume, the harness
/// synthesizes only the channels the active suite asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// The monitor's transaction capture (controller-side tap).
    Txn,
    /// The driver-rail power waveform (plant-side tap).
    Power,
    /// The acoustic/EM emission envelope (plant-side step timing).
    Acoustic,
    /// The thermal-camera scene trace (true plant temperatures).
    Thermal,
}

impl Channel {
    /// Every channel, in canonical order.
    pub const ALL: [Channel; 4] = [
        Channel::Txn,
        Channel::Power,
        Channel::Acoustic,
        Channel::Thermal,
    ];

    /// Short stable name (`"txn"`, `"power"`, `"acoustic"`,
    /// `"thermal"`).
    pub fn name(&self) -> &'static str {
        match self {
            Channel::Txn => "txn",
            Channel::Power => "power",
            Channel::Acoustic => "acoustic",
            Channel::Thermal => "thermal",
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One channel's payload.
#[derive(Debug, Clone)]
pub enum ChannelData {
    /// A transaction capture.
    Txn(Capture),
    /// A synthesized power waveform.
    Power(PowerTrace),
    /// A synthesized acoustic/EM emission envelope.
    Acoustic(AcousticTrace),
    /// A synthesized thermal-camera trace.
    Thermal(ThermalTrace),
}

impl ChannelData {
    /// Which channel this payload belongs to.
    pub fn channel(&self) -> Channel {
        match self {
            ChannelData::Txn(_) => Channel::Txn,
            ChannelData::Power(_) => Channel::Power,
            ChannelData::Acoustic(_) => Channel::Acoustic,
            ChannelData::Thermal(_) => Channel::Thermal,
        }
    }

    /// The sampled scalar view, for the window-comparator modalities
    /// (`None` for the transaction capture, which is not a sampled
    /// waveform).
    pub fn samples(&self) -> Option<&[f64]> {
        match self {
            ChannelData::Txn(_) => None,
            ChannelData::Power(t) => Some(t.samples()),
            ChannelData::Acoustic(t) => Some(t.samples()),
            ChannelData::Thermal(t) => Some(t.samples()),
        }
    }
}

/// How a channel is synthesized from one run's artifacts. The harness
/// (`offramps_bench::detectors`) interprets these: `Capture` comes from
/// the monitor tap, `Power`/`Acoustic` from the plant-side signal
/// trace, `Thermal` from the plant temperature samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelSynth {
    /// The monitor's transaction capture (no synthesis model).
    Capture,
    /// Power waveform synthesis with this electrical model.
    Power(PowerModel),
    /// Acoustic/EM envelope synthesis with this emission model.
    Acoustic(AcousticModel),
    /// Thermal-scene synthesis with this camera model.
    Thermal(ThermalCamera),
}

impl ChannelSynth {
    /// The channel this synthesis produces.
    pub fn channel(&self) -> Channel {
        match self {
            ChannelSynth::Capture => Channel::Txn,
            ChannelSynth::Power(_) => Channel::Power,
            ChannelSynth::Acoustic(_) => Channel::Acoustic,
            ChannelSynth::Thermal(_) => Channel::Thermal,
        }
    }

    /// Whether producing this channel requires the plant-side signal
    /// trace to be recorded during the run.
    pub fn needs_plant_trace(&self) -> bool {
        matches!(self, ChannelSynth::Power(_) | ChannelSynth::Acoustic(_))
    }
}

/// One detector's declaration of a channel it consumes.
#[derive(Debug, Clone)]
pub struct ChannelRequest {
    /// How the channel is produced from run artifacts.
    pub synth: ChannelSynth,
    /// How many golden prints this detector wants for calibration on
    /// this channel, primary run included (0 or 1 = the primary golden
    /// run suffices, no repetitions).
    pub calibration_runs: usize,
}

impl ChannelRequest {
    /// A request for the transaction capture (no calibration).
    pub fn capture() -> ChannelRequest {
        ChannelRequest {
            synth: ChannelSynth::Capture,
            calibration_runs: 0,
        }
    }
}

/// The named evidence streams captured from one print: a bundle of
/// channels, plus (on golden bundles) per-channel calibration
/// repetitions — the published side-channel systems profile dozens of
/// repeated golden prints; observed bundles carry no calibration.
#[derive(Debug, Clone, Default)]
pub struct EvidenceBundle {
    channels: BTreeMap<Channel, ChannelData>,
    calibration: BTreeMap<Channel, Vec<ChannelData>>,
}

impl EvidenceBundle {
    /// A bundle holding just a transaction capture (the txn-only
    /// harness shape).
    pub fn from_capture(capture: Capture) -> EvidenceBundle {
        let mut bundle = EvidenceBundle::default();
        bundle.insert(ChannelData::Txn(capture));
        bundle
    }

    /// Inserts (or replaces) one channel's payload.
    pub fn insert(&mut self, data: ChannelData) {
        self.channels.insert(data.channel(), data);
    }

    /// Installs a channel's golden calibration repetitions (primary run
    /// first, by convention).
    pub fn insert_calibration(&mut self, channel: Channel, runs: Vec<ChannelData>) {
        self.calibration.insert(channel, runs);
    }

    /// One channel's payload, if present.
    pub fn get(&self, channel: Channel) -> Option<&ChannelData> {
        self.channels.get(&channel)
    }

    /// One channel's calibration repetitions (empty when none).
    pub fn calibration(&self, channel: Channel) -> &[ChannelData] {
        self.calibration.get(&channel).map_or(&[], Vec::as_slice)
    }

    /// The channels present, in canonical order.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        self.channels.keys().copied()
    }

    /// The transaction capture, if captured.
    pub fn capture(&self) -> Option<&Capture> {
        match self.channels.get(&Channel::Txn) {
            Some(ChannelData::Txn(c)) => Some(c),
            _ => None,
        }
    }

    /// The power waveform, if synthesized.
    pub fn power(&self) -> Option<&PowerTrace> {
        match self.channels.get(&Channel::Power) {
            Some(ChannelData::Power(t)) => Some(t),
            _ => None,
        }
    }

    /// The acoustic envelope, if synthesized.
    pub fn acoustic(&self) -> Option<&AcousticTrace> {
        match self.channels.get(&Channel::Acoustic) {
            Some(ChannelData::Acoustic(t)) => Some(t),
            _ => None,
        }
    }

    /// The thermal-scene trace, if synthesized.
    pub fn thermal(&self) -> Option<&ThermalTrace> {
        match self.channels.get(&Channel::Thermal) {
            Some(ChannelData::Thermal(t)) => Some(t),
            _ => None,
        }
    }

    /// A channel's calibration repetitions as sample slices (skipping
    /// any non-sampled payloads).
    fn calibration_samples(&self, channel: Channel) -> Vec<&[f64]> {
        self.calibration(channel)
            .iter()
            .filter_map(ChannelData::samples)
            .collect()
    }
}

/// One detector's judgment as sufficient statistics: everything needed
/// to re-judge the scenario offline at any threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The detector that produced this evidence (e.g. `"txn"`,
    /// `"power"`, `"acoustic"`, `"thermal"`).
    pub detector: String,
    /// The detector's own alarm; `None` when the evidence stream it
    /// needs was absent (an unjudged scenario, not a clean one).
    pub alarmed: Option<bool>,
    /// Units with an out-of-band signal: mismatching transactions for
    /// the step-count judge, anomalous windows for the sampled judges.
    pub flagged: usize,
    /// Individual out-of-band values (a transaction with two bad axes
    /// counts twice); equals `flagged` for window-based judges.
    pub flagged_values: usize,
    /// Units the detector compared (the suspect-fraction denominator).
    pub compared: usize,
    /// The suspect-fraction threshold the verdict used; `None` when
    /// unjudged.
    pub threshold: Option<f64>,
    /// Largest deviation seen: percent difference for the step-count
    /// judge, watts / a.u. / °C for the sampled judges.
    pub peak: f64,
    /// The end-of-print 0 %-margin totals check (transaction judge
    /// only; `None` elsewhere).
    pub final_totals_match: Option<bool>,
}

impl Evidence {
    /// Evidence for a scenario this detector could not judge (its
    /// stream was never captured, or the bench run errored).
    pub fn unjudged(detector: impl Into<String>) -> Evidence {
        Evidence {
            detector: detector.into(),
            alarmed: None,
            flagged: 0,
            flagged_values: 0,
            compared: 0,
            threshold: None,
            peak: 0.0,
            final_totals_match: None,
        }
    }

    /// True when the detector actually judged its stream.
    pub fn judged(&self) -> bool {
        self.alarmed.is_some()
    }

    /// Fraction of compared units flagged (0 when nothing compared).
    pub fn flagged_fraction(&self) -> f64 {
        if self.compared == 0 {
            0.0
        } else {
            self.flagged as f64 / self.compared as f64
        }
    }

    /// Evidence from a sampled-channel comparison report.
    fn from_report(detector: &'static str, report: SideChannelReport, base: f64) -> Evidence {
        Evidence {
            detector: detector.into(),
            alarmed: Some(report.sabotage_suspected),
            flagged: report.anomalous_windows,
            flagged_values: report.anomalous_windows,
            compared: report.windows_compared,
            threshold: Some(base),
            peak: report.largest_deviation_w,
            final_totals_match: None,
        }
    }
}

/// How a suite combines its detectors' alarms into one verdict.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FusionPolicy {
    /// Alarm when *any* judged detector alarms (the default: every
    /// independent evidence channel gets veto power over "clean").
    #[default]
    Any,
    /// Alarm only when *every* judged detector alarms (at least one
    /// must have judged).
    All,
    /// Weighted voting: alarm when the weight of alarming judged
    /// detectors reaches `threshold` of the total judged weight (and at
    /// least one weighted detector alarms). `weights` maps detector
    /// names to non-negative weights; an empty list weighs every judged
    /// detector equally. The boundaries degenerate exactly:
    /// `threshold = 0` is [`FusionPolicy::Any`], `threshold = 1` is
    /// [`FusionPolicy::All`] (over the positively weighted detectors).
    Weighted {
        /// Per-detector weights, in canonical (suite) order; empty =
        /// equal weights.
        weights: Vec<(String, f64)>,
        /// Fraction of the judged weight that must alarm, in `[0, 1]`.
        threshold: f64,
    },
}

impl FusionPolicy {
    /// Fuses per-detector evidence into the suite alarm. Unjudged
    /// evidence neither alarms nor vetoes.
    pub fn fuse(&self, evidence: &[Evidence]) -> bool {
        match self {
            FusionPolicy::Any => evidence.iter().filter_map(|e| e.alarmed).any(|a| a),
            FusionPolicy::All => {
                let judged: Vec<bool> = evidence.iter().filter_map(|e| e.alarmed).collect();
                !judged.is_empty() && judged.iter().all(|&a| a)
            }
            FusionPolicy::Weighted { weights, threshold } => {
                let votes = evidence
                    .iter()
                    .filter_map(|e| e.alarmed.map(|a| (e.detector.as_str(), a)));
                weighted_vote(weights, *threshold, votes)
            }
        }
    }

    /// Parses a fusion policy:
    ///
    /// * `any` / `all`;
    /// * `weighted` — equal weights, threshold 0.5;
    /// * `weighted@0.3` — equal weights, explicit threshold;
    /// * `weighted:txn=1,power=0.5@0.3` — explicit weights (and
    ///   optional `@threshold`, default 0.5).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed policy.
    pub fn parse(name: &str) -> Result<FusionPolicy, String> {
        let name = name.trim().to_ascii_lowercase();
        match name.as_str() {
            "any" => return Ok(FusionPolicy::Any),
            "all" => return Ok(FusionPolicy::All),
            _ => {}
        }
        let Some(rest) = name.strip_prefix("weighted") else {
            return Err(format!(
                "unknown fusion policy {name:?} (any|all|weighted[:d=w,...][@threshold])"
            ));
        };
        let (spec, threshold) = match rest.rsplit_once('@') {
            Some((spec, t)) => {
                let t: f64 = t
                    .parse()
                    .map_err(|_| format!("bad weighted threshold in {name:?}"))?;
                (spec, t)
            }
            None => (rest, 0.5),
        };
        if !(0.0..=1.0).contains(&threshold) {
            return Err(format!("weighted threshold must be in [0, 1] in {name:?}"));
        }
        let mut weights = Vec::new();
        if let Some(list) = spec.strip_prefix(':') {
            for part in list.split(',').filter(|p| !p.is_empty()) {
                let (det, w) = part
                    .split_once('=')
                    .ok_or_else(|| format!("weighted wants d=w pairs, got {part:?}"))?;
                let w: f64 = w
                    .parse()
                    .map_err(|_| format!("bad weight for {det:?} in {name:?}"))?;
                if !(w.is_finite() && w >= 0.0) {
                    return Err(format!("weight for {det:?} must be >= 0 in {name:?}"));
                }
                weights.push((det.trim().to_string(), w));
            }
            if weights.is_empty() {
                return Err(format!("empty weight list in {name:?}"));
            }
        } else if !spec.is_empty() {
            return Err(format!("unknown fusion policy {name:?}"));
        }
        Ok(FusionPolicy::Weighted { weights, threshold })
    }
}

/// The weighted-vote rule shared by live fusion and offline weighted
/// re-judging (`offramps_bench::analytics`): alarm when the alarming
/// judged weight reaches `threshold` of the total judged weight and at
/// least one positively weighted detector alarms. An empty weight list
/// weighs every judged detector at 1; detectors absent from a non-empty
/// list weigh 0.
pub fn weighted_vote<'a>(
    weights: &[(String, f64)],
    threshold: f64,
    votes: impl Iterator<Item = (&'a str, bool)>,
) -> bool {
    let weight_of = |det: &str| -> f64 {
        if weights.is_empty() {
            1.0
        } else {
            weights
                .iter()
                .find(|(name, _)| name == det)
                .map_or(0.0, |(_, w)| *w)
        }
    };
    let mut total = 0.0;
    let mut alarmed = 0.0;
    for (det, alarm) in votes {
        let w = weight_of(det);
        total += w;
        if alarm {
            alarmed += w;
        }
    }
    total > 0.0 && alarmed > 0.0 && alarmed >= threshold * total
}

impl fmt::Display for FusionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionPolicy::Any => f.write_str("any"),
            FusionPolicy::All => f.write_str("all"),
            FusionPolicy::Weighted { weights, threshold } => {
                if weights.is_empty() {
                    write!(f, "weighted@{threshold}")
                } else {
                    let parts: Vec<String> =
                        weights.iter().map(|(d, w)| format!("{d}={w}")).collect();
                    write!(f, "weighted:{}@{threshold}", parts.join(","))
                }
            }
        }
    }
}

/// A suite's fused judgment of one print: the combined alarm plus every
/// detector's evidence, in suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The fused alarm.
    pub alarmed: bool,
    /// Per-detector evidence, in suite order.
    pub evidence: Vec<Evidence>,
}

impl Verdict {
    /// The evidence a named detector produced, if it is in the suite.
    pub fn evidence_for(&self, detector: &str) -> Option<&Evidence> {
        self.evidence.iter().find(|e| e.detector == detector)
    }

    /// Shorthand for the transaction judge's evidence.
    pub fn txn(&self) -> Option<&Evidence> {
        self.evidence_for(TransactionDetector::NAME)
    }

    /// Shorthand for the power judge's evidence.
    pub fn power(&self) -> Option<&Evidence> {
        self.evidence_for(PowerSideChannelDetector::NAME)
    }

    /// Shorthand for the acoustic judge's evidence.
    pub fn acoustic(&self) -> Option<&Evidence> {
        self.evidence_for(AcousticDetector::NAME)
    }

    /// Shorthand for the thermal judge's evidence.
    pub fn thermal(&self) -> Option<&Evidence> {
        self.evidence_for(ThermalDetector::NAME)
    }
}

/// A named judge over evidence bundles.
pub trait Detector: Send + Sync + fmt::Debug {
    /// Short stable name (`"txn"`, `"power"`, `"acoustic"`,
    /// `"thermal"`); keys evidence and CLI selection.
    fn name(&self) -> &'static str;

    /// Canonical rendering of every knob that shapes this detector's
    /// verdicts — the content-address component for cached results.
    fn policy(&self) -> String;

    /// The channels this detector consumes: what to synthesize, and how
    /// many golden calibration repetitions each channel wants. The
    /// default is the bare transaction capture.
    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest::capture()]
    }

    /// Judges an observed print against the golden evidence.
    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence;
}

/// The §V-C step-count judge behind the [`Detector`] API: the paper's
/// windowed margin comparison with the campaign's short-print floor
/// ([`detect::floored_suspect_fraction`]) applied to the base suspect
/// fraction.
#[derive(Debug, Clone)]
pub struct TransactionDetector {
    /// Base tuning; the suspect fraction is floored per capture length
    /// at judge time.
    pub base: DetectorConfig,
}

impl TransactionDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "txn";

    /// The campaign default: the paper's tuning.
    pub fn campaign() -> TransactionDetector {
        TransactionDetector {
            base: DetectorConfig::default(),
        }
    }
}

impl Detector for TransactionDetector {
    fn name(&self) -> &'static str {
        TransactionDetector::NAME
    }

    /// Byte-compatible with the pre-suite campaign policy string, so a
    /// scenario store warmed by a transaction-only campaign stays warm
    /// across the API redesign.
    fn policy(&self) -> String {
        format!(
            "margin={};floor={};base={};final={};txn_floor={}",
            self.base.margin,
            self.base.denominator_floor,
            self.base.suspect_fraction,
            self.base.final_check,
            detect::SUSPECT_TRANSACTION_FLOOR,
        )
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let (Some(golden), Some(observed)) = (golden.capture(), observed.capture()) else {
            return Evidence::unjudged(self.name());
        };
        let n = golden.len().min(observed.len());
        let cfg = DetectorConfig {
            suspect_fraction: detect::floored_suspect_fraction(self.base.suspect_fraction, n),
            ..self.base
        };
        let report = detect::compare(golden, observed, &cfg);
        Evidence {
            detector: self.name().into(),
            alarmed: Some(report.trojan_suspected),
            flagged: report.mismatched_transactions(),
            flagged_values: report.mismatches.len(),
            compared: report.transactions_compared,
            threshold: Some(cfg.suspect_fraction),
            peak: report.largest_percent,
            final_totals_match: report.final_totals_match,
        }
    }
}

/// The power side-channel judge behind the [`Detector`] API: golden
/// power profiles (repetition-calibrated when the golden bundle carries
/// ≥ 2 calibration traces, single-profile otherwise) compared against
/// the observed driver-rail waveform.
#[derive(Debug, Clone)]
pub struct PowerSideChannelDetector {
    /// Comparator tuning (sigma threshold, smoothing, suspect
    /// fraction).
    pub config: PowerDetectorConfig,
    /// Electrical model the power traces are synthesized with.
    pub model: PowerModel,
    /// Golden repetitions to calibrate from.
    pub calibration_runs: usize,
}

impl PowerSideChannelDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "power";

    /// The campaign default: the repetition-calibrated configuration
    /// the baseline experiment validated (1 s smoothing windows tame
    /// move-boundary jitter; five golden repetitions).
    pub fn campaign() -> PowerSideChannelDetector {
        let model = PowerModel::default();
        PowerSideChannelDetector {
            config: PowerDetectorConfig {
                sigma_threshold: 5.0,
                noise_sigma_w: model.noise_sigma_w,
                smoothing: 100,
                suspect_fraction: 0.15,
            },
            model,
            calibration_runs: 5,
        }
    }
}

impl Detector for PowerSideChannelDetector {
    fn name(&self) -> &'static str {
        PowerSideChannelDetector::NAME
    }

    fn policy(&self) -> String {
        format!(
            "sigma={};noise={};smooth={};base={};calib={};kstep_w={};hold_w={};rate_hz={};heaters={}",
            self.config.sigma_threshold,
            self.config.noise_sigma_w,
            self.config.smoothing,
            self.config.suspect_fraction,
            self.calibration_runs,
            self.model.motor_w_per_kstep,
            self.model.motor_hold_w,
            self.model.sample_rate_hz,
            self.model.include_heaters,
        )
    }

    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest {
            synth: ChannelSynth::Power(self.model),
            calibration_runs: self.calibration_runs.max(1),
        }]
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let Some(observed_power) = observed.power() else {
            return Evidence::unjudged(self.name());
        };
        let calibration = golden.calibration_samples(Channel::Power);
        let report = compare_sampled(
            &calibration,
            golden.power().map(PowerTrace::samples),
            observed_power.samples(),
            self.config.into(),
        );
        match report {
            Some(report) => {
                Evidence::from_report(self.name(), report, self.config.suspect_fraction)
            }
            None => Evidence::unjudged(self.name()),
        }
    }
}

/// The acoustic/EM side-channel judge: the stepper emission envelope
/// ([`AcousticModel`]) compared window by window against a
/// repetition-calibrated golden profile. Its click term makes it the
/// detector of choice for feed-rate/void Trojans that keep per-window
/// step *counts* (and therefore the power envelope) intact while
/// breaking the step *cadence*.
#[derive(Debug, Clone)]
pub struct AcousticDetector {
    /// Comparator tuning (sigma threshold, smoothing, suspect
    /// fraction; `noise_sigma` must match the model's).
    pub config: ComparatorConfig,
    /// Emission model the acoustic envelopes are synthesized with.
    pub model: AcousticModel,
    /// Golden repetitions to calibrate from.
    pub calibration_runs: usize,
}

impl AcousticDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "acoustic";

    /// The campaign default: 1 s comparison windows over 20 ms frames
    /// (averaging out move-boundary tone jitter the way the power judge
    /// does), five golden repetitions (shared with the other calibrated
    /// detectors), and a 5 % suspect fraction — emission is informative
    /// only while motors run, so the long silent heat-up dilutes the
    /// anomalous-window fraction and the bar sits lower than the power
    /// judge's.
    pub fn campaign() -> AcousticDetector {
        let model = AcousticModel::default();
        AcousticDetector {
            config: ComparatorConfig {
                sigma_threshold: 5.0,
                noise_sigma: model.noise_sigma,
                smoothing: 50,
                suspect_fraction: 0.05,
            },
            model,
            calibration_runs: 5,
        }
    }
}

impl Detector for AcousticDetector {
    fn name(&self) -> &'static str {
        AcousticDetector::NAME
    }

    fn policy(&self) -> String {
        format!(
            "sigma={};noise={};smooth={};base={};calib={};rate_hz={};tone={};click={};ratio={};mic_noise={}",
            self.config.sigma_threshold,
            self.config.noise_sigma,
            self.config.smoothing,
            self.config.suspect_fraction,
            self.calibration_runs,
            self.model.sample_rate_hz,
            self.model.tone_per_kstep,
            self.model.click_unit,
            self.model.click_ratio,
            self.model.noise_sigma,
        )
    }

    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest {
            synth: ChannelSynth::Acoustic(self.model),
            calibration_runs: self.calibration_runs.max(1),
        }]
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let Some(observed_trace) = observed.acoustic() else {
            return Evidence::unjudged(self.name());
        };
        let calibration = golden.calibration_samples(Channel::Acoustic);
        let report = compare_sampled(
            &calibration,
            golden.acoustic().map(AcousticTrace::samples),
            observed_trace.samples(),
            self.config,
        );
        match report {
            Some(report) => {
                Evidence::from_report(self.name(), report, self.config.suspect_fraction)
            }
            None => Evidence::unjudged(self.name()),
        }
    }
}

/// The thermal-camera judge: the hotend+bed radiance proxy
/// ([`ThermalCamera`]) compared against a repetition-calibrated golden
/// profile, in °C. It catches temperature-manipulation attacks —
/// forced-on MOSFETs, thermistor miscalibrations driving the control
/// loop hot — that leave the motion plane (and therefore the txn,
/// power and acoustic channels) spotless.
#[derive(Debug, Clone)]
pub struct ThermalDetector {
    /// Comparator tuning (sigma threshold, smoothing, suspect
    /// fraction; `noise_sigma` must match the camera's).
    pub config: ComparatorConfig,
    /// Camera model the thermal traces are synthesized with.
    pub camera: ThermalCamera,
    /// Golden repetitions to calibrate from.
    pub calibration_runs: usize,
}

impl ThermalDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "thermal";

    /// The campaign default: 2 s comparison windows over 0.5 s frames,
    /// five golden repetitions (shared with the other calibrated
    /// detectors).
    pub fn campaign() -> ThermalDetector {
        let camera = ThermalCamera::default();
        ThermalDetector {
            config: ComparatorConfig {
                sigma_threshold: 5.0,
                noise_sigma: camera.noise_sigma_c,
                smoothing: 4,
                suspect_fraction: 0.15,
            },
            camera,
            calibration_runs: 5,
        }
    }
}

impl Detector for ThermalDetector {
    fn name(&self) -> &'static str {
        ThermalDetector::NAME
    }

    fn policy(&self) -> String {
        format!(
            "sigma={};noise={};smooth={};base={};calib={};frame_ms={};cam_noise={}",
            self.config.sigma_threshold,
            self.config.noise_sigma,
            self.config.smoothing,
            self.config.suspect_fraction,
            self.calibration_runs,
            self.camera.frame_period_ms,
            self.camera.noise_sigma_c,
        )
    }

    fn channels(&self) -> Vec<ChannelRequest> {
        vec![ChannelRequest {
            synth: ChannelSynth::Thermal(self.camera),
            calibration_runs: self.calibration_runs.max(1),
        }]
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let Some(observed_trace) = observed.thermal() else {
            return Evidence::unjudged(self.name());
        };
        let calibration = golden.calibration_samples(Channel::Thermal);
        let report = compare_sampled(
            &calibration,
            golden.thermal().map(ThermalTrace::samples),
            observed_trace.samples(),
            self.config,
        );
        match report {
            Some(report) => {
                Evidence::from_report(self.name(), report, self.config.suspect_fraction)
            }
            None => Evidence::unjudged(self.name()),
        }
    }
}

/// An ordered, uniquely named set of detectors plus a fusion policy.
#[derive(Debug)]
pub struct DetectorSuite {
    detectors: Vec<Box<dyn Detector>>,
    fusion: FusionPolicy,
}

impl DetectorSuite {
    /// Builds a suite.
    ///
    /// # Errors
    ///
    /// Rejects an empty suite, duplicate detector names, or a weighted
    /// fusion policy naming a detector outside the suite (or with no
    /// positive weight at all).
    pub fn new(
        detectors: Vec<Box<dyn Detector>>,
        fusion: FusionPolicy,
    ) -> Result<DetectorSuite, String> {
        if detectors.is_empty() {
            return Err("a detector suite needs at least one detector".into());
        }
        let mut seen = std::collections::HashSet::new();
        for d in &detectors {
            if !seen.insert(d.name()) {
                return Err(format!("duplicate detector {:?} in suite", d.name()));
            }
        }
        if let FusionPolicy::Weighted { weights, threshold } = &fusion {
            if !(threshold.is_finite() && (0.0..=1.0).contains(threshold)) {
                return Err("weighted fusion threshold must be in [0, 1]".into());
            }
            let mut named = std::collections::HashSet::new();
            for (name, w) in weights {
                if !seen.contains(name.as_str()) {
                    return Err(format!("weighted fusion names unknown detector {name:?}"));
                }
                if !named.insert(name.as_str()) {
                    return Err(format!("duplicate weight for detector {name:?}"));
                }
                if !(w.is_finite() && *w >= 0.0) {
                    return Err(format!("weight for {name:?} must be >= 0"));
                }
            }
            if !weights.is_empty() && weights.iter().all(|(_, w)| *w == 0.0) {
                return Err("weighted fusion needs at least one positive weight".into());
            }
        }
        Ok(DetectorSuite { detectors, fusion })
    }

    /// The campaign default: the transaction judge alone, any-alarm
    /// fusion.
    pub fn transaction_default() -> DetectorSuite {
        DetectorSuite {
            detectors: vec![Box::new(TransactionDetector::campaign())],
            fusion: FusionPolicy::Any,
        }
    }

    /// Detector names in suite order.
    pub fn names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// The detectors, in suite order.
    pub fn detectors(&self) -> &[Box<dyn Detector>] {
        &self.detectors
    }

    /// The fusion policy.
    pub fn fusion(&self) -> &FusionPolicy {
        &self.fusion
    }

    /// The merged channel plan: every channel some detector consumes,
    /// in first-declared order, with the *first* declarer's synthesis
    /// model and the *largest* calibration-repetition request across
    /// declarers. This is what the harness provisions — channels are
    /// synthesized once and calibration reruns are shared, however many
    /// detectors consume them.
    pub fn channel_plan(&self) -> Vec<ChannelRequest> {
        let mut plan: Vec<ChannelRequest> = Vec::new();
        for d in &self.detectors {
            for request in d.channels() {
                match plan
                    .iter_mut()
                    .find(|r| r.synth.channel() == request.synth.channel())
                {
                    Some(existing) => {
                        existing.calibration_runs =
                            existing.calibration_runs.max(request.calibration_runs);
                    }
                    None => plan.push(request),
                }
            }
        }
        plan
    }

    /// Whether any planned channel needs the plant-side signal trace
    /// recorded.
    pub fn needs_plant_trace(&self) -> bool {
        self.channel_plan()
            .iter()
            .any(|r| r.synth.needs_plant_trace())
    }

    /// The most golden repetition runs any detector wants for
    /// calibration (0 when no detector calibrates; the shared golden
    /// reruns satisfy every calibrated channel at once).
    pub fn calibration_runs(&self) -> usize {
        self.channel_plan()
            .iter()
            .map(|r| r.calibration_runs)
            .max()
            .unwrap_or(0)
    }

    /// The canonical rendering of the whole judging policy. A
    /// single-detector suite renders that detector's bare policy string
    /// (so the transaction-only default stays byte-compatible with the
    /// pre-suite campaign policy); multi-detector suites render
    /// `name{policy}` joined by `+` with the fusion policy appended.
    pub fn policy(&self) -> String {
        if let [only] = self.detectors.as_slice() {
            return only.policy();
        }
        let parts: Vec<String> = self
            .detectors
            .iter()
            .map(|d| format!("{}{{{}}}", d.name(), d.policy()))
            .collect();
        format!("{}|fuse={}", parts.join("+"), self.fusion)
    }

    /// Judges an observed print against the golden evidence: every
    /// detector in order, then fusion.
    pub fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Verdict {
        let evidence: Vec<Evidence> = self
            .detectors
            .iter()
            .map(|d| d.judge(golden, observed))
            .collect();
        Verdict {
            alarmed: self.fusion.fuse(&evidence),
            evidence,
        }
    }

    /// The verdict for a print that produced no evidence at all (a
    /// bench error): every detector unjudged, no alarm.
    pub fn unjudged(&self) -> Verdict {
        Verdict {
            alarmed: false,
            evidence: self
                .detectors
                .iter()
                .map(|d| Evidence::unjudged(d.name()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Transaction;
    use offramps_des::{SimDuration, Tick};
    use offramps_signals::{Level, LogicEvent, Pin, SignalTrace};

    fn ramp(n: usize, scale: f64) -> Capture {
        (0..n)
            .map(|i| Transaction {
                index: i as u64,
                counts: [
                    (1_000.0 + 10.0 * i as f64) as i32,
                    (2_000.0 * scale) as i32,
                    100,
                    (500.0 * scale * i as f64) as i32,
                ],
            })
            .collect()
    }

    fn capture_bundle(cap: Capture) -> EvidenceBundle {
        EvidenceBundle::from_capture(cap)
    }

    fn step_trace(period_us: u64, seconds: u64) -> SignalTrace {
        let mut t = SignalTrace::new();
        let mut at = Tick::ZERO;
        while at < Tick::from_secs(seconds) {
            t.record(at, LogicEvent::new(Pin::XStep, Level::High));
            t.record(
                at + SimDuration::from_micros(2),
                LogicEvent::new(Pin::XStep, Level::Low),
            );
            at += SimDuration::from_micros(period_us);
        }
        t
    }

    #[test]
    fn transaction_detector_matches_campaign_judge() {
        let golden = ramp(100, 1.0);
        let observed = ramp(100, 0.5);
        let det = TransactionDetector::campaign();
        let ev = det.judge(
            &capture_bundle(golden.clone()),
            &capture_bundle(observed.clone()),
        );
        let n = golden.len().min(observed.len());
        let cfg = DetectorConfig {
            suspect_fraction: detect::floored_suspect_fraction(0.01, n),
            ..DetectorConfig::default()
        };
        let report = detect::compare(&golden, &observed, &cfg);
        assert_eq!(ev.alarmed, Some(report.trojan_suspected));
        assert_eq!(ev.flagged, report.mismatched_transactions());
        assert_eq!(ev.flagged_values, report.mismatches.len());
        assert_eq!(ev.compared, report.transactions_compared);
        assert_eq!(ev.threshold, Some(cfg.suspect_fraction));
        assert_eq!(ev.peak, report.largest_percent);
        assert_eq!(ev.final_totals_match, report.final_totals_match);
    }

    #[test]
    fn transaction_detector_unjudged_without_captures() {
        let det = TransactionDetector::campaign();
        let ev = det.judge(&EvidenceBundle::default(), &capture_bundle(ramp(10, 1.0)));
        assert!(!ev.judged());
        assert_eq!(ev.threshold, None);
    }

    #[test]
    fn power_detector_calibrated_judges_sustained_change() {
        let det = PowerSideChannelDetector::campaign();
        let model = det.model;
        let golden_runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Power(model.synthesize(&step_trace(250, 5), s)))
            .collect();
        let mut golden = EvidenceBundle::default();
        golden.insert(golden_runs[0].clone());
        golden.insert_calibration(Channel::Power, golden_runs);
        let mut clean = EvidenceBundle::default();
        clean.insert(ChannelData::Power(
            model.synthesize(&step_trace(250, 5), 99),
        ));
        let mut attacked = EvidenceBundle::default();
        attacked.insert(ChannelData::Power(
            model.synthesize(&step_trace(500, 5), 99),
        ));
        let clean_ev = det.judge(&golden, &clean);
        assert_eq!(clean_ev.alarmed, Some(false), "{clean_ev:?}");
        assert!(clean_ev.compared > 0);
        let attacked_ev = det.judge(&golden, &attacked);
        assert_eq!(attacked_ev.alarmed, Some(true), "{attacked_ev:?}");
        assert!(attacked_ev.peak > 1.0, "watts of sustained deviation");
        assert_eq!(attacked_ev.flagged, attacked_ev.flagged_values);
        // Single golden profile (no calibration repeats) still judges.
        let mut single = EvidenceBundle::default();
        single.insert(ChannelData::Power(model.synthesize(&step_trace(250, 5), 1)));
        assert!(det.judge(&single, &attacked).judged());
        // No power at all: unjudged.
        assert!(!det.judge(&golden, &EvidenceBundle::default()).judged());
    }

    #[test]
    fn acoustic_detector_hears_cadence_breaks() {
        let det = AcousticDetector::campaign();
        let model = det.model;
        // Golden: a steady train. Attacked: same rate with every 10th
        // pulse masked — per-window counts barely change, the cadence
        // does.
        let steady = step_trace(250, 5);
        let mut masked = SignalTrace::new();
        let mut at = Tick::ZERO;
        let mut i = 0u64;
        while at < Tick::from_secs(5) {
            if i % 10 != 9 {
                masked.record(at, LogicEvent::new(Pin::XStep, Level::High));
                masked.record(
                    at + SimDuration::from_micros(2),
                    LogicEvent::new(Pin::XStep, Level::Low),
                );
            }
            at += SimDuration::from_micros(250);
            i += 1;
        }
        let runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Acoustic(model.synthesize(&steady, s)))
            .collect();
        let mut golden = EvidenceBundle::default();
        golden.insert(runs[0].clone());
        golden.insert_calibration(Channel::Acoustic, runs);
        let mut clean = EvidenceBundle::default();
        clean.insert(ChannelData::Acoustic(model.synthesize(&steady, 99)));
        let mut voided = EvidenceBundle::default();
        voided.insert(ChannelData::Acoustic(model.synthesize(&masked, 99)));
        assert_eq!(det.judge(&golden, &clean).alarmed, Some(false));
        let ev = det.judge(&golden, &voided);
        assert_eq!(ev.alarmed, Some(true), "{ev:?}");
        assert!(!det.judge(&golden, &EvidenceBundle::default()).judged());
    }

    #[test]
    fn thermal_detector_sees_hotter_scene() {
        let det = ThermalDetector::campaign();
        let camera = det.camera;
        let scene = |offset: f64| -> Vec<(Tick, f64, f64)> {
            (0..600)
                .map(|i| (Tick::from_millis(i * 100), 210.0, 60.0 + offset))
                .collect()
        };
        let runs: Vec<ChannelData> = (0..5)
            .map(|s| ChannelData::Thermal(camera.synthesize(&scene(0.0), s)))
            .collect();
        let mut golden = EvidenceBundle::default();
        golden.insert(runs[0].clone());
        golden.insert_calibration(Channel::Thermal, runs);
        let mut clean = EvidenceBundle::default();
        clean.insert(ChannelData::Thermal(camera.synthesize(&scene(0.0), 99)));
        let mut hot = EvidenceBundle::default();
        hot.insert(ChannelData::Thermal(camera.synthesize(&scene(12.0), 99)));
        assert_eq!(det.judge(&golden, &clean).alarmed, Some(false));
        let ev = det.judge(&golden, &hot);
        assert_eq!(ev.alarmed, Some(true), "{ev:?}");
        assert!(ev.peak > 10.0, "°C of sustained deviation: {ev:?}");
        assert!(!det.judge(&golden, &EvidenceBundle::default()).judged());
    }

    fn ev(name: &str, alarmed: Option<bool>) -> Evidence {
        Evidence {
            alarmed,
            ..Evidence::unjudged(name)
        }
    }

    #[test]
    fn fusion_policies() {
        let both = [ev("a", Some(true)), ev("b", Some(false))];
        assert!(FusionPolicy::Any.fuse(&both));
        assert!(!FusionPolicy::All.fuse(&both));
        let agree = [ev("a", Some(true)), ev("b", Some(true))];
        assert!(FusionPolicy::All.fuse(&agree));
        // Unjudged evidence neither alarms nor vetoes.
        let partial = [ev("a", Some(true)), ev("b", None)];
        assert!(FusionPolicy::Any.fuse(&partial));
        assert!(FusionPolicy::All.fuse(&partial));
        let none = [ev("a", None), ev("b", None)];
        assert!(!FusionPolicy::Any.fuse(&none));
        assert!(!FusionPolicy::All.fuse(&none));
        assert_eq!(FusionPolicy::parse("ALL").unwrap(), FusionPolicy::All);
        assert!(FusionPolicy::parse("most").is_err());
    }

    #[test]
    fn weighted_fusion_degenerates_to_any_and_all_at_the_boundaries() {
        let weighted = |threshold: f64| FusionPolicy::Weighted {
            weights: Vec::new(),
            threshold,
        };
        // Every judged/alarmed combination over three detectors: the
        // boundary thresholds must agree with any/all *exactly*.
        let states = [None, Some(false), Some(true)];
        for a in states {
            for b in states {
                for c in states {
                    let evidence = [ev("a", a), ev("b", b), ev("c", c)];
                    assert_eq!(
                        weighted(0.0).fuse(&evidence),
                        FusionPolicy::Any.fuse(&evidence),
                        "threshold 0 must be any: {evidence:?}"
                    );
                    assert_eq!(
                        weighted(1.0).fuse(&evidence),
                        FusionPolicy::All.fuse(&evidence),
                        "threshold 1 must be all: {evidence:?}"
                    );
                }
            }
        }
        // Majority voting sits between the two.
        let majority = weighted(0.5);
        assert!(majority.fuse(&[
            ev("a", Some(true)),
            ev("b", Some(true)),
            ev("c", Some(false))
        ]));
        assert!(!majority.fuse(&[
            ev("a", Some(true)),
            ev("b", Some(false)),
            ev("c", Some(false))
        ]));
        // Zero-weighting a detector removes its vote.
        let muted = FusionPolicy::Weighted {
            weights: vec![("a".into(), 1.0), ("b".into(), 0.0)],
            threshold: 0.5,
        };
        assert!(!muted.fuse(&[ev("a", Some(false)), ev("b", Some(true))]));
        assert!(muted.fuse(&[ev("a", Some(true)), ev("b", Some(false))]));
        // Detectors absent from a non-empty weight list weigh zero.
        assert!(muted.fuse(&[ev("a", Some(true)), ev("zzz", Some(false))]));
    }

    #[test]
    fn weighted_policy_parses_and_renders() {
        let p = FusionPolicy::parse("weighted").unwrap();
        assert_eq!(
            p,
            FusionPolicy::Weighted {
                weights: Vec::new(),
                threshold: 0.5
            }
        );
        assert_eq!(p.to_string(), "weighted@0.5");
        let p = FusionPolicy::parse("weighted@0.25").unwrap();
        assert_eq!(p.to_string(), "weighted@0.25");
        let p = FusionPolicy::parse("weighted:txn=1,power=0.5@0.75").unwrap();
        assert_eq!(
            p.to_string(),
            "weighted:txn=1@0.75".replace("txn=1", "txn=1,power=0.5")
        );
        // Round-trips through its own rendering.
        assert_eq!(FusionPolicy::parse(&p.to_string()).unwrap(), p);
        for bad in [
            "weighted@1.5",
            "weighted@x",
            "weighted:txn@0.5",
            "weighted:txn=-1",
            "weighted:",
            "weightedx",
        ] {
            assert!(FusionPolicy::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn suite_policy_strings() {
        let txn_only = DetectorSuite::transaction_default();
        assert_eq!(
            txn_only.policy(),
            "margin=0.05;floor=32;base=0.01;final=true;txn_floor=2.8",
            "single-detector suites render the bare policy for store compatibility"
        );
        let both = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        let policy = both.policy();
        assert!(policy.starts_with("txn{"), "{policy}");
        assert!(policy.contains("+power{"), "{policy}");
        assert!(policy.ends_with("|fuse=any"), "{policy}");
        assert_ne!(policy, txn_only.policy());
        let all = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::All,
        )
        .unwrap();
        assert_ne!(all.policy(), policy, "fusion is part of the policy");
        let quad = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
                Box::new(AcousticDetector::campaign()),
                Box::new(ThermalDetector::campaign()),
            ],
            FusionPolicy::Weighted {
                weights: Vec::new(),
                threshold: 0.5,
            },
        )
        .unwrap();
        let policy = quad.policy();
        assert!(policy.contains("+acoustic{"), "{policy}");
        assert!(policy.contains("+thermal{"), "{policy}");
        assert!(policy.ends_with("|fuse=weighted@0.5"), "{policy}");
    }

    #[test]
    fn suite_rejects_empty_duplicates_and_bad_weights() {
        assert!(DetectorSuite::new(Vec::new(), FusionPolicy::Any).is_err());
        let err = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(TransactionDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let weighted = |weights: Vec<(String, f64)>, threshold: f64| {
            DetectorSuite::new(
                vec![
                    Box::new(TransactionDetector::campaign()) as Box<dyn Detector>,
                    Box::new(PowerSideChannelDetector::campaign()),
                ],
                FusionPolicy::Weighted { weights, threshold },
            )
        };
        assert!(
            weighted(vec![("sonar".into(), 1.0)], 0.5).is_err(),
            "unknown name"
        );
        assert!(
            weighted(vec![("txn".into(), 0.0)], 0.5).is_err(),
            "all zero"
        );
        assert!(weighted(vec![("txn".into(), 1.0), ("txn".into(), 2.0)], 0.5).is_err());
        assert!(
            weighted(vec![("txn".into(), 1.0)], 2.0).is_err(),
            "threshold range"
        );
        assert!(weighted(vec![("txn".into(), 1.0), ("power".into(), 0.5)], 0.5).is_ok());
    }

    #[test]
    fn channel_plan_merges_and_shares_calibration() {
        let suite = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
                Box::new(AcousticDetector {
                    calibration_runs: 3,
                    ..AcousticDetector::campaign()
                }),
                Box::new(ThermalDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        let plan = suite.channel_plan();
        let channels: Vec<Channel> = plan.iter().map(|r| r.synth.channel()).collect();
        assert_eq!(
            channels,
            vec![
                Channel::Txn,
                Channel::Power,
                Channel::Acoustic,
                Channel::Thermal
            ]
        );
        assert!(suite.needs_plant_trace());
        assert_eq!(
            suite.calibration_runs(),
            5,
            "shared golden reruns: the max across detectors, not the sum"
        );
        // A thermal-only suite never asks for the plant trace.
        let thermal_only = DetectorSuite::new(
            vec![Box::new(ThermalDetector::campaign())],
            FusionPolicy::Any,
        )
        .unwrap();
        assert!(!thermal_only.needs_plant_trace());
        assert_eq!(thermal_only.calibration_runs(), 5);
        // The txn-only default plans no calibration at all.
        assert_eq!(DetectorSuite::transaction_default().calibration_runs(), 0);
        assert!(!DetectorSuite::transaction_default().needs_plant_trace());
    }

    #[test]
    fn suite_judges_and_fuses() {
        let suite = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        assert!(suite.needs_plant_trace());
        assert_eq!(suite.calibration_runs(), 5);
        assert_eq!(suite.names(), vec!["txn", "power"]);

        // Transaction tamper, no power evidence: fused alarm rides on
        // the one judged detector.
        let verdict = suite.judge(
            &capture_bundle(ramp(100, 1.0)),
            &capture_bundle(ramp(100, 0.5)),
        );
        assert!(verdict.alarmed);
        assert_eq!(verdict.txn().unwrap().alarmed, Some(true));
        assert_eq!(verdict.power().unwrap().alarmed, None);

        let unjudged = suite.unjudged();
        assert!(!unjudged.alarmed);
        assert_eq!(unjudged.evidence.len(), 2);
        assert!(unjudged.evidence.iter().all(|e| !e.judged()));
    }
}

//! Pluggable multi-modality judging: named detectors over named
//! evidence streams, fused into one verdict.
//!
//! The paper's monitor is valuable precisely because a print can be
//! judged from more than one evidence stream: the §V-C step-count
//! comparison over the captured transactions, and (as the related-work
//! baseline) a power side-channel over the driver rail. This module
//! makes the judging layer a first-class API instead of a hard-wired
//! comparator:
//!
//! * [`EvidenceBundle`] — the named evidence streams one print
//!   produced (transaction capture, power trace, calibration repeats);
//! * [`Detector`] — a named judge with a canonical policy string,
//!   turning a golden and an observed bundle into [`Evidence`]
//!   (sufficient statistics, not just a boolean);
//! * [`DetectorSuite`] — an ordered set of detectors plus a
//!   [`FusionPolicy`], producing a fused [`Verdict`];
//! * [`TransactionDetector`] / [`PowerSideChannelDetector`] — the two
//!   shipped modalities, the former reproducing the campaign judge
//!   byte for byte, the latter wrapping the repetition-calibrated
//!   power comparator from `offramps-sidechannel`.
//!
//! The two taps are *physically different*: the transaction monitor
//! counts the controller's stream upstream of the Trojan mux, while a
//! power sensor measures the driver rail downstream of it. A hardware
//! Trojan that silently masks pulses is invisible to the first and
//! visible to the second — which is exactly why fusing independent
//! evidence channels beats any single judge.
//!
//! A suite's [`DetectorSuite::policy`] string spells out every knob
//! that shapes a verdict; content-addressed stores key scenario records
//! by it, so changing the suite (or any detector default) re-addresses
//! every cached verdict at once.

use std::fmt;

use offramps_sidechannel::{
    CalibratedPowerDetector, PowerDetector, PowerDetectorConfig, PowerModel, PowerTrace,
};

use crate::capture::Capture;
use crate::detect::{self, DetectorConfig};

/// The named evidence streams captured from one print.
///
/// A golden bundle may additionally carry `power_calibration`:
/// repeated golden power traces (the published power-signature systems
/// profile dozens of repetitions); observed bundles leave it empty.
#[derive(Debug, Clone, Default)]
pub struct EvidenceBundle {
    /// The monitor's transaction capture (controller-side tap).
    pub capture: Option<Capture>,
    /// The synthesized power waveform (driver-rail tap).
    pub power: Option<PowerTrace>,
    /// Golden-side repetitions for calibration, primary run included.
    /// With fewer than two entries the power judge falls back to the
    /// single-profile comparator.
    pub power_calibration: Vec<PowerTrace>,
}

/// One detector's judgment as sufficient statistics: everything needed
/// to re-judge the scenario offline at any threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Evidence {
    /// The detector that produced this evidence (e.g. `"txn"`,
    /// `"power"`).
    pub detector: String,
    /// The detector's own alarm; `None` when the evidence stream it
    /// needs was absent (an unjudged scenario, not a clean one).
    pub alarmed: Option<bool>,
    /// Units with an out-of-band signal: mismatching transactions for
    /// the step-count judge, anomalous windows for the power judge.
    pub flagged: usize,
    /// Individual out-of-band values (a transaction with two bad axes
    /// counts twice); equals `flagged` for window-based judges.
    pub flagged_values: usize,
    /// Units the detector compared (the suspect-fraction denominator).
    pub compared: usize,
    /// The suspect-fraction threshold the verdict used; `None` when
    /// unjudged.
    pub threshold: Option<f64>,
    /// Largest deviation seen: percent difference for the step-count
    /// judge, watts for the power judge.
    pub peak: f64,
    /// The end-of-print 0 %-margin totals check (transaction judge
    /// only; `None` elsewhere).
    pub final_totals_match: Option<bool>,
}

impl Evidence {
    /// Evidence for a scenario this detector could not judge (its
    /// stream was never captured, or the bench run errored).
    pub fn unjudged(detector: impl Into<String>) -> Evidence {
        Evidence {
            detector: detector.into(),
            alarmed: None,
            flagged: 0,
            flagged_values: 0,
            compared: 0,
            threshold: None,
            peak: 0.0,
            final_totals_match: None,
        }
    }

    /// True when the detector actually judged its stream.
    pub fn judged(&self) -> bool {
        self.alarmed.is_some()
    }

    /// Fraction of compared units flagged (0 when nothing compared).
    pub fn flagged_fraction(&self) -> f64 {
        if self.compared == 0 {
            0.0
        } else {
            self.flagged as f64 / self.compared as f64
        }
    }
}

/// How a suite combines its detectors' alarms into one verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionPolicy {
    /// Alarm when *any* judged detector alarms (the default: every
    /// independent evidence channel gets veto power over "clean").
    #[default]
    Any,
    /// Alarm only when *every* judged detector alarms (at least one
    /// must have judged).
    All,
}

impl FusionPolicy {
    /// Fuses per-detector evidence into the suite alarm. Unjudged
    /// evidence neither alarms nor vetoes.
    pub fn fuse(self, evidence: &[Evidence]) -> bool {
        let judged: Vec<bool> = evidence.iter().filter_map(|e| e.alarmed).collect();
        match self {
            FusionPolicy::Any => judged.iter().any(|&a| a),
            FusionPolicy::All => !judged.is_empty() && judged.iter().all(|&a| a),
        }
    }

    /// Parses `"any"` / `"all"`.
    ///
    /// # Errors
    ///
    /// Returns the unknown name back.
    pub fn parse(name: &str) -> Result<FusionPolicy, String> {
        match name.to_ascii_lowercase().as_str() {
            "any" => Ok(FusionPolicy::Any),
            "all" => Ok(FusionPolicy::All),
            other => Err(format!("unknown fusion policy {other:?} (any|all)")),
        }
    }
}

impl fmt::Display for FusionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FusionPolicy::Any => "any",
            FusionPolicy::All => "all",
        })
    }
}

/// A suite's fused judgment of one print: the combined alarm plus every
/// detector's evidence, in suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The fused alarm.
    pub alarmed: bool,
    /// Per-detector evidence, in suite order.
    pub evidence: Vec<Evidence>,
}

impl Verdict {
    /// The evidence a named detector produced, if it is in the suite.
    pub fn evidence_for(&self, detector: &str) -> Option<&Evidence> {
        self.evidence.iter().find(|e| e.detector == detector)
    }

    /// Shorthand for the transaction judge's evidence.
    pub fn txn(&self) -> Option<&Evidence> {
        self.evidence_for(TransactionDetector::NAME)
    }

    /// Shorthand for the power judge's evidence.
    pub fn power(&self) -> Option<&Evidence> {
        self.evidence_for(PowerSideChannelDetector::NAME)
    }
}

/// A named judge over evidence bundles.
pub trait Detector: Send + Sync + fmt::Debug {
    /// Short stable name (`"txn"`, `"power"`); keys evidence and CLI
    /// selection.
    fn name(&self) -> &'static str;

    /// Canonical rendering of every knob that shapes this detector's
    /// verdicts — the content-address component for cached results.
    fn policy(&self) -> String;

    /// Whether this detector needs a power trace captured.
    fn needs_power(&self) -> bool {
        false
    }

    /// How many repeated golden prints this detector wants for
    /// calibration (0 = a single golden run suffices).
    fn golden_power_runs(&self) -> usize {
        0
    }

    /// The electrical model a harness should synthesize power traces
    /// with, when this detector consumes them.
    fn power_model(&self) -> Option<PowerModel> {
        None
    }

    /// Judges an observed print against the golden evidence.
    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence;
}

/// The §V-C step-count judge behind the [`Detector`] API: the paper's
/// windowed margin comparison with the campaign's short-print floor
/// ([`detect::floored_suspect_fraction`]) applied to the base suspect
/// fraction.
#[derive(Debug, Clone)]
pub struct TransactionDetector {
    /// Base tuning; the suspect fraction is floored per capture length
    /// at judge time.
    pub base: DetectorConfig,
}

impl TransactionDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "txn";

    /// The campaign default: the paper's tuning.
    pub fn campaign() -> TransactionDetector {
        TransactionDetector {
            base: DetectorConfig::default(),
        }
    }
}

impl Detector for TransactionDetector {
    fn name(&self) -> &'static str {
        TransactionDetector::NAME
    }

    /// Byte-compatible with the pre-suite campaign policy string, so a
    /// scenario store warmed by a transaction-only campaign stays warm
    /// across the API redesign.
    fn policy(&self) -> String {
        format!(
            "margin={};floor={};base={};final={};txn_floor={}",
            self.base.margin,
            self.base.denominator_floor,
            self.base.suspect_fraction,
            self.base.final_check,
            detect::SUSPECT_TRANSACTION_FLOOR,
        )
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let (Some(golden), Some(observed)) = (&golden.capture, &observed.capture) else {
            return Evidence::unjudged(self.name());
        };
        let n = golden.len().min(observed.len());
        let cfg = DetectorConfig {
            suspect_fraction: detect::floored_suspect_fraction(self.base.suspect_fraction, n),
            ..self.base
        };
        let report = detect::compare(golden, observed, &cfg);
        Evidence {
            detector: self.name().into(),
            alarmed: Some(report.trojan_suspected),
            flagged: report.mismatched_transactions(),
            flagged_values: report.mismatches.len(),
            compared: report.transactions_compared,
            threshold: Some(cfg.suspect_fraction),
            peak: report.largest_percent,
            final_totals_match: report.final_totals_match,
        }
    }
}

/// The power side-channel judge behind the [`Detector`] API: golden
/// power profiles (repetition-calibrated when the golden bundle carries
/// ≥ 2 calibration traces, single-profile otherwise) compared against
/// the observed driver-rail waveform.
#[derive(Debug, Clone)]
pub struct PowerSideChannelDetector {
    /// Comparator tuning (sigma threshold, smoothing, suspect
    /// fraction).
    pub config: PowerDetectorConfig,
    /// Electrical model the power traces are synthesized with.
    pub model: PowerModel,
    /// Golden repetitions to calibrate from.
    pub calibration_runs: usize,
}

impl PowerSideChannelDetector {
    /// The detector's stable name.
    pub const NAME: &'static str = "power";

    /// The campaign default: the repetition-calibrated configuration
    /// the baseline experiment validated (1 s smoothing windows tame
    /// move-boundary jitter; five golden repetitions).
    pub fn campaign() -> PowerSideChannelDetector {
        let model = PowerModel::default();
        PowerSideChannelDetector {
            config: PowerDetectorConfig {
                sigma_threshold: 5.0,
                noise_sigma_w: model.noise_sigma_w,
                smoothing: 100,
                suspect_fraction: 0.15,
            },
            model,
            calibration_runs: 5,
        }
    }
}

impl Detector for PowerSideChannelDetector {
    fn name(&self) -> &'static str {
        PowerSideChannelDetector::NAME
    }

    fn policy(&self) -> String {
        format!(
            "sigma={};noise={};smooth={};base={};calib={};kstep_w={};hold_w={};rate_hz={};heaters={}",
            self.config.sigma_threshold,
            self.config.noise_sigma_w,
            self.config.smoothing,
            self.config.suspect_fraction,
            self.calibration_runs,
            self.model.motor_w_per_kstep,
            self.model.motor_hold_w,
            self.model.sample_rate_hz,
            self.model.include_heaters,
        )
    }

    fn needs_power(&self) -> bool {
        true
    }

    fn golden_power_runs(&self) -> usize {
        self.calibration_runs.max(1)
    }

    fn power_model(&self) -> Option<PowerModel> {
        Some(self.model)
    }

    fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Evidence {
        let Some(observed_power) = &observed.power else {
            return Evidence::unjudged(self.name());
        };
        let report = if golden.power_calibration.len() >= 2 {
            CalibratedPowerDetector::calibrate(&golden.power_calibration, self.config)
                .compare(observed_power)
        } else if let Some(golden_power) = &golden.power {
            PowerDetector::new(golden_power.clone(), self.config).compare(observed_power)
        } else {
            return Evidence::unjudged(self.name());
        };
        Evidence {
            detector: self.name().into(),
            alarmed: Some(report.sabotage_suspected),
            flagged: report.anomalous_windows,
            flagged_values: report.anomalous_windows,
            compared: report.windows_compared,
            threshold: Some(self.config.suspect_fraction),
            peak: report.largest_deviation_w,
            final_totals_match: None,
        }
    }
}

/// An ordered, uniquely named set of detectors plus a fusion policy.
#[derive(Debug)]
pub struct DetectorSuite {
    detectors: Vec<Box<dyn Detector>>,
    fusion: FusionPolicy,
}

impl DetectorSuite {
    /// Builds a suite.
    ///
    /// # Errors
    ///
    /// Rejects an empty suite or duplicate detector names.
    pub fn new(
        detectors: Vec<Box<dyn Detector>>,
        fusion: FusionPolicy,
    ) -> Result<DetectorSuite, String> {
        if detectors.is_empty() {
            return Err("a detector suite needs at least one detector".into());
        }
        let mut seen = std::collections::HashSet::new();
        for d in &detectors {
            if !seen.insert(d.name()) {
                return Err(format!("duplicate detector {:?} in suite", d.name()));
            }
        }
        Ok(DetectorSuite { detectors, fusion })
    }

    /// The campaign default: the transaction judge alone, any-alarm
    /// fusion.
    pub fn transaction_default() -> DetectorSuite {
        DetectorSuite {
            detectors: vec![Box::new(TransactionDetector::campaign())],
            fusion: FusionPolicy::Any,
        }
    }

    /// Detector names in suite order.
    pub fn names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// The detectors, in suite order.
    pub fn detectors(&self) -> &[Box<dyn Detector>] {
        &self.detectors
    }

    /// The fusion policy.
    pub fn fusion(&self) -> FusionPolicy {
        self.fusion
    }

    /// Whether any detector needs a power trace captured.
    pub fn needs_power(&self) -> bool {
        self.detectors.iter().any(|d| d.needs_power())
    }

    /// The most golden power repetitions any detector wants (0 when
    /// none consume power).
    pub fn golden_power_runs(&self) -> usize {
        self.detectors
            .iter()
            .map(|d| d.golden_power_runs())
            .max()
            .unwrap_or(0)
    }

    /// The electrical model power traces should be synthesized with
    /// (the first power-consuming detector's).
    pub fn power_model(&self) -> Option<PowerModel> {
        self.detectors.iter().find_map(|d| d.power_model())
    }

    /// The canonical rendering of the whole judging policy. A
    /// single-detector suite renders that detector's bare policy string
    /// (so the transaction-only default stays byte-compatible with the
    /// pre-suite campaign policy); multi-detector suites render
    /// `name{policy}` joined by `+` with the fusion policy appended.
    pub fn policy(&self) -> String {
        if let [only] = self.detectors.as_slice() {
            return only.policy();
        }
        let parts: Vec<String> = self
            .detectors
            .iter()
            .map(|d| format!("{}{{{}}}", d.name(), d.policy()))
            .collect();
        format!("{}|fuse={}", parts.join("+"), self.fusion)
    }

    /// Judges an observed print against the golden evidence: every
    /// detector in order, then fusion.
    pub fn judge(&self, golden: &EvidenceBundle, observed: &EvidenceBundle) -> Verdict {
        let evidence: Vec<Evidence> = self
            .detectors
            .iter()
            .map(|d| d.judge(golden, observed))
            .collect();
        Verdict {
            alarmed: self.fusion.fuse(&evidence),
            evidence,
        }
    }

    /// The verdict for a print that produced no evidence at all (a
    /// bench error): every detector unjudged, no alarm.
    pub fn unjudged(&self) -> Verdict {
        Verdict {
            alarmed: false,
            evidence: self
                .detectors
                .iter()
                .map(|d| Evidence::unjudged(d.name()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::Transaction;
    use offramps_des::{SimDuration, Tick};
    use offramps_signals::{Level, LogicEvent, Pin, SignalTrace};

    fn ramp(n: usize, scale: f64) -> Capture {
        (0..n)
            .map(|i| Transaction {
                index: i as u64,
                counts: [
                    (1_000.0 + 10.0 * i as f64) as i32,
                    (2_000.0 * scale) as i32,
                    100,
                    (500.0 * scale * i as f64) as i32,
                ],
            })
            .collect()
    }

    fn capture_bundle(cap: Capture) -> EvidenceBundle {
        EvidenceBundle {
            capture: Some(cap),
            ..EvidenceBundle::default()
        }
    }

    fn step_trace(period_us: u64, seconds: u64) -> SignalTrace {
        let mut t = SignalTrace::new();
        let mut at = Tick::ZERO;
        while at < Tick::from_secs(seconds) {
            t.record(at, LogicEvent::new(Pin::XStep, Level::High));
            t.record(
                at + SimDuration::from_micros(2),
                LogicEvent::new(Pin::XStep, Level::Low),
            );
            at += SimDuration::from_micros(period_us);
        }
        t
    }

    #[test]
    fn transaction_detector_matches_campaign_judge() {
        let golden = ramp(100, 1.0);
        let observed = ramp(100, 0.5);
        let det = TransactionDetector::campaign();
        let ev = det.judge(
            &capture_bundle(golden.clone()),
            &capture_bundle(observed.clone()),
        );
        let n = golden.len().min(observed.len());
        let cfg = DetectorConfig {
            suspect_fraction: detect::floored_suspect_fraction(0.01, n),
            ..DetectorConfig::default()
        };
        let report = detect::compare(&golden, &observed, &cfg);
        assert_eq!(ev.alarmed, Some(report.trojan_suspected));
        assert_eq!(ev.flagged, report.mismatched_transactions());
        assert_eq!(ev.flagged_values, report.mismatches.len());
        assert_eq!(ev.compared, report.transactions_compared);
        assert_eq!(ev.threshold, Some(cfg.suspect_fraction));
        assert_eq!(ev.peak, report.largest_percent);
        assert_eq!(ev.final_totals_match, report.final_totals_match);
    }

    #[test]
    fn transaction_detector_unjudged_without_captures() {
        let det = TransactionDetector::campaign();
        let ev = det.judge(&EvidenceBundle::default(), &capture_bundle(ramp(10, 1.0)));
        assert!(!ev.judged());
        assert_eq!(ev.threshold, None);
    }

    #[test]
    fn power_detector_calibrated_judges_sustained_change() {
        let det = PowerSideChannelDetector::campaign();
        let model = det.model;
        let golden_runs: Vec<PowerTrace> = (0..5)
            .map(|s| model.synthesize(&step_trace(250, 5), s))
            .collect();
        let golden = EvidenceBundle {
            power: Some(golden_runs[0].clone()),
            power_calibration: golden_runs,
            ..EvidenceBundle::default()
        };
        let clean = EvidenceBundle {
            power: Some(model.synthesize(&step_trace(250, 5), 99)),
            ..EvidenceBundle::default()
        };
        let attacked = EvidenceBundle {
            power: Some(model.synthesize(&step_trace(500, 5), 99)),
            ..EvidenceBundle::default()
        };
        let clean_ev = det.judge(&golden, &clean);
        assert_eq!(clean_ev.alarmed, Some(false), "{clean_ev:?}");
        assert!(clean_ev.compared > 0);
        let attacked_ev = det.judge(&golden, &attacked);
        assert_eq!(attacked_ev.alarmed, Some(true), "{attacked_ev:?}");
        assert!(attacked_ev.peak > 1.0, "watts of sustained deviation");
        assert_eq!(attacked_ev.flagged, attacked_ev.flagged_values);
        // Single golden profile (no calibration repeats) still judges.
        let single = EvidenceBundle {
            power: Some(model.synthesize(&step_trace(250, 5), 1)),
            ..EvidenceBundle::default()
        };
        assert!(det.judge(&single, &attacked).judged());
        // No power at all: unjudged.
        assert!(!det.judge(&golden, &EvidenceBundle::default()).judged());
    }

    #[test]
    fn fusion_policies() {
        let ev = |name: &str, alarmed: Option<bool>| Evidence {
            alarmed,
            ..Evidence::unjudged(name)
        };
        let both = [ev("a", Some(true)), ev("b", Some(false))];
        assert!(FusionPolicy::Any.fuse(&both));
        assert!(!FusionPolicy::All.fuse(&both));
        let agree = [ev("a", Some(true)), ev("b", Some(true))];
        assert!(FusionPolicy::All.fuse(&agree));
        // Unjudged evidence neither alarms nor vetoes.
        let partial = [ev("a", Some(true)), ev("b", None)];
        assert!(FusionPolicy::Any.fuse(&partial));
        assert!(FusionPolicy::All.fuse(&partial));
        let none = [ev("a", None), ev("b", None)];
        assert!(!FusionPolicy::Any.fuse(&none));
        assert!(!FusionPolicy::All.fuse(&none));
        assert_eq!(FusionPolicy::parse("ALL").unwrap(), FusionPolicy::All);
        assert!(FusionPolicy::parse("most").is_err());
    }

    #[test]
    fn suite_policy_strings() {
        let txn_only = DetectorSuite::transaction_default();
        assert_eq!(
            txn_only.policy(),
            "margin=0.05;floor=32;base=0.01;final=true;txn_floor=2.8",
            "single-detector suites render the bare policy for store compatibility"
        );
        let both = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        let policy = both.policy();
        assert!(policy.starts_with("txn{"), "{policy}");
        assert!(policy.contains("+power{"), "{policy}");
        assert!(policy.ends_with("|fuse=any"), "{policy}");
        assert_ne!(policy, txn_only.policy());
        let all = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::All,
        )
        .unwrap();
        assert_ne!(all.policy(), policy, "fusion is part of the policy");
    }

    #[test]
    fn suite_rejects_empty_and_duplicates() {
        assert!(DetectorSuite::new(Vec::new(), FusionPolicy::Any).is_err());
        let err = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(TransactionDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn suite_judges_and_fuses() {
        let suite = DetectorSuite::new(
            vec![
                Box::new(TransactionDetector::campaign()),
                Box::new(PowerSideChannelDetector::campaign()),
            ],
            FusionPolicy::Any,
        )
        .unwrap();
        assert!(suite.needs_power());
        assert_eq!(suite.golden_power_runs(), 5);
        assert!(suite.power_model().is_some());
        assert_eq!(suite.names(), vec!["txn", "power"]);

        // Transaction tamper, no power evidence: fused alarm rides on
        // the one judged detector.
        let verdict = suite.judge(
            &capture_bundle(ramp(100, 1.0)),
            &capture_bundle(ramp(100, 0.5)),
        );
        assert!(verdict.alarmed);
        assert_eq!(verdict.txn().unwrap().alarmed, Some(true));
        assert_eq!(verdict.power().unwrap().alarmed, None);

        let unjudged = suite.unjudged();
        assert!(!unjudged.alarmed);
        assert_eq!(unjudged.evidence.len(), 2);
        assert!(unjudged.evidence.iter().all(|e| !e.judged()));
    }
}

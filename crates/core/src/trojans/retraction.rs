//! Trojan T3 — retraction/flow tampering during Y movement.
//!
//! "Retraction refers to the amount of filament that is pulled back
//! during certain movements. By affecting extruder steps during some
//! movements we can cause over or under extrusion in a way that could
//! appear to a user as if part settings were incorrect when sliced. This
//! Trojan is shown with over extrusion in Table I: T3."

use offramps_des::{SimDuration, Tick};
use offramps_signals::{Level, Pin, SignalEvent};

use crate::trojans::{Disposition, Trojan, TrojanCtx};

/// Direction of the T3 tamper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetractionMode {
    /// Duplicate extruder pulses during Y movement (over-extrusion —
    /// the variant photographed in Table I).
    Over,
    /// Drop extruder pulses during Y movement (under-extrusion).
    Under,
}

/// T3: modifies extruder steps while the Y axis is moving.
#[derive(Debug)]
pub struct RetractionTrojan {
    mode: RetractionMode,
    /// A Y step within this window counts as "Y is moving".
    activity_window: SimDuration,
    last_y_step: Option<Tick>,
    step_high: bool,
    masking_pulse: bool,
    drop_toggle: bool,
    /// Extra pulses injected (Over mode).
    pub injected_pulses: u64,
    /// Pulses dropped (Under mode).
    pub dropped_pulses: u64,
}

impl RetractionTrojan {
    /// Creates T3 in the given mode with a 20 ms Y-activity window.
    pub fn new(mode: RetractionMode) -> Self {
        RetractionTrojan {
            mode,
            activity_window: SimDuration::from_millis(20),
            last_y_step: None,
            step_high: false,
            masking_pulse: false,
            drop_toggle: false,
            injected_pulses: 0,
            dropped_pulses: 0,
        }
    }

    fn y_active(&self, now: Tick) -> bool {
        self.last_y_step
            .is_some_and(|t| now.saturating_since(t) <= self.activity_window)
    }
}

impl Trojan for RetractionTrojan {
    fn id(&self) -> &'static str {
        "T3"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Incorrect Slicing"
    }
    fn effect(&self) -> &'static str {
        "Increases or decreases filament retraction during Y steps"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        match logic.pin {
            Pin::YStep => {
                if logic.level == Level::High {
                    self.last_y_step = Some(ctx.now);
                }
                Disposition::Pass
            }
            Pin::EStep => {
                match (self.step_high, logic.level) {
                    (false, Level::High) => {
                        self.step_high = true;
                        if !self.y_active(ctx.now) {
                            self.masking_pulse = false;
                            return Disposition::Pass;
                        }
                        match self.mode {
                            RetractionMode::Over => {
                                // Duplicate: inject a twin pulse shortly
                                // after the original.
                                let at = ctx.now + SimDuration::from_micros(120);
                                ctx.inject(at, SignalEvent::logic(Pin::EStep, Level::High));
                                ctx.inject(
                                    at + SimDuration::from_micros(10),
                                    SignalEvent::logic(Pin::EStep, Level::Low),
                                );
                                self.injected_pulses += 1;
                                Disposition::Pass
                            }
                            RetractionMode::Under => {
                                self.drop_toggle = !self.drop_toggle;
                                if self.drop_toggle {
                                    self.masking_pulse = true;
                                    self.dropped_pulses += 1;
                                    Disposition::Drop
                                } else {
                                    Disposition::Pass
                                }
                            }
                        }
                    }
                    (true, Level::Low) => {
                        self.step_high = false;
                        if self.masking_pulse {
                            self.masking_pulse = false;
                            Disposition::Drop
                        } else {
                            Disposition::Pass
                        }
                    }
                    _ => Disposition::Pass,
                }
            }
            _ => Disposition::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;

    fn e_pulse(
        h: &mut TrojanHarness,
        t: &mut RetractionTrojan,
        at: Tick,
    ) -> (Disposition, Disposition) {
        let up = h.control(t, at, SignalEvent::logic(Pin::EStep, Level::High));
        let down = h.control(
            t,
            at + SimDuration::from_micros(2),
            SignalEvent::logic(Pin::EStep, Level::Low),
        );
        (up, down)
    }

    #[test]
    fn over_mode_duplicates_during_y_motion() {
        let mut h = TrojanHarness::new();
        let mut t = RetractionTrojan::new(RetractionMode::Over);
        // Y step marks activity.
        h.control(
            &mut t,
            Tick::from_millis(10),
            SignalEvent::logic(Pin::YStep, Level::High),
        );
        let (up, _) = e_pulse(&mut h, &mut t, Tick::from_millis(11));
        assert_eq!(up, Disposition::Pass);
        assert_eq!(h.injections.len(), 2, "one extra pulse injected");
        assert_eq!(t.injected_pulses, 1);
    }

    #[test]
    fn no_tamper_without_y_activity() {
        let mut h = TrojanHarness::new();
        let mut t = RetractionTrojan::new(RetractionMode::Over);
        let (up, down) = e_pulse(&mut h, &mut t, Tick::from_millis(100));
        assert_eq!((up, down), (Disposition::Pass, Disposition::Pass));
        assert!(h.injections.is_empty());
    }

    #[test]
    fn window_expires() {
        let mut h = TrojanHarness::new();
        let mut t = RetractionTrojan::new(RetractionMode::Over);
        h.control(
            &mut t,
            Tick::from_millis(10),
            SignalEvent::logic(Pin::YStep, Level::High),
        );
        // 50ms later: outside the 20ms window.
        let _ = e_pulse(&mut h, &mut t, Tick::from_millis(60));
        assert!(h.injections.is_empty());
    }

    #[test]
    fn under_mode_drops_half_during_y() {
        let mut h = TrojanHarness::new();
        let mut t = RetractionTrojan::new(RetractionMode::Under);
        let mut dropped = 0;
        for i in 0..100u64 {
            // Keep Y active continuously.
            h.control(
                &mut t,
                Tick::from_millis(i),
                SignalEvent::logic(Pin::YStep, Level::High),
            );
            h.control(
                &mut t,
                Tick::from_millis(i) + SimDuration::from_micros(2),
                SignalEvent::logic(Pin::YStep, Level::Low),
            );
            let (up, down) = e_pulse(
                &mut h,
                &mut t,
                Tick::from_millis(i) + SimDuration::from_micros(100),
            );
            if up == Disposition::Drop {
                assert_eq!(down, Disposition::Drop);
                dropped += 1;
            }
        }
        assert_eq!(dropped, 50);
        assert_eq!(t.dropped_pulses, 50);
    }
}

//! Trojan T8 — stepper driver denial-of-service via EN.
//!
//! "Each stepper motor driver has an input signal ∗_EN which determines
//! if the motor is engaged and able to be moved. By actuating this signal
//! throughout the print we can disable stepper motor movements
//! strategically to fail a print."

use offramps_des::{SimDuration, Tick};
use offramps_signals::{Axis, Level, SignalEvent};

use crate::trojans::{Disposition, Trojan, TrojanCtx};

/// T8: periodically force the selected `*_EN` lines high (disabled) for
/// a window, dropping the firmware's own EN writes while forced.
#[derive(Debug)]
pub struct StepperDosTrojan {
    axes: [bool; 4],
    period: SimDuration,
    off_duration: SimDuration,
    next_fire: Option<Tick>,
    forced_until: Option<Tick>,
    /// Number of disable windows fired.
    pub windows_fired: u64,
    /// Firmware EN writes dropped while forced.
    pub dropped_writes: u64,
}

impl StepperDosTrojan {
    /// Creates T8 against all four drivers: every 5 s, disable for 0.5 s.
    pub fn new() -> Self {
        Self::with_params(
            [true; 4],
            SimDuration::from_secs(5),
            SimDuration::from_millis(500),
        )
    }

    /// Fully parameterized constructor. `axes` is in [`Axis::ALL`] order.
    ///
    /// # Panics
    ///
    /// Panics if no axis is selected or `off_duration >= period`.
    pub fn with_params(axes: [bool; 4], period: SimDuration, off_duration: SimDuration) -> Self {
        assert!(axes.iter().any(|a| *a), "select at least one axis");
        assert!(
            off_duration < period,
            "off window must fit inside the period"
        );
        StepperDosTrojan {
            axes,
            period,
            off_duration,
            next_fire: None,
            forced_until: None,
            windows_fired: 0,
            dropped_writes: 0,
        }
    }

    fn is_forced(&self, now: Tick) -> bool {
        self.forced_until.is_some_and(|until| now < until)
    }
}

impl Default for StepperDosTrojan {
    fn default() -> Self {
        Self::new()
    }
}

impl Trojan for StepperDosTrojan {
    fn id(&self) -> &'static str {
        "T8"
    }
    fn kind(&self) -> &'static str {
        "DoS"
    }
    fn scenario(&self) -> &'static str {
        "Hardware Failure"
    }
    fn effect(&self) -> &'static str {
        "Arbitrarily deactivating stepper motors via EN signals"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        if ctx.homed && self.next_fire.is_none() {
            let at = ctx.now + self.period;
            self.next_fire = Some(at);
            ctx.wake_at(at);
        }
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        if logic.pin.is_enable() && self.is_forced(ctx.now) {
            let axis = logic.pin.axis().expect("enable pins map to axes");
            if self.axes[axis.index()] {
                self.dropped_writes += 1;
                return Disposition::Drop; // the line is ours until the window ends
            }
        }
        Disposition::Pass
    }

    fn on_wake(&mut self, ctx: &mut TrojanCtx<'_>) {
        let Some(due) = self.next_fire else {
            return;
        };
        if ctx.now < due {
            ctx.wake_at(due);
            return;
        }
        // Begin a disable window: force EN high now, re-enable at the end.
        let until = ctx.now + self.off_duration;
        for axis in Axis::ALL {
            if self.axes[axis.index()] {
                ctx.inject(ctx.now, SignalEvent::logic(axis.enable_pin(), Level::High));
                // Restore the energized state afterwards (the firmware
                // believes the drivers were enabled the whole time).
                ctx.inject(until, SignalEvent::logic(axis.enable_pin(), Level::Low));
            }
        }
        self.forced_until = Some(until);
        self.windows_fired += 1;
        let next = ctx.now + self.period;
        self.next_fire = Some(next);
        ctx.wake_at(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;
    use offramps_signals::Pin;

    #[test]
    fn windows_toggle_en_lines() {
        let mut h = TrojanHarness::new();
        let mut t = StepperDosTrojan::new();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        h.wake(&mut t, Tick::from_secs(5));
        assert_eq!(t.windows_fired, 1);
        // 4 axes x (disable + re-enable).
        assert_eq!(h.injections.len(), 8);
        let highs = h
            .injections
            .iter()
            .filter(|(_, e)| e.as_logic().unwrap().level == Level::High)
            .count();
        assert_eq!(highs, 4);
        // Re-enable lands at the end of the window.
        let reenable = h
            .injections
            .iter()
            .find(|(_, e)| {
                let l = e.as_logic().unwrap();
                l.pin == Pin::XEnable && l.level == Level::Low
            })
            .unwrap();
        assert_eq!(
            reenable.0,
            Tick::from_secs(5) + SimDuration::from_millis(500)
        );
    }

    #[test]
    fn firmware_writes_dropped_inside_window() {
        let mut h = TrojanHarness::new();
        let mut t = StepperDosTrojan::new();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        h.wake(&mut t, Tick::from_secs(5));
        let inside = Tick::from_secs(5) + SimDuration::from_millis(100);
        let d = h.control(&mut t, inside, SignalEvent::logic(Pin::XEnable, Level::Low));
        assert_eq!(d, Disposition::Drop);
        assert_eq!(t.dropped_writes, 1);
        // Outside the window the write passes.
        let after = Tick::from_secs(6);
        let d = h.control(&mut t, after, SignalEvent::logic(Pin::XEnable, Level::Low));
        assert_eq!(d, Disposition::Pass);
    }

    #[test]
    fn axis_subset() {
        let mut h = TrojanHarness::new();
        let mut t = StepperDosTrojan::with_params(
            [false, false, false, true], // extruder only
            SimDuration::from_secs(2),
            SimDuration::from_millis(200),
        );
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        h.wake(&mut t, Tick::from_secs(2));
        assert_eq!(h.injections.len(), 2);
        assert_eq!(h.injections[0].1.as_logic().unwrap().pin, Pin::EEnable);
    }

    #[test]
    fn step_pulses_unaffected() {
        let mut h = TrojanHarness::new();
        let mut t = StepperDosTrojan::new();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        h.wake(&mut t, Tick::from_secs(5));
        let inside = Tick::from_secs(5) + SimDuration::from_millis(1);
        // T8 never drops STEP (the disabled driver ignores them anyway).
        let d = h.control(&mut t, inside, SignalEvent::logic(Pin::XStep, Level::High));
        assert_eq!(d, Disposition::Pass);
    }
}

//! Pulse Generation Module.
//!
//! "Handles the generation of pulses for the stepper motor drivers, and
//! allows for the customization of both frequency and pulse width."

use offramps_des::{SimDuration, Tick};
use offramps_signals::{Level, Pin, SignalEvent};

use crate::trojans::TrojanCtx;

/// A finite train of STEP-compatible pulses on one pin.
///
/// # Example
///
/// ```
/// use offramps::trojans::PulseTrain;
/// use offramps_signals::Pin;
/// use offramps_des::SimDuration;
///
/// let train = PulseTrain::steps(Pin::XStep, 40);
/// assert_eq!(train.count, 40);
/// assert!(train.period > train.width);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseTrain {
    /// Pin to pulse.
    pub pin: Pin,
    /// Number of pulses.
    pub count: u32,
    /// Rising-edge to rising-edge period.
    pub period: SimDuration,
    /// High time of each pulse (must satisfy the driver's 1 µs minimum).
    pub width: SimDuration,
}

impl PulseTrain {
    /// A standard injection train: 2 kHz, 10 µs high — comfortably above
    /// the A4988 minimum pulse width and slow enough to slot "in between
    /// the original control pulses".
    pub fn steps(pin: Pin, count: u32) -> Self {
        PulseTrain {
            pin,
            count,
            period: SimDuration::from_micros(500),
            width: SimDuration::from_micros(10),
        }
    }

    /// Custom frequency/width train.
    ///
    /// # Panics
    ///
    /// Panics if `width >= period`.
    pub fn with_timing(pin: Pin, count: u32, period: SimDuration, width: SimDuration) -> Self {
        assert!(
            width < period,
            "pulse width must be shorter than the period"
        );
        PulseTrain {
            pin,
            count,
            period,
            width,
        }
    }

    /// Schedules the whole train through the Trojan context, starting at
    /// `start`.
    pub fn schedule(&self, start: Tick, ctx: &mut TrojanCtx<'_>) {
        for k in 0..self.count {
            let rise = start + self.period * u64::from(k);
            ctx.inject(rise, SignalEvent::logic(self.pin, Level::High));
            ctx.inject(rise + self.width, SignalEvent::logic(self.pin, Level::Low));
        }
    }

    /// Total duration from first rising edge to last falling edge.
    pub fn duration(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.period * u64::from(self.count - 1) + self.width
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;
    use crate::trojans::{Disposition, Trojan, TrojanCtx};

    /// A throwaway Trojan that fires one train on its first event.
    #[derive(Debug)]
    struct OneShot(Option<PulseTrain>);
    impl Trojan for OneShot {
        fn id(&self) -> &'static str {
            "test"
        }
        fn kind(&self) -> &'static str {
            "PM"
        }
        fn scenario(&self) -> &'static str {
            "test"
        }
        fn effect(&self) -> &'static str {
            "test"
        }
        fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, _ev: &SignalEvent) -> Disposition {
            if let Some(train) = self.0.take() {
                train.schedule(ctx.now, ctx);
            }
            Disposition::Pass
        }
    }

    #[test]
    fn schedules_count_pulses_with_exact_timing() {
        let mut h = TrojanHarness::new();
        let mut t = OneShot(Some(PulseTrain::steps(Pin::YStep, 3)));
        h.control(
            &mut t,
            Tick::from_millis(1),
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        // 3 pulses = 6 events.
        assert_eq!(h.injections.len(), 6);
        let (t0, ev0) = h.injections[0];
        assert_eq!(t0, Tick::from_millis(1));
        assert_eq!(ev0, SignalEvent::logic(Pin::YStep, Level::High));
        let (t1, ev1) = h.injections[1];
        assert_eq!(t1, Tick::from_millis(1) + SimDuration::from_micros(10));
        assert_eq!(ev1, SignalEvent::logic(Pin::YStep, Level::Low));
        let (t2, _) = h.injections[2];
        assert_eq!(t2, Tick::from_millis(1) + SimDuration::from_micros(500));
    }

    #[test]
    fn duration_math() {
        let t = PulseTrain::steps(Pin::XStep, 10);
        assert_eq!(t.duration(), SimDuration::from_micros(9 * 500 + 10));
        assert_eq!(
            PulseTrain::steps(Pin::XStep, 0).duration(),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "shorter than the period")]
    fn rejects_width_ge_period() {
        let _ = PulseTrain::with_timing(
            Pin::XStep,
            1,
            SimDuration::from_micros(10),
            SimDuration::from_micros(10),
        );
    }
}

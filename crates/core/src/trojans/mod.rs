//! The Trojan-insertion framework (§IV) and Table I's nine Trojans.
//!
//! "A framework for the insertion of Trojans was created … Several
//! sub-modules were created to control the insertion of Trojans":
//!
//! * **Pulse Generation Module** → [`PulseTrain`] (frequency, pulse
//!   width, count),
//! * **Edge Detection Module** → [`offramps_signals::EdgeDetector`]
//!   (used by every Trojan through the interceptor),
//! * **Homing Detection Module** → [`crate::monitor::HomingDetector`]
//!   ("can determine when to activate Trojans"),
//! * **Trojan Control Module** → the [`Trojan`] trait plus the
//!   interceptor's mux: each control event flows through the armed
//!   Trojans, which may pass, drop, replace, or inject signals.

mod axis_shift;
mod fan;
mod feedback;
mod flow;
mod heater;
mod pulse_gen;
mod retraction;
mod stepper_dos;
mod zshift;
mod zwobble;

pub use axis_shift::AxisShiftTrojan;
pub use fan::FanUnderspeedTrojan;
pub use feedback::{EndstopSpoofTrojan, ThermistorSpoofTrojan};
pub use flow::FlowReductionTrojan;
pub use heater::{HeaterDosTrojan, ThermalRunawayTrojan};
pub use pulse_gen::PulseTrain;
pub use retraction::{RetractionMode, RetractionTrojan};
pub use stepper_dos::StepperDosTrojan;
pub use zshift::ZShiftTrojan;
pub use zwobble::ZWobbleTrojan;

use offramps_des::{DetRng, Tick};
use offramps_signals::SignalEvent;

/// What a Trojan decides to do with one through-going control event.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// Forward unchanged.
    Pass,
    /// Suppress entirely.
    Drop,
    /// Forward a different event instead.
    Replace(SignalEvent),
}

/// Context handed to a Trojan on every invocation: the clock, homing
/// state, a deterministic RNG stream, and channels for injecting events
/// and requesting timer wake-ups.
#[derive(Debug)]
pub struct TrojanCtx<'a> {
    /// Current simulation time.
    pub now: Tick,
    /// Whether the homing detector has seen a complete G28 cycle.
    pub homed: bool,
    /// Deterministic RNG stream dedicated to Trojan randomness.
    pub rng: &'a mut DetRng,
    pub(crate) injections: &'a mut Vec<(Tick, SignalEvent)>,
    pub(crate) feedback_injections: &'a mut Vec<(Tick, SignalEvent)>,
    pub(crate) wake: &'a mut Option<Tick>,
}

impl TrojanCtx<'_> {
    /// Schedules an extra control-direction event (toward the plant) at
    /// `at` (clamped to now).
    pub fn inject(&mut self, at: Tick, event: SignalEvent) {
        self.injections.push((at.max(self.now), event));
    }

    /// Schedules an extra feedback-direction event (toward the
    /// firmware) at `at` — endstop/thermistor spoofing.
    pub fn inject_feedback(&mut self, at: Tick, event: SignalEvent) {
        self.feedback_injections.push((at.max(self.now), event));
    }

    /// Requests a wake-up no later than `at`.
    pub fn wake_at(&mut self, at: Tick) {
        *self.wake = Some(self.wake.map_or(at, |w| w.min(at)));
    }
}

/// A hardware Trojan living in the interceptor's modification path.
///
/// Implementations receive every control-direction event and may pass,
/// drop or replace it, inject additional events at arbitrary times, and
/// request timer wake-ups ([`Trojan::on_wake`]) for time-triggered
/// behaviour.
pub trait Trojan: std::fmt::Debug {
    /// Table I identifier, e.g. `"T2"`.
    fn id(&self) -> &'static str;
    /// Table I "Type": `PM` (part modification), `DoS`, or `D`
    /// (destructive).
    fn kind(&self) -> &'static str;
    /// Table I "Scenario" the Trojan mimics.
    fn scenario(&self) -> &'static str;
    /// Table I "Effect" description.
    fn effect(&self) -> &'static str;
    /// Filter one control event.
    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition;
    /// Filter one feedback event (endstops, thermistor ADC). The default
    /// passes everything: Table I's Trojans only tamper with the control
    /// direction; the feedback-spoofing Trojans override this.
    fn on_feedback(&mut self, _ctx: &mut TrojanCtx<'_>, _event: &SignalEvent) -> Disposition {
        Disposition::Pass
    }
    /// Timer callback; fired at (or after) any requested wake time.
    /// Spurious calls are possible — implementations check their own
    /// schedule.
    fn on_wake(&mut self, _ctx: &mut TrojanCtx<'_>) {}
}

/// The canonical Trojan roster: every id accepted by [`by_name`], i.e.
/// Table I's T1–T9 plus the feedback-path extensions TX1/TX2.
pub const TROJAN_NAMES: [&str; 11] = [
    "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "tx1", "tx2",
];

/// Instantiates a Trojan from its roster id (case-insensitive), with
/// each implementation's default parameters. Shared by the CLI's
/// `--trojan` flag and the campaign runner's scenario matrix.
///
/// # Errors
///
/// Returns the unknown name back when it is not in [`TROJAN_NAMES`].
///
/// # Example
///
/// ```
/// let trojan = offramps::trojans::by_name("t2").unwrap();
/// assert_eq!(trojan.id(), "T2");
/// assert!(offramps::trojans::by_name("t99").is_err());
/// ```
pub fn by_name(name: &str) -> Result<Box<dyn Trojan>, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "t1" => Box::new(AxisShiftTrojan::new()),
        "t2" => Box::new(FlowReductionTrojan::half()),
        "t3" => Box::new(RetractionTrojan::new(RetractionMode::Over)),
        "t4" => Box::new(ZWobbleTrojan::new()),
        "t5" => Box::new(ZShiftTrojan::delamination()),
        "t6" => Box::new(HeaterDosTrojan::new()),
        "t7" => Box::new(ThermalRunawayTrojan::hotend()),
        "t8" => Box::new(StepperDosTrojan::new()),
        "t9" => Box::new(FanUnderspeedTrojan::quarter()),
        "tx1" => Box::new(EndstopSpoofTrojan::new()),
        "tx2" => Box::new(ThermistorSpoofTrojan::reads_cold_by(30.0)),
        other => return Err(format!("unknown trojan {other:?}")),
    })
}

/// Instantiates a Trojan from a *parameterized* spec string — the
/// grammar behind campaign attack-parameter sweeps. A bare roster id
/// falls back to [`by_name`]'s defaults; `id:param` selects an
/// intensity or trigger point:
///
/// | spec             | Trojan                                            |
/// |------------------|---------------------------------------------------|
/// | `t1:<secs>`      | axis shift every `<secs>` seconds                 |
/// | `t2:<keep>`      | flow reduction keeping `<keep>` ∈ (0, 1] of pulses|
/// | `t4:<min>-<max>` | Z wobble of `<min>`–`<max>` µsteps                |
/// | `t5:<steps>@<layer>` | Z shift of `<steps>` µsteps after `<layer>`   |
/// | `t9:<scale>`     | fan underspeed at `<scale>` ∈ (0, 1] duty         |
/// | `tx1:<steps>`    | endstop spoof after `<steps>` X µsteps            |
/// | `tx2:<celsius>`  | hotend thermistor reads cold by `<celsius>` °C    |
/// | `tx2:bed@<celsius>` | bed thermistor reads cold by `<celsius>` °C — the bed quietly regulates hot without touching motion |
///
/// Every spec is validated here (never via constructor panics), so a
/// campaign can reject a bad grid up front.
///
/// # Errors
///
/// Returns a description of the malformed spec.
///
/// # Example
///
/// ```
/// assert_eq!(offramps::trojans::by_spec("t2:0.25").unwrap().id(), "T2");
/// assert_eq!(offramps::trojans::by_spec("t5:200@4").unwrap().id(), "T5");
/// assert!(offramps::trojans::by_spec("t2:1.5").is_err());
/// assert!(offramps::trojans::by_spec("t3:1").is_err()); // t3 takes no parameter
/// ```
pub fn by_spec(spec: &str) -> Result<Box<dyn Trojan>, String> {
    let spec = spec.to_ascii_lowercase();
    let Some((id, param)) = spec.split_once(':') else {
        return by_name(&spec);
    };
    let ratio = |what: &str| -> Result<f64, String> {
        let v: f64 = param
            .parse()
            .map_err(|_| format!("bad {what} in {spec:?}"))?;
        if v > 0.0 && v <= 1.0 {
            Ok(v)
        } else {
            Err(format!("{what} must be in (0, 1] in {spec:?}"))
        }
    };
    Ok(match id {
        "t1" => {
            let secs: f64 = param
                .parse()
                .map_err(|_| format!("bad interval in {spec:?}"))?;
            if !(secs > 0.0 && secs.is_finite()) {
                return Err(format!("interval must be positive in {spec:?}"));
            }
            Box::new(AxisShiftTrojan::with_params(
                offramps_des::SimDuration::from_secs_f64(secs),
                20,
                80,
            ))
        }
        "t2" => Box::new(FlowReductionTrojan::new(ratio("keep ratio")?)),
        "t4" => {
            let (lo, hi) = param
                .split_once('-')
                .ok_or_else(|| format!("t4 wants <min>-<max> µsteps, got {spec:?}"))?;
            let lo: u32 = lo.parse().map_err(|_| format!("bad min in {spec:?}"))?;
            let hi: u32 = hi.parse().map_err(|_| format!("bad max in {spec:?}"))?;
            if lo > hi || hi == 0 {
                return Err(format!("empty wobble range in {spec:?}"));
            }
            Box::new(ZWobbleTrojan::with_params(120, lo, hi, 1, 4))
        }
        "t5" => {
            let (steps, layer) = param
                .split_once('@')
                .ok_or_else(|| format!("t5 wants <steps>@<layer>, got {spec:?}"))?;
            let steps: u32 = steps
                .parse()
                .map_err(|_| format!("bad steps in {spec:?}"))?;
            let layer: u64 = layer
                .parse()
                .map_err(|_| format!("bad layer in {spec:?}"))?;
            if steps == 0 {
                return Err(format!("shift must be positive in {spec:?}"));
            }
            Box::new(ZShiftTrojan::with_params(120, steps, layer, None))
        }
        "t9" => Box::new(FanUnderspeedTrojan::new(ratio("duty scale")?)),
        "tx1" => {
            let steps: u32 = param
                .parse()
                .map_err(|_| format!("bad step count in {spec:?}"))?;
            Box::new(EndstopSpoofTrojan::after_steps(steps))
        }
        "tx2" => {
            let (bed, offset) = match param.strip_prefix("bed@") {
                Some(rest) => (true, rest),
                None => (false, param),
            };
            let offset: f64 = offset
                .parse()
                .map_err(|_| format!("bad offset in {spec:?}"))?;
            if !(offset > 0.0 && offset.is_finite()) {
                return Err(format!("offset must be positive in {spec:?}"));
            }
            let span = if bed {
                ThermistorSpoofTrojan::REFERENCE_BED_TEMP_C - 25.0
            } else {
                ThermistorSpoofTrojan::REFERENCE_TEMP_C - 25.0
            };
            if offset >= span {
                return Err(format!("offset must be under {span} in {spec:?}"));
            }
            if bed {
                Box::new(ThermistorSpoofTrojan::bed_reads_cold_by(offset))
            } else {
                Box::new(ThermistorSpoofTrojan::reads_cold_by(offset))
            }
        }
        other if TROJAN_NAMES.contains(&other) => {
            return Err(format!("trojan {other:?} takes no parameter (in {spec:?})"))
        }
        other => return Err(format!("unknown trojan {other:?} (in {spec:?})")),
    })
}

#[cfg(test)]
mod spec_tests {
    use super::*;

    #[test]
    fn bare_names_still_resolve() {
        for name in TROJAN_NAMES {
            assert!(by_spec(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn parameterized_specs_resolve() {
        for spec in [
            "t1:2.5",
            "t2:0.25",
            "t2:1",
            "t4:10-40",
            "t4:30-80",
            "t5:100@1",
            "t5:200@5",
            "t9:0.5",
            "tx1:5000",
            "tx2:15",
            "tx2:bed@8",
        ] {
            let t = by_spec(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let id = spec.split(':').next().unwrap().to_ascii_uppercase();
            assert_eq!(t.id(), id, "{spec}");
        }
    }

    #[test]
    fn bad_specs_error_without_panicking() {
        for spec in [
            "t2:0",
            "t2:1.5",
            "t2:x",
            "t4:40-10",
            "t4:5",
            "t5:0@2",
            "t5:100",
            "t9:-1",
            "t1:0",
            "tx2:nan",
            "tx2:200",
            "tx2:bed@40",
            "tx2:bed@x",
            "t3:1",
            "t6:2",
            "t99:1",
        ] {
            assert!(by_spec(spec).is_err(), "{spec} should be rejected");
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use offramps_des::DetRng;

    /// Minimal harness for exercising a Trojan in isolation.
    pub(crate) struct TrojanHarness {
        pub rng: DetRng,
        pub injections: Vec<(Tick, SignalEvent)>,
        pub feedback_injections: Vec<(Tick, SignalEvent)>,
        pub wake: Option<Tick>,
        pub homed: bool,
    }

    impl TrojanHarness {
        pub(crate) fn new() -> Self {
            TrojanHarness {
                rng: DetRng::from_seed(7),
                injections: Vec::new(),
                feedback_injections: Vec::new(),
                wake: None,
                homed: true,
            }
        }

        pub(crate) fn control(
            &mut self,
            t: &mut dyn Trojan,
            now: Tick,
            ev: SignalEvent,
        ) -> Disposition {
            let mut ctx = TrojanCtx {
                now,
                homed: self.homed,
                rng: &mut self.rng,
                injections: &mut self.injections,
                feedback_injections: &mut self.feedback_injections,
                wake: &mut self.wake,
            };
            t.on_control(&mut ctx, &ev)
        }

        pub(crate) fn feedback(
            &mut self,
            t: &mut dyn Trojan,
            now: Tick,
            ev: SignalEvent,
        ) -> Disposition {
            let mut ctx = TrojanCtx {
                now,
                homed: self.homed,
                rng: &mut self.rng,
                injections: &mut self.injections,
                feedback_injections: &mut self.feedback_injections,
                wake: &mut self.wake,
            };
            t.on_feedback(&mut ctx, &ev)
        }

        pub(crate) fn wake(&mut self, t: &mut dyn Trojan, now: Tick) {
            let mut ctx = TrojanCtx {
                now,
                homed: self.homed,
                rng: &mut self.rng,
                injections: &mut self.injections,
                feedback_injections: &mut self.feedback_injections,
                wake: &mut self.wake,
            };
            t.on_wake(&mut ctx);
        }
    }
}

//! Trojan T4 — Z-wobble emulation.
//!
//! "Z-wobble is common build issue with 3D printers, where the frame
//! holding the Z-axis is not rigid; thus, the print head can shift during
//! printing. Trojan T4 emulates this error by adding steps on one axis
//! during printing causing layer shifts" — triggered on "random Z layer
//! increments".

use offramps_signals::{Edge, EdgeDetector, Level, Pin, SignalBus, SignalEvent};

use crate::trojans::{Disposition, PulseTrain, Trojan, TrojanCtx};

/// T4: on random layer changes, nudge X and/or Y by a few steps.
#[derive(Debug)]
pub struct ZWobbleTrojan {
    /// Microsteps of Z per layer (layer height × Z steps/mm).
    layer_steps: u64,
    /// Shift magnitude range, microsteps.
    min_shift: u32,
    max_shift: u32,
    /// Fire on every n-th layer where n is drawn from this range.
    min_layer_gap: u64,
    max_layer_gap: u64,
    edges: EdgeDetector,
    z_dir_positive: bool,
    z_steps_up: u64,
    layers_seen: u64,
    next_trigger_layer: Option<u64>,
    /// Number of injected shift events (diagnostics).
    pub shifts_fired: u64,
}

impl ZWobbleTrojan {
    /// Creates T4 for 0.3 mm layers at 400 steps/mm Z (120 µsteps per
    /// layer), shifting 10–40 µsteps every 1–4 layers.
    pub fn new() -> Self {
        Self::with_params(120, 10, 40, 1, 4)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges or zero `layer_steps`.
    pub fn with_params(
        layer_steps: u64,
        min_shift: u32,
        max_shift: u32,
        min_layer_gap: u64,
        max_layer_gap: u64,
    ) -> Self {
        assert!(layer_steps > 0, "layer_steps must be positive");
        assert!(
            min_shift <= max_shift && max_shift > 0,
            "invalid shift range"
        );
        assert!(
            min_layer_gap <= max_layer_gap && max_layer_gap > 0,
            "invalid layer gap range"
        );
        ZWobbleTrojan {
            layer_steps,
            min_shift,
            max_shift,
            min_layer_gap,
            max_layer_gap,
            edges: EdgeDetector::with_bus(&SignalBus::new()),
            z_dir_positive: false,
            z_steps_up: 0,
            layers_seen: 0,
            next_trigger_layer: None,
            shifts_fired: 0,
        }
    }

    fn draw_gap(&self, ctx: &mut TrojanCtx<'_>) -> u64 {
        if self.min_layer_gap == self.max_layer_gap {
            self.min_layer_gap
        } else {
            ctx.rng
                .uniform_u64(self.min_layer_gap, self.max_layer_gap + 1)
        }
    }
}

impl Default for ZWobbleTrojan {
    fn default() -> Self {
        Self::new()
    }
}

impl Trojan for ZWobbleTrojan {
    fn id(&self) -> &'static str {
        "T4"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Z-Wobble"
    }
    fn effect(&self) -> &'static str {
        "Small Shift along X and Y axis on random Z layer increments"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        match logic.pin {
            Pin::ZDir => {
                self.edges.observe(logic);
                self.z_dir_positive = logic.level == Level::High;
            }
            Pin::ZStep
                if self.edges.observe(logic) == Some(Edge::Rising)
                    && ctx.homed
                    && self.z_dir_positive =>
            {
                self.z_steps_up += 1;
                if self.z_steps_up.is_multiple_of(self.layer_steps) {
                    self.layers_seen += 1;
                    let trigger = *self.next_trigger_layer.get_or_insert({
                        // Initialized lazily so the RNG draw order
                        // is stable.
                        self.layers_seen
                    });
                    if self.layers_seen >= trigger {
                        let steps = if self.min_shift == self.max_shift {
                            self.min_shift
                        } else {
                            ctx.rng.uniform_u64(
                                u64::from(self.min_shift),
                                u64::from(self.max_shift) + 1,
                            ) as u32
                        };
                        PulseTrain::steps(Pin::XStep, steps).schedule(ctx.now, ctx);
                        PulseTrain::steps(Pin::YStep, steps).schedule(ctx.now, ctx);
                        self.shifts_fired += 1;
                        let gap = self.draw_gap(ctx);
                        self.next_trigger_layer = Some(self.layers_seen + gap);
                    }
                }
            }
            _ => {}
        }
        Disposition::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;
    use offramps_des::Tick;

    fn z_layer(h: &mut TrojanHarness, t: &mut ZWobbleTrojan, steps: u64, base_us: u64) {
        h.control(
            t,
            Tick::from_micros(base_us),
            SignalEvent::logic(Pin::ZDir, Level::High),
        );
        for i in 0..steps {
            let at = Tick::from_micros(base_us + 10 * i);
            h.control(t, at, SignalEvent::logic(Pin::ZStep, Level::High));
            h.control(t, at, SignalEvent::logic(Pin::ZStep, Level::Low));
        }
    }

    #[test]
    fn fires_on_layer_boundaries() {
        let mut h = TrojanHarness::new();
        let mut t = ZWobbleTrojan::with_params(100, 25, 25, 1, 1);
        for layer in 0..5 {
            z_layer(&mut h, &mut t, 100, layer * 10_000);
        }
        assert_eq!(t.shifts_fired, 5, "every layer with gap 1");
        // Each shift = 25 pulses on X + 25 on Y = 100 edges.
        assert_eq!(h.injections.len(), 5 * 100);
    }

    #[test]
    fn respects_layer_gap() {
        let mut h = TrojanHarness::new();
        let mut t = ZWobbleTrojan::with_params(100, 10, 10, 3, 3);
        for layer in 0..9 {
            z_layer(&mut h, &mut t, 100, layer * 10_000);
        }
        assert_eq!(t.shifts_fired, 3, "layers 1, 4, 7");
    }

    #[test]
    fn ignores_downward_z() {
        let mut h = TrojanHarness::new();
        let mut t = ZWobbleTrojan::with_params(10, 10, 10, 1, 1);
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::ZDir, Level::Low),
        );
        for i in 0..100 {
            let at = Tick::from_micros(10 * i);
            h.control(&mut t, at, SignalEvent::logic(Pin::ZStep, Level::High));
            h.control(&mut t, at, SignalEvent::logic(Pin::ZStep, Level::Low));
        }
        assert_eq!(t.shifts_fired, 0);
    }

    #[test]
    fn inactive_before_homing() {
        let mut h = TrojanHarness::new();
        h.homed = false;
        let mut t = ZWobbleTrojan::with_params(10, 10, 10, 1, 1);
        z_layer(&mut h, &mut t, 50, 0);
        assert_eq!(t.shifts_fired, 0);
    }
}

//! Trojans T6 and T7 — heater denial-of-service and forced thermal
//! runaway.
//!
//! T6: "Denial of service via disabling D8/D10 heating element power …
//! observed to successfully turn off the PID controlled MOSFETs …
//! causing the Marlin firmware to enter an error state and end the print
//! prematurely."
//!
//! T7: "forces the heated elements to continue heating regardless of the
//! firmware temperature control … able to ignore the firmware's thermal
//! runaway panic and continue heating the elements … the MOSFETs are
//! fully turned on at a 100% duty cycle."

use offramps_signals::{Level, Pin, SignalEvent};

use crate::trojans::{Disposition, Trojan, TrojanCtx};

/// Which heater gates a thermal Trojan owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaterTargets {
    /// Tamper with the hotend gate (D10).
    pub hotend: bool,
    /// Tamper with the bed gate (D8).
    pub bed: bool,
}

impl HeaterTargets {
    /// Both heaters (the paper's configuration).
    pub const BOTH: HeaterTargets = HeaterTargets {
        hotend: true,
        bed: true,
    };

    fn owns(&self, pin: Pin) -> bool {
        (pin == Pin::HotendHeat && self.hotend) || (pin == Pin::BedHeat && self.bed)
    }
}

/// T6: force the heater MOSFET gates off.
#[derive(Debug)]
pub struct HeaterDosTrojan {
    targets: HeaterTargets,
    /// Gate-on attempts suppressed.
    pub suppressed: u64,
}

impl HeaterDosTrojan {
    /// Creates T6 against both heaters.
    pub fn new() -> Self {
        Self::targeting(HeaterTargets::BOTH)
    }

    /// Creates T6 against a subset of heaters.
    pub fn targeting(targets: HeaterTargets) -> Self {
        HeaterDosTrojan {
            targets,
            suppressed: 0,
        }
    }
}

impl Default for HeaterDosTrojan {
    fn default() -> Self {
        Self::new()
    }
}

impl Trojan for HeaterDosTrojan {
    fn id(&self) -> &'static str {
        "T6"
    }
    fn kind(&self) -> &'static str {
        "DoS"
    }
    fn scenario(&self) -> &'static str {
        "Hardware Failure"
    }
    fn effect(&self) -> &'static str {
        "Denial of service via disabling D8/D10 heating element power"
    }

    fn on_control(&mut self, _ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        if self.targets.owns(logic.pin) && logic.level == Level::High {
            self.suppressed += 1;
            return Disposition::Replace(SignalEvent::logic(logic.pin, Level::Low));
        }
        Disposition::Pass
    }
}

/// T7: force the heater MOSFET gates permanently on.
#[derive(Debug)]
pub struct ThermalRunawayTrojan {
    targets: HeaterTargets,
    armed: bool,
    /// Gate-off attempts suppressed (the firmware's panic, ignored).
    pub suppressed_shutoffs: u64,
}

impl ThermalRunawayTrojan {
    /// Creates T7 against the hotend only (the paper's demonstration
    /// heated the hotend past spec within seconds).
    pub fn hotend() -> Self {
        Self::targeting(HeaterTargets {
            hotend: true,
            bed: false,
        })
    }

    /// Creates T7 against a subset of heaters.
    pub fn targeting(targets: HeaterTargets) -> Self {
        ThermalRunawayTrojan {
            targets,
            armed: false,
            suppressed_shutoffs: 0,
        }
    }
}

impl Trojan for ThermalRunawayTrojan {
    fn id(&self) -> &'static str {
        "T7"
    }
    fn kind(&self) -> &'static str {
        "D"
    }
    fn scenario(&self) -> &'static str {
        "Hardware Failure"
    }
    fn effect(&self) -> &'static str {
        "Forcing thermal runaway and permanently enabling heating elements"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        if !self.armed {
            // On the first observed control activity, seize the gates.
            self.armed = true;
            if self.targets.hotend {
                ctx.inject(ctx.now, SignalEvent::logic(Pin::HotendHeat, Level::High));
            }
            if self.targets.bed {
                ctx.inject(ctx.now, SignalEvent::logic(Pin::BedHeat, Level::High));
            }
        }
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        if self.targets.owns(logic.pin) {
            if logic.level == Level::Low {
                self.suppressed_shutoffs += 1;
            }
            // Swallow every firmware write: the gate is ours and high.
            return Disposition::Replace(SignalEvent::logic(logic.pin, Level::High));
        }
        Disposition::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;
    use offramps_des::Tick;

    #[test]
    fn t6_forces_gates_low() {
        let mut h = TrojanHarness::new();
        let mut t = HeaterDosTrojan::new();
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::HotendHeat, Level::High),
        );
        assert_eq!(
            d,
            Disposition::Replace(SignalEvent::logic(Pin::HotendHeat, Level::Low))
        );
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::BedHeat, Level::High),
        );
        assert!(matches!(d, Disposition::Replace(_)));
        assert_eq!(t.suppressed, 2);
        // Lows pass (already the forced state).
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::HotendHeat, Level::Low),
        );
        assert_eq!(d, Disposition::Pass);
    }

    #[test]
    fn t6_targeting_subset() {
        let mut h = TrojanHarness::new();
        let mut t = HeaterDosTrojan::targeting(HeaterTargets {
            hotend: true,
            bed: false,
        });
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::BedHeat, Level::High),
        );
        assert_eq!(d, Disposition::Pass, "bed untouched");
    }

    #[test]
    fn t6_leaves_motion_alone() {
        let mut h = TrojanHarness::new();
        let mut t = HeaterDosTrojan::new();
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert_eq!(d, Disposition::Pass);
    }

    #[test]
    fn t7_seizes_gate_high_and_ignores_shutoffs() {
        let mut h = TrojanHarness::new();
        let mut t = ThermalRunawayTrojan::hotend();
        // First event arms and injects the forced High.
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert_eq!(d, Disposition::Pass);
        assert_eq!(
            h.injections,
            vec![(Tick::ZERO, SignalEvent::logic(Pin::HotendHeat, Level::High))]
        );
        // Firmware panic tries to turn the heater off: suppressed.
        let d = h.control(
            &mut t,
            Tick::from_secs(5),
            SignalEvent::logic(Pin::HotendHeat, Level::Low),
        );
        assert_eq!(
            d,
            Disposition::Replace(SignalEvent::logic(Pin::HotendHeat, Level::High))
        );
        assert_eq!(t.suppressed_shutoffs, 1);
    }

    #[test]
    fn t7_bed_untouched_in_hotend_mode() {
        let mut h = TrojanHarness::new();
        let mut t = ThermalRunawayTrojan::hotend();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::BedHeat, Level::Low),
        );
        assert_eq!(d, Disposition::Pass);
        assert_eq!(h.injections.len(), 1, "only the hotend gate injected");
    }
}

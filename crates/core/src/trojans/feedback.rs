//! Extension Trojans on the *feedback* path (TX1, TX2).
//!
//! Table I's Trojans all tamper with the control direction. The paper's
//! discussion notes OFFRAMPS "could implement more novel Trojans,
//! requiring fine-grained manipulation and analysis of the
//! firmware-produced control signals" — and the board's MITM position
//! equally covers the *return* direction: endstops and thermistors.
//! These two Trojans demonstrate that surface. Both are invisible to the
//! §V step-count detector (the control stream is untouched), extending
//! the paper's limitation analysis.

use offramps_des::SimDuration;
use offramps_signals::{AnalogChannel, Edge, EdgeDetector, Level, Pin, SignalBus, SignalEvent};

use crate::trojans::{Disposition, Trojan, TrojanCtx};

/// TX1: spoofs the X MIN endstop during homing so the firmware declares
/// zero early — every subsequent coordinate is silently offset, yet the
/// firmware's own step counts match a golden print exactly.
///
/// The Trojan spoofs the fast approach after `after_steps` X microsteps
/// and the slow re-bump after a short re-approach, then retires for the
/// rest of the job.
#[derive(Debug)]
pub struct EndstopSpoofTrojan {
    after_steps: u32,
    rebump_steps: u32,
    edges: EdgeDetector,
    dir_negative: bool,
    steps_this_approach: u32,
    approaches_spoofed: u8,
    /// Diagnostics: spoofed rising edges delivered to the firmware.
    pub spoofs_fired: u64,
    /// Diagnostics: genuine endstop events suppressed.
    pub real_events_suppressed: u64,
}

impl EndstopSpoofTrojan {
    /// Creates TX1: spoof 5 mm (500 µsteps at Prusa X scaling) into the
    /// fast approach.
    pub fn new() -> Self {
        Self::after_steps(500)
    }

    /// Spoof the fast approach after `after_steps` X microsteps; the
    /// slow re-bump is spoofed after a proportionally short distance.
    ///
    /// # Panics
    ///
    /// Panics if `after_steps` is zero.
    pub fn after_steps(after_steps: u32) -> Self {
        assert!(after_steps > 0, "spoof distance must be positive");
        EndstopSpoofTrojan {
            after_steps,
            // The firmware's re-bump travels 2x the back-off (400 steps
            // at default config); trigger comfortably inside that.
            rebump_steps: (after_steps / 4).clamp(1, 150),
            edges: EdgeDetector::with_bus(&SignalBus::new()),
            dir_negative: true, // DIR resets low = negative
            steps_this_approach: 0,
            approaches_spoofed: 0,
            spoofs_fired: 0,
            real_events_suppressed: 0,
        }
    }

    fn active(&self) -> bool {
        self.approaches_spoofed < 2
    }
}

impl Default for EndstopSpoofTrojan {
    fn default() -> Self {
        Self::new()
    }
}

impl Trojan for EndstopSpoofTrojan {
    fn id(&self) -> &'static str {
        "TX1"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Miscalibration"
    }
    fn effect(&self) -> &'static str {
        "Spoofs the X endstop during homing; the whole print is silently offset"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        if !self.active() {
            return Disposition::Pass;
        }
        match logic.pin {
            Pin::XDir => {
                self.edges.observe(logic);
                let was_negative = self.dir_negative;
                self.dir_negative = logic.level == Level::Low;
                if self.dir_negative != was_negative {
                    // New approach (or retreat): reset the distance count.
                    self.steps_this_approach = 0;
                }
            }
            Pin::XStep if self.edges.observe(logic) == Some(Edge::Rising) && self.dir_negative => {
                self.steps_this_approach += 1;
                let threshold = if self.approaches_spoofed == 0 {
                    self.after_steps
                } else {
                    self.rebump_steps
                };
                if self.steps_this_approach == threshold {
                    // Premature "switch pressed": rising edge now,
                    // release after the firmware has backed away.
                    self.approaches_spoofed += 1;
                    self.spoofs_fired += 1;
                    ctx.inject_feedback(ctx.now, SignalEvent::logic(Pin::XMin, Level::High));
                    ctx.inject_feedback(
                        ctx.now + SimDuration::from_millis(30),
                        SignalEvent::logic(Pin::XMin, Level::Low),
                    );
                }
            }
            _ => {}
        }
        Disposition::Pass
    }

    fn on_feedback(&mut self, _ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        // Suppress the genuine X endstop while we own the line (between
        // the first spoof and retirement), so a real press cannot
        // double-trigger the firmware mid-spoof. After retirement the
        // switch behaves normally — a later G28 re-references truthfully.
        if let Some(logic) = event.as_logic() {
            if logic.pin == Pin::XMin && self.spoofs_fired > 0 && self.active() {
                self.real_events_suppressed += 1;
                return Disposition::Drop;
            }
        }
        Disposition::Pass
    }
}

/// TX2: a gain-style miscalibration of a thermistor read-out. The
/// firmware sees proportionally fewer degrees of rise above ambient
/// (nothing at ambient — so MINTEMP stays quiet) and therefore silently
/// overheats the element while every protection watches the spoofed
/// value.
///
/// Two variants share the mechanism: the default hotend spoof
/// ([`ThermistorSpoofTrojan::reads_cold_by`], the paper-adjacent
/// melt-zone overheat) and a bed spoof
/// ([`ThermistorSpoofTrojan::bed_reads_cold_by`], spec `tx2:bed@<c>`).
/// The bed variant is the quiet one: the bed regulates a few degrees
/// hot for the whole print without delaying the (hotend-dominated)
/// heat-up wait, so the motion timeline — and with it the txn, power
/// and acoustic channels — stays byte-for-byte clean. Only a thermal
/// eye on the *true* plant temperatures sees it.
#[derive(Debug)]
pub struct ThermistorSpoofTrojan {
    /// Which thermistor channel is miscalibrated.
    channel: AnalogChannel,
    /// Fraction of the temperature rise above ambient that is reported.
    gain: f64,
    ambient_c: f64,
    beta: f64,
    r25: f64,
    pullup: f64,
    /// ADC samples rewritten.
    pub samples_spoofed: u64,
}

impl ThermistorSpoofTrojan {
    /// Reference printing temperature used to express the hotend spoof
    /// magnitude.
    pub const REFERENCE_TEMP_C: f64 = 215.0;

    /// Reference bed temperature used to express the bed spoof
    /// magnitude.
    pub const REFERENCE_BED_TEMP_C: f64 = 60.0;

    /// Creates TX2 reading `offset_at_print_temp_c` degrees cold at the
    /// 215 °C reference (e.g. 30 → a 215 °C melt zone reads ~185 °C).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= offset < 190`.
    pub fn reads_cold_by(offset_at_print_temp_c: f64) -> Self {
        Self::spoof(
            AnalogChannel::HotendTherm,
            offset_at_print_temp_c,
            Self::REFERENCE_TEMP_C,
            4267.0,
        )
    }

    /// Creates the bed variant: the bed thermistor reads
    /// `offset_at_bed_temp_c` degrees cold at the 60 °C reference, so a
    /// bang-bang bed loop quietly regulates the plate that much hotter.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= offset < 35`.
    pub fn bed_reads_cold_by(offset_at_bed_temp_c: f64) -> Self {
        Self::spoof(
            AnalogChannel::BedTherm,
            offset_at_bed_temp_c,
            Self::REFERENCE_BED_TEMP_C,
            3950.0,
        )
    }

    fn spoof(channel: AnalogChannel, offset_c: f64, reference_c: f64, beta: f64) -> Self {
        let span = reference_c - 25.0;
        assert!(
            (0.0..span).contains(&offset_c),
            "offset must be in [0, {span})"
        );
        ThermistorSpoofTrojan {
            channel,
            gain: (span - offset_c) / span,
            ambient_c: 25.0,
            beta,
            r25: 100_000.0,
            pullup: 4_700.0,
            samples_spoofed: 0,
        }
    }

    fn counts_to_temp(&self, counts: u16) -> f64 {
        let counts = counts.clamp(1, 1022);
        let frac = f64::from(counts) / 1023.0;
        let r = self.pullup * frac / (1.0 - frac);
        let t25_k = 298.15;
        1.0 / ((r / self.r25).ln() / self.beta + 1.0 / t25_k) - 273.15
    }

    fn temp_to_counts(&self, temp_c: f64) -> u16 {
        let t_k = temp_c + 273.15;
        let r = self.r25 * (self.beta * (1.0 / t_k - 1.0 / 298.15)).exp();
        (r / (r + self.pullup) * 1023.0).round().clamp(0.0, 1023.0) as u16
    }

    /// The temperature the firmware will see for a true `temp_c`.
    pub fn spoofed_temp(&self, temp_c: f64) -> f64 {
        self.ambient_c + (temp_c - self.ambient_c) * self.gain
    }
}

impl Trojan for ThermistorSpoofTrojan {
    fn id(&self) -> &'static str {
        "TX2"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Sensor Fault"
    }
    fn effect(&self) -> &'static str {
        match self.channel {
            AnalogChannel::HotendTherm => {
                "Spoofs the hotend thermistor cold; the firmware silently overheats the material"
            }
            AnalogChannel::BedTherm => {
                "Spoofs the bed thermistor cold; the bed silently regulates hot"
            }
        }
    }

    fn on_control(&mut self, _ctx: &mut TrojanCtx<'_>, _event: &SignalEvent) -> Disposition {
        Disposition::Pass
    }

    fn on_feedback(&mut self, _ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        if let SignalEvent::Adc { channel, counts } = event {
            if *channel == self.channel {
                let true_temp = self.counts_to_temp(*counts);
                let spoofed = self.temp_to_counts(self.spoofed_temp(true_temp));
                self.samples_spoofed += 1;
                return Disposition::Replace(SignalEvent::Adc {
                    channel: *channel,
                    counts: spoofed,
                });
            }
        }
        Disposition::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;
    use offramps_des::Tick;

    #[test]
    fn tx1_spoofs_fast_and_rebump_then_retires() {
        let mut h = TrojanHarness::new();
        h.homed = false;
        let mut t = EndstopSpoofTrojan::after_steps(10);
        // Fast approach.
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XDir, Level::Low),
        );
        for i in 0..10u64 {
            let at = Tick::from_millis(i);
            h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::High));
            h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::Low));
        }
        assert_eq!(t.spoofs_fired, 1);
        // Back-off (positive) then re-bump (negative).
        h.control(
            &mut t,
            Tick::from_millis(20),
            SignalEvent::logic(Pin::XDir, Level::High),
        );
        h.control(
            &mut t,
            Tick::from_millis(30),
            SignalEvent::logic(Pin::XDir, Level::Low),
        );
        for i in 0..10u64 {
            let at = Tick::from_millis(40 + i);
            h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::High));
            h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::Low));
        }
        assert_eq!(t.spoofs_fired, 2, "re-bump spoofed after {} steps", 10 / 4);
        assert_eq!(h.feedback_injections.len(), 4);
        // Retired: print moves in -X never re-trigger.
        for i in 0..1000u64 {
            let at = Tick::from_millis(100 + i);
            h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::High));
            h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::Low));
        }
        assert_eq!(t.spoofs_fired, 2);
    }

    #[test]
    fn tx1_suppresses_real_endstop_after_first_spoof() {
        let mut h = TrojanHarness::new();
        h.homed = false;
        let mut t = EndstopSpoofTrojan::after_steps(1);
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XDir, Level::Low),
        );
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::Low),
        );
        let d = h.feedback(
            &mut t,
            Tick::from_secs(1),
            SignalEvent::logic(Pin::XMin, Level::High),
        );
        assert_eq!(d, Disposition::Drop);
        assert_eq!(t.real_events_suppressed, 1);
        // Y endstop unaffected.
        let d = h.feedback(
            &mut t,
            Tick::from_secs(1),
            SignalEvent::logic(Pin::YMin, Level::High),
        );
        assert_eq!(d, Disposition::Pass);
    }

    #[test]
    fn tx1_releases_the_real_switch_after_retirement() {
        let mut h = TrojanHarness::new();
        h.homed = false;
        let mut t = EndstopSpoofTrojan::after_steps(4);
        // Two spoofed approaches retire the Trojan.
        for approach in 0..2 {
            h.control(
                &mut t,
                Tick::ZERO,
                SignalEvent::logic(Pin::XDir, Level::High),
            );
            h.control(
                &mut t,
                Tick::ZERO,
                SignalEvent::logic(Pin::XDir, Level::Low),
            );
            for i in 0..4u64 {
                let at = Tick::from_millis(approach * 100 + i);
                h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::High));
                h.control(&mut t, at, SignalEvent::logic(Pin::XStep, Level::Low));
            }
        }
        assert_eq!(t.spoofs_fired, 2);
        // A genuine press now passes (the end-of-print G28 re-references
        // truthfully — which is exactly how the detector catches TX1).
        let d = h.feedback(
            &mut t,
            Tick::from_secs(9),
            SignalEvent::logic(Pin::XMin, Level::High),
        );
        assert_eq!(d, Disposition::Pass);
    }

    #[test]
    fn tx2_gain_shifts_print_temps_not_ambient() {
        let mut h = TrojanHarness::new();
        let mut t = ThermistorSpoofTrojan::reads_cold_by(30.0);
        // At ambient: unchanged (no MINTEMP trip).
        assert!((t.spoofed_temp(25.0) - 25.0).abs() < 1e-9);
        // At 215C: reads ~185C.
        assert!((t.spoofed_temp(215.0) - 185.0).abs() < 1e-9);

        let true_counts = t.temp_to_counts(215.0);
        let d = h.feedback(
            &mut t,
            Tick::ZERO,
            SignalEvent::Adc {
                channel: AnalogChannel::HotendTherm,
                counts: true_counts,
            },
        );
        let Disposition::Replace(SignalEvent::Adc { counts, .. }) = d else {
            panic!("expected replacement, got {d:?}");
        };
        let reported = t.counts_to_temp(counts);
        assert!(
            (reported - 185.0).abs() < 3.0,
            "215C must read as ~185C, got {reported}"
        );
        assert_eq!(t.samples_spoofed, 1);
    }

    #[test]
    fn tx2_leaves_bed_channel_alone() {
        let mut h = TrojanHarness::new();
        let mut t = ThermistorSpoofTrojan::reads_cold_by(30.0);
        let d = h.feedback(
            &mut t,
            Tick::ZERO,
            SignalEvent::Adc {
                channel: AnalogChannel::BedTherm,
                counts: 500,
            },
        );
        assert_eq!(d, Disposition::Pass);
    }

    #[test]
    fn tx2_bed_variant_spoofs_bed_and_leaves_hotend_alone() {
        let mut h = TrojanHarness::new();
        let mut t = ThermistorSpoofTrojan::bed_reads_cold_by(8.0);
        // At ambient: unchanged. At the 60C reference: reads ~52C.
        assert!((t.spoofed_temp(25.0) - 25.0).abs() < 1e-9);
        assert!((t.spoofed_temp(60.0) - 52.0).abs() < 1e-9);
        let true_counts = t.temp_to_counts(60.0);
        let d = h.feedback(
            &mut t,
            Tick::ZERO,
            SignalEvent::Adc {
                channel: AnalogChannel::BedTherm,
                counts: true_counts,
            },
        );
        let Disposition::Replace(SignalEvent::Adc { channel, counts }) = d else {
            panic!("expected replacement, got {d:?}");
        };
        assert_eq!(channel, AnalogChannel::BedTherm);
        let reported = t.counts_to_temp(counts);
        assert!(
            (reported - 52.0).abs() < 2.0,
            "60C bed must read ~52C, got {reported}"
        );
        // The hotend channel passes untouched.
        let d = h.feedback(
            &mut t,
            Tick::ZERO,
            SignalEvent::Adc {
                channel: AnalogChannel::HotendTherm,
                counts: 300,
            },
        );
        assert_eq!(d, Disposition::Pass);
    }

    #[test]
    #[should_panic(expected = "offset must be in")]
    fn tx2_rejects_absurd_offset() {
        let _ = ThermistorSpoofTrojan::reads_cold_by(250.0);
    }

    #[test]
    #[should_panic(expected = "offset must be in")]
    fn tx2_bed_rejects_absurd_offset() {
        let _ = ThermistorSpoofTrojan::bed_reads_cold_by(40.0);
    }
}

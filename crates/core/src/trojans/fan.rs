//! Trojan T9 — part-cooling fan tampering.
//!
//! "Trojan T9 affects the part-cooling fan on the printer and causes
//! either over- or under-cooling during printing. … Control signals for
//! this fan are passed through the FPGA for full control. Print quality
//! can be degraded by either over- or under-cooling."
//!
//! The Trojan owns the D9 gate: it swallows the firmware's fan writes
//! and re-synthesizes its own PWM whose duty is the firmware's intent
//! scaled by a malicious factor.

use offramps_des::{SimDuration, Tick};
use offramps_signals::{Level, Pin, SignalEvent};

use crate::trojans::{Disposition, Trojan, TrojanCtx};

/// T9: rescale the fan duty (factor < 1 under-cools, > 1 would
/// over-cool up to 100 %).
#[derive(Debug)]
pub struct FanUnderspeedTrojan {
    scale: f64,
    period: SimDuration,
    /// What the firmware last asked for (level on D9).
    commanded_high: bool,
    pwm_running: bool,
    output_high: bool,
    /// Firmware fan writes swallowed.
    pub swallowed_writes: u64,
}

impl FanUnderspeedTrojan {
    /// The paper's mid-print fan reduction: 25 % of commanded cooling.
    pub fn quarter() -> Self {
        Self::new(0.25)
    }

    /// Creates T9 with an arbitrary duty scale in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < scale <= 1.0`.
    pub fn new(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        FanUnderspeedTrojan {
            scale,
            period: SimDuration::from_millis(20),
            commanded_high: false,
            pwm_running: false,
            output_high: false,
            swallowed_writes: 0,
        }
    }

    fn emit(&mut self, ctx: &mut TrojanCtx<'_>, at: Tick, level: Level) {
        ctx.inject(at, SignalEvent::logic(Pin::FanPwm, level));
        self.output_high = level == Level::High;
    }
}

impl Trojan for FanUnderspeedTrojan {
    fn id(&self) -> &'static str {
        "T9"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Hardware Failure"
    }
    fn effect(&self) -> &'static str {
        "Arbitrarily reducing part fan speed mid-print"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        if logic.pin != Pin::FanPwm {
            return Disposition::Pass;
        }
        self.swallowed_writes += 1;
        self.commanded_high = logic.level == Level::High;
        if self.commanded_high && !self.pwm_running {
            self.pwm_running = true;
            // Start our own chopped PWM immediately.
            self.emit(ctx, ctx.now, Level::High);
            let high_time = self.period.mul_f64(self.scale);
            self.emit(ctx, ctx.now + high_time, Level::Low);
            ctx.wake_at(ctx.now + self.period);
        } else if !self.commanded_high && self.pwm_running {
            self.pwm_running = false;
            self.emit(ctx, ctx.now, Level::Low);
        }
        Disposition::Drop // we own the pin
    }

    fn on_wake(&mut self, ctx: &mut TrojanCtx<'_>) {
        if !self.pwm_running {
            return;
        }
        if !self.commanded_high {
            self.pwm_running = false;
            self.emit(ctx, ctx.now, Level::Low);
            return;
        }
        // Next chopped period.
        self.emit(ctx, ctx.now, Level::High);
        let high_time = self.period.mul_f64(self.scale);
        self.emit(ctx, ctx.now + high_time, Level::Low);
        ctx.wake_at(ctx.now + self.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;

    #[test]
    fn swallows_fan_writes_and_synthesizes_pwm() {
        let mut h = TrojanHarness::new();
        let mut t = FanUnderspeedTrojan::quarter();
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::FanPwm, Level::High),
        );
        assert_eq!(d, Disposition::Drop);
        // One High now, one Low at 25% of 20ms = 5ms.
        assert_eq!(h.injections.len(), 2);
        assert_eq!(h.injections[0].0, Tick::ZERO);
        assert_eq!(h.injections[1].0, Tick::from_millis(5));
        assert_eq!(h.wake, Some(Tick::from_millis(20)));
    }

    #[test]
    fn pwm_continues_until_commanded_off() {
        let mut h = TrojanHarness::new();
        let mut t = FanUnderspeedTrojan::quarter();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::FanPwm, Level::High),
        );
        h.injections.clear();
        h.wake(&mut t, Tick::from_millis(20));
        assert_eq!(h.injections.len(), 2, "next period emitted");
        // Firmware turns the fan off.
        h.injections.clear();
        let d = h.control(
            &mut t,
            Tick::from_millis(30),
            SignalEvent::logic(Pin::FanPwm, Level::Low),
        );
        assert_eq!(d, Disposition::Drop);
        assert_eq!(h.injections.len(), 1);
        assert_eq!(
            h.injections[0].1,
            SignalEvent::logic(Pin::FanPwm, Level::Low)
        );
        // Wake after off: PWM stays stopped.
        h.injections.clear();
        h.wake(&mut t, Tick::from_millis(40));
        assert!(h.injections.is_empty());
    }

    #[test]
    fn duty_scale_math() {
        let mut h = TrojanHarness::new();
        let mut t = FanUnderspeedTrojan::new(0.5);
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::FanPwm, Level::High),
        );
        // Low edge at 50% of the 20ms period.
        assert_eq!(h.injections[1].0, Tick::from_millis(10));
    }

    #[test]
    fn other_pins_pass() {
        let mut h = TrojanHarness::new();
        let mut t = FanUnderspeedTrojan::quarter();
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert_eq!(d, Disposition::Pass);
        assert_eq!(t.swallowed_writes, 0);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_invalid_scale() {
        let _ = FanUnderspeedTrojan::new(0.0);
    }
}

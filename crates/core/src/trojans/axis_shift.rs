//! Trojan T1 — "Loose Belt": random X/Y step injection.
//!
//! "Trojan T1 implements an arbitrary shift along the X and Y axes every
//! ten seconds. … The FPGA on the OFFRAMPS allows to injection stepper
//! motor pulses in between the original control pulses, causing longer
//! travel motions of the print head. This effect is used by the Trojan to
//! add extra steps without adding extra print time."

use offramps_des::{SimDuration, Tick};
use offramps_signals::{Pin, SignalEvent};

use crate::trojans::{Disposition, PulseTrain, Trojan, TrojanCtx};

/// T1: every `interval`, inject a random number of extra steps on X or Y.
#[derive(Debug)]
pub struct AxisShiftTrojan {
    interval: SimDuration,
    min_steps: u32,
    max_steps: u32,
    next_fire: Option<Tick>,
    /// Total injected pulses (diagnostics).
    pub injected_steps: u64,
}

impl AxisShiftTrojan {
    /// Creates T1 with the paper's 10 s trigger interval and a shift of
    /// 20–80 microsteps (0.2–0.8 mm at Prusa X/Y scaling).
    pub fn new() -> Self {
        Self::with_params(SimDuration::from_secs(10), 20, 80)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `min_steps > max_steps` or `max_steps == 0`.
    pub fn with_params(interval: SimDuration, min_steps: u32, max_steps: u32) -> Self {
        assert!(
            min_steps <= max_steps && max_steps > 0,
            "invalid step range"
        );
        AxisShiftTrojan {
            interval,
            min_steps,
            max_steps,
            next_fire: None,
            injected_steps: 0,
        }
    }
}

impl Default for AxisShiftTrojan {
    fn default() -> Self {
        Self::new()
    }
}

impl Trojan for AxisShiftTrojan {
    fn id(&self) -> &'static str {
        "T1"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Loose Belt"
    }
    fn effect(&self) -> &'static str {
        "Randomly changes steps from X or Y axis during print"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, _event: &SignalEvent) -> Disposition {
        // Arm once the printer has homed (the paper's homing-detection
        // module gates Trojan activation).
        if ctx.homed && self.next_fire.is_none() {
            let at = ctx.now + self.interval;
            self.next_fire = Some(at);
            ctx.wake_at(at);
        }
        Disposition::Pass
    }

    fn on_wake(&mut self, ctx: &mut TrojanCtx<'_>) {
        let Some(due) = self.next_fire else {
            return;
        };
        if ctx.now < due {
            ctx.wake_at(due);
            return;
        }
        let pin = if ctx.rng.chance(0.5) {
            Pin::XStep
        } else {
            Pin::YStep
        };
        let steps = if self.min_steps == self.max_steps {
            self.min_steps
        } else {
            ctx.rng
                .uniform_u64(u64::from(self.min_steps), u64::from(self.max_steps) + 1)
                as u32
        };
        PulseTrain::steps(pin, steps).schedule(ctx.now, ctx);
        self.injected_steps += u64::from(steps);
        let next = ctx.now + self.interval;
        self.next_fire = Some(next);
        ctx.wake_at(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;
    use offramps_signals::Level;

    #[test]
    fn arms_only_after_homing() {
        let mut h = TrojanHarness::new();
        h.homed = false;
        let mut t = AxisShiftTrojan::new();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert!(h.wake.is_none(), "not homed: no wake requested");
        h.homed = true;
        h.control(
            &mut t,
            Tick::from_secs(1),
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert_eq!(h.wake, Some(Tick::from_secs(11)));
    }

    #[test]
    fn fires_every_interval_with_bounded_steps() {
        let mut h = TrojanHarness::new();
        let mut t = AxisShiftTrojan::with_params(SimDuration::from_secs(10), 30, 30);
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        h.wake = None;
        h.wake(&mut t, Tick::from_secs(10));
        assert_eq!(h.injections.len(), 60, "30 pulses = 60 edges");
        assert_eq!(t.injected_steps, 30);
        assert_eq!(h.wake, Some(Tick::from_secs(20)), "re-arms");
        // Injected pins are X or Y STEP only.
        for (_, ev) in &h.injections {
            let pin = ev.as_logic().unwrap().pin;
            assert!(pin == Pin::XStep || pin == Pin::YStep);
        }
    }

    #[test]
    fn spurious_wake_is_harmless() {
        let mut h = TrojanHarness::new();
        let mut t = AxisShiftTrojan::new();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        h.wake(&mut t, Tick::from_secs(3)); // before next_fire
        assert!(h.injections.is_empty());
        assert_eq!(
            h.wake,
            Some(Tick::from_secs(10)),
            "re-requests its due time"
        );
    }

    #[test]
    fn passes_all_events() {
        let mut h = TrojanHarness::new();
        let mut t = AxisShiftTrojan::new();
        let d = h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::EStep, Level::High),
        );
        assert_eq!(d, Disposition::Pass);
        assert_eq!(t.id(), "T1");
        assert_eq!(t.kind(), "PM");
    }
}

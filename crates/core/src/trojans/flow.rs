//! Trojan T2 — extrusion flow reduction by pulse masking.
//!
//! "The Trojaned part was printed while masking half of extruder stepper
//! motor pulses sent to the RAMPS board, reducing the flow and amount of
//! material extruded by 50%. This implements reduction Trojans from
//! Flaw3D."
//!
//! The mask applies to *printing* extrusion: forward E pulses emitted
//! while the head is moving in X/Y. Stationary forward pulses (retract
//! refills, priming) pass, otherwise each retract cycle would leave the
//! melt chamber under-primed and the reduction would compound far past
//! the commanded factor. Distinguishing the two needs exactly the
//! Edge-Detection Module the paper's framework provides.

use offramps_des::{SimDuration, Tick};
use offramps_signals::{Level, Pin, SignalEvent};

use crate::trojans::{Disposition, Trojan, TrojanCtx};

/// T2: keep only a fraction of forward extruder STEP pulses during
/// X/Y motion.
#[derive(Debug)]
pub struct FlowReductionTrojan {
    keep_ratio: f64,
    accumulator: f64,
    dir_positive: bool,
    masking_pulse: bool,
    step_high: bool,
    last_xy_step: Option<Tick>,
    xy_window: SimDuration,
    /// Pulses suppressed so far.
    pub masked_pulses: u64,
    /// Pulses forwarded so far.
    pub passed_pulses: u64,
}

impl FlowReductionTrojan {
    /// The paper's T2: mask half the pulses (50 % flow).
    pub fn half() -> Self {
        Self::new(0.5)
    }

    /// Keep `keep_ratio` of printing E pulses (e.g. 0.5 → 50 % flow).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= keep_ratio <= 1.0`.
    pub fn new(keep_ratio: f64) -> Self {
        assert!((0.0..=1.0).contains(&keep_ratio), "ratio out of range");
        FlowReductionTrojan {
            keep_ratio,
            accumulator: 0.0,
            dir_positive: false,
            masking_pulse: false,
            step_high: false,
            last_xy_step: None,
            xy_window: SimDuration::from_millis(20),
            masked_pulses: 0,
            passed_pulses: 0,
        }
    }

    fn xy_active(&self, now: Tick) -> bool {
        self.last_xy_step
            .is_some_and(|t| now.saturating_since(t) <= self.xy_window)
    }
}

impl Trojan for FlowReductionTrojan {
    fn id(&self) -> &'static str {
        "T2"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Incorrect Slicing"
    }
    fn effect(&self) -> &'static str {
        "Constant over / under extrusion per print"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        match logic.pin {
            Pin::XStep | Pin::YStep => {
                if logic.level == Level::High {
                    self.last_xy_step = Some(ctx.now);
                }
                Disposition::Pass
            }
            Pin::EDir => {
                self.dir_positive = logic.level == Level::High;
                Disposition::Pass
            }
            Pin::EStep => match (self.step_high, logic.level) {
                (false, Level::High) => {
                    self.step_high = true;
                    // Retraction pulses and stationary refills/primes
                    // pass; only printing extrusion is masked.
                    if !self.dir_positive || !self.xy_active(ctx.now) {
                        self.masking_pulse = false;
                        return Disposition::Pass;
                    }
                    self.accumulator += self.keep_ratio;
                    // Epsilon guards float accumulation (0.9 × 10 must
                    // count as 9, not 8).
                    if self.accumulator >= 1.0 - 1e-9 {
                        self.accumulator -= 1.0;
                        self.masking_pulse = false;
                        self.passed_pulses += 1;
                        Disposition::Pass
                    } else {
                        self.masking_pulse = true;
                        self.masked_pulses += 1;
                        Disposition::Drop
                    }
                }
                (true, Level::Low) => {
                    self.step_high = false;
                    if self.masking_pulse {
                        self.masking_pulse = false;
                        Disposition::Drop // swallow the matching falling edge
                    } else {
                        Disposition::Pass
                    }
                }
                _ => Disposition::Pass,
            },
            _ => Disposition::Pass,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;

    /// Sends `n` E pulses, keeping X active so the mask applies, and
    /// returns how many passed.
    fn run_pulses(trojan: &mut FlowReductionTrojan, n: usize, dir_high: bool) -> usize {
        let mut h = TrojanHarness::new();
        let dir = SignalEvent::logic(Pin::EDir, if dir_high { Level::High } else { Level::Low });
        h.control(trojan, Tick::ZERO, dir);
        let mut passed = 0;
        for i in 0..n {
            let t = Tick::from_micros(100 * i as u64);
            // Keep the head moving: an X pulse right before each E pulse.
            h.control(trojan, t, SignalEvent::logic(Pin::XStep, Level::High));
            h.control(trojan, t, SignalEvent::logic(Pin::XStep, Level::Low));
            let up = h.control(trojan, t, SignalEvent::logic(Pin::EStep, Level::High));
            let down = h.control(trojan, t, SignalEvent::logic(Pin::EStep, Level::Low));
            match (up, down) {
                (Disposition::Pass, Disposition::Pass) => passed += 1,
                (Disposition::Drop, Disposition::Drop) => {}
                other => panic!("rise/fall must agree: {other:?}"),
            }
        }
        passed
    }

    #[test]
    fn half_masks_every_other_pulse() {
        let mut t = FlowReductionTrojan::half();
        let passed = run_pulses(&mut t, 1000, true);
        assert_eq!(passed, 500);
        assert_eq!(t.masked_pulses, 500);
        assert_eq!(t.passed_pulses, 500);
    }

    #[test]
    fn arbitrary_ratio() {
        let mut t = FlowReductionTrojan::new(0.9);
        let passed = run_pulses(&mut t, 1000, true);
        assert_eq!(passed, 900);
    }

    #[test]
    fn full_keep_passes_everything() {
        let mut t = FlowReductionTrojan::new(1.0);
        assert_eq!(run_pulses(&mut t, 100, true), 100);
    }

    #[test]
    fn retraction_pulses_untouched() {
        let mut t = FlowReductionTrojan::half();
        let passed = run_pulses(&mut t, 100, false);
        assert_eq!(passed, 100, "reverse (retract) pulses must pass");
    }

    #[test]
    fn stationary_refills_untouched() {
        // Forward E pulses with NO XY activity: refills/primes pass.
        let mut h = TrojanHarness::new();
        let mut t = FlowReductionTrojan::half();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::EDir, Level::High),
        );
        for i in 0..100u64 {
            let at = Tick::from_millis(100 + i);
            let up = h.control(&mut t, at, SignalEvent::logic(Pin::EStep, Level::High));
            let down = h.control(&mut t, at, SignalEvent::logic(Pin::EStep, Level::Low));
            assert_eq!((up, down), (Disposition::Pass, Disposition::Pass));
        }
        assert_eq!(t.masked_pulses, 0);
    }

    #[test]
    fn other_pins_pass() {
        let mut h = TrojanHarness::new();
        let mut t = FlowReductionTrojan::half();
        for _ in 0..10 {
            let d = h.control(
                &mut t,
                Tick::ZERO,
                SignalEvent::logic(Pin::ZStep, Level::High),
            );
            assert_eq!(d, Disposition::Pass);
            let d = h.control(
                &mut t,
                Tick::ZERO,
                SignalEvent::logic(Pin::ZStep, Level::Low),
            );
            assert_eq!(d, Disposition::Pass);
        }
    }
}

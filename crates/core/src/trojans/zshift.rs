//! Trojan T5 — Z-layer shift / delamination.
//!
//! "Trojan T5 causes an arbitrarily sized shift on the Z-axis, causing
//! poor layer adhesion or, in severe cases, layer delamination. This
//! mimics improper slicing settings if the layer spacing is modified
//! throughout the print, and poor hardware setup if a shift is done at
//! the start of print, causing the part to fail to adhere to build
//! plate."

use offramps_signals::{Edge, EdgeDetector, Level, Pin, SignalBus, SignalEvent};

use crate::trojans::{Disposition, PulseTrain, Trojan, TrojanCtx};

/// T5: inject extra Z steps at a chosen layer (0 = at start of print).
#[derive(Debug)]
pub struct ZShiftTrojan {
    layer_steps: u64,
    extra_steps: u32,
    /// Fire when this many layers have printed (0 = at the first move
    /// after homing).
    at_layer: u64,
    /// If set, re-fire every `repeat_every` layers after the first.
    repeat_every: Option<u64>,
    edges: EdgeDetector,
    z_dir_positive: bool,
    z_steps_up: u64,
    layers_seen: u64,
    fired_at_start: bool,
    next_layer_trigger: u64,
    /// Total injected Z steps.
    pub injected_steps: u64,
}

impl ZShiftTrojan {
    /// A severe single shift (0.5 mm at 400 steps/mm) after layer 2 —
    /// visible delamination.
    pub fn delamination() -> Self {
        Self::with_params(120, 200, 2, None)
    }

    /// A start-of-print shift that ruins bed adhesion.
    pub fn adhesion_failure() -> Self {
        Self::with_params(120, 150, 0, None)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `layer_steps` or `extra_steps` is zero.
    pub fn with_params(
        layer_steps: u64,
        extra_steps: u32,
        at_layer: u64,
        repeat_every: Option<u64>,
    ) -> Self {
        assert!(layer_steps > 0 && extra_steps > 0, "invalid parameters");
        ZShiftTrojan {
            layer_steps,
            extra_steps,
            at_layer,
            repeat_every,
            edges: EdgeDetector::with_bus(&SignalBus::new()),
            z_dir_positive: false,
            z_steps_up: 0,
            layers_seen: 0,
            fired_at_start: false,
            next_layer_trigger: at_layer,
            injected_steps: 0,
        }
    }

    fn fire(&mut self, ctx: &mut TrojanCtx<'_>) {
        // Force DIR positive for the injected burst, then pulse. The
        // firmware's next Z move re-asserts its own DIR, so we restore
        // nothing (matching a simple hardware implementation).
        ctx.inject(ctx.now, SignalEvent::logic(Pin::ZDir, Level::High));
        let train = PulseTrain::steps(Pin::ZStep, self.extra_steps);
        // Start the train after the DIR setup time.
        train.schedule(ctx.now + offramps_des::SimDuration::from_micros(2), ctx);
        self.injected_steps += u64::from(self.extra_steps);
    }
}

impl Trojan for ZShiftTrojan {
    fn id(&self) -> &'static str {
        "T5"
    }
    fn kind(&self) -> &'static str {
        "PM"
    }
    fn scenario(&self) -> &'static str {
        "Incorrect Slicing"
    }
    fn effect(&self) -> &'static str {
        "Layer delamination via Z-layer shift"
    }

    fn on_control(&mut self, ctx: &mut TrojanCtx<'_>, event: &SignalEvent) -> Disposition {
        let Some(logic) = event.as_logic() else {
            return Disposition::Pass;
        };
        // Start-of-print trigger: first control activity after homing.
        if self.at_layer == 0 && !self.fired_at_start && ctx.homed {
            self.fired_at_start = true;
            self.fire(ctx);
        }
        match logic.pin {
            Pin::ZDir => {
                self.edges.observe(logic);
                self.z_dir_positive = logic.level == Level::High;
            }
            Pin::ZStep
                if self.edges.observe(logic) == Some(Edge::Rising)
                    && ctx.homed
                    && self.z_dir_positive =>
            {
                self.z_steps_up += 1;
                if self.z_steps_up.is_multiple_of(self.layer_steps) {
                    self.layers_seen += 1;
                    if self.next_layer_trigger > 0 && self.layers_seen == self.next_layer_trigger {
                        self.fire(ctx);
                        if let Some(gap) = self.repeat_every {
                            self.next_layer_trigger = self.layers_seen + gap;
                        }
                    }
                }
            }
            _ => {}
        }
        Disposition::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trojans::test_util::TrojanHarness;
    use offramps_des::Tick;

    fn z_layer(h: &mut TrojanHarness, t: &mut ZShiftTrojan, steps: u64, base_us: u64) {
        h.control(
            t,
            Tick::from_micros(base_us),
            SignalEvent::logic(Pin::ZDir, Level::High),
        );
        for i in 0..steps {
            let at = Tick::from_micros(base_us + 10 * i);
            h.control(t, at, SignalEvent::logic(Pin::ZStep, Level::High));
            h.control(t, at, SignalEvent::logic(Pin::ZStep, Level::Low));
        }
    }

    #[test]
    fn fires_at_configured_layer_once() {
        let mut h = TrojanHarness::new();
        let mut t = ZShiftTrojan::with_params(100, 50, 2, None);
        for layer in 0..6 {
            z_layer(&mut h, &mut t, 100, layer * 10_000);
        }
        assert_eq!(t.injected_steps, 50, "fires exactly once");
        // DIR High + 50 pulses (100 edges).
        assert_eq!(h.injections.len(), 101);
        assert_eq!(
            h.injections[0].1,
            SignalEvent::logic(Pin::ZDir, Level::High)
        );
    }

    #[test]
    fn start_of_print_variant() {
        let mut h = TrojanHarness::new();
        let mut t = ZShiftTrojan::adhesion_failure();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert_eq!(t.injected_steps, 150);
        // Second event does not re-fire.
        h.control(
            &mut t,
            Tick::from_micros(10),
            SignalEvent::logic(Pin::XStep, Level::Low),
        );
        assert_eq!(t.injected_steps, 150);
    }

    #[test]
    fn repeating_variant() {
        let mut h = TrojanHarness::new();
        let mut t = ZShiftTrojan::with_params(100, 10, 1, Some(2));
        for layer in 0..6 {
            z_layer(&mut h, &mut t, 100, layer * 10_000);
        }
        // Fires at layers 1, 3, 5.
        assert_eq!(t.injected_steps, 30);
    }

    #[test]
    fn not_before_homing() {
        let mut h = TrojanHarness::new();
        h.homed = false;
        let mut t = ZShiftTrojan::adhesion_failure();
        h.control(
            &mut t,
            Tick::ZERO,
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert_eq!(t.injected_steps, 0);
    }
}

//! The OFFRAMPS machine-in-the-middle component.
//!
//! Every signal between the controller (firmware) and the driver board
//! (plant) flows through [`Offramps`] in both directions, exactly like
//! the physical board's jumper banks route every header pin through the
//! Cmod-A7. Depending on the configured [`SignalPath`]:
//!
//! * **bypass** — events are forwarded verbatim (plus the fabric's
//!   pipeline delay),
//! * **modify** — control events run through the armed Trojans' control
//!   units and mux (pass / drop / replace / inject),
//! * **capture** — the monitoring pipeline counts steps and exports
//!   16-byte transactions.
//!
//! [`SignalPath`]: crate::SignalPath

use offramps_des::{ActionSink, DetRng, InPort, OutPort, SeedSplitter, SimComponent, Tick};
use offramps_signals::{PinClass, SignalEvent, SignalTrace};

use crate::config::MitmConfig;
use crate::monitor::{HomingDetector, Monitor};
use crate::trojans::{Disposition, Trojan, TrojanCtx};

/// Output port: control-direction events heading to the plant.
pub const PORT_TO_PLANT: OutPort = OutPort(0);

/// Output port: feedback-direction events heading to the firmware.
pub const PORT_TO_FIRMWARE: OutPort = OutPort(1);

/// Input port: control-direction events arriving from the firmware.
pub const PORT_CTRL_IN: InPort = InPort(0);

/// Input port: feedback-direction events arriving from the plant.
pub const PORT_FEEDBACK_IN: InPort = InPort(1);

/// Which way an event is travelling through the interceptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Control,
    Feedback,
}

/// The interceptor. Construct with [`Offramps::new`], arm Trojans with
/// [`Offramps::add_trojan`], then route every firmware output through
/// [`Offramps::on_control`] and every plant output through
/// [`Offramps::on_feedback`].
#[derive(Debug)]
pub struct Offramps {
    config: MitmConfig,
    trojans: Vec<Box<dyn Trojan>>,
    monitor: Option<Monitor>,
    homing: HomingDetector,
    rng: DetRng,
    trace: Option<SignalTrace>,
    /// Control events seen (diagnostics).
    pub control_events: u64,
    /// Feedback events seen (diagnostics).
    pub feedback_events: u64,
    /// Events injected by Trojans (diagnostics).
    pub injected_events: u64,
    /// Events dropped or replaced by Trojans (diagnostics).
    pub modified_events: u64,
}

impl Offramps {
    /// Creates the interceptor. `seed` drives Trojan randomness.
    pub fn new(config: MitmConfig, seed: u64) -> Self {
        Offramps {
            monitor: config
                .path
                .capture
                .then(|| Monitor::new(config.export_period)),
            config,
            trojans: Vec::new(),
            homing: HomingDetector::new(),
            rng: SeedSplitter::new(seed).stream("offramps-trojans"),
            trace: None,
            control_events: 0,
            feedback_events: 0,
            injected_events: 0,
            modified_events: 0,
        }
    }

    /// Arms a Trojan (effective only when the path has `modify` set).
    pub fn add_trojan(&mut self, trojan: Box<dyn Trojan>) {
        self.trojans.push(trojan);
    }

    /// Enables raw signal tracing (the logic-analyzer role).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(SignalTrace::new());
        }
    }

    /// The recorded trace so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&SignalTrace> {
        self.trace.as_ref()
    }

    /// The monitor, if the capture path is active.
    pub fn monitor(&self) -> Option<&Monitor> {
        self.monitor.as_ref()
    }

    /// Consumes the interceptor, returning `(capture, trace)`.
    pub fn into_outputs(self) -> (Option<crate::Capture>, Option<SignalTrace>) {
        (self.monitor.map(Monitor::into_capture), self.trace)
    }

    /// The configuration.
    pub fn config(&self) -> &MitmConfig {
        &self.config
    }

    /// Routes one control-direction event (firmware → plant).
    pub fn on_control(
        &mut self,
        now: Tick,
        event: SignalEvent,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        self.control_events += 1;

        if let SignalEvent::Logic(logic) = event {
            if let Some(trace) = self.trace.as_mut() {
                trace.record(now, logic);
            }
        }

        // Monitoring observes the controller's stream (§V counts the
        // steps the Arduino sends).
        if let Some(monitor) = self.monitor.as_mut() {
            if let SignalEvent::Logic(logic) = event {
                if let Some(wake) = monitor.on_control(now, logic) {
                    sink.wake_at(wake);
                }
            }
        }

        // Trojan pipeline.
        let mut forwarded = Some(event);
        if self.config.path.modify {
            forwarded = self.run_trojans(now, forwarded, Direction::Control, sink);
        }

        if let Some(ev) = forwarded {
            sink.send_at(PORT_TO_PLANT, now + self.config.pipeline_delay, ev);
        }
    }

    /// Runs `event` through every armed Trojan, emitting injections and
    /// wake requests; returns what survives the mux.
    fn run_trojans(
        &mut self,
        now: Tick,
        mut forwarded: Option<SignalEvent>,
        direction: Direction,
        sink: &mut ActionSink<SignalEvent>,
    ) -> Option<SignalEvent> {
        let mut injections = Vec::new();
        let mut feedback_injections = Vec::new();
        let mut wake = None;
        let homed = self.homing.is_homed();
        for trojan in &mut self.trojans {
            let Some(ev) = forwarded else { break };
            let mut ctx = TrojanCtx {
                now,
                homed,
                rng: &mut self.rng,
                injections: &mut injections,
                feedback_injections: &mut feedback_injections,
                wake: &mut wake,
            };
            let disposition = match direction {
                Direction::Control => trojan.on_control(&mut ctx, &ev),
                Direction::Feedback => trojan.on_feedback(&mut ctx, &ev),
            };
            match disposition {
                Disposition::Pass => {}
                Disposition::Drop => {
                    self.modified_events += 1;
                    forwarded = None;
                }
                Disposition::Replace(new_ev) => {
                    self.modified_events += 1;
                    forwarded = Some(new_ev);
                }
            }
        }
        self.injected_events += (injections.len() + feedback_injections.len()) as u64;
        for (at, ev) in injections {
            sink.send_at(PORT_TO_PLANT, at + self.config.pipeline_delay, ev);
        }
        for (at, ev) in feedback_injections {
            // Spoofed feedback is what the *firmware* experiences; the
            // FPGA's own homing detector and monitor tap the output mux,
            // so they see the spoof too.
            if let SignalEvent::Logic(logic) = ev {
                self.homing.observe(logic);
                if let Some(monitor) = self.monitor.as_mut() {
                    monitor.on_feedback(logic);
                }
            }
            sink.send_at(PORT_TO_FIRMWARE, at + self.config.pipeline_delay, ev);
        }
        if let Some(w) = wake {
            sink.wake_at(w);
        }
        forwarded
    }

    /// Routes one feedback-direction event (plant → firmware).
    pub fn on_feedback(
        &mut self,
        now: Tick,
        event: SignalEvent,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        self.feedback_events += 1;
        if let SignalEvent::Logic(logic) = event {
            debug_assert_eq!(
                logic.pin.class(),
                PinClass::Feedback,
                "control pins must not arrive on the feedback path"
            );
            // Homing/monitoring observe the *true* feedback (the FPGA
            // taps the wire before its own mux).
            self.homing.observe(logic);
            if let Some(monitor) = self.monitor.as_mut() {
                monitor.on_feedback(logic);
            }
            if let Some(trace) = self.trace.as_mut() {
                trace.record(now, logic);
            }
        }
        let mut forwarded = Some(event);
        if self.config.path.modify {
            forwarded = self.run_trojans(now, forwarded, Direction::Feedback, sink);
        }
        if let Some(ev) = forwarded {
            sink.send_at(PORT_TO_FIRMWARE, now + self.config.pipeline_delay, ev);
        }
    }

    /// Timer wake-up: runs the monitor's exporter and the Trojans'
    /// timed behaviour.
    pub fn on_tick(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        if let Some(monitor) = self.monitor.as_mut() {
            if let Some(next) = monitor.on_tick(now) {
                sink.wake_at(next);
            }
        }
        if self.config.path.modify {
            let mut injections = Vec::new();
            let mut feedback_injections = Vec::new();
            let mut wake = None;
            let homed = self.homing.is_homed();
            for trojan in &mut self.trojans {
                let mut ctx = TrojanCtx {
                    now,
                    homed,
                    rng: &mut self.rng,
                    injections: &mut injections,
                    feedback_injections: &mut feedback_injections,
                    wake: &mut wake,
                };
                trojan.on_wake(&mut ctx);
            }
            self.injected_events += (injections.len() + feedback_injections.len()) as u64;
            for (at, ev) in injections {
                sink.send_at(PORT_TO_PLANT, at + self.config.pipeline_delay, ev);
            }
            for (at, ev) in feedback_injections {
                sink.send_at(PORT_TO_FIRMWARE, at + self.config.pipeline_delay, ev);
            }
            if let Some(w) = wake {
                sink.wake_at(w);
            }
        }
    }
}

impl SimComponent for Offramps {
    type Payload = SignalEvent;

    fn on_event(
        &mut self,
        now: Tick,
        port: InPort,
        payload: SignalEvent,
        sink: &mut ActionSink<SignalEvent>,
    ) {
        match port {
            PORT_CTRL_IN => self.on_control(now, payload, sink),
            PORT_FEEDBACK_IN => self.on_feedback(now, payload, sink),
            other => panic!("Offramps has no input port {other:?}"),
        }
    }

    fn on_tick(&mut self, now: Tick, sink: &mut ActionSink<SignalEvent>) {
        Offramps::on_tick(self, now, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignalPath;
    use crate::trojans::FlowReductionTrojan;
    use offramps_des::{SimDuration, SinkAction};
    use offramps_signals::{Level, Pin};

    fn bypass() -> Offramps {
        Offramps::new(MitmConfig::default(), 1)
    }

    /// Drives one control event through a fresh sink.
    fn on_control(m: &mut Offramps, t: Tick, ev: SignalEvent) -> Vec<SinkAction<SignalEvent>> {
        let mut sink = ActionSink::new();
        sink.begin(t);
        m.on_control(t, ev, &mut sink);
        sink.drain().collect()
    }

    fn on_feedback(m: &mut Offramps, t: Tick, ev: SignalEvent) -> Vec<SinkAction<SignalEvent>> {
        let mut sink = ActionSink::new();
        sink.begin(t);
        m.on_feedback(t, ev, &mut sink);
        sink.drain().collect()
    }

    fn on_tick(m: &mut Offramps, t: Tick) -> Vec<SinkAction<SignalEvent>> {
        let mut sink = ActionSink::new();
        sink.begin(t);
        m.on_tick(t, &mut sink);
        sink.drain().collect()
    }

    #[test]
    fn bypass_forwards_with_pipeline_delay() {
        let mut m = bypass();
        let ev = SignalEvent::logic(Pin::XStep, Level::High);
        let acts = on_control(&mut m, Tick::from_micros(10), ev);
        assert_eq!(
            acts,
            vec![SinkAction::Send {
                port: PORT_TO_PLANT,
                at: Tick::from_micros(10) + SimDuration::from_nanos(13),
                payload: ev,
            }]
        );
        assert_eq!(m.control_events, 1);
    }

    #[test]
    fn feedback_forwards_to_firmware() {
        let mut m = bypass();
        let ev = SignalEvent::logic(Pin::XMin, Level::High);
        let acts = on_feedback(&mut m, Tick::from_micros(5), ev);
        assert!(
            matches!(acts[0], SinkAction::Send { port: PORT_TO_FIRMWARE, payload: e, .. } if e == ev)
        );
    }

    #[test]
    fn modify_path_applies_trojans() {
        let cfg = MitmConfig {
            path: SignalPath::modify(),
            ..MitmConfig::default()
        };
        let mut m = Offramps::new(cfg, 1);
        m.add_trojan(Box::new(FlowReductionTrojan::half()));
        // Extruding forward during XY motion: E DIR high, X pulses keep
        // the motion window hot, then E pulses.
        on_control(
            &mut m,
            Tick::ZERO,
            SignalEvent::logic(Pin::EDir, Level::High),
        );
        let mut e_edges_forwarded = 0;
        for i in 0..4u64 {
            let t = Tick::from_micros(100 * i);
            on_control(&mut m, t, SignalEvent::logic(Pin::XStep, Level::High));
            on_control(&mut m, t, SignalEvent::logic(Pin::XStep, Level::Low));
            let a = on_control(&mut m, t, SignalEvent::logic(Pin::EStep, Level::High));
            let b = on_control(&mut m, t, SignalEvent::logic(Pin::EStep, Level::Low));
            e_edges_forwarded += a.len() + b.len();
        }
        assert_eq!(
            e_edges_forwarded, 4,
            "half the E pulses (2 of 4) = 4 edges forwarded"
        );
        assert_eq!(m.modified_events, 4);
    }

    #[test]
    fn trojans_inactive_on_bypass_path() {
        let mut m = bypass();
        m.add_trojan(Box::new(FlowReductionTrojan::half()));
        on_control(
            &mut m,
            Tick::ZERO,
            SignalEvent::logic(Pin::EDir, Level::High),
        );
        let mut forwarded = 0;
        for i in 0..4u64 {
            let t = Tick::from_micros(100 * i);
            forwarded += on_control(&mut m, t, SignalEvent::logic(Pin::EStep, Level::High)).len();
            forwarded += on_control(&mut m, t, SignalEvent::logic(Pin::EStep, Level::Low)).len();
        }
        assert_eq!(forwarded, 8, "bypass must not mask pulses");
    }

    #[test]
    fn capture_path_builds_transactions() {
        let cfg = MitmConfig {
            path: SignalPath::capture(),
            ..MitmConfig::default()
        };
        let mut m = Offramps::new(cfg, 1);
        // Home (feedback), then step, then tick past the period.
        for pin in [
            Pin::XMin,
            Pin::XMin,
            Pin::YMin,
            Pin::YMin,
            Pin::ZMin,
            Pin::ZMin,
        ] {
            on_feedback(
                &mut m,
                Tick::from_millis(1),
                SignalEvent::logic(pin, Level::High),
            );
            on_feedback(
                &mut m,
                Tick::from_millis(1),
                SignalEvent::logic(pin, Level::Low),
            );
        }
        on_control(
            &mut m,
            Tick::from_millis(10),
            SignalEvent::logic(Pin::XDir, Level::High),
        );
        let acts = on_control(
            &mut m,
            Tick::from_millis(10),
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        assert!(
            acts.iter().any(|a| matches!(a, SinkAction::WakeAt(_))),
            "first step after homing arms the export clock"
        );
        on_control(
            &mut m,
            Tick::from_millis(10),
            SignalEvent::logic(Pin::XStep, Level::Low),
        );
        let acts = on_tick(&mut m, Tick::from_millis(110));
        assert!(acts.iter().any(|a| matches!(a, SinkAction::WakeAt(_))));
        let cap = m.monitor().unwrap().capture();
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.transactions()[0].counts[0], 1);
    }

    #[test]
    fn trace_records_logic_events() {
        let mut m = bypass();
        m.enable_trace();
        on_control(
            &mut m,
            Tick::from_micros(1),
            SignalEvent::logic(Pin::XStep, Level::High),
        );
        on_control(
            &mut m,
            Tick::from_micros(3),
            SignalEvent::logic(Pin::XStep, Level::Low),
        );
        assert_eq!(m.trace().unwrap().len(), 2);
        let (cap, trace) = m.into_outputs();
        assert!(cap.is_none());
        assert_eq!(trace.unwrap().len(), 2);
    }
}
